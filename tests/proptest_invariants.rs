//! Property-based tests over random edge lists: algorithm agreement,
//! the paper's invariants, spanning-forest properties, relabeling
//! equivariance, and CSR construction laws.

use afforest_repro::baselines::union_find::union_find_cc;
use afforest_repro::core::spanning_forest::{spanning_forest, spanning_forest_serial};
use afforest_repro::core::{compress_all, link, ParentArray};
use afforest_repro::graph::perm::{invert_permutation, random_permutation, relabel};
use afforest_repro::prelude::*;
use proptest::prelude::*;

/// Strategy: a random graph as (n, edge list).
fn arb_graph(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(Node, Node)>)> {
    (2usize..max_n).prop_flat_map(move |n| {
        let edge = (0..n as Node, 0..n as Node);
        (Just(n), proptest::collection::vec(edge, 0..max_m))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn all_algorithms_match_oracle((n, edges) in arb_graph(200, 600)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let oracle = ComponentLabels::from_vec(union_find_cc(&g));
        let runs: Vec<(&str, Vec<Node>)> = vec![
            ("afforest", afforest(&g, &AfforestConfig::default()).as_slice().to_vec()),
            ("afforest-noskip", afforest(&g, &AfforestConfig::builder().skip(false).build().unwrap()).as_slice().to_vec()),
            ("sv", shiloach_vishkin(&g)),
            ("sv-edgelist", sv_edgelist(&g)),
            ("lp", label_prop(&g)),
            ("bfs", bfs_cc(&g)),
            ("dobfs", dobfs_cc(&g)),
        ];
        for (name, labels) in runs {
            let l = ComponentLabels::from_vec(labels);
            prop_assert!(l.equivalent(&oracle), "{} disagrees", name);
        }
    }

    #[test]
    fn afforest_verifies_against_graph((n, edges) in arb_graph(300, 900)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let labels = afforest(&g, &AfforestConfig::default());
        prop_assert!(labels.verify_against(&g));
    }

    #[test]
    fn invariant_one_holds_after_links((n, edges) in arb_graph(200, 600)) {
        // π(x) ≤ x after any sequence of parallel link calls.
        let g = GraphBuilder::from_edges(n, &edges).build();
        let pi = ParentArray::new(g.num_vertices());
        use rayon::prelude::*;
        g.collect_edges().par_iter().for_each(|&(u, v)| { link(u, v, &pi); });
        prop_assert!(pi.check_invariant());
        // And after compression too (Lemma 2).
        compress_all(&pi);
        prop_assert!(pi.check_invariant());
        prop_assert!(pi.max_depth() <= 1);
    }

    #[test]
    fn compress_is_idempotent((n, edges) in arb_graph(150, 400)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let pi = ParentArray::new(g.num_vertices());
        for (u, v) in g.edges() { link(u, v, &pi); }
        compress_all(&pi);
        let once = pi.snapshot();
        compress_all(&pi);
        prop_assert_eq!(once, pi.snapshot());
    }

    #[test]
    fn spanning_forest_laws((n, edges) in arb_graph(150, 500)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let oracle = ComponentLabels::from_vec(union_find_cc(&g));
        let c = oracle.num_components();
        for forest in [spanning_forest(&g), spanning_forest_serial(&g)] {
            // Exactly |V| − C edges.
            prop_assert_eq!(forest.len(), g.num_vertices() - c);
            // All edges from the graph.
            prop_assert!(forest.iter().all(|&(u, v)| g.has_edge(u, v)));
            // Connectivity preserved.
            let fg = GraphBuilder::from_edges(g.num_vertices(), &forest).build();
            let flabels = ComponentLabels::from_vec(union_find_cc(&fg));
            prop_assert!(flabels.equivalent(&oracle));
        }
    }

    #[test]
    fn relabeling_equivariance((n, edges) in arb_graph(120, 400), seed in 0u64..1000) {
        // afforest(relabel(g)) must equal relabel(afforest(g)) as a partition.
        let g = GraphBuilder::from_edges(n, &edges).build();
        let perm = random_permutation(n, seed);
        let h = relabel(&g, &perm);
        let lg = afforest(&g, &AfforestConfig::default());
        let lh = afforest(&h, &AfforestConfig::default());
        prop_assert_eq!(lg.num_components(), lh.num_components());
        let inv = invert_permutation(&perm);
        for a in 0..n as Node {
            for b in (a + 1)..n as Node {
                // a, b in h correspond to inv[a], inv[b] in g.
                prop_assert_eq!(
                    lh.same_component(a, b),
                    lg.same_component(inv[a as usize], inv[b as usize])
                );
            }
        }
    }

    #[test]
    fn csr_builder_laws((n, edges) in arb_graph(200, 600)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        // Symmetry.
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u));
            }
            // Sorted + deduped adjacency.
            let nb = g.neighbors(u);
            prop_assert!(nb.windows(2).all(|w| w[0] < w[1]));
            // No self loops.
            prop_assert!(!g.has_edge(u, u));
        }
        // Arc count is exactly twice the undirected edge count.
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
    }

    #[test]
    fn component_labels_counts_are_consistent((n, edges) in arb_graph(150, 500)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let labels = afforest(&g, &AfforestConfig::default());
        let sizes = labels.component_sizes();
        prop_assert_eq!(sizes.len(), labels.num_components());
        prop_assert_eq!(sizes.iter().sum::<usize>(), g.num_vertices());
        prop_assert_eq!(
            labels.largest_component_size(),
            sizes.iter().copied().max().unwrap_or(0)
        );
    }

    #[test]
    fn config_knobs_never_change_the_answer(
        (n, edges) in arb_graph(150, 500),
        rounds in 0usize..6,
        skip in any::<bool>(),
        per_round in any::<bool>(),
        sample in 1usize..64,
    ) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let reference = afforest(&g, &AfforestConfig::default());
        let cfg = AfforestConfig {
            neighbor_rounds: rounds,
            skip_largest: skip,
            compress_each_round: per_round,
            sample_size: sample,
            seed: 1,
        };
        let labels = afforest(&g, &cfg);
        prop_assert!(labels.equivalent(&reference), "cfg {:?} changed the partition", cfg);
    }
}
