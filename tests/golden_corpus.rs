//! Golden regression corpus: frozen structural facts about the dataset
//! registry and the deterministic labelings.
//!
//! These values were captured from a verified build; any drift means a
//! generator, builder, or labeling semantics changed — which silently
//! invalidates EXPERIMENTS.md. Update them only deliberately, alongside a
//! fresh experiments run.
//!
//! Last re-frozen when the workspace switched to the vendored offline
//! `rand` (vendor/rand): the generator bit-streams changed, so `web` and
//! `urand` edge counts shifted slightly. Structure and labeling semantics
//! are unchanged.

use afforest_bench::{datasets, Scale};
use afforest_repro::prelude::*;

/// (name, |V|, |E|, components, largest component) at tiny scale.
const REGISTRY_GOLDEN: [(&str, usize, usize, usize, usize); 6] = [
    ("road", 1_024, 1_846, 1, 1_024),
    ("osm-eur", 2_304, 3_398, 16, 2_273),
    ("twitter", 1_024, 11_236, 24, 1_001),
    ("web", 1_024, 7_588, 1, 1_024),
    ("urand", 1_024, 16_105, 1, 1_024),
    ("kron", 1_024, 10_566, 125, 900),
];

fn tiny(name: &str) -> CsrGraph {
    datasets::by_name(name)
        .unwrap_or_else(|| panic!("dataset {name}"))
        .build(Scale::Tiny)
}

#[test]
fn registry_structure_is_frozen() {
    for (name, n, m, c, largest) in REGISTRY_GOLDEN {
        let g = tiny(name);
        assert_eq!(g.num_vertices(), n, "{name}: |V| drifted");
        assert_eq!(g.num_edges(), m, "{name}: |E| drifted");
        let labels = afforest(&g, &AfforestConfig::default());
        assert_eq!(labels.num_components(), c, "{name}: C drifted");
        assert_eq!(
            labels.largest_component_size(),
            largest,
            "{name}: |c_max| drifted"
        );
    }
}

#[test]
fn labeling_matches_oracle_fingerprint() {
    // The min-index labeling of a fixed generator output is fully
    // deterministic and must coincide exactly with the serial oracle's.
    for name in ["kron", "road", "web"] {
        let g = tiny(name);
        let labels = afforest(&g, &AfforestConfig::default());
        let oracle = afforest_repro::baselines::union_find::union_find_cc(&g);
        assert_eq!(labels.as_slice(), &oracle[..], "{name}: labeling drifted");
    }
}

#[test]
fn table_ii_values_are_frozen() {
    // The instrumented counters behind Table II are deterministic for
    // deterministic inputs (sequential-equivalent counting): freeze the
    // SV iteration counts at tiny scale.
    use afforest_repro::baselines::shiloach_vishkin_with_stats;
    for (name, expected_iters) in [("road", 2usize), ("urand", 2), ("kron", 2)] {
        let g = tiny(name);
        let (_, stats) = shiloach_vishkin_with_stats(&g);
        assert_eq!(
            stats.iterations, expected_iters,
            "{name}: SV iteration count drifted"
        );
    }
}
