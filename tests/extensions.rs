//! Cross-crate integration for the extension subsystems: incremental CC,
//! distributed CC, sampling theory, cache simulation, and format I/O.

use afforest_repro::baselines::union_find::union_find_cc;
use afforest_repro::core::cachesim::{simulate_trace, CacheConfig};
use afforest_repro::core::incremental::IncrementalCc;
use afforest_repro::core::instrument::{trace_afforest, trace_sv};
use afforest_repro::core::sampling_theory::{giant_fraction, neighbor_sample, uniform_edge_sample};
use afforest_repro::distrib::{
    distributed_cc_forest, distributed_cc_labels, PartitionKind, VertexPartition,
};
use afforest_repro::graph::generators::{
    random_geometric, rmat_scale, road_network, uniform_random, watts_strogatz, web_graph,
};
use afforest_repro::prelude::*;

fn oracle(g: &CsrGraph) -> ComponentLabels {
    ComponentLabels::from_vec(union_find_cc(g))
}

#[test]
fn incremental_matches_batch_across_chunk_orders() {
    let g = rmat_scale(12, 8, 17);
    let truth = oracle(&g);
    let edges = g.collect_edges();

    // Forward chunks, reverse chunks, and one-at-a-time for a prefix.
    for variant in 0..3 {
        let mut cc = IncrementalCc::new(g.num_vertices());
        match variant {
            0 => {
                for chunk in edges.chunks(1000) {
                    cc.insert_batch(chunk);
                }
            }
            1 => {
                for chunk in edges.rchunks(777) {
                    cc.insert_batch(chunk);
                }
            }
            _ => {
                let (head, tail) = edges.split_at(500);
                for &(u, v) in head {
                    cc.insert(u, v);
                }
                cc.insert_batch(tail);
            }
        }
        assert!(cc.into_labels().equivalent(&truth), "variant {variant}");
    }
}

#[test]
fn distributed_agrees_with_every_shared_memory_algorithm() {
    let g = web_graph(4_000, 5, 0.75, 8.0, 3);
    let truth = oracle(&g);
    for ranks in [3, 8] {
        for kind in [PartitionKind::Block, PartitionKind::Hash] {
            let part = VertexPartition::new(g.num_vertices(), ranks, kind);
            let (fm, _) = distributed_cc_forest(&g, &part);
            let (lx, _) = distributed_cc_labels(&g, &part);
            assert!(fm.equivalent(&truth));
            assert!(lx.equivalent(&truth));
        }
    }
    // And the shared-memory implementations agree with the same truth.
    assert!(ComponentLabels::from_vec(shiloach_vishkin(&g)).equivalent(&truth));
    assert!(ComponentLabels::from_vec(dobfs_cc(&g)).equivalent(&truth));
}

#[test]
fn sampling_theory_predicts_afforest_behaviour() {
    // The Section IV pipeline end-to-end: two neighbor rounds of samples
    // already produce a giant component covering most of a urand graph —
    // exactly why the skip heuristic fires so early.
    let g = uniform_random(20_000, 160_000, 4);
    let two_rounds = neighbor_sample(&g, 2);
    assert!(two_rounds.len() <= 2 * g.num_vertices());
    let frac = giant_fraction(g.num_vertices(), &two_rounds);
    assert!(frac > 0.5, "two neighbor rounds covered only {frac}");

    // Uniform sampling at the same budget does worse on skewed graphs.
    let skewed = rmat_scale(13, 8, 6);
    let budget_p = (neighbor_sample(&skewed, 2).len() as f64) / skewed.num_edges() as f64;
    let uniform = uniform_edge_sample(&skewed, budget_p, 9);
    let ns_frac = giant_fraction(skewed.num_vertices(), &neighbor_sample(&skewed, 2));
    let un_frac = giant_fraction(skewed.num_vertices(), &uniform);
    assert!(
        ns_frac >= un_frac,
        "neighbor sampling {ns_frac} vs uniform {un_frac}"
    );
}

#[test]
fn cache_locality_claim_holds_on_structured_graphs() {
    // Section V-C across two structures: Afforest's traced hit rate never
    // loses to SV's.
    // π must exceed the 32 KiB simulated L1 for the contrast to appear.
    for g in [
        uniform_random(1 << 14, 1 << 17, 2),
        watts_strogatz(1 << 14, 8, 0.2, 2),
    ] {
        let sv = simulate_trace(&trace_sv(&g), CacheConfig::L1);
        let aff = simulate_trace(
            &trace_afforest(&g, &AfforestConfig::default()),
            CacheConfig::L1,
        );
        assert!(
            aff.hit_rate() >= sv.hit_rate(),
            "afforest {:.3} < sv {:.3}",
            aff.hit_rate(),
            sv.hit_rate()
        );
    }
}

#[test]
fn format_pipeline_preserves_components() {
    // generate → write DIMACS → read → write METIS → read → same CC.
    use afforest_repro::graph::{io_formats, GraphBuilder};
    let g = road_network(60, 60, 0.7, 0.01, 5);
    let truth = oracle(&g);

    let mut dimacs = std::env::temp_dir();
    dimacs.push(format!("afforest-it-{}.gr", std::process::id()));
    io_formats::write_dimacs(&g, &dimacs).unwrap();
    let g2 = GraphBuilder::from_edge_list(io_formats::read_dimacs(&dimacs).unwrap()).build();
    std::fs::remove_file(&dimacs).unwrap();

    let mut metis = std::env::temp_dir();
    metis.push(format!("afforest-it-{}.graph", std::process::id()));
    io_formats::write_metis(&g2, &metis).unwrap();
    let g3 = GraphBuilder::from_edge_list(io_formats::read_metis(&metis).unwrap()).build();
    std::fs::remove_file(&metis).unwrap();

    let relabeled = afforest(&g3, &AfforestConfig::default());
    // Vertex universes can differ by trailing isolated vertices; compare
    // component counts of non-trivial components.
    let nontrivial = |l: &ComponentLabels| l.component_sizes().iter().filter(|&&s| s > 1).count();
    assert_eq!(nontrivial(&relabeled), nontrivial(&truth));
}

#[test]
fn geometric_graphs_work_with_all_core_paths() {
    let g = random_geometric(4_000, 0.03, 8);
    let truth = oracle(&g);
    assert!(afforest(&g, &AfforestConfig::default()).equivalent(&truth));
    assert!(ComponentLabels::from_vec(label_prop(&g)).equivalent(&truth));
    let forest = afforest_repro::core::spanning_forest(&g);
    assert_eq!(forest.len(), g.num_vertices() - truth.num_components());
}

#[test]
fn incremental_distributed_roundtrip() {
    // Stream half the edges incrementally, materialize the rest as a
    // subgraph for distributed processing, and check the combined picture
    // via label intersection logic: both halves together must equal the
    // full graph's components.
    let g = uniform_random(3_000, 24_000, 12);
    let truth = oracle(&g);
    let edges = g.collect_edges();
    let (a, b) = edges.split_at(edges.len() / 2);

    let mut cc = IncrementalCc::new(g.num_vertices());
    cc.insert_batch(a);
    cc.insert_batch(b);
    assert!(cc.into_labels().equivalent(&truth));

    let part = VertexPartition::new(g.num_vertices(), 4, PartitionKind::Hash);
    let (dist, _) = distributed_cc_forest(&g, &part);
    assert!(dist.equivalent(&truth));
}
