//! Concurrency stress tests: adversarial structures and repeated runs.
//!
//! Section V-A constructs worst cases for `link` (a depth-one tree whose
//! root has the highest index, hooked in descending order) and `compress`
//! (linear-depth trees). These tests hammer those shapes plus racy
//! configurations to shake out ordering bugs.

use afforest_repro::baselines::union_find::union_find_cc;
use afforest_repro::prelude::*;

fn oracle_check(g: &CsrGraph, labels: &ComponentLabels, context: &str) {
    let oracle = ComponentLabels::from_vec(union_find_cc(g));
    assert!(labels.equivalent(&oracle), "{context}");
}

#[test]
fn star_with_highest_index_hub_repeated() {
    // The paper's link worst case. Run many times to catch race windows.
    let n = 20_000;
    let edges: Vec<(Node, Node)> = (0..n as Node - 1).map(|v| (n as Node - 1, v)).collect();
    let g = GraphBuilder::from_edges(n, &edges).build();
    for trial in 0..10 {
        let labels = afforest(&g, &AfforestConfig::default());
        assert_eq!(labels.num_components(), 1, "trial {trial}");
    }
}

#[test]
fn long_path_compress_worst_case() {
    // Linear-depth trees stress compress.
    let n = 200_000;
    let edges: Vec<(Node, Node)> = (1..n as Node).map(|v| (v - 1, v)).collect();
    let g = GraphBuilder::from_edges(n, &edges).build();
    let labels = afforest(&g, &AfforestConfig::default());
    assert_eq!(labels.num_components(), 1);
    oracle_check(&g, &labels, "long path");
}

#[test]
fn descending_chain_adversarial_order() {
    // Edges connecting (v, v-1) — hooking proceeds in the adversarial
    // direction where every link touches the current root.
    let n = 50_000;
    let edges: Vec<(Node, Node)> = (1..n as Node).rev().map(|v| (v, v - 1)).collect();
    let g = GraphBuilder::from_edges(n, &edges).build();
    for _ in 0..5 {
        let labels = afforest(&g, &AfforestConfig::default());
        assert_eq!(labels.num_components(), 1);
    }
}

#[test]
fn butterfly_contention() {
    // Many vertices all connected through two hubs — maximal CAS
    // contention on the hubs' roots.
    let n: Node = 30_000;
    let mut edges = Vec::new();
    for v in 2..n {
        edges.push((v, v % 2));
    }
    edges.push((0, 1));
    let g = GraphBuilder::from_edges(n as usize, &edges).build();
    for _ in 0..10 {
        let labels = afforest(&g, &AfforestConfig::default());
        assert_eq!(labels.num_components(), 1);
    }
}

#[test]
fn repeated_runs_are_label_identical() {
    // Afforest's final labeling is the component-minimum, hence
    // deterministic regardless of interleaving.
    let g = afforest_repro::graph::generators::rmat_scale(13, 8, 3);
    let first = afforest(&g, &AfforestConfig::default());
    for _ in 0..8 {
        let again = afforest(&g, &AfforestConfig::default());
        assert_eq!(first.as_slice(), again.as_slice());
    }
}

#[test]
fn all_baselines_on_adversarial_star() {
    let n = 10_000;
    let edges: Vec<(Node, Node)> = (0..n as Node - 1).map(|v| (n as Node - 1, v)).collect();
    let g = GraphBuilder::from_edges(n, &edges).build();
    let oracle = ComponentLabels::from_vec(union_find_cc(&g));
    for (name, labels) in [
        ("sv", shiloach_vishkin(&g)),
        ("sv-edgelist", sv_edgelist(&g)),
        ("lp", label_prop(&g)),
        ("bfs", bfs_cc(&g)),
        ("dobfs", dobfs_cc(&g)),
    ] {
        assert!(
            ComponentLabels::from_vec(labels).equivalent(&oracle),
            "{name}"
        );
    }
}

#[test]
fn interleaved_components_stress_skip_heuristic() {
    // Two equal-size components interleaved by index parity: the
    // most-frequent-element sample is ambiguous, and skipping must remain
    // correct whichever component wins.
    let n: Node = 20_000;
    let mut edges = Vec::new();
    for v in (2..n).step_by(2) {
        edges.push((v, v - 2)); // even chain
    }
    for v in (3..n).step_by(2) {
        edges.push((v, v - 2)); // odd chain
    }
    let g = GraphBuilder::from_edges(n as usize, &edges).build();
    for seed in 0..10 {
        let cfg = AfforestConfig {
            seed,
            ..Default::default()
        };
        let labels = afforest(&g, &cfg);
        assert_eq!(labels.num_components(), 2, "seed {seed}");
        assert!(labels.same_component(0, n - 2));
        assert!(labels.same_component(1, n - 1));
        assert!(!labels.same_component(0, 1));
    }
}

#[test]
fn shuffled_edge_links_match_union_find() {
    // Raw `link` (no rounds, no sampling, no compress in between) over the
    // whole edge list, shuffled differently per seed and linked from many
    // rayon threads at once, must always produce the sequential union-find
    // partition — and, by Theorem 1, exactly |V| − C calls return true no
    // matter the schedule. Shuffles are seeded, so failures replay.
    use afforest_repro::core::{compress_all, link, ParentArray};
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use rayon::prelude::*;

    for (name, g) in [
        (
            "urand",
            afforest_repro::graph::generators::uniform_random(20_000, 120_000, 5),
        ),
        (
            "kron",
            afforest_repro::graph::generators::rmat_scale(13, 8, 11),
        ),
    ] {
        let base = g.collect_edges();
        let oracle = ComponentLabels::from_vec(union_find_cc(&g));
        let expected_merges = g.num_vertices() - oracle.num_components();
        for seed in 0..4u64 {
            let mut edges = base.clone();
            let mut rng = SmallRng::seed_from_u64(0xC0FFEE ^ seed);
            // Fisher–Yates; the vendored rand has no SliceRandom.
            for i in (1..edges.len()).rev() {
                let j: usize = rng.random_range(0..i + 1);
                edges.swap(i, j);
            }
            let pi = ParentArray::new(g.num_vertices());
            let merges: usize = edges
                .par_iter()
                .map(|&(u, v)| usize::from(link(u, v, &pi)))
                .sum();
            compress_all(&pi);
            let labels = ComponentLabels::from_vec(pi.snapshot());
            assert!(labels.equivalent(&oracle), "{name} seed {seed}: partition");
            assert_eq!(
                merges, expected_merges,
                "{name} seed {seed}: merge count vs Theorem 1"
            );
        }
    }
}

#[test]
fn giant_plus_dust() {
    // One giant component plus thousands of singletons — the regime the
    // skip heuristic targets (Section IV-D).
    let giant = afforest_repro::graph::generators::uniform_random(30_000, 300_000, 8);
    let mut edges = giant.collect_edges();
    let n = giant.num_vertices() + 10_000; // dust: isolated vertices
    edges.push((0, 1));
    let g = GraphBuilder::from_edges(n, &edges).build();
    let (labels, stats) = afforest_with_stats(&g, &AfforestConfig::default());
    oracle_check(&g, &labels, "giant plus dust");
    // Skip must have fired on the giant component's vertices.
    assert!(stats.vertices_skipped > 25_000);
}
