//! Differential testing across thread-pool sizes.
//!
//! Rayon interleaving differs with worker count even on one hardware
//! thread; running every parallel algorithm under pools of 1, 2, 4 and 8
//! workers and demanding identical partitions (and for tree-hooking
//! algorithms, identical *labelings*) flushes out ordering assumptions.

use afforest_repro::baselines::union_find::union_find_cc;
use afforest_repro::graph::generators::{rmat_scale, road_network, uniform_random, web_graph};
use afforest_repro::prelude::*;

const POOLS: [usize; 4] = [1, 2, 4, 8];

fn with_pool<T: Send>(threads: usize, f: impl FnOnce() -> T + Send) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("pool")
        .install(f)
}

fn graphs() -> Vec<(&'static str, CsrGraph)> {
    vec![
        ("urand", uniform_random(3_000, 20_000, 1)),
        ("kron", rmat_scale(11, 8, 2)),
        ("road", road_network(50, 50, 0.6, 0.01, 3)),
        ("web", web_graph(2_500, 4, 0.75, 8.0, 4)),
    ]
}

#[test]
fn afforest_labeling_is_schedule_independent() {
    // The final labeling is the component minimum, so it must be
    // *bit-identical* across pool sizes, not just equivalent.
    for (name, g) in graphs() {
        let reference = with_pool(1, || afforest(&g, &AfforestConfig::default()));
        for threads in POOLS {
            let labels = with_pool(threads, || afforest(&g, &AfforestConfig::default()));
            assert_eq!(
                labels.as_slice(),
                reference.as_slice(),
                "{name} differs at {threads} threads"
            );
        }
    }
}

#[test]
fn every_parallel_algorithm_correct_under_every_pool() {
    for (name, g) in graphs() {
        let oracle = ComponentLabels::from_vec(union_find_cc(&g));
        for threads in POOLS {
            let runs: Vec<(&str, Vec<Node>)> = with_pool(threads, || {
                vec![
                    ("sv", shiloach_vishkin(&g)),
                    ("sv-edgelist", sv_edgelist(&g)),
                    ("lp", label_prop(&g)),
                    ("bfs", bfs_cc(&g)),
                    ("dobfs", dobfs_cc(&g)),
                    ("parallel-uf", afforest_repro::baselines::parallel_uf(&g)),
                    (
                        "sv-1982",
                        afforest_repro::baselines::shiloach_vishkin_1982(&g),
                    ),
                ]
            });
            for (alg, labels) in runs {
                assert!(
                    ComponentLabels::from_vec(labels).equivalent(&oracle),
                    "{alg} wrong on {name} at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn spanning_forest_valid_under_every_pool() {
    let g = uniform_random(2_000, 14_000, 9);
    let c = ComponentLabels::from_vec(union_find_cc(&g)).num_components();
    for threads in POOLS {
        let forest = with_pool(threads, || afforest_repro::core::spanning_forest(&g));
        assert_eq!(forest.len(), g.num_vertices() - c, "{threads} threads");
    }
}

#[test]
fn giant_root_and_skip_effectiveness_are_stable() {
    // The sampled giant root is deterministic (fixed seed over the
    // deterministic post-compress π). The per-vertex skip decisions race
    // with concurrent links, so exact counters may wiggle — but the
    // effectiveness must not: on a giant-component graph, the heuristic
    // always skips the overwhelming majority of vertices.
    let g = uniform_random(4_000, 40_000, 6);
    let reference = with_pool(1, || afforest_with_stats(&g, &AfforestConfig::default()).1);
    for threads in POOLS {
        let stats = with_pool(threads, || {
            afforest_with_stats(&g, &AfforestConfig::default()).1
        });
        assert_eq!(stats.giant_root, reference.giant_root);
        assert!(
            stats.vertices_skipped > 3_600,
            "{threads} threads skipped only {}",
            stats.vertices_skipped
        );
        assert!(stats.edge_fraction(&g) < 0.25);
    }
}
