//! Cross-crate integration: every algorithm on every workload family must
//! produce the same partition as the serial union-find oracle.

use afforest_repro::baselines::union_find::union_find_cc;
use afforest_repro::graph::generators::{
    barabasi_albert, binary_tree, complete, cycle, path, rmat_scale, road_network, star,
    uniform_random, urand_with_components, web_graph,
};
use afforest_repro::prelude::*;

/// A named CC algorithm entry point.
type NamedAlgorithm = (&'static str, fn(&CsrGraph) -> Vec<Node>);

/// All parallel algorithms under test, by name.
fn algorithms() -> Vec<NamedAlgorithm> {
    fn aff(g: &CsrGraph) -> Vec<Node> {
        afforest(g, &AfforestConfig::default()).as_slice().to_vec()
    }
    fn aff_noskip(g: &CsrGraph) -> Vec<Node> {
        afforest(g, &AfforestConfig::builder().skip(false).build().unwrap())
            .as_slice()
            .to_vec()
    }
    vec![
        ("afforest", aff),
        ("afforest-noskip", aff_noskip),
        ("sv", shiloach_vishkin),
        ("sv-edgelist", sv_edgelist),
        ("label-prop", label_prop),
        ("label-prop-sync", label_prop_sync),
        ("bfs", bfs_cc),
        ("dobfs", dobfs_cc),
    ]
}

fn check_all(g: &CsrGraph, context: &str) {
    let oracle = ComponentLabels::from_vec(union_find_cc(g));
    assert!(oracle.verify_against(g), "{context}: oracle inconsistent");
    for (name, run) in algorithms() {
        let labels = ComponentLabels::from_vec(run(g));
        assert!(
            labels.equivalent(&oracle),
            "{context}: {name} disagrees with union-find \
             ({} vs {} components)",
            labels.num_components(),
            oracle.num_components()
        );
    }
}

#[test]
fn classic_graphs() {
    check_all(&path(500), "path(500)");
    check_all(&cycle(256), "cycle(256)");
    check_all(&star(200, 199), "star high hub");
    check_all(&star(200, 0), "star low hub");
    check_all(&complete(40), "complete(40)");
    check_all(&binary_tree(511), "binary_tree(511)");
}

#[test]
fn degenerate_graphs() {
    check_all(&GraphBuilder::from_edges(0, &[]).build(), "empty");
    check_all(&GraphBuilder::from_edges(1, &[]).build(), "single vertex");
    check_all(&GraphBuilder::from_edges(64, &[]).build(), "all isolated");
    check_all(
        &GraphBuilder::from_edges(2, &[(0, 1)]).build(),
        "single edge",
    );
}

#[test]
fn uniform_random_family() {
    for seed in 0..3 {
        check_all(
            &uniform_random(8_000, 50_000, seed),
            &format!("urand seed {seed}"),
        );
    }
    // Sub-critical density: many small components.
    check_all(&uniform_random(10_000, 4_000, 9), "sparse urand");
}

#[test]
fn kronecker_family() {
    check_all(&rmat_scale(13, 8, 1), "rmat 2^13");
    check_all(&rmat_scale(11, 32, 2), "dense rmat");
}

#[test]
fn road_family() {
    check_all(&road_network(100, 100, 0.55, 0.0, 3), "fragmented road");
    check_all(&road_network(64, 64, 1.0, 0.0, 0), "full grid");
}

#[test]
fn web_family() {
    check_all(&web_graph(8_000, 5, 0.8, 10.0, 4), "web");
}

#[test]
fn social_family() {
    check_all(&barabasi_albert(5_000, 3, 5), "barabasi-albert");
}

#[test]
fn component_fraction_family() {
    for &f in &[1.0, 0.3, 0.05, 0.005] {
        check_all(
            &urand_with_components(6_000, 4, f, 11),
            &format!("components f={f}"),
        );
    }
}

#[test]
fn parallel_unions_of_disjoint_graphs() {
    // Two copies of a graph placed side by side: component count doubles.
    let g = uniform_random(2_000, 10_000, 6);
    let mut edges = g.collect_edges();
    let offset = g.num_vertices() as Node;
    let more: Vec<_> = edges
        .iter()
        .map(|&(u, v)| (u + offset, v + offset))
        .collect();
    edges.extend(more);
    let doubled = GraphBuilder::from_edges(2 * g.num_vertices(), &edges).build();

    let single = afforest(&g, &AfforestConfig::default());
    let double = afforest(&doubled, &AfforestConfig::default());
    assert_eq!(double.num_components(), 2 * single.num_components());
    check_all(&doubled, "doubled graph");
}
