//! Quickstart: build a graph, run Afforest, inspect the components.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use afforest_repro::prelude::*;

fn main() {
    // A small social circle: two triangles bridged by one edge, plus an
    // isolated pair and a loner.
    let edges = [
        (0, 1),
        (1, 2),
        (2, 0), // triangle A
        (3, 4),
        (4, 5),
        (5, 3), // triangle B
        (2, 3), // bridge
        (6, 7), // isolated pair
                // vertex 8: loner
    ];
    let graph = GraphBuilder::from_edges(9, &edges).build();

    // Run Afforest with the paper's default configuration
    // (2 neighbor rounds, component skipping enabled).
    let labels = afforest(&graph, &AfforestConfig::default());

    println!("vertices:   {}", graph.num_vertices());
    println!("edges:      {}", graph.num_edges());
    println!("components: {}", labels.num_components());
    for v in graph.vertices() {
        println!("  vertex {v} -> component {}", labels.label(v));
    }

    assert_eq!(labels.num_components(), 3);
    assert!(labels.same_component(0, 5)); // bridged triangles
    assert!(!labels.same_component(0, 6));

    // Want the work/timing breakdown? Use the instrumented entry point.
    let (_, stats) = afforest_with_stats(&graph, &AfforestConfig::default());
    println!(
        "\nprocessed {} of {} directed edges ({} vertices skipped via the giant-component heuristic)",
        stats.edges_processed,
        graph.num_arcs(),
        stats.vertices_skipped,
    );
    for pt in &stats.phases {
        println!("  {:<16} {:?}", pt.phase.to_string(), pt.elapsed);
    }
}
