//! Distributed-memory connectivity on a simulated cluster.
//!
//! The paper's Section VII points at distributed memory as the natural
//! extension; this example partitions a social graph across 8 simulated
//! ranks and compares the Afforest-style spanning-forest reduction
//! against iterative label exchange, reporting exact message counts.
//!
//! ```sh
//! cargo run --release --example distributed
//! ```

use afforest_repro::distrib::{
    distributed_cc_forest, distributed_cc_labels, PartitionKind, VertexPartition,
};
use afforest_repro::graph::generators::rmat_scale;
use afforest_repro::prelude::*;

fn main() {
    let graph = rmat_scale(16, 8, 31);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let reference = afforest(&graph, &AfforestConfig::default());
    println!(
        "shared-memory afforest: {} components\n",
        reference.num_components()
    );

    for kind in [PartitionKind::Block, PartitionKind::Hash] {
        let part = VertexPartition::new(graph.num_vertices(), 8, kind);
        println!(
            "partition {kind:?}: cut fraction {:.1}%",
            100.0 * part.cut_fraction(&graph)
        );

        let (labels_fm, stats_fm) = distributed_cc_forest(&graph, &part);
        assert!(labels_fm.equivalent(&reference));
        println!(
            "  forest-merge:   {:>9} msgs  {:>10} bytes  {} rounds",
            stats_fm.messages, stats_fm.bytes, stats_fm.supersteps
        );

        let (labels_lx, stats_lx) = distributed_cc_labels(&graph, &part);
        assert!(labels_lx.equivalent(&reference));
        println!(
            "  label-exchange: {:>9} msgs  {:>10} bytes  {} rounds\n",
            stats_lx.messages, stats_lx.bytes, stats_lx.supersteps
        );
    }
    println!("both algorithms reproduce the shared-memory labeling exactly");
}
