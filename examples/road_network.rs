//! Road-network scenario: finding disconnected regions after closures.
//!
//! Models the paper's `road`/`osm-eur` workload: a large sparse lattice
//! where a fraction of road segments is closed. Connected components tell
//! a routing service which region each intersection belongs to, so
//! unroutable queries are rejected in O(1) instead of after a failed
//! search — the classic "CC as a preprocessing step" use case from the
//! paper's introduction.
//!
//! ```sh
//! cargo run --release --example road_network
//! ```

use afforest_repro::graph::generators::road_network;
use afforest_repro::graph::GraphStats;
use afforest_repro::prelude::*;
use std::time::Instant;

fn main() {
    // 512×512 lattice; 18% of segments closed, a few diagonal connectors.
    let (w, h) = (512usize, 512usize);
    let graph = road_network(w, h, 0.82, 0.01, 7);
    println!(
        "road network: {} intersections, {} open segments",
        graph.num_vertices(),
        graph.num_edges()
    );

    let stats = GraphStats::compute(&graph);
    println!(
        "approx diameter: {} hops  (high-diameter regime where traversal-based CC struggles)",
        stats.approx_diameter
    );

    let t = Instant::now();
    let labels = afforest(&graph, &AfforestConfig::default());
    println!(
        "afforest found {} drivable regions in {:?}",
        labels.num_components(),
        t.elapsed()
    );

    let mut sizes = labels.component_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "main region covers {:.2}% of intersections; {} stranded islands",
        100.0 * sizes[0] as f64 / graph.num_vertices() as f64,
        sizes.len() - 1
    );

    // Routing gate: reject unroutable origin/destination pairs instantly.
    let idx = |x: usize, y: usize| (y * w + x) as u32;
    let queries = [
        (idx(0, 0), idx(w - 1, h - 1)),
        (idx(10, 10), idx(w / 2, h / 2)),
        (idx(3, 3), idx(4, 3)),
    ];
    for (from, to) in queries {
        println!(
            "route {from} -> {to}: {}",
            if labels.same_component(from, to) {
                "feasible (same region)"
            } else {
                "impossible (disconnected regions)"
            }
        );
    }

    // Cross-check against the direction-optimizing BFS baseline.
    let other = afforest_repro::core::ComponentLabels::from_vec(dobfs_cc(&graph));
    assert!(labels.equivalent(&other));
    println!("dobfs-cc agrees: {} regions", other.num_components());
}
