//! Quantifying the Section V-C locality claim with the cache simulator.
//!
//! Traces every π access of SV and Afforest on the same graph, replays
//! the traces through L1/L2 cache models, and prints hit rates — turning
//! Fig. 7's qualitative heat-maps into numbers.
//!
//! ```sh
//! cargo run --release --example cache_locality
//! ```

use afforest_repro::core::cachesim::{simulate_trace, CacheConfig};
use afforest_repro::core::instrument::{trace_afforest, trace_sv, TracePhase};
use afforest_repro::graph::generators::uniform_random;
use afforest_repro::prelude::*;

fn main() {
    // π = 64 KiB: twice the simulated L1, well under the simulated L2.
    let graph = uniform_random(1 << 14, 1 << 17, 99);
    println!(
        "graph: {} vertices, {} edges (π = {} KiB)\n",
        graph.num_vertices(),
        graph.num_edges(),
        4 * graph.num_vertices() / 1024
    );

    let traces = [
        ("shiloach-vishkin", trace_sv(&graph)),
        (
            "afforest (no skip)",
            trace_afforest(
                &graph,
                &AfforestConfig::builder().skip(false).build().unwrap(),
            ),
        ),
        (
            "afforest",
            trace_afforest(&graph, &AfforestConfig::default()),
        ),
    ];

    println!(
        "{:<20} {:>12} {:>9} {:>9}",
        "algorithm", "π accesses", "L1 hit%", "L2 hit%"
    );
    for (name, trace) in &traces {
        let l1 = simulate_trace(trace, CacheConfig::L1);
        let l2 = simulate_trace(trace, CacheConfig::L2);
        println!(
            "{:<20} {:>12} {:>8.1}% {:>8.1}%",
            name,
            trace.len(),
            100.0 * l1.hit_rate(),
            100.0 * l2.hit_rate()
        );
    }

    // Per-phase view for Afforest: the sequential neighbor rounds and
    // compress passes should be the most cache-friendly stages.
    println!("\nafforest per-phase L1 hit rates:");
    let stats = simulate_trace(&traces[2].1, CacheConfig::L1);
    for phase in [
        TracePhase::Init,
        TracePhase::Link,
        TracePhase::Compress,
        TracePhase::FindLargest,
        TracePhase::FinalLink,
    ] {
        if let Some(rate) = stats.phase_hit_rate(phase) {
            println!("  {:<14} {:>6.1}%", format!("{phase:?}"), 100.0 * rate);
        }
    }
}
