//! Convergence explorer: watch Linkage/Coverage evolve per strategy.
//!
//! Interactive companion to Fig. 6a/6b — pick a generator family on the
//! command line and see how each subgraph-partitioning strategy converges.
//!
//! ```sh
//! cargo run --release --example convergence_explorer -- web
//! cargo run --release --example convergence_explorer -- urand
//! cargo run --release --example convergence_explorer -- road
//! ```

use afforest_repro::core::metrics::convergence_curve;
use afforest_repro::core::strategies::{partition, Strategy};
use afforest_repro::graph::generators::{road_network, uniform_random, web_graph};
use afforest_repro::graph::CsrGraph;
use afforest_repro::prelude::*;

const BAR_WIDTH: usize = 40;

fn bar(frac: f64) -> String {
    let filled = (frac.clamp(0.0, 1.0) * BAR_WIDTH as f64).round() as usize;
    format!("{}{}", "#".repeat(filled), ".".repeat(BAR_WIDTH - filled))
}

fn build(family: &str) -> CsrGraph {
    match family {
        "web" => web_graph(20_000, 6, 0.8, 10.0, 1),
        "urand" => uniform_random(20_000, 160_000, 1),
        "road" => road_network(160, 160, 0.9, 0.02, 1),
        other => {
            eprintln!("unknown family '{other}' (web|urand|road)");
            std::process::exit(2);
        }
    }
}

fn main() {
    let family = std::env::args().nth(1).unwrap_or_else(|| "web".to_string());
    let graph = build(&family);
    println!(
        "{family}: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    let truth = afforest(&graph, &AfforestConfig::default());
    assert!(truth.verify_against(&graph));
    println!(
        "{} components, |c_max| = {}\n",
        truth.num_components(),
        truth.largest_component_size()
    );

    for strategy in Strategy::ALL {
        let batches = partition(&graph, strategy, 10, 7);
        let curve = convergence_curve(&graph, &batches, &truth);
        println!("== {} ==", strategy.name());
        println!("{:>9}  {:<BAR_WIDTH$}  linkage", "% edges", "");
        for p in &curve.points {
            println!(
                "{:>8.1}%  {}  {:.3} (coverage {:.3})",
                100.0 * p.edge_fraction,
                bar(p.linkage),
                p.linkage,
                p.coverage
            );
        }
        println!();
    }
}
