//! Social-network scenario: connectivity analysis of a power-law graph.
//!
//! Models the paper's `twitter` workload: generate a preferential-
//! attachment network with injected fragmentation, identify its
//! communities of connectivity, and compare Afforest against the
//! baselines the paper evaluates — all on the same labeling contract.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use afforest_repro::prelude::*;
use std::time::Instant;

fn main() {
    // A 50k-user network: one big preferential-attachment core plus a
    // constellation of small isolated friend groups.
    let core = afforest_repro::graph::generators::barabasi_albert(50_000, 3, 42);
    let mut edges = core.collect_edges();
    let n = core.num_vertices() + 5_000;
    // 1000 isolated cliques of 5 (index range above the core).
    for group in 0..1_000u32 {
        let base = 50_000 + group * 5;
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push((base + i, base + j));
            }
        }
    }
    let graph = GraphBuilder::from_edges(n, &edges).build();
    println!(
        "network: {} users, {} friendships",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Connectivity via Afforest.
    let t = Instant::now();
    let labels = afforest(&graph, &AfforestConfig::default());
    let afforest_time = t.elapsed();
    println!(
        "afforest: {} components in {:?}",
        labels.num_components(),
        afforest_time
    );

    // Component-size profile — the skew the skip heuristic exploits.
    let mut sizes = labels.component_sizes();
    sizes.sort_unstable_by(|a, b| b.cmp(a));
    println!(
        "largest component: {} users ({:.1}% of the network)",
        sizes[0],
        100.0 * sizes[0] as f64 / graph.num_vertices() as f64
    );
    println!("next largest: {:?}", &sizes[1..6.min(sizes.len())]);

    // Sanity: every baseline agrees (up to relabeling).
    for (name, run) in [
        (
            "shiloach-vishkin",
            shiloach_vishkin as fn(&CsrGraph) -> Vec<Node>,
        ),
        ("label-prop", label_prop),
        ("bfs-cc", bfs_cc),
        ("dobfs-cc", dobfs_cc),
    ] {
        let t = Instant::now();
        let other = ComponentLabels::from_vec(run(&graph));
        let elapsed = t.elapsed();
        assert!(labels.equivalent(&other), "{name} disagrees!");
        println!(
            "{name:<18} {:>6} components  {elapsed:?}",
            other.num_components()
        );
    }

    // Typical downstream use: answer reachability queries in O(1).
    let (a, b) = (0, 52_501);
    println!(
        "\ncan user {a} reach user {b}? {}",
        labels.same_component(a, b)
    );
}

use afforest_repro::core::ComponentLabels;
use afforest_repro::graph::CsrGraph;
