//! Streaming connectivity: edges arrive over time, queries interleave.
//!
//! Demonstrates [`afforest_core::incremental::IncrementalCc`], the
//! dynamic structure that falls out of Afforest's process-each-edge-once
//! property (Theorem 1): new edges are linked into the converged forest
//! without reprocessing anything.
//!
//! ```sh
//! cargo run --release --example incremental_stream
//! ```

use afforest_repro::core::incremental::IncrementalCc;
use afforest_repro::graph::generators::uniform_random;
use afforest_repro::prelude::*;
use std::time::Instant;

fn main() {
    // A day of "friendship events" arriving in hourly batches.
    let n = 200_000;
    let full = uniform_random(n, 600_000, 2024);
    let edges = full.collect_edges();
    let batches: Vec<&[_]> = edges.chunks(edges.len() / 24 + 1).collect();

    let mut cc = IncrementalCc::new(n);
    println!(
        "streaming {} edges over {} batches into {} vertices\n",
        edges.len(),
        batches.len(),
        n
    );

    let t = Instant::now();
    for (hour, batch) in batches.iter().enumerate() {
        cc.insert_batch(batch);
        if hour % 6 == 5 {
            println!(
                "after hour {:>2}: {:>7} components   (0 ~ {} connected: {})",
                hour + 1,
                cc.num_components(),
                n - 1,
                cc.connected(0, (n - 1) as u32)
            );
        }
    }
    println!("\nstreamed in {:?}", t.elapsed());

    // The final labeling matches a from-scratch batch run exactly.
    let streamed = cc.into_labels();
    let batch = afforest(&full, &AfforestConfig::default());
    assert!(streamed.equivalent(&batch));
    println!(
        "final: {} components — identical to the from-scratch Afforest run",
        streamed.num_components()
    );
}
