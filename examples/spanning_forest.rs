//! Spanning-forest extraction (the Section IV-A duality).
//!
//! Tree-hooking CC can extract a spanning forest by tracking merge edges;
//! conversely, processing only a spanning forest suffices for exact CC.
//! This example demonstrates both directions.
//!
//! ```sh
//! cargo run --release --example spanning_forest
//! ```

use afforest_repro::core::spanning_forest;
use afforest_repro::graph::generators::uniform_random;
use afforest_repro::prelude::*;

fn main() {
    let graph = uniform_random(100_000, 800_000, 99);
    println!(
        "graph: {} vertices, {} edges",
        graph.num_vertices(),
        graph.num_edges()
    );

    // Direction 1: CC → SF. Track the link calls that merged trees.
    let forest = spanning_forest(&graph);
    let labels = afforest(&graph, &AfforestConfig::default());
    println!(
        "spanning forest: {} edges (expected |V| - C = {})",
        forest.len(),
        graph.num_vertices() - labels.num_components()
    );
    assert_eq!(forest.len(), graph.num_vertices() - labels.num_components());

    // Direction 2: SF → CC. The forest alone yields the exact labeling —
    // with only |V| - C edges processed instead of |E|.
    let forest_graph = GraphBuilder::from_edges(graph.num_vertices(), &forest).build();
    let labels_from_forest = afforest(&forest_graph, &AfforestConfig::default());
    assert!(labels.equivalent(&labels_from_forest));
    println!(
        "labeling from the forest alone matches the full-graph labeling \
         ({} vs {} edges processed: {:.1}% of the work)",
        forest.len(),
        graph.num_edges(),
        100.0 * forest.len() as f64 / graph.num_edges() as f64
    );
}
