//! Format tour: generate once, serialize everywhere, verify everywhere.
//!
//! Exercises the full I/O surface (text edge list, DIMACS, METIS, binary
//! CSR) and checks the component structure survives every round trip —
//! the workflow for importing real datasets (e.g. the DIMACS road
//! networks the paper evaluates) when you have them.
//!
//! ```sh
//! cargo run --release --example format_tour
//! ```

use afforest_repro::graph::generators::road_network;
use afforest_repro::graph::{io, io_formats, GraphBuilder};
use afforest_repro::prelude::*;

fn main() {
    let dir = std::env::temp_dir().join(format!("afforest-tour-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");

    let graph = road_network(120, 120, 0.8, 0.01, 7);
    let truth = afforest(&graph, &AfforestConfig::default());
    println!(
        "source: {} vertices, {} edges, {} components",
        graph.num_vertices(),
        graph.num_edges(),
        truth.num_components()
    );

    // Text edge list.
    let el_path = dir.join("tour.el");
    io::write_edge_list(&graph, &el_path).unwrap();
    let from_el =
        GraphBuilder::from_edge_list(io::read_edge_list(&el_path, graph.num_vertices()).unwrap())
            .build();
    report("edge list (.el)", &el_path, &from_el, &truth);

    // DIMACS.
    let gr_path = dir.join("tour.gr");
    io_formats::write_dimacs(&graph, &gr_path).unwrap();
    let from_gr = GraphBuilder::from_edge_list(io_formats::read_dimacs(&gr_path).unwrap()).build();
    report("DIMACS (.gr)", &gr_path, &from_gr, &truth);

    // METIS.
    let metis_path = dir.join("tour.graph");
    io_formats::write_metis(&graph, &metis_path).unwrap();
    let from_metis =
        GraphBuilder::from_edge_list(io_formats::read_metis(&metis_path).unwrap()).build();
    report("METIS (.graph)", &metis_path, &from_metis, &truth);

    // Binary CSR.
    let bin_path = dir.join("tour.acsr");
    io::write_binary(&graph, &bin_path).unwrap();
    let from_bin = io::read_binary(&bin_path).unwrap();
    assert_eq!(from_bin, graph, "binary round trip must be exact");
    report("binary CSR (.acsr)", &bin_path, &from_bin, &truth);

    std::fs::remove_dir_all(&dir).unwrap();
    println!("\nall four formats reproduced the component structure exactly");
}

fn report(
    format: &str,
    path: &std::path::Path,
    g: &CsrGraph,
    truth: &afforest_repro::core::ComponentLabels,
) {
    let size = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
    let labels = afforest(g, &AfforestConfig::default());
    assert_eq!(
        labels.num_components(),
        truth.num_components(),
        "{format}: component count changed"
    );
    println!(
        "{format:<20} {size:>9} bytes  -> {} components ok",
        labels.num_components()
    );
}
