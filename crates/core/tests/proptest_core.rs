//! Property-based tests for the core algorithm components.

use afforest_core::batched::{afforest_batched, BatchedConfig};
use afforest_core::compress::compress_all;
use afforest_core::link::{link, link_counted};
use afforest_core::parents::ParentArray;
use afforest_core::sampling::{exact_frequent_element, sample_frequent_element};
use afforest_core::strategies::{partition, Strategy as PartitionStrategy};
use afforest_core::{afforest, AfforestConfig, ComponentLabels, IncrementalCc};
use afforest_graph::{GraphBuilder, Node};
use proptest::prelude::*;

fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(Node, Node)>)> {
    (2usize..max_n).prop_flat_map(move |n| {
        let edge = (0..n as Node, 0..n as Node);
        (Just(n), proptest::collection::vec(edge, 0..max_m))
    })
}

/// One step of an interleaved incremental-connectivity workload.
#[derive(Clone, Debug)]
enum Op {
    Insert(Vec<(Node, Node)>),
    Connected(Node, Node),
}

fn arb_ops(max_n: usize, max_ops: usize) -> impl Strategy<Value = (usize, Vec<Op>)> {
    (2usize..max_n).prop_flat_map(move |n| {
        let vertex = 0..n as Node;
        let edge = (0..n as Node, 0..n as Node);
        // Interleave by parity of a per-op coin: a batch of 0..20 edges or
        // a connectivity probe.
        let op = (
            any::<bool>(),
            proptest::collection::vec(edge, 0..20),
            vertex.clone(),
            vertex,
        )
            .prop_map(|(is_insert, batch, u, v)| {
                if is_insert {
                    Op::Insert(batch)
                } else {
                    Op::Connected(u, v)
                }
            });
        (Just(n), proptest::collection::vec(op, 1..max_ops))
    })
}

/// Minimal serial union-find used as the interleaved-query oracle.
struct UnionFindOracle {
    parent: Vec<Node>,
}

impl UnionFindOracle {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n as Node).collect(),
        }
    }

    fn find(&mut self, mut x: Node) -> Node {
        while self.parent[x as usize] != x {
            let gp = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
        x
    }

    fn union(&mut self, u: Node, v: Node) {
        let (ru, rv) = (self.find(u), self.find(v));
        if ru != rv {
            self.parent[ru.max(rv) as usize] = ru.min(rv);
        }
    }

    fn connected(&mut self, u: Node, v: Node) -> bool {
        self.find(u) == self.find(v)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn link_sequence_maintains_invariant_any_order(
        (n, edges) in arb_edges(120, 400),
    ) {
        // Sequential adversarial order (exactly as given, duplicates and
        // self-loops included).
        let pi = ParentArray::new(n);
        for &(u, v) in &edges {
            link(u, v, &pi);
            // Invariant 1 after *every* call, not just at the end.
        }
        prop_assert!(pi.check_invariant());
    }

    #[test]
    fn link_counted_matches_link_semantics((n, edges) in arb_edges(100, 300)) {
        let pi1 = ParentArray::new(n);
        let pi2 = ParentArray::new(n);
        for &(u, v) in &edges {
            let merged1 = link(u, v, &pi1);
            let (merged2, iters) = link_counted(u, v, &pi2);
            prop_assert_eq!(merged1, merged2);
            prop_assert!(iters >= 1);
        }
        prop_assert_eq!(pi1.snapshot(), pi2.snapshot());
    }

    #[test]
    fn compress_preserves_roots_and_membership((n, edges) in arb_edges(120, 400)) {
        let pi = ParentArray::new(n);
        for &(u, v) in &edges {
            link(u, v, &pi);
        }
        let roots_before: Vec<Node> = (0..n as Node).map(|v| pi.find_root(v)).collect();
        compress_all(&pi);
        let roots_after: Vec<Node> = (0..n as Node).map(|v| pi.find_root(v)).collect();
        prop_assert_eq!(roots_before, roots_after);
        prop_assert!(pi.max_depth() <= 1);
    }

    #[test]
    fn batched_equals_monolithic_for_any_batching(
        (n, edges) in arb_edges(120, 400),
        num_batches in 1usize..12,
        strategy_idx in 0usize..4,
    ) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let truth = afforest(&g, &AfforestConfig::default());
        let strategy = PartitionStrategy::ALL[strategy_idx];
        let batches = partition(&g, strategy, num_batches, 7);
        let (labels, _) = afforest_batched(&g, &batches, &BatchedConfig::default());
        prop_assert!(labels.equivalent(&truth));
    }

    #[test]
    fn incremental_equals_batch_for_any_split(
        (n, edges) in arb_edges(120, 400),
        split_pct in 0usize..=100,
    ) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let truth = afforest(&g, &AfforestConfig::default());
        let all = g.collect_edges();
        let cut = all.len() * split_pct / 100;
        let mut cc = IncrementalCc::new(n);
        cc.insert_batch(&all[..cut]);
        cc.insert_batch(&all[cut..]);
        prop_assert!(cc.into_labels().equivalent(&truth));
    }

    #[test]
    fn incremental_interleaved_ops_match_from_scratch_run(
        (n, ops) in arb_ops(100, 24),
        threshold_pct in 0usize..=100,
    ) {
        // Drive an IncrementalCc through a random interleaving of
        // insert_batch and connected calls (the serve write/read mix).
        // Every interleaved `connected` must agree with a serial
        // union-find over the edges inserted so far, and the final state
        // must agree with a from-scratch Afforest run on the union of
        // all inserted edges.
        let threshold = (threshold_pct > 0).then_some((n * threshold_pct / 100).max(1));
        let mut cc = IncrementalCc::new(n).with_compress_threshold(threshold);
        let mut oracle = UnionFindOracle::new(n);
        let mut all_edges: Vec<(Node, Node)> = Vec::new();
        for op in &ops {
            match op {
                Op::Insert(batch) => {
                    cc.insert_batch(batch);
                    for &(u, v) in batch {
                        oracle.union(u, v);
                    }
                    all_edges.extend_from_slice(batch);
                }
                Op::Connected(u, v) => {
                    prop_assert_eq!(
                        cc.connected(*u, *v),
                        oracle.connected(*u, *v),
                        "interleaved connected({}, {}) diverged", u, v
                    );
                }
            }
        }
        let g = GraphBuilder::from_edges(n, &all_edges).build();
        let truth = afforest(&g, &AfforestConfig::default());
        prop_assert!(cc.into_labels().equivalent(&truth));
    }

    #[test]
    fn sampler_agrees_with_exact_on_dominant_forests(
        n in 64usize..512,
        dominant_frac in 0.6f64..0.95,
        seed in any::<u64>(),
    ) {
        // Depth-1 forest with one clearly dominant root.
        let pi = ParentArray::new(n);
        let cutoff = (n as f64 * dominant_frac) as Node;
        for v in 1..cutoff {
            pi.set(v, 0);
        }
        let exact = exact_frequent_element(&pi);
        prop_assert_eq!(exact, 0);
        let sampled = sample_frequent_element(&pi, 512, seed);
        prop_assert_eq!(sampled, 0);
    }

    #[test]
    fn labels_equivalence_is_an_equivalence_relation((n, edges) in arb_edges(100, 300)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let a = afforest(&g, &AfforestConfig::default());
        let b = afforest(&g, &AfforestConfig::builder().skip(false).build().unwrap());
        let c = afforest(
            &g,
            &AfforestConfig {
                neighbor_rounds: 0,
                skip_largest: false,
                ..Default::default()
            },
        );
        // Reflexive, symmetric, transitive on actual instances.
        prop_assert!(a.equivalent(&a));
        prop_assert!(a.equivalent(&b) == b.equivalent(&a));
        if a.equivalent(&b) && b.equivalent(&c) {
            prop_assert!(a.equivalent(&c));
        }
    }

    #[test]
    fn component_labels_roundtrip_dense_ids((n, edges) in arb_edges(100, 300)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let labels = afforest(&g, &AfforestConfig::default());
        let dense = labels.dense_ids();
        // Dense ids induce the same partition.
        for u in 0..n as Node {
            for v in 0..n as Node {
                if u < v && (u as usize) < 40 && (v as usize) < 40 {
                    prop_assert_eq!(
                        labels.same_component(u, v),
                        dense[u as usize] == dense[v as usize]
                    );
                }
            }
        }
        // Ids are contiguous 0..C.
        let max_id = dense.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
        prop_assert_eq!(max_id, labels.num_components());
    }

    #[test]
    fn neighbor_rounds_monotonically_reduce_trees(
        (n, edges) in arb_edges(150, 600),
    ) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let cfg = AfforestConfig { neighbor_rounds: 4, ..Default::default() };
        let (labels, stats) = afforest_core::afforest_with_stats(&g, &cfg);
        prop_assert!(labels.verify_against(&g));
        prop_assert!(stats
            .trees_after_round
            .windows(2)
            .all(|w| w[1] <= w[0]));
        if let Some(&last) = stats.trees_after_round.last() {
            prop_assert!(last >= labels.num_components());
        }
    }
}

/// ComponentLabels::from_vec round-trips through a verified run.
#[test]
fn labels_constructor_accepts_algorithm_output() {
    let g = afforest_graph::generators::uniform_random(1_000, 5_000, 3);
    let labels = afforest(&g, &AfforestConfig::default());
    let rebuilt = ComponentLabels::from_vec(labels.as_slice().to_vec());
    assert!(rebuilt.equivalent(&labels));
}
