//! Subgraph partitioning strategies (Section V-B, Fig. 6a/6b).
//!
//! Since `link` never revisits an edge, the edge set can be split into
//! disjoint batches processed in any order (Section III-B). The *choice*
//! of batches governs the convergence rate; the paper compares four
//! strategies on the Linkage/Coverage measures:
//!
//! - **Row sampling** — adjacency-matrix rows in index order (the naive
//!   blocked traversal; slowest convergence in the paper).
//! - **Uniform edge sampling** — a random permutation of `E` processed in
//!   slices of increasing cumulative probability `p`.
//! - **Neighbor sampling** — round `i` takes the `i`-th neighbor of every
//!   vertex (Section IV-C; what Afforest uses). Each batch touches every
//!   vertex and component, covering `O(|V|)` edges spread evenly.
//! - **Spanning forest** — a spanning forest first (the optimal subgraph:
//!   its `|V| − C` edges already decide full connectivity).
//!
//! Every strategy emits each undirected edge exactly once across all
//! batches (neighbor sampling tracks already-emitted edges exactly as the
//! paper's implementation tracks processed neighbors), so the union of the
//! batches is `E` and convergence is guaranteed at the 100% mark.

use crate::spanning_forest::spanning_forest_serial;
use afforest_graph::{CsrGraph, Edge};
use rand::Rng;
use rand::SeedableRng;

/// A partitioning strategy for the convergence experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Adjacency-matrix rows, index order, equal-size batches.
    RowSampling,
    /// Random edge permutation, equal-size batches.
    UniformEdge,
    /// `i`-th-neighbor rounds, then the remainder in row order.
    NeighborSampling,
    /// Spanning-forest edges first, then the remainder in row order.
    SpanningForest,
}

impl Strategy {
    /// All strategies, in the order plotted by Fig. 6.
    pub const ALL: [Strategy; 4] = [
        Strategy::RowSampling,
        Strategy::UniformEdge,
        Strategy::NeighborSampling,
        Strategy::SpanningForest,
    ];

    /// Display name matching the paper's figure legend.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::RowSampling => "row-sampling",
            Strategy::UniformEdge => "uniform-edge",
            Strategy::NeighborSampling => "neighbor-sampling",
            Strategy::SpanningForest => "spanning-forest",
        }
    }
}

/// Partitions `g`'s undirected edge set into ordered batches according to
/// `strategy`.
///
/// - `num_batches` controls the granularity of the equal-size splits (row
///   and uniform sampling, and the remainder phases). Neighbor sampling
///   additionally produces one batch per neighbor round for the first
///   [`NEIGHBOR_ROUND_BATCHES`] rounds.
/// - `seed` feeds the random permutation of [`Strategy::UniformEdge`].
///
/// Every edge appears in exactly one batch; empty batches are dropped.
///
/// ```
/// use afforest_core::strategies::{partition, Strategy};
/// use afforest_graph::generators::uniform_random;
///
/// let g = uniform_random(100, 500, 1);
/// let batches = partition(&g, Strategy::NeighborSampling, 4, 0);
/// let total: usize = batches.iter().map(|b| b.len()).sum();
/// assert_eq!(total, g.num_edges()); // exact cover of E
/// ```
pub fn partition(
    g: &CsrGraph,
    strategy: Strategy,
    num_batches: usize,
    seed: u64,
) -> Vec<Vec<Edge>> {
    let num_batches = num_batches.max(1);
    let batches = match strategy {
        Strategy::RowSampling => chunk(row_order_edges(g), num_batches),
        Strategy::UniformEdge => {
            let mut edges = row_order_edges(g);
            let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
            for i in (1..edges.len()).rev() {
                edges.swap(i, rng.random_range(0..=i));
            }
            chunk(edges, num_batches)
        }
        Strategy::NeighborSampling => neighbor_round_batches(g, num_batches),
        Strategy::SpanningForest => {
            let sf = spanning_forest_serial(g);
            let mut in_sf = EdgeMarks::new(g);
            for &e in &sf {
                in_sf.mark(e);
            }
            let rest: Vec<Edge> = row_order_edges(g)
                .into_iter()
                .filter(|&e| !in_sf.is_marked(e))
                .collect();
            let mut batches = chunk(sf, num_batches);
            batches.extend(chunk(rest, num_batches));
            batches
        }
    };
    batches.into_iter().filter(|b| !b.is_empty()).collect()
}

/// Maximum number of dedicated per-round batches for neighbor sampling;
/// later rounds are folded into equal-size remainder batches.
pub const NEIGHBOR_ROUND_BATCHES: usize = 8;

/// All unique edges in row (adjacency-matrix) order.
fn row_order_edges(g: &CsrGraph) -> Vec<Edge> {
    let mut edges = Vec::with_capacity(g.num_edges());
    for u in g.vertices() {
        for &v in g.neighbors(u) {
            if u <= v {
                edges.push((u, v));
            }
        }
    }
    edges
}

/// Splits edges into `k` near-equal contiguous chunks.
fn chunk(edges: Vec<Edge>, k: usize) -> Vec<Vec<Edge>> {
    if edges.is_empty() {
        return Vec::new();
    }
    let per = edges.len().div_ceil(k);
    edges.chunks(per.max(1)).map(|c| c.to_vec()).collect()
}

/// Bitmap over canonical arc positions, used to emit each undirected edge
/// exactly once during neighbor-round batching.
struct EdgeMarks<'g> {
    g: &'g CsrGraph,
    marked: Vec<bool>,
}

impl<'g> EdgeMarks<'g> {
    fn new(g: &'g CsrGraph) -> Self {
        Self {
            g,
            marked: vec![false; g.num_arcs()],
        }
    }

    /// Canonical arc slot of `{u, v}`: the position of `max` within
    /// `min`'s adjacency list.
    fn slot(&self, (u, v): Edge) -> usize {
        let (lo, hi) = (u.min(v), u.max(v));
        let base = self.g.offsets()[lo as usize];
        let idx = self
            .g
            .neighbors(lo)
            .binary_search(&hi)
            .expect("edge must exist in the graph");
        base + idx
    }

    fn mark(&mut self, e: Edge) {
        let s = self.slot(e);
        self.marked[s] = true;
    }

    fn is_marked(&self, e: Edge) -> bool {
        self.marked[self.slot(e)]
    }

    /// Marks and reports whether the edge was fresh.
    fn mark_fresh(&mut self, e: Edge) -> bool {
        let s = self.slot(e);
        !std::mem::replace(&mut self.marked[s], true)
    }
}

/// Neighbor-sampling batches: round `i` emits `(v, N(v)[i])` for every
/// vertex with degree `> i`, skipping edges already emitted from the other
/// endpoint; rounds past [`NEIGHBOR_ROUND_BATCHES`] collapse into
/// equal-size remainder chunks.
fn neighbor_round_batches(g: &CsrGraph, num_batches: usize) -> Vec<Vec<Edge>> {
    let mut marks = EdgeMarks::new(g);
    let mut batches: Vec<Vec<Edge>> = Vec::new();
    let max_deg = g.max_degree();

    for round in 0..max_deg.min(NEIGHBOR_ROUND_BATCHES) {
        let mut batch = Vec::new();
        for v in g.vertices() {
            if round < g.degree(v) {
                let w = g.neighbor(v, round);
                if v != w && marks.mark_fresh((v, w)) {
                    // Canonical (min, max) form, matching the other
                    // strategies' edge representation.
                    batch.push((v.min(w), v.max(w)));
                }
            }
        }
        batches.push(batch);
    }

    // Remainder: everything not yet emitted, in row order.
    let rest: Vec<Edge> = row_order_edges(g)
        .into_iter()
        .filter(|&e| !marks.is_marked(e))
        .collect();
    batches.extend(chunk(rest, num_batches));
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_graph::generators::classic::star;
    use afforest_graph::generators::{uniform_random, web_graph};

    fn flatten_sorted(batches: &[Vec<Edge>]) -> Vec<Edge> {
        let mut all: Vec<Edge> = batches.iter().flatten().copied().collect();
        all.sort_unstable();
        all
    }

    fn all_edges_sorted(g: &CsrGraph) -> Vec<Edge> {
        let mut all = g.collect_edges();
        all.sort_unstable();
        all
    }

    #[test]
    fn every_strategy_is_a_partition() {
        let g = uniform_random(500, 2_500, 3);
        for s in Strategy::ALL {
            let batches = partition(&g, s, 10, 42);
            assert_eq!(
                flatten_sorted(&batches),
                all_edges_sorted(&g),
                "strategy {s:?} must cover E exactly once"
            );
        }
    }

    #[test]
    fn row_sampling_is_ordered() {
        let g = uniform_random(200, 1_000, 1);
        let batches = partition(&g, Strategy::RowSampling, 4, 0);
        let flat: Vec<Edge> = batches.iter().flatten().copied().collect();
        assert!(flat.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn uniform_edge_is_shuffled_deterministically() {
        let g = uniform_random(200, 1_000, 1);
        let a = partition(&g, Strategy::UniformEdge, 4, 7);
        let b = partition(&g, Strategy::UniformEdge, 4, 7);
        let c = partition(&g, Strategy::UniformEdge, 4, 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Shuffled ≠ row order (overwhelmingly likely at 1000 edges).
        let row = partition(&g, Strategy::RowSampling, 4, 0);
        assert_ne!(a, row);
    }

    #[test]
    fn neighbor_sampling_first_batch_touches_every_nonisolated_vertex() {
        let g = uniform_random(300, 3_000, 5);
        let batches = partition(&g, Strategy::NeighborSampling, 4, 0);
        let first = &batches[0];
        let mut touched = vec![false; 300];
        for &(u, v) in first {
            touched[u as usize] = true;
            touched[v as usize] = true;
        }
        // Every vertex's 0-th neighbor edge is in batch 0 (either emitted
        // from it or from the other endpoint).
        for v in g.vertices() {
            if g.degree(v) > 0 {
                assert!(touched[v as usize], "vertex {v} untouched in round 0");
            }
        }
    }

    #[test]
    fn neighbor_sampling_no_duplicates() {
        let g = star(50, 49);
        let batches = partition(&g, Strategy::NeighborSampling, 4, 0);
        // The star's 49 edges all share the hub; round 0 emits each leaf's
        // only edge once (and the hub's first), with dedup.
        assert_eq!(flatten_sorted(&batches).len(), 49);
        assert_eq!(flatten_sorted(&batches), all_edges_sorted(&g));
    }

    #[test]
    fn spanning_forest_batches_lead_with_sf() {
        let g = uniform_random(400, 2_000, 9);
        let batches = partition(&g, Strategy::SpanningForest, 5, 0);
        let sf = crate::spanning_forest::spanning_forest_serial(&g);
        let lead: Vec<Edge> = batches.iter().flatten().copied().take(sf.len()).collect();
        let mut lead_sorted = lead.clone();
        lead_sorted.sort_unstable();
        let mut sf_sorted = sf.clone();
        sf_sorted.sort_unstable();
        assert_eq!(lead_sorted, sf_sorted);
    }

    #[test]
    fn batch_counts_reasonable() {
        let g = uniform_random(300, 1_500, 2);
        let batches = partition(&g, Strategy::RowSampling, 10, 0);
        assert!(batches.len() <= 10);
        assert!(!batches.is_empty());
        assert!(batches.iter().all(|b| !b.is_empty()));
    }

    #[test]
    fn empty_graph_gives_no_batches() {
        let g = afforest_graph::GraphBuilder::from_edges(4, &[]).build();
        for s in Strategy::ALL {
            assert!(partition(&g, s, 4, 0).is_empty());
        }
    }

    #[test]
    fn web_graph_partitions_cover() {
        let g = web_graph(1_000, 4, 0.7, 6.0, 3);
        for s in Strategy::ALL {
            let batches = partition(&g, s, 8, 1);
            assert_eq!(flatten_sorted(&batches), all_edges_sorted(&g));
        }
    }

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::NeighborSampling.name(), "neighbor-sampling");
        assert_eq!(Strategy::ALL.len(), 4);
    }
}
