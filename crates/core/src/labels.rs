//! Component labelings and their verification.
//!
//! Every CC algorithm in this repository produces a *representative
//! labeling*: a vector where `labels[v]` is some vertex in `v`'s component
//! and representatives label themselves (`labels[labels[v]] == labels[v]`).
//! Different algorithms choose different representatives (Afforest/SV: the
//! minimum-index root; BFS: the traversal source), so equality of
//! labelings is tested *up to relabeling* via [`ComponentLabels::equivalent`].

use afforest_graph::{CsrGraph, Node};
use rayon::prelude::*;

/// A validated component labeling.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComponentLabels {
    labels: Vec<Node>,
    num_components: usize,
}

impl ComponentLabels {
    /// Wraps a representative labeling.
    ///
    /// # Panics
    ///
    /// Panics if the labeling is not representative (some `labels[v]` is
    /// out of range or `labels[labels[v]] != labels[v]`).
    pub fn from_vec(labels: Vec<Node>) -> Self {
        let n = labels.len();
        assert!(
            labels
                .par_iter()
                .all(|&l| (l as usize) < n && labels[l as usize] == l),
            "not a representative labeling"
        );
        let num_components = labels
            .par_iter()
            .enumerate()
            .filter(|&(v, &l)| v as Node == l)
            .count();
        Self {
            labels,
            num_components,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the labeling covers zero vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The label (component representative) of `v`.
    #[inline]
    pub fn label(&self, v: Node) -> Node {
        self.labels[v as usize]
    }

    /// The raw label vector.
    #[inline]
    pub fn as_slice(&self) -> &[Node] {
        &self.labels
    }

    /// Number of connected components.
    #[inline]
    pub fn num_components(&self) -> usize {
        self.num_components
    }

    /// Whether `u` and `v` share a component.
    #[inline]
    pub fn same_component(&self, u: Node, v: Node) -> bool {
        self.labels[u as usize] == self.labels[v as usize]
    }

    /// Size of every component, indexed by a dense renumbering `0..C`
    /// (ordered by representative index).
    pub fn component_sizes(&self) -> Vec<usize> {
        let dense = self.dense_ids();
        let mut sizes = vec![0usize; self.num_components];
        for &d in &dense {
            sizes[d as usize] += 1;
        }
        sizes
    }

    /// Size of the largest component (0 for an empty labeling).
    pub fn largest_component_size(&self) -> usize {
        self.component_sizes().into_iter().max().unwrap_or(0)
    }

    /// The vertices of the component represented by `rep`, ascending.
    ///
    /// ```
    /// # use afforest_core::ComponentLabels;
    /// let l = ComponentLabels::from_vec(vec![0, 0, 2, 2, 0]);
    /// assert_eq!(l.members(0), vec![0, 1, 4]);
    /// assert_eq!(l.members(2), vec![2, 3]);
    /// ```
    pub fn members(&self, rep: Node) -> Vec<Node> {
        (0..self.labels.len() as Node)
            .filter(|&v| self.labels[v as usize] == rep)
            .collect()
    }

    /// Iterator over `(representative, size)` pairs, ascending by
    /// representative.
    ///
    /// ```
    /// # use afforest_core::ComponentLabels;
    /// let l = ComponentLabels::from_vec(vec![0, 0, 2]);
    /// let comps: Vec<_> = l.iter_components().collect();
    /// assert_eq!(comps, vec![(0, 2), (2, 1)]);
    /// ```
    pub fn iter_components(&self) -> impl Iterator<Item = (Node, usize)> + '_ {
        let mut sizes: Vec<(Node, usize)> = Vec::with_capacity(self.num_components);
        for v in 0..self.labels.len() {
            if self.labels[v] == v as Node {
                sizes.push((v as Node, 0));
            }
        }
        for &l in &self.labels {
            let idx = sizes
                .binary_search_by_key(&l, |&(r, _)| r)
                .expect("rep present");
            sizes[idx].1 += 1;
        }
        sizes.into_iter()
    }

    /// Dense component ids `0..C` per vertex, ordered by representative
    /// index.
    pub fn dense_ids(&self) -> Vec<Node> {
        let n = self.labels.len();
        let mut id_of_rep = vec![Node::MAX; n];
        let mut next = 0 as Node;
        for (v, slot) in id_of_rep.iter_mut().enumerate() {
            if self.labels[v] == v as Node {
                *slot = next;
                next += 1;
            }
        }
        self.labels
            .par_iter()
            .map(|&l| id_of_rep[l as usize])
            .collect()
    }

    /// Whether two labelings induce the same partition of vertices
    /// (equality up to relabeling).
    pub fn equivalent(&self, other: &ComponentLabels) -> bool {
        if self.labels.len() != other.labels.len() || self.num_components != other.num_components {
            return false;
        }
        // Representatives biject: map self-rep → other-label, checked both
        // directions by symmetry of counts.
        let n = self.labels.len();
        let mut map = vec![Node::MAX; n];
        for v in 0..n {
            let a = self.labels[v] as usize;
            let b = other.labels[v];
            if map[a] == Node::MAX {
                map[a] = b;
            } else if map[a] != b {
                return false;
            }
        }
        true
    }

    /// Exhaustively verifies this labeling against the graph: every edge
    /// joins same-labeled endpoints, and every label class is internally
    /// connected (checked via a fresh union-find). `O(|E| α(|V|))`.
    pub fn verify_against(&self, g: &CsrGraph) -> bool {
        if g.num_vertices() != self.labels.len() {
            return false;
        }
        // 1. Edges never cross labels.
        let edges_ok = g
            .par_vertices()
            .all(|u| g.neighbors(u).iter().all(|&v| self.same_component(u, v)));
        if !edges_ok {
            return false;
        }
        // 2. Labels never over-merge: component count from an independent
        // serial union-find must match.
        let mut parent: Vec<Node> = (0..g.num_vertices() as Node).collect();
        fn find(p: &mut [Node], mut x: Node) -> Node {
            while p[x as usize] != x {
                p[x as usize] = p[p[x as usize] as usize];
                x = p[x as usize];
            }
            x
        }
        for (u, v) in g.edges() {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
        let true_components = (0..g.num_vertices() as Node)
            .filter(|&v| find(&mut parent, v) == v)
            .count();
        true_components == self.num_components
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_graph::GraphBuilder;

    #[test]
    fn from_vec_counts_components() {
        let l = ComponentLabels::from_vec(vec![0, 0, 2, 2, 4]);
        assert_eq!(l.num_components(), 3);
        assert_eq!(l.len(), 5);
        assert!(l.same_component(0, 1));
        assert!(!l.same_component(1, 2));
    }

    #[test]
    #[should_panic(expected = "not a representative labeling")]
    fn rejects_non_representative() {
        // 1 labels itself 0, but 0 labels itself 1 — not representative.
        let _ = ComponentLabels::from_vec(vec![1, 0]);
    }

    #[test]
    #[should_panic(expected = "not a representative labeling")]
    fn rejects_out_of_range() {
        let _ = ComponentLabels::from_vec(vec![5]);
    }

    #[test]
    fn component_sizes() {
        let l = ComponentLabels::from_vec(vec![0, 0, 0, 3, 3]);
        assert_eq!(l.component_sizes(), vec![3, 2]);
        assert_eq!(l.largest_component_size(), 3);
    }

    #[test]
    fn dense_ids_are_ordered() {
        let l = ComponentLabels::from_vec(vec![0, 0, 2, 2, 4]);
        assert_eq!(l.dense_ids(), vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn equivalence_up_to_relabeling() {
        let a = ComponentLabels::from_vec(vec![0, 0, 2, 2]);
        let b = ComponentLabels::from_vec(vec![1, 1, 3, 3]);
        let c = ComponentLabels::from_vec(vec![0, 0, 0, 3]);
        assert!(a.equivalent(&b));
        assert!(!a.equivalent(&c));
    }

    #[test]
    fn equivalence_rejects_length_mismatch() {
        let a = ComponentLabels::from_vec(vec![0]);
        let b = ComponentLabels::from_vec(vec![0, 1]);
        assert!(!a.equivalent(&b));
    }

    #[test]
    fn verify_against_accepts_correct() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]).build();
        let l = ComponentLabels::from_vec(vec![0, 0, 2, 2]);
        assert!(l.verify_against(&g));
    }

    #[test]
    fn verify_against_rejects_split_component() {
        let g = GraphBuilder::from_edges(2, &[(0, 1)]).build();
        let l = ComponentLabels::from_vec(vec![0, 1]); // edge crosses labels
        assert!(!l.verify_against(&g));
    }

    #[test]
    fn verify_against_rejects_over_merge() {
        let g = GraphBuilder::from_edges(4, &[(0, 1), (2, 3)]).build();
        let l = ComponentLabels::from_vec(vec![0, 0, 0, 0]); // merged apart sets
        assert!(!l.verify_against(&g));
    }

    #[test]
    fn empty_labeling() {
        let l = ComponentLabels::from_vec(vec![]);
        assert_eq!(l.num_components(), 0);
        assert!(l.is_empty());
        assert_eq!(l.largest_component_size(), 0);
    }

    #[test]
    fn members_and_iteration() {
        let l = ComponentLabels::from_vec(vec![0, 0, 2, 2, 4, 0]);
        assert_eq!(l.members(0), vec![0, 1, 5]);
        assert_eq!(l.members(4), vec![4]);
        assert!(l.members(1).is_empty()); // not a representative
        let comps: Vec<_> = l.iter_components().collect();
        assert_eq!(comps, vec![(0, 3), (2, 2), (4, 1)]);
        let total: usize = comps.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, l.len());
    }
}
