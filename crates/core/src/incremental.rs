//! Incremental connectivity — a natural extension of Afforest.
//!
//! Theorem 1 shows `link` never needs to revisit an edge, and Lemma 2 /
//! Theorem 2 show `compress` can be interleaved anywhere. Together these
//! make the parent array a *mergeable, append-only* structure: new edges
//! can be linked into an already-converged forest at any time, in
//! parallel, without reprocessing old edges. This module packages that
//! capability as a dynamic data structure (insert edges / query
//! connectivity), the "subgraph batch" idea of Section III-B taken to its
//! streaming limit.

use crate::compress::compress_all;
use crate::labels::ComponentLabels;
use crate::link::link;
use crate::parents::ParentArray;
use afforest_graph::{Edge, Node};
use rayon::prelude::*;

/// A dynamic (insert-only) connectivity structure over `n` vertices.
///
/// ```
/// use afforest_core::incremental::IncrementalCc;
///
/// let mut cc = IncrementalCc::new(4);
/// assert!(!cc.connected(0, 3));
/// cc.insert_batch(&[(0, 1), (2, 3)]);
/// cc.insert(1, 2);
/// assert!(cc.connected(0, 3));
/// assert_eq!(cc.num_components(), 1);
/// ```
pub struct IncrementalCc {
    pi: ParentArray,
    /// Edges inserted since the last compress (compression amortizer).
    dirty: usize,
    /// Compress once `dirty` exceeds this (None = only on demand).
    compress_threshold: Option<usize>,
}

impl IncrementalCc {
    /// Creates the structure with `n` isolated vertices. Auto-compresses
    /// every `n` insertions by default.
    pub fn new(n: usize) -> Self {
        Self {
            pi: ParentArray::new(n),
            dirty: 0,
            compress_threshold: Some(n.max(64)),
        }
    }

    /// Overrides the auto-compression threshold (`None` disables it).
    pub fn with_compress_threshold(mut self, threshold: Option<usize>) -> Self {
        self.compress_threshold = threshold;
        self
    }

    /// Restores the structure from a previously captured parent array
    /// (the durability primitive of `afforest-serve`: a WAL snapshot is
    /// exactly `ParentArray::snapshot`, and this is its inverse).
    ///
    /// The input must satisfy Invariant 1 (`π(x) ≤ x`), which every
    /// algorithm in this repository maintains and which guarantees the
    /// restored forest is acyclic; anything else (including out-of-range
    /// parents, which Invariant 1 subsumes) is rejected so a corrupted
    /// snapshot cannot smuggle cycles into a live service.
    pub fn from_parents(parents: Vec<Node>) -> Result<Self, InvalidParents> {
        if let Some(v) = parents
            .iter()
            .enumerate()
            .position(|(x, &p)| p as usize > x)
        {
            return Err(InvalidParents {
                vertex: v as Node,
                parent: parents[v],
            });
        }
        let n = parents.len();
        Ok(Self {
            pi: ParentArray::from_snapshot(&parents),
            dirty: 0,
            compress_threshold: Some(n.max(64)),
        })
    }

    /// Copies the current parent array (the WAL snapshot payload).
    pub fn parents_snapshot(&self) -> Vec<Node> {
        self.pi.snapshot()
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.pi.len()
    }

    /// Whether the structure tracks zero vertices.
    pub fn is_empty(&self) -> bool {
        self.pi.is_empty()
    }

    /// Inserts one edge. Returns `true` if it connected two previously
    /// separate components.
    pub fn insert(&mut self, u: Node, v: Node) -> bool {
        let merged = link(u, v, &self.pi);
        self.bump(1);
        merged
    }

    /// Inserts a batch of edges in parallel (each edge linked exactly
    /// once, any order — Theorem 1).
    pub fn insert_batch(&mut self, edges: &[Edge]) {
        edges.par_iter().for_each(|&(u, v)| {
            link(u, v, &self.pi);
        });
        self.bump(edges.len());
    }

    fn bump(&mut self, count: usize) {
        self.dirty += count;
        if let Some(t) = self.compress_threshold {
            if self.dirty >= t {
                compress_all(&self.pi);
                self.dirty = 0;
            }
        }
    }

    /// Whether `u` and `v` are currently connected.
    pub fn connected(&self, u: Node, v: Node) -> bool {
        // Walk to roots; no mutation needed for a query.
        self.pi.find_root(u) == self.pi.find_root(v)
    }

    /// The current representative (component-minimum once compressed;
    /// between compressions, the root of `v`'s tree).
    pub fn find(&self, v: Node) -> Node {
        self.pi.find_root(v)
    }

    /// Current number of components.
    pub fn num_components(&self) -> usize {
        self.pi.count_trees()
    }

    /// Forces a full compression (after which every `find` is O(1)).
    pub fn compress(&mut self) {
        compress_all(&self.pi);
        self.dirty = 0;
    }

    /// The current labeling without consuming the structure (compresses
    /// first, so the returned labels are fully flattened). This is the
    /// epoch-snapshot primitive of `afforest-serve`: the caller gets an
    /// immutable copy while inserts keep flowing into `self`.
    pub fn labels(&mut self) -> ComponentLabels {
        self.compress();
        ComponentLabels::from_vec(self.pi.snapshot())
    }

    /// Extracts the final labeling (compresses first).
    pub fn into_labels(mut self) -> ComponentLabels {
        self.labels()
    }
}

/// A parent array rejected by [`IncrementalCc::from_parents`]: some
/// vertex's recorded parent violates Invariant 1 (`π(x) ≤ x`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidParents {
    /// The offending vertex.
    pub vertex: Node,
    /// Its recorded (invalid) parent.
    pub parent: Node,
}

impl std::fmt::Display for InvalidParents {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "parent array violates Invariant 1: π({}) = {} > {}",
            self.vertex, self.parent, self.vertex
        )
    }
}

impl std::error::Error for InvalidParents {}

impl std::fmt::Debug for IncrementalCc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalCc")
            .field("vertices", &self.len())
            .field("components", &self.num_components())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_graph::generators::uniform_random;
    use afforest_graph::GraphBuilder;

    #[test]
    fn starts_disconnected() {
        let cc = IncrementalCc::new(5);
        assert_eq!(cc.num_components(), 5);
        assert!(!cc.connected(0, 4));
        assert_eq!(cc.len(), 5);
    }

    #[test]
    fn insert_reports_merges() {
        let mut cc = IncrementalCc::new(4);
        assert!(cc.insert(0, 1));
        assert!(!cc.insert(0, 1)); // already connected
        assert!(cc.insert(2, 3));
        assert!(cc.insert(1, 2));
        assert_eq!(cc.num_components(), 1);
    }

    #[test]
    fn batch_insert_matches_static_run() {
        let g = uniform_random(3_000, 18_000, 7);
        let edges = g.collect_edges();
        let mut cc = IncrementalCc::new(g.num_vertices());
        // Insert in three uneven chunks, with queries interleaved.
        let (a, rest) = edges.split_at(edges.len() / 5);
        let (b, c) = rest.split_at(rest.len() / 2);
        cc.insert_batch(a);
        let _ = cc.connected(0, 1);
        cc.insert_batch(b);
        cc.compress();
        cc.insert_batch(c);
        let labels = cc.into_labels();
        assert!(labels.verify_against(&g));
    }

    #[test]
    fn queries_between_compressions_are_correct() {
        let mut cc = IncrementalCc::new(6).with_compress_threshold(None);
        cc.insert(5, 4);
        cc.insert(4, 3);
        cc.insert(1, 0);
        assert!(cc.connected(5, 3));
        assert!(!cc.connected(5, 0));
        cc.insert(3, 1);
        assert!(cc.connected(5, 0));
    }

    #[test]
    fn auto_compress_keeps_depth_small() {
        let mut cc = IncrementalCc::new(1_000).with_compress_threshold(Some(100));
        for v in 1..1_000u32 {
            cc.insert(v, v - 1);
        }
        // After threshold-triggered compressions, find is shallow but the
        // answer is the same.
        assert_eq!(cc.find(999), 0);
        assert_eq!(cc.num_components(), 1);
    }

    #[test]
    fn into_labels_is_canonical() {
        let mut cc = IncrementalCc::new(5);
        cc.insert(4, 2);
        cc.insert(2, 0);
        let labels = cc.into_labels();
        let g = GraphBuilder::from_edges(5, &[(4, 2), (2, 0)]).build();
        assert!(labels.verify_against(&g));
        assert_eq!(labels.label(4), 0);
    }

    #[test]
    fn streaming_vs_oneshot_equivalence() {
        // Insert edges one at a time in adversarial descending order.
        let n = 500;
        let mut cc = IncrementalCc::new(n);
        let mut edges = Vec::new();
        for v in (1..n as Node).rev() {
            cc.insert(v, v - 1);
            edges.push((v, v - 1));
        }
        let g = GraphBuilder::from_edges(n, &edges).build();
        assert!(cc.into_labels().verify_against(&g));
    }

    #[test]
    fn labels_snapshots_without_consuming() {
        let mut cc = IncrementalCc::new(6);
        cc.insert_batch(&[(0, 1), (2, 3)]);
        let before = cc.labels();
        assert_eq!(before.num_components(), 4);
        // The structure stays live: later inserts change later snapshots
        // but not the one already taken.
        cc.insert(1, 2);
        let after = cc.labels();
        assert_eq!(before.num_components(), 4);
        assert_eq!(after.num_components(), 3);
        assert!(after.same_component(0, 3));
        assert!(!before.same_component(0, 3));
    }

    #[test]
    fn from_parents_restores_equivalent_state() {
        let mut cc = IncrementalCc::new(8);
        cc.insert_batch(&[(0, 1), (1, 2), (4, 5), (6, 7)]);
        let parents = cc.parents_snapshot();
        let mut restored = IncrementalCc::from_parents(parents).unwrap();
        assert_eq!(restored.num_components(), cc.num_components());
        assert!(restored.connected(0, 2));
        assert!(!restored.connected(0, 4));
        // The restored structure stays live: inserts keep working.
        restored.insert(2, 4);
        assert!(restored.connected(0, 5));
    }

    #[test]
    fn from_parents_rejects_invariant_violations() {
        // π(1) = 3 > 1 — a forward pointer that could form a cycle.
        let err = IncrementalCc::from_parents(vec![0, 3, 2, 1]).unwrap_err();
        assert_eq!(err.vertex, 1);
        assert_eq!(err.parent, 3);
        assert!(err.to_string().contains("Invariant 1"));
        // Out-of-range parents are a special case of the same violation.
        assert!(IncrementalCc::from_parents(vec![0, 99]).is_err());
        // The empty and identity arrays are valid.
        assert!(IncrementalCc::from_parents(vec![]).is_ok());
        assert_eq!(
            IncrementalCc::from_parents(vec![0, 1, 2])
                .unwrap()
                .num_components(),
            3
        );
    }

    #[test]
    fn empty_structure() {
        let cc = IncrementalCc::new(0);
        assert!(cc.is_empty());
        assert_eq!(cc.num_components(), 0);
        assert!(cc.into_labels().is_empty());
    }
}
