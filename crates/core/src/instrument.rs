//! Instrumentation for the paper's analysis experiments.
//!
//! Two instruments:
//!
//! - [`afforest_link_stats`] — re-runs Afforest with counting versions of
//!   `link`, reporting the average/maximum *local iterations* per edge and
//!   the maximum component-tree depth observed between phases. These are
//!   the Afforest columns of **Table II** (the SV columns come from
//!   `afforest_baselines::shiloach_vishkin_with_stats`).
//! - [`trace_afforest`] / [`trace_sv`] — record every access to the parent
//!   array `π` (index, thread, operation, phase, global sequence number),
//!   reproducing the memory-access heat-maps and per-thread scatter plots
//!   of **Fig. 7**. The traced SV mirrors
//!   `afforest_baselines::shiloach_vishkin` operation-for-operation.

use crate::afforest::AfforestConfig;
use crate::parents::ParentArray;
use crate::sampling::sample_frequent_element;
use afforest_graph::{CsrGraph, Node};
use rayon::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

// ---------------------------------------------------------------------
// Table II: local-iteration counts and tree depth
// ---------------------------------------------------------------------

/// Aggregate `link`/tree-depth statistics for one Afforest run (Table II).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinkIterationStats {
    /// Number of `link` invocations.
    pub link_calls: u64,
    /// Total local iterations across all calls.
    pub total_iterations: u64,
    /// Maximum local iterations in any single call.
    pub max_iterations: u32,
    /// Maximum tree depth observed at any phase boundary.
    pub max_tree_depth: usize,
}

impl LinkIterationStats {
    /// Average local iterations per `link` call (Table II's
    /// "avg. iterations" column; ≈ 1 means most edges validate an
    /// already-converged tree in a single trip).
    pub fn avg_iterations(&self) -> f64 {
        if self.link_calls == 0 {
            0.0
        } else {
            self.total_iterations as f64 / self.link_calls as f64
        }
    }
}

/// Runs Afforest with counting instrumentation (Table II, Afforest rows).
///
/// The returned labeling is verified-equivalent to the production path;
/// counting adds per-call accumulation but does not change the algorithm.
pub fn afforest_link_stats(g: &CsrGraph, cfg: &AfforestConfig) -> LinkIterationStats {
    use crate::compress::compress_all;
    use crate::link::link_counted;

    let n = g.num_vertices();
    let pi = ParentArray::new(n);
    let mut stats = LinkIterationStats::default();
    if n == 0 {
        return stats;
    }

    let mut absorb = |acc: (u64, u64, u32)| {
        stats.link_calls += acc.0;
        stats.total_iterations += acc.1;
        stats.max_iterations = stats.max_iterations.max(acc.2);
    };

    for round in 0..cfg.neighbor_rounds {
        let acc = (0..n as Node)
            .into_par_iter()
            .map(|v| {
                if round < g.degree(v) {
                    let (_, iters) = link_counted(v, g.neighbor(v, round), &pi);
                    (1u64, iters as u64, iters)
                } else {
                    (0, 0, 0)
                }
            })
            .reduce(|| (0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2.max(b.2)));
        absorb(acc);
        stats.max_tree_depth = stats.max_tree_depth.max(pi.max_depth());
        if cfg.compress_each_round {
            compress_all(&pi);
        }
    }
    if !cfg.compress_each_round && cfg.neighbor_rounds > 0 {
        compress_all(&pi);
    }

    let giant = if cfg.skip_largest {
        Some(sample_frequent_element(
            &pi,
            cfg.sample_size.min(16 * n).max(1),
            cfg.seed,
        ))
    } else {
        None
    };

    let acc = (0..n as Node)
        .into_par_iter()
        .map(|v| {
            if giant == Some(pi.get(v)) {
                return (0u64, 0u64, 0u32);
            }
            let deg = g.degree(v);
            let mut calls = 0u64;
            let mut total = 0u64;
            let mut max = 0u32;
            for i in cfg.neighbor_rounds.min(deg)..deg {
                let (_, iters) = link_counted(v, g.neighbor(v, i), &pi);
                calls += 1;
                total += iters as u64;
                max = max.max(iters);
            }
            (calls, total, max)
        })
        .reduce(|| (0, 0, 0), |a, b| (a.0 + b.0, a.1 + b.1, a.2.max(b.2)));
    absorb(acc);
    stats.max_tree_depth = stats.max_tree_depth.max(pi.max_depth());
    compress_all(&pi);
    stats
}

// ---------------------------------------------------------------------
// Fig. 7: π access traces
// ---------------------------------------------------------------------

/// Kind of access to `π`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AccessOp {
    /// Atomic load.
    Read = 0,
    /// Unconditional store.
    Write = 1,
    /// Compare-and-swap attempt (success or failure).
    Cas = 2,
}

/// Algorithm stage an access belongs to (the I/L/C/F/H markers under the
/// Fig. 7 scatter plots; SV contributes `Hook`/`Shortcut`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum TracePhase {
    /// Initialization (`π(v) ← v`).
    Init = 0,
    /// Afforest neighbor-round `link`.
    Link = 1,
    /// `compress`.
    Compress = 2,
    /// Most-frequent-element search.
    FindLargest = 3,
    /// Afforest final `link` pass.
    FinalLink = 4,
    /// SV hook step.
    Hook = 5,
    /// SV shortcut step.
    Shortcut = 6,
}

impl TracePhase {
    fn from_u8(x: u8) -> Self {
        match x {
            0 => Self::Init,
            1 => Self::Link,
            2 => Self::Compress,
            3 => Self::FindLargest,
            4 => Self::FinalLink,
            5 => Self::Hook,
            _ => Self::Shortcut,
        }
    }

    /// One-letter marker used by the Fig. 7 rendering
    /// (I = init, L = link, C = compress, F = find-largest, H = hook,
    /// S = shortcut).
    pub fn marker(&self) -> char {
        match self {
            Self::Init => 'I',
            Self::Link | Self::FinalLink => 'L',
            Self::Compress => 'C',
            Self::FindLargest => 'F',
            Self::Hook => 'H',
            Self::Shortcut => 'S',
        }
    }
}

/// One recorded access to `π`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessEvent {
    /// Global order stamp (monotone across threads).
    pub seq: u64,
    /// Index into `π` that was touched.
    pub index: Node,
    /// Executing rayon worker (0 for the main thread outside the pool).
    pub thread: u16,
    /// Access kind.
    pub op: AccessOp,
    /// Algorithm stage.
    pub phase: TracePhase,
}

/// A full `π` access trace plus phase-transition markers.
#[derive(Clone, Debug, Default)]
pub struct AccessTrace {
    /// All events, sorted by `seq`.
    pub events: Vec<AccessEvent>,
    /// `(seq, phase)` at each phase transition, in order.
    pub phase_marks: Vec<(u64, TracePhase)>,
    /// Number of `π` slots (heat-map Y extent).
    pub num_slots: usize,
}

impl AccessTrace {
    /// Total accesses recorded.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Access count per `π` index (the heat-map marginal).
    pub fn per_index_counts(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.num_slots];
        for e in &self.events {
            counts[e.index as usize] += 1;
        }
        counts
    }

    /// Distinct threads that appear in the trace.
    pub fn num_threads(&self) -> usize {
        let mut seen = std::collections::HashSet::new();
        for e in &self.events {
            seen.insert(e.thread);
        }
        seen.len()
    }

    /// 2-D histogram binning accesses by (time, π index):
    /// `heatmap[t][a]` counts accesses in time-bin `t`, address-bin `a` —
    /// the top panel of Fig. 7.
    pub fn heatmap(&self, time_bins: usize, addr_bins: usize) -> Vec<Vec<u64>> {
        let mut grid = vec![vec![0u64; addr_bins]; time_bins];
        if self.events.is_empty() || time_bins == 0 || addr_bins == 0 {
            return grid;
        }
        let max_seq = self.events.last().map(|e| e.seq).unwrap_or(0) + 1;
        for e in &self.events {
            let t = ((e.seq as u128 * time_bins as u128) / max_seq as u128) as usize;
            let a =
                ((e.index as u128 * addr_bins as u128) / self.num_slots.max(1) as u128) as usize;
            grid[t.min(time_bins - 1)][a.min(addr_bins - 1)] += 1;
        }
        grid
    }
}

/// `ParentArray` wrapper that logs every access into per-thread buffers.
struct TracedParents {
    pi: ParentArray,
    buffers: Vec<Mutex<Vec<AccessEvent>>>,
    seq: AtomicU64,
    phase: AtomicU8,
    marks: Mutex<Vec<(u64, TracePhase)>>,
}

impl TracedParents {
    fn new(n: usize) -> Self {
        let workers = rayon::current_num_threads() + 1;
        // Note: ParentArray::new itself initializes π(v) = v; we log the
        // initialization writes explicitly below for the Fig. 7 "I" band.
        let t = Self {
            pi: ParentArray::new(n),
            buffers: (0..workers).map(|_| Mutex::new(Vec::new())).collect(),
            seq: AtomicU64::new(0),
            phase: AtomicU8::new(TracePhase::Init as u8),
            marks: Mutex::new(Vec::new()),
        };
        t.enter(TracePhase::Init);
        for v in 0..n as Node {
            t.log(v, AccessOp::Write);
        }
        t
    }

    fn enter(&self, phase: TracePhase) {
        let seq = self.seq.load(Ordering::Relaxed);
        self.phase.store(phase as u8, Ordering::Relaxed);
        self.marks.lock().unwrap().push((seq, phase));
    }

    #[inline]
    fn log(&self, index: Node, op: AccessOp) {
        let thread = rayon::current_thread_index().map(|i| i + 1).unwrap_or(0) as u16;
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let phase = TracePhase::from_u8(self.phase.load(Ordering::Relaxed));
        self.buffers[thread as usize]
            .lock()
            .unwrap()
            .push(AccessEvent {
                seq,
                index,
                thread,
                op,
                phase,
            });
    }

    #[inline]
    fn get(&self, v: Node) -> Node {
        self.log(v, AccessOp::Read);
        self.pi.get(v)
    }

    #[inline]
    fn set(&self, v: Node, parent: Node) {
        self.log(v, AccessOp::Write);
        self.pi.set(v, parent);
    }

    #[inline]
    fn cas(&self, v: Node, current: Node, new: Node) -> bool {
        self.log(v, AccessOp::Cas);
        self.pi.compare_and_swap(v, current, new)
    }

    fn finish(self) -> (AccessTrace, ParentArray) {
        let mut events: Vec<AccessEvent> = self
            .buffers
            .into_iter()
            .flat_map(|b| b.into_inner().unwrap())
            .collect();
        events.sort_unstable_by_key(|e| e.seq);
        let trace = AccessTrace {
            events,
            phase_marks: self.marks.into_inner().unwrap(),
            num_slots: self.pi.len(),
        };
        (trace, self.pi)
    }
}

/// Traced `link` (mirrors [`crate::link::link`]).
fn traced_link(u: Node, v: Node, t: &TracedParents) {
    let mut p1 = t.get(u);
    let mut p2 = t.get(v);
    while p1 != p2 {
        let high = p1.max(p2);
        let low = p1.min(p2);
        let p_high = t.get(high);
        if p_high == low || (p_high == high && t.cas(high, high, low)) {
            break;
        }
        let ph = t.get(high);
        p1 = t.get(ph);
        p2 = t.get(low);
    }
}

/// Traced `compress` (mirrors [`crate::compress::compress`]).
fn traced_compress(v: Node, t: &TracedParents) {
    while t.get(t.get(v)) != t.get(v) {
        let gp = t.get(t.get(v));
        t.set(v, gp);
    }
}

/// Runs Afforest on a traced parent array, returning the full access trace
/// (Figs. 7b / 7c; pass `AfforestConfig::builder().skip(false)` for 7b).
///
/// Tracing serializes on a global sequence counter, so use small graphs
/// (the paper uses `|V| = 2^12, |E| = 2^19` for exactly this reason).
pub fn trace_afforest(g: &CsrGraph, cfg: &AfforestConfig) -> AccessTrace {
    let n = g.num_vertices();
    let t = TracedParents::new(n);
    if n == 0 {
        return t.finish().0;
    }

    for round in 0..cfg.neighbor_rounds {
        t.enter(TracePhase::Link);
        (0..n as Node).into_par_iter().for_each(|v| {
            if round < g.degree(v) {
                traced_link(v, g.neighbor(v, round), &t);
            }
        });
        if cfg.compress_each_round {
            t.enter(TracePhase::Compress);
            (0..n as Node)
                .into_par_iter()
                .for_each(|v| traced_compress(v, &t));
        }
    }
    if !cfg.compress_each_round && cfg.neighbor_rounds > 0 {
        t.enter(TracePhase::Compress);
        (0..n as Node)
            .into_par_iter()
            .for_each(|v| traced_compress(v, &t));
    }

    let giant = if cfg.skip_largest {
        t.enter(TracePhase::FindLargest);
        // Sample through the tracer so the F-phase probes appear in the
        // trace (they are the "structured accesses" noted in Section V-C).
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(cfg.seed);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..cfg.sample_size.min(16 * n).max(1) {
            let v = rng.random_range(0..n as u64) as Node;
            *counts.entry(t.get(v)).or_insert(0u32) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(label, count)| (count, std::cmp::Reverse(label)))
            .map(|(label, _)| label)
    } else {
        None
    };

    t.enter(TracePhase::FinalLink);
    (0..n as Node).into_par_iter().for_each(|v| {
        if giant == Some(t.get(v)) {
            return;
        }
        let deg = g.degree(v);
        for i in cfg.neighbor_rounds.min(deg)..deg {
            traced_link(v, g.neighbor(v, i), &t);
        }
    });

    t.enter(TracePhase::Compress);
    (0..n as Node)
        .into_par_iter()
        .for_each(|v| traced_compress(v, &t));

    let (trace, pi) = t.finish();
    debug_assert!(pi.check_invariant());
    trace
}

/// Runs Shiloach–Vishkin (paper Fig. 1) on a traced parent array (Fig. 7a).
pub fn trace_sv(g: &CsrGraph) -> AccessTrace {
    let n = g.num_vertices();
    let t = TracedParents::new(n);
    if n == 0 {
        return t.finish().0;
    }

    let changed = AtomicBool::new(true);
    while changed.swap(false, Ordering::Relaxed) {
        t.enter(TracePhase::Hook);
        (0..n as Node).into_par_iter().for_each(|u| {
            for &v in g.neighbors(u) {
                let pu = t.get(u);
                let pv = t.get(v);
                // Hook smaller label over larger onto roots only.
                if pu < pv && pv == t.get(pv) && t.cas(pv, pv, pu) {
                    changed.store(true, Ordering::Relaxed);
                }
            }
        });
        t.enter(TracePhase::Shortcut);
        (0..n as Node).into_par_iter().for_each(|v| {
            while t.get(t.get(v)) != t.get(v) {
                let gp = t.get(t.get(v));
                t.set(v, gp);
            }
        });
    }

    t.finish().0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::afforest::{afforest, AfforestConfig};
    use afforest_graph::generators::classic::path;
    use afforest_graph::generators::uniform_random;

    #[test]
    fn link_stats_near_one_iteration_on_random_graph() {
        let g = uniform_random(5_000, 50_000, 3);
        let stats = afforest_link_stats(&g, &AfforestConfig::default());
        assert!(stats.link_calls > 0);
        // Section V-A: "the average number of local iterations is close to
        // one" — allow generous slack for a small graph.
        assert!(
            stats.avg_iterations() < 3.0,
            "avg iterations {}",
            stats.avg_iterations()
        );
        assert!(stats.max_tree_depth >= 1);
    }

    #[test]
    fn link_stats_empty_graph() {
        let g = afforest_graph::GraphBuilder::from_edges(0, &[]).build();
        let stats = afforest_link_stats(&g, &AfforestConfig::default());
        assert_eq!(stats.link_calls, 0);
        assert_eq!(stats.avg_iterations(), 0.0);
    }

    #[test]
    fn link_stats_skip_reduces_calls() {
        let g = uniform_random(5_000, 50_000, 3);
        let with_skip = afforest_link_stats(&g, &AfforestConfig::default());
        let no_skip = AfforestConfig::builder().skip(false).build().unwrap();
        let without = afforest_link_stats(&g, &no_skip);
        assert!(with_skip.link_calls < without.link_calls);
        assert_eq!(without.link_calls as usize, g.num_arcs());
    }

    #[test]
    fn trace_records_all_phases() {
        let g = uniform_random(256, 2048, 1);
        let trace = trace_afforest(&g, &AfforestConfig::default());
        let phases: std::collections::HashSet<_> =
            trace.phase_marks.iter().map(|&(_, p)| p).collect();
        assert!(phases.contains(&TracePhase::Init));
        assert!(phases.contains(&TracePhase::Link));
        assert!(phases.contains(&TracePhase::Compress));
        assert!(phases.contains(&TracePhase::FindLargest));
        assert!(phases.contains(&TracePhase::FinalLink));
    }

    #[test]
    fn trace_events_sorted_and_bounded() {
        let g = uniform_random(128, 512, 2);
        let trace = trace_afforest(&g, &AfforestConfig::default());
        assert!(trace.events.windows(2).all(|w| w[0].seq <= w[1].seq));
        assert!(trace.events.iter().all(|e| (e.index as usize) < 128));
        assert_eq!(trace.num_slots, 128);
        assert!(!trace.is_empty());
    }

    #[test]
    fn trace_init_writes_every_slot() {
        let g = path(64);
        let trace = trace_afforest(&g, &AfforestConfig::default());
        let init_writes = trace
            .events
            .iter()
            .filter(|e| e.phase == TracePhase::Init && e.op == AccessOp::Write)
            .count();
        assert_eq!(init_writes, 64);
    }

    #[test]
    fn traced_afforest_matches_untraced_result() {
        let g = uniform_random(512, 4096, 5);
        // Re-run untraced for the labeling; the traced run must converge to
        // an equivalent state, which we verify indirectly via Fig. 7's
        // invariant: the traced final compress leaves a valid labeling.
        let labels = afforest(&g, &AfforestConfig::default());
        assert!(labels.verify_against(&g));
        let trace = trace_afforest(&g, &AfforestConfig::default());
        assert!(trace.len() > g.num_vertices());
    }

    #[test]
    fn sv_trace_has_hook_and_shortcut() {
        let g = uniform_random(128, 512, 7);
        let trace = trace_sv(&g);
        let phases: std::collections::HashSet<_> =
            trace.phase_marks.iter().map(|&(_, p)| p).collect();
        assert!(phases.contains(&TracePhase::Hook));
        assert!(phases.contains(&TracePhase::Shortcut));
        // SV processes all edges each iteration — far more accesses than
        // vertices.
        assert!(trace.len() > g.num_arcs());
    }

    #[test]
    fn heatmap_conserves_events() {
        let g = uniform_random(200, 1000, 9);
        let trace = trace_afforest(&g, &AfforestConfig::default());
        let grid = trace.heatmap(16, 8);
        let total: u64 = grid.iter().flatten().sum();
        assert_eq!(total, trace.len() as u64);
    }

    #[test]
    fn per_index_counts_conserve_events() {
        let g = path(50);
        let trace = trace_afforest(&g, &AfforestConfig::default());
        let sum: u64 = trace.per_index_counts().iter().sum();
        assert_eq!(sum, trace.len() as u64);
    }

    #[test]
    fn phase_markers() {
        assert_eq!(TracePhase::Init.marker(), 'I');
        assert_eq!(TracePhase::Link.marker(), 'L');
        assert_eq!(TracePhase::FinalLink.marker(), 'L');
        assert_eq!(TracePhase::Hook.marker(), 'H');
        assert_eq!(TracePhase::Shortcut.marker(), 'S');
    }

    #[test]
    fn empty_heatmap() {
        let trace = AccessTrace::default();
        assert!(trace.heatmap(4, 4).iter().flatten().all(|&c| c == 0));
        assert_eq!(trace.num_threads(), 0);
    }
}
