//! Spanning-forest extraction (Section IV-A).
//!
//! The paper notes a duality: tree-hooking CC algorithms can extract a
//! spanning forest by tracking the edges that contribute a tree merge.
//! [`crate::link`] performs at most one successful compare-and-swap per
//! call, each merging exactly two trees, so over a full pass exactly
//! `|V| − C` calls succeed — and the corresponding edges form a spanning
//! forest.

use crate::link::link;
use crate::parents::ParentArray;
use afforest_graph::{CsrGraph, Edge, Node};
use rayon::prelude::*;

/// Extracts a spanning forest by running `link` over all edges in parallel
/// and keeping those whose call merged two trees.
///
/// Returns `|V| − C` edges; which edges depends on the race outcomes, but
/// the result is always a valid spanning forest (connectivity-preserving
/// and acyclic).
///
/// ```
/// use afforest_core::spanning_forest;
/// use afforest_graph::generators::classic::cycle;
///
/// let g = cycle(10);                       // 10 edges, 1 component
/// assert_eq!(spanning_forest(&g).len(), 9); // |V| − C
/// ```
pub fn spanning_forest(g: &CsrGraph) -> Vec<Edge> {
    let pi = &ParentArray::new(g.num_vertices());
    g.par_vertices()
        .flat_map_iter(move |u| {
            g.neighbors(u)
                .iter()
                .filter(move |&&v| u <= v && link(u, v, pi))
                .map(move |&v| (u, v))
        })
        .collect()
}

/// Deterministic serial spanning forest via union-find (used by the
/// spanning-forest partitioning strategy and as the parallel version's
/// test oracle).
pub fn spanning_forest_serial(g: &CsrGraph) -> Vec<Edge> {
    let n = g.num_vertices();
    let mut parent: Vec<Node> = (0..n as Node).collect();
    fn find(p: &mut [Node], mut x: Node) -> Node {
        while p[x as usize] != x {
            p[x as usize] = p[p[x as usize] as usize];
            x = p[x as usize];
        }
        x
    }
    let mut forest = Vec::new();
    for u in g.vertices() {
        for &v in g.neighbors(u) {
            if u < v {
                let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
                if ru != rv {
                    parent[ru.max(rv) as usize] = ru.min(rv);
                    forest.push((u, v));
                }
            }
        }
    }
    forest
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_graph::generators::classic::{complete, cycle, path};
    use afforest_graph::generators::{rmat_scale, uniform_random};
    use afforest_graph::GraphBuilder;

    /// Number of components via serial union-find.
    fn component_count(n: usize, edges: &[Edge]) -> usize {
        let mut parent: Vec<Node> = (0..n as Node).collect();
        fn find(p: &mut [Node], mut x: Node) -> Node {
            while p[x as usize] != x {
                p[x as usize] = p[p[x as usize] as usize];
                x = p[x as usize];
            }
            x
        }
        for &(u, v) in edges {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
        (0..n as Node)
            .filter(|&v| find(&mut parent, v) == v)
            .count()
    }

    fn check_forest(g: &CsrGraph, forest: &[Edge]) {
        // Size: |V| − C.
        let c = component_count(g.num_vertices(), &g.collect_edges());
        assert_eq!(forest.len(), g.num_vertices() - c, "forest size");
        // Connectivity preserved: the forest alone yields the same C.
        assert_eq!(component_count(g.num_vertices(), forest), c);
        // Edges must come from the graph.
        assert!(forest.iter().all(|&(u, v)| g.has_edge(u, v)));
        // Acyclic: |edges| = |V| − components(forest) is exactly the tree
        // condition, already implied by the two counts above.
    }

    #[test]
    fn parallel_forest_on_random_graph() {
        let g = uniform_random(2_000, 12_000, 3);
        check_forest(&g, &spanning_forest(&g));
    }

    #[test]
    fn serial_forest_on_random_graph() {
        let g = uniform_random(2_000, 12_000, 3);
        check_forest(&g, &spanning_forest_serial(&g));
    }

    #[test]
    fn forest_of_tree_is_whole_tree() {
        let g = path(100);
        let f = spanning_forest(&g);
        assert_eq!(f.len(), 99);
        check_forest(&g, &f);
    }

    #[test]
    fn forest_of_cycle_drops_one_edge() {
        let g = cycle(50);
        let f = spanning_forest(&g);
        assert_eq!(f.len(), 49);
        check_forest(&g, &f);
    }

    #[test]
    fn forest_of_complete_graph() {
        let g = complete(30);
        let f = spanning_forest(&g);
        assert_eq!(f.len(), 29);
        check_forest(&g, &f);
    }

    #[test]
    fn forest_with_multiple_components() {
        let g = GraphBuilder::from_edges(8, &[(0, 1), (1, 2), (2, 0), (4, 5), (5, 6)]).build();
        // Components: {0,1,2}, {3}, {4,5,6}, {7} → C = 4, forest = 4 edges.
        let f = spanning_forest(&g);
        assert_eq!(f.len(), 4);
        check_forest(&g, &f);
    }

    #[test]
    fn forest_on_skewed_graph() {
        let g = rmat_scale(12, 8, 5);
        check_forest(&g, &spanning_forest(&g));
    }

    #[test]
    fn empty_and_edgeless() {
        let empty = GraphBuilder::from_edges(0, &[]).build();
        assert!(spanning_forest(&empty).is_empty());
        let edgeless = GraphBuilder::from_edges(5, &[]).build();
        assert!(spanning_forest(&edgeless).is_empty());
        assert!(spanning_forest_serial(&edgeless).is_empty());
    }

    #[test]
    fn serial_is_deterministic() {
        let g = uniform_random(500, 2_500, 9);
        assert_eq!(spanning_forest_serial(&g), spanning_forest_serial(&g));
    }

    #[test]
    fn repeated_parallel_runs_always_valid() {
        // The edge set may vary run to run; validity must not.
        let g = uniform_random(1_000, 8_000, 11);
        for _ in 0..5 {
            check_forest(&g, &spanning_forest(&g));
        }
    }
}
