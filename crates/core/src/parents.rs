//! The shared parent-pointer forest `π`.
//!
//! All tree-hooking algorithms in this repository operate on a single
//! array of atomic parent pointers. The array enforces nothing by itself;
//! the algorithms maintain **Invariant 1** of the paper — `π(x) ≤ x` —
//! which guarantees acyclicity (Lemma 1) and therefore termination of all
//! root walks.
//!
//! ## Memory ordering
//!
//! All accesses are `Relaxed`. The convergence proofs (Lemmas 2–5) only
//! require that the compare-and-swap is atomic — stale reads merely cause
//! extra loop iterations, never incorrect merges, because a CAS succeeds
//! only when the observed root is still its own parent. The final
//! happens-before edge that makes the result visible to the caller is the
//! rayon join at the end of every parallel phase.
//!
//! The full per-site justification lives in DESIGN.md §8
//! ("Memory-ordering audit"), which `cargo xtask lint` enforces
//! mechanically (ordering allowlist, SeqCst ban) and `crates/modelcheck`
//! verifies by exhaustively exploring every interleaving of
//! `link`/`compress`/`find_root` under coherence-only semantics.

use afforest_graph::Node;
use std::sync::atomic::{AtomicU32, Ordering};

/// Atomic parent-pointer array (`π` in the paper).
///
/// ```
/// use afforest_core::ParentArray;
///
/// let pi = ParentArray::new(3);
/// assert_eq!(pi.count_trees(), 3);
/// assert!(pi.compare_and_swap(2, 2, 0));
/// assert_eq!(pi.count_trees(), 2);
/// assert!(pi.check_invariant()); // π(x) ≤ x
/// ```
pub struct ParentArray {
    slots: Box<[AtomicU32]>,
}

impl ParentArray {
    /// Creates `n` self-pointing single-vertex trees (`π(v) = v`).
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "vertex count exceeds Node range");
        let slots: Box<[AtomicU32]> = (0..n as u32).map(AtomicU32::new).collect();
        Self { slots }
    }

    /// Restores a snapshot (used by the convergence harness to replay
    /// strategies from identical starting states).
    pub fn from_snapshot(snapshot: &[Node]) -> Self {
        let slots: Box<[AtomicU32]> = snapshot.iter().copied().map(AtomicU32::new).collect();
        Self { slots }
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Reads `π(v)`.
    #[inline]
    pub fn get(&self, v: Node) -> Node {
        self.slots[v as usize].load(Ordering::Relaxed)
    }

    /// Unconditionally writes `π(v) = parent`.
    ///
    /// Only used by single-owner phases (e.g. `compress`, where each
    /// processor writes exclusively to its own `π(v)` — Theorem 2).
    #[inline]
    pub fn set(&self, v: Node, parent: Node) {
        self.slots[v as usize].store(parent, Ordering::Relaxed);
    }

    /// Atomically replaces `π(v)` with `new` iff it still equals `current`.
    /// Returns `true` on success.
    #[inline]
    pub fn compare_and_swap(&self, v: Node, current: Node, new: Node) -> bool {
        self.slots[v as usize]
            .compare_exchange(current, new, Ordering::Relaxed, Ordering::Relaxed)
            .is_ok()
    }

    /// Whether `v` is currently a root (`π(v) == v`).
    #[inline]
    pub fn is_root(&self, v: Node) -> bool {
        self.get(v) == v
    }

    /// Walks parent pointers from `v` to its current root.
    ///
    /// Requires Invariant 1 (no cycles); under concurrent modification the
    /// returned vertex may already have been hooked again by the time the
    /// caller inspects it.
    pub fn find_root(&self, v: Node) -> Node {
        let mut x = v;
        loop {
            let p = self.get(x);
            if p == x {
                return x;
            }
            afforest_obs::count(afforest_obs::Counter::FindRootHops, 1);
            x = p;
        }
    }

    /// Depth of `v` below its root (0 for roots).
    pub fn depth(&self, v: Node) -> usize {
        let mut x = v;
        let mut d = 0;
        loop {
            let p = self.get(x);
            if p == x {
                return d;
            }
            d += 1;
            x = p;
        }
    }

    /// Maximum tree depth over all vertices (quiescent-state probe used by
    /// the Table II instrumentation).
    pub fn max_depth(&self) -> usize {
        use rayon::prelude::*;
        (0..self.len() as Node)
            .into_par_iter()
            .map(|v| self.depth(v))
            .max()
            .unwrap_or(0)
    }

    /// Copies the current state into a plain vector.
    pub fn snapshot(&self) -> Vec<Node> {
        self.slots
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect()
    }

    /// Verifies Invariant 1: `π(x) ≤ x` for every vertex.
    pub fn check_invariant(&self) -> bool {
        use rayon::prelude::*;
        (0..self.len() as Node)
            .into_par_iter()
            .all(|v| self.get(v) <= v)
    }

    /// Counts current roots (the `T_t` quantity of Section V-B).
    pub fn count_trees(&self) -> usize {
        use rayon::prelude::*;
        (0..self.len() as Node)
            .into_par_iter()
            .filter(|&v| self.is_root(v))
            .count()
    }
}

impl std::fmt::Debug for ParentArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParentArray")
            .field("len", &self.len())
            .field("trees", &self.count_trees())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_self_pointing() {
        let pa = ParentArray::new(5);
        assert!((0..5).all(|v| pa.is_root(v)));
        assert_eq!(pa.count_trees(), 5);
        assert!(pa.check_invariant());
    }

    #[test]
    fn cas_semantics() {
        let pa = ParentArray::new(3);
        assert!(pa.compare_and_swap(2, 2, 0));
        assert!(!pa.compare_and_swap(2, 2, 1)); // stale expectation
        assert_eq!(pa.get(2), 0);
    }

    #[test]
    fn find_root_walks_chains() {
        let pa = ParentArray::new(4);
        pa.set(3, 2);
        pa.set(2, 1);
        pa.set(1, 0);
        assert_eq!(pa.find_root(3), 0);
        assert_eq!(pa.depth(3), 3);
        assert_eq!(pa.depth(0), 0);
        assert_eq!(pa.max_depth(), 3);
    }

    #[test]
    fn snapshot_roundtrip() {
        let pa = ParentArray::new(4);
        pa.set(3, 1);
        let snap = pa.snapshot();
        let pb = ParentArray::from_snapshot(&snap);
        assert_eq!(pb.snapshot(), snap);
    }

    #[test]
    fn invariant_detects_violation() {
        let pa = ParentArray::new(3);
        pa.set(0, 2); // upward pointer violates π(x) ≤ x
        assert!(!pa.check_invariant());
    }

    #[test]
    fn count_trees_after_hooks() {
        let pa = ParentArray::new(6);
        pa.set(5, 0);
        pa.set(4, 0);
        assert_eq!(pa.count_trees(), 4);
    }

    #[test]
    fn empty_array() {
        let pa = ParentArray::new(0);
        assert!(pa.is_empty());
        assert_eq!(pa.count_trees(), 0);
        assert_eq!(pa.max_depth(), 0);
        assert!(pa.check_invariant());
    }
}
