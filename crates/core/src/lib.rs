//! # Afforest — parallel connected components via subgraph sampling
//!
//! From-scratch Rust implementation of the algorithm from *"Optimizing
//! Parallel Graph Connectivity Computation via Subgraph Sampling"*
//! (Sutton, Ben-Nun, Barak — IPDPS 2018).
//!
//! Afforest extends the Shiloach–Vishkin tree-hooking algorithm with two
//! ideas:
//!
//! 1. **Local convergence** ([`link`]): each edge is processed exactly once
//!    by a lock-free procedure that walks both endpoints' component trees
//!    upward and merges their roots with a compare-and-swap, always hooking
//!    the higher-index root under the lower (Invariant 1: `π(x) ≤ x`,
//!    which rules out cycles).
//! 2. **Subgraph sampling** ([`afforest`]): because `link` never needs to
//!    revisit an edge, the edge set can be processed in arbitrary disjoint
//!    batches. Afforest first links a constant number of *neighbor rounds*
//!    (the `i`-th neighbor of every vertex), compressing between rounds;
//!    then identifies the emerging giant component by random sampling and
//!    **skips** every remaining edge incident to it (sound by the paper's
//!    Theorem 3), processing only the leftovers.
//!
//! ```
//! use afforest_graph::generators::uniform_random;
//! use afforest_core::{afforest, AfforestConfig};
//!
//! let g = uniform_random(10_000, 80_000, 42);
//! let labels = afforest(&g, &AfforestConfig::default());
//! assert!(labels.num_components() >= 1);
//! ```
//!
//! Beyond the production entry points, this crate ships the research
//! tooling used by the paper's analysis sections:
//!
//! - [`strategies`]: the four subgraph-partitioning strategies of Fig. 6
//!   (row sampling, uniform edge sampling, neighbor sampling, spanning
//!   forest).
//! - [`metrics`]: the Linkage and Coverage convergence measures of
//!   Section V-B.
//! - [`instrument`]: per-edge local-iteration counts and tree-depth probes
//!   (Table II) and π access traces (Fig. 7).
//! - [`spanning_forest`]: spanning-forest extraction via merge-edge
//!   tracking (Section IV-A duality).

#![forbid(unsafe_code)]

pub mod afforest;
pub mod batched;
pub mod cachesim;
pub mod compress;
pub mod incremental;
pub mod instrument;
pub mod labels;
pub mod link;
pub mod metrics;
pub mod parents;
pub mod sampling;
pub mod sampling_theory;
pub mod spanning_forest;
pub mod strategies;
pub mod worst_case;

pub use crate::afforest::{
    afforest, afforest_with_stats, AfforestConfig, AfforestConfigBuilder, ConfigError, Phase,
    PhaseTiming, RunStats,
};
pub use crate::batched::{afforest_batched, BatchedConfig, BatchedStats};
pub use crate::compress::{compress, compress_all};
pub use crate::incremental::{IncrementalCc, InvalidParents};
pub use crate::labels::ComponentLabels;
pub use crate::link::link;
pub use crate::parents::ParentArray;
pub use crate::sampling::sample_frequent_element;
pub use crate::spanning_forest::spanning_forest;
