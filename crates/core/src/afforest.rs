//! The full Afforest algorithm with subgraph sampling (paper Fig. 5).
//!
//! Phases:
//!
//! 1. **Init** — `π(v) ← v` for all vertices.
//! 2. **Neighbor rounds** — for round `i`, every vertex links its `i`-th
//!    neighbor (the vertex-neighborhood sampling of Section IV-C, which
//!    distributes `O(|V|)` sampled edges evenly across vertices and
//!    components), each round followed by a `compress`.
//! 3. **Find largest** — probabilistic most-frequent-element search over
//!    `π` identifies the giant intermediate component (Fig. 5 line 10).
//! 4. **Final link** — every vertex *not* in the giant component links its
//!    remaining neighbors (`neighbor_rounds..degree`); edges incident to
//!    the giant component are skipped, which is exact by Theorem 3.
//! 5. **Final compress** — flatten to depth-one trees; `π` is the labeling.

use crate::compress::compress_all;
use crate::labels::ComponentLabels;
use crate::link::link;
use crate::parents::ParentArray;
use crate::sampling::{sample_frequent_element, DEFAULT_SAMPLES};
use afforest_graph::{CsrGraph, Node};
use rayon::prelude::*;
use std::time::{Duration, Instant};

/// Tuning knobs for [`afforest`]. `Default` reproduces the paper's
/// configuration (2 neighbor rounds, 1024 samples, skipping enabled,
/// compress between rounds).
#[derive(Clone, Debug, PartialEq)]
pub struct AfforestConfig {
    /// Number of neighbor-sampling rounds (paper Section VI-A fixes 2).
    pub neighbor_rounds: usize,
    /// Probes used by the most-frequent-element search.
    pub sample_size: usize,
    /// Whether to skip edges incident to the identified giant component.
    pub skip_largest: bool,
    /// Whether to compress after every neighbor round (paper Fig. 5) or
    /// only once after all rounds (the GAPBS variant) — an ablation knob.
    pub compress_each_round: bool,
    /// Seed for the probabilistic component search.
    pub seed: u64,
}

impl Default for AfforestConfig {
    fn default() -> Self {
        Self {
            neighbor_rounds: 2,
            sample_size: DEFAULT_SAMPLES,
            skip_largest: true,
            compress_each_round: true,
            seed: 0x5EED,
        }
    }
}

impl AfforestConfig {
    /// Starts a validating [`AfforestConfigBuilder`] seeded with the
    /// paper's defaults.
    ///
    /// ```
    /// use afforest_core::AfforestConfig;
    ///
    /// let cfg = AfforestConfig::builder()
    ///     .neighbor_rounds(3)
    ///     .skip(false)
    ///     .build()
    ///     .unwrap();
    /// assert_eq!(cfg.neighbor_rounds, 3);
    /// assert!(!cfg.skip_largest);
    /// assert!(AfforestConfig::builder().neighbor_rounds(0).build().is_err());
    /// ```
    pub fn builder() -> AfforestConfigBuilder {
        AfforestConfigBuilder::new()
    }
}

/// Validation failure from [`AfforestConfigBuilder::build`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `neighbor_rounds` was 0: without at least one sampling round the
    /// giant-component search runs over singleton trees and the "skip"
    /// optimization degenerates (use the public fields directly for that
    /// ablation).
    ZeroNeighborRounds,
    /// `sample_size` was 0: the most-frequent-element search needs at
    /// least one probe.
    ZeroSampleSize,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroNeighborRounds => {
                write!(f, "neighbor_rounds must be at least 1")
            }
            ConfigError::ZeroSampleSize => write!(f, "sample_size must be at least 1"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Validating builder for [`AfforestConfig`]; start from
/// [`AfforestConfig::builder`].
#[derive(Clone, Debug)]
pub struct AfforestConfigBuilder {
    cfg: AfforestConfig,
}

impl Default for AfforestConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl AfforestConfigBuilder {
    /// A builder seeded with the paper's defaults.
    pub fn new() -> Self {
        Self {
            cfg: AfforestConfig::default(),
        }
    }

    /// Sets the number of neighbor-sampling rounds (must be ≥ 1).
    pub fn neighbor_rounds(mut self, rounds: usize) -> Self {
        self.cfg.neighbor_rounds = rounds;
        self
    }

    /// Sets the probe count of the most-frequent-element search (≥ 1).
    pub fn sample_size(mut self, samples: usize) -> Self {
        self.cfg.sample_size = samples;
        self
    }

    /// Enables or disables skipping edges incident to the giant component.
    pub fn skip(mut self, skip: bool) -> Self {
        self.cfg.skip_largest = skip;
        self
    }

    /// Compress after every neighbor round (paper Fig. 5) or only once
    /// after the last (GAPBS variant).
    pub fn compress_each_round(mut self, each_round: bool) -> Self {
        self.cfg.compress_each_round = each_round;
        self
    }

    /// Sets the seed of the probabilistic component search.
    pub fn seed(mut self, seed: u64) -> Self {
        self.cfg.seed = seed;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<AfforestConfig, ConfigError> {
        if self.cfg.neighbor_rounds == 0 {
            return Err(ConfigError::ZeroNeighborRounds);
        }
        if self.cfg.sample_size == 0 {
            return Err(ConfigError::ZeroSampleSize);
        }
        Ok(self.cfg)
    }
}

/// Execution phases, used for timing breakdowns and the Fig. 7 traces.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// `π(v) ← v` initialization.
    Init,
    /// Neighbor-sampling link round `i` (0-based).
    LinkRound(usize),
    /// Compress following round `i`, or the final compress.
    Compress(usize),
    /// Probabilistic largest-component search.
    FindLargest,
    /// Final link pass over remaining edges.
    FinalLink,
    /// Final compress producing the labeling.
    FinalCompress,
}

impl std::fmt::Display for Phase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Phase::Init => write!(f, "init"),
            Phase::LinkRound(i) => write!(f, "link[{i}]"),
            Phase::Compress(i) => write!(f, "compress[{i}]"),
            Phase::FindLargest => write!(f, "find-largest"),
            Phase::FinalLink => write!(f, "final-link"),
            Phase::FinalCompress => write!(f, "final-compress"),
        }
    }
}

/// Wall-clock duration of one phase.
#[derive(Clone, Debug)]
pub struct PhaseTiming {
    /// Which phase.
    pub phase: Phase,
    /// Elapsed wall-clock time.
    pub elapsed: Duration,
}

/// Statistics from an instrumented [`afforest_with_stats`] run.
#[derive(Clone, Debug, Default)]
pub struct RunStats {
    /// Per-phase wall-clock timings in execution order.
    pub phases: Vec<PhaseTiming>,
    /// Directed edge slots processed by `link` (lower = more work saved).
    pub edges_processed: usize,
    /// Vertices whose remaining neighborhood was skipped (Theorem 3).
    pub vertices_skipped: usize,
    /// The root identified as the giant component (if the search ran).
    pub giant_root: Option<Node>,
    /// Number of trees after each neighbor round (for Linkage curves).
    pub trees_after_round: Vec<usize>,
}

impl RunStats {
    /// Total wall-clock time across phases.
    pub fn total_time(&self) -> Duration {
        self.phases.iter().map(|p| p.elapsed).sum()
    }

    /// Fraction of the graph's directed arcs that `link` actually touched.
    pub fn edge_fraction(&self, g: &CsrGraph) -> f64 {
        if g.num_arcs() == 0 {
            0.0
        } else {
            self.edges_processed as f64 / g.num_arcs() as f64
        }
    }
}

/// Runs Afforest and returns the component labeling.
pub fn afforest(g: &CsrGraph, cfg: &AfforestConfig) -> ComponentLabels {
    let (labels, _) = run(g, cfg, false);
    labels
}

/// Runs Afforest, additionally collecting [`RunStats`] (timings, work
/// counters, skip effectiveness). The labeling is identical to
/// [`afforest`]'s.
pub fn afforest_with_stats(g: &CsrGraph, cfg: &AfforestConfig) -> (ComponentLabels, RunStats) {
    run(g, cfg, true)
}

fn run(g: &CsrGraph, cfg: &AfforestConfig, collect: bool) -> (ComponentLabels, RunStats) {
    let n = g.num_vertices();
    let mut stats = RunStats::default();
    let record = |stats: &mut RunStats, phase: Phase, t: Instant| {
        if collect {
            stats.phases.push(PhaseTiming {
                phase,
                elapsed: t.elapsed(),
            });
        }
    };

    let t = Instant::now();
    let pi = {
        let _span = afforest_obs::span!("{}", Phase::Init);
        ParentArray::new(n)
    };
    record(&mut stats, Phase::Init, t);

    if n == 0 {
        return (ComponentLabels::from_vec(Vec::new()), stats);
    }

    // Phase 2: neighbor rounds (Fig. 5 lines 2–9).
    for round in 0..cfg.neighbor_rounds {
        let t = Instant::now();
        let processed: usize = {
            let _span = afforest_obs::span!("{}", Phase::LinkRound(round));
            (0..n as Node)
                .into_par_iter()
                .map(|v| {
                    if round < g.degree(v) {
                        link(v, g.neighbor(v, round), &pi);
                        1
                    } else {
                        0
                    }
                })
                .sum()
        };
        record(&mut stats, Phase::LinkRound(round), t);
        if collect {
            stats.edges_processed += processed;
        }

        // Invariant 1 must hold at every round boundary, not just at the
        // end: a violation here pinpoints the round (and therefore the
        // sampled neighbor slice) that produced an upward edge.
        debug_assert!(
            pi.check_invariant(),
            "Invariant 1 violated after link round {round}"
        );

        if cfg.compress_each_round {
            let t = Instant::now();
            {
                let _span = afforest_obs::span!("{}", Phase::Compress(round));
                compress_all(&pi);
            }
            record(&mut stats, Phase::Compress(round), t);
            debug_assert!(
                pi.check_invariant(),
                "Invariant 1 violated by compress after round {round}"
            );
        }
        if collect {
            stats.trees_after_round.push(pi.count_trees());
        }
    }
    if !cfg.compress_each_round && cfg.neighbor_rounds > 0 {
        let t = Instant::now();
        {
            let _span = afforest_obs::span!("{}", Phase::Compress(cfg.neighbor_rounds - 1));
            compress_all(&pi);
        }
        record(&mut stats, Phase::Compress(cfg.neighbor_rounds - 1), t);
        debug_assert!(
            pi.check_invariant(),
            "Invariant 1 violated by deferred compress"
        );
    }

    // Phase 3: identify the giant intermediate component (Fig. 5 line 10).
    let giant = if cfg.skip_largest {
        let t = Instant::now();
        let c = {
            let _span = afforest_obs::span!("{}", Phase::FindLargest);
            sample_frequent_element(&pi, cfg.sample_size.min(16 * n).max(1), cfg.seed)
        };
        record(&mut stats, Phase::FindLargest, t);
        if collect {
            stats.giant_root = Some(c);
        }
        Some(c)
    } else {
        None
    };

    // Phase 4: final link over remaining edges, skipping the giant
    // component's neighborhoods (Fig. 5 lines 11–15).
    let t = Instant::now();
    let (processed, skipped) = {
        let _span = afforest_obs::span!("{}", Phase::FinalLink);
        (0..n as Node)
            .into_par_iter()
            .map(|v| {
                if giant == Some(pi.get(v)) {
                    if afforest_obs::COMPILED {
                        let deg = g.degree(v);
                        let remaining = deg - cfg.neighbor_rounds.min(deg);
                        afforest_obs::count(afforest_obs::Counter::EdgesSkipped, remaining as u64);
                        afforest_obs::count(afforest_obs::Counter::VerticesSkipped, 1);
                    }
                    (0usize, 1usize)
                } else {
                    let deg = g.degree(v);
                    let start = cfg.neighbor_rounds.min(deg);
                    for i in start..deg {
                        link(v, g.neighbor(v, i), &pi);
                    }
                    (deg - start, 0)
                }
            })
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1))
    };
    record(&mut stats, Phase::FinalLink, t);
    if collect {
        stats.edges_processed += processed;
        stats.vertices_skipped = skipped;
    }
    debug_assert!(
        pi.check_invariant(),
        "Invariant 1 violated by the final link pass"
    );

    // Phase 5: final compress (Fig. 5 lines 16–18).
    let t = Instant::now();
    {
        let _span = afforest_obs::span!("{}", Phase::FinalCompress);
        compress_all(&pi);
    }
    record(&mut stats, Phase::FinalCompress, t);

    debug_assert!(pi.check_invariant(), "Invariant 1 violated");
    (ComponentLabels::from_vec(pi.snapshot()), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_graph::generators::classic::{complete, cycle, path, star};
    use afforest_graph::generators::{
        rmat_scale, road_network, uniform_random, urand_with_components, web_graph,
    };
    use afforest_graph::GraphBuilder;

    fn check(g: &CsrGraph, cfg: &AfforestConfig) -> ComponentLabels {
        let labels = afforest(g, cfg);
        assert!(labels.verify_against(g), "incorrect labeling");
        labels
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::from_edges(0, &[]).build();
        let labels = afforest(&g, &AfforestConfig::default());
        assert_eq!(labels.num_components(), 0);
    }

    #[test]
    fn singletons_only() {
        let g = GraphBuilder::from_edges(5, &[]).build();
        let labels = check(&g, &AfforestConfig::default());
        assert_eq!(labels.num_components(), 5);
    }

    #[test]
    fn classic_graphs_all_configs() {
        let configs = [
            AfforestConfig::default(),
            AfforestConfig::builder().skip(false).build().unwrap(),
            AfforestConfig {
                neighbor_rounds: 0,
                skip_largest: false,
                ..Default::default()
            },
            AfforestConfig::builder()
                .compress_each_round(false)
                .build()
                .unwrap(),
            AfforestConfig::builder()
                .neighbor_rounds(5)
                .build()
                .unwrap(),
        ];
        for g in [path(100), cycle(64), star(50, 49), complete(20)] {
            for cfg in &configs {
                let labels = check(&g, cfg);
                assert_eq!(labels.num_components(), 1, "cfg {cfg:?}");
            }
        }
    }

    #[test]
    fn two_components() {
        let g = GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]).build();
        let labels = check(&g, &AfforestConfig::default());
        assert_eq!(labels.num_components(), 2);
        assert!(labels.same_component(0, 2));
        assert!(!labels.same_component(2, 3));
    }

    #[test]
    fn urand_matches_oracle() {
        let g = uniform_random(20_000, 100_000, 11);
        check(&g, &AfforestConfig::default());
    }

    #[test]
    fn rmat_matches_oracle() {
        let g = rmat_scale(14, 8, 5);
        check(&g, &AfforestConfig::default());
    }

    #[test]
    fn road_matches_oracle() {
        let g = road_network(120, 120, 0.6, 0.02, 3);
        let with_skip = check(&g, &AfforestConfig::default());
        let without = check(&g, &AfforestConfig::builder().skip(false).build().unwrap());
        assert!(with_skip.equivalent(&without));
    }

    #[test]
    fn web_matches_oracle() {
        let g = web_graph(10_000, 4, 0.7, 8.0, 7);
        check(&g, &AfforestConfig::default());
    }

    #[test]
    fn component_fraction_graphs() {
        for &f in &[1.0, 0.5, 0.1, 0.01] {
            let g = urand_with_components(5_000, 4, f, 9);
            check(&g, &AfforestConfig::default());
        }
    }

    #[test]
    fn stats_edges_saved_on_giant_component() {
        let g = uniform_random(10_000, 100_000, 2);
        let (labels, stats) = afforest_with_stats(&g, &AfforestConfig::default());
        assert!(labels.verify_against(&g));
        assert!(stats.giant_root.is_some());
        // A single giant component means the vast majority of arcs are
        // skipped after two neighbor rounds.
        assert!(
            stats.edge_fraction(&g) < 0.5,
            "processed fraction {}",
            stats.edge_fraction(&g)
        );
        assert!(stats.vertices_skipped > 9_000);
    }

    #[test]
    fn stats_without_skip_processes_everything() {
        let g = uniform_random(2_000, 10_000, 4);
        let cfg = AfforestConfig::builder().skip(false).build().unwrap();
        let (_, stats) = afforest_with_stats(&g, &cfg);
        // Neighbor rounds + final pass cover every directed arc exactly once.
        assert_eq!(stats.edges_processed, g.num_arcs());
        assert_eq!(stats.vertices_skipped, 0);
    }

    #[test]
    fn stats_phase_timings_present() {
        let g = uniform_random(1_000, 4_000, 6);
        let (_, stats) = afforest_with_stats(&g, &AfforestConfig::default());
        let phases: Vec<Phase> = stats.phases.iter().map(|p| p.phase).collect();
        assert!(phases.contains(&Phase::Init));
        assert!(phases.contains(&Phase::LinkRound(0)));
        assert!(phases.contains(&Phase::FindLargest));
        assert!(phases.contains(&Phase::FinalCompress));
        assert!(stats.total_time() > Duration::ZERO);
        assert_eq!(stats.trees_after_round.len(), 2);
    }

    #[test]
    fn trees_shrink_across_rounds() {
        let g = uniform_random(10_000, 80_000, 8);
        let (_, stats) = afforest_with_stats(&g, &AfforestConfig::default());
        assert!(stats.trees_after_round[1] <= stats.trees_after_round[0]);
        assert!(stats.trees_after_round[0] < 10_000);
    }

    #[test]
    fn deterministic_labeling() {
        // The labeling (min-index roots) is deterministic even though the
        // execution is concurrent.
        let g = uniform_random(5_000, 30_000, 14);
        let a = afforest(&g, &AfforestConfig::default());
        let b = afforest(&g, &AfforestConfig::default());
        assert_eq!(a.as_slice(), b.as_slice());
    }

    #[test]
    fn zero_rounds_with_skip_still_correct() {
        // Degenerate config: sampling before any linking finds a singleton
        // "giant"; skipping must remain sound (Theorem 3 holds for any
        // intermediate component).
        let g = uniform_random(3_000, 15_000, 1);
        let cfg = AfforestConfig {
            neighbor_rounds: 0,
            ..Default::default()
        };
        check(&g, &cfg);
    }

    #[test]
    fn phase_display_strings() {
        assert_eq!(Phase::LinkRound(1).to_string(), "link[1]");
        assert_eq!(Phase::FinalCompress.to_string(), "final-compress");
    }

    #[test]
    fn builder_sets_every_knob() {
        let cfg = AfforestConfig::builder()
            .neighbor_rounds(4)
            .sample_size(64)
            .skip(false)
            .compress_each_round(false)
            .seed(99)
            .build()
            .unwrap();
        assert_eq!(
            cfg,
            AfforestConfig {
                neighbor_rounds: 4,
                sample_size: 64,
                skip_largest: false,
                compress_each_round: false,
                seed: 99,
            }
        );
    }

    #[test]
    fn builder_defaults_match_default() {
        assert_eq!(
            AfforestConfig::builder().build().unwrap(),
            AfforestConfig::default()
        );
    }

    #[test]
    fn builder_rejects_degenerate_configs() {
        assert_eq!(
            AfforestConfig::builder().neighbor_rounds(0).build(),
            Err(ConfigError::ZeroNeighborRounds)
        );
        assert_eq!(
            AfforestConfig::builder().sample_size(0).build(),
            Err(ConfigError::ZeroSampleSize)
        );
        assert!(ConfigError::ZeroSampleSize.to_string().contains("sample"));
    }

    /// With the `obs` feature on, one run must produce spans for every
    /// phase the paper names: each neighbor round, each compress sweep,
    /// the sampling step, and the skip (final-link) pass.
    #[cfg(feature = "obs")]
    #[test]
    fn trace_covers_every_phase() {
        let g = uniform_random(2_000, 10_000, 5);
        let cfg = AfforestConfig::builder()
            .neighbor_rounds(3)
            .build()
            .unwrap();
        let session = afforest_obs::Session::begin();
        let labels = afforest(&g, &cfg);
        let trace = session.end();
        assert!(labels.verify_against(&g));

        for name in [
            "init",
            "link[0]",
            "link[1]",
            "link[2]",
            "compress[0]",
            "compress[1]",
            "compress[2]",
            "find-largest",
            "final-link",
            "final-compress",
        ] {
            assert!(
                trace.spans.iter().any(|s| s.name == name),
                "missing span {name:?} in {:?}",
                trace.spans.iter().map(|s| &s.name).collect::<Vec<_>>()
            );
        }
        // Work counters flowed into the trace from the hot paths.
        assert!(trace.counter("link_calls") > 0);
        assert!(trace.counter("edges_linked") > 0);
        assert!(trace.counter("vertices_skipped") > 0);
        // Phase spans account for (nearly) the whole session.
        assert!(trace.depth_total_ns(0) <= trace.total_ns);
        assert!(trace.depth_total_ns(0) > trace.total_ns / 2);
    }
}
