//! Generalized subgraph-batched execution (Section III-B).
//!
//! [`crate::afforest`] hard-codes the paper's production schedule
//! (neighbor rounds → skip → remainder). This module exposes the general
//! form the section actually proves correct: process **any** ordered
//! partition of `E` into batches, with `compress` interleaved and
//! optional large-component skipping activated after a chosen batch.
//! It is what the convergence experiments build on, and it lets library
//! users plug in their own partitioning strategies (including the ones in
//! [`crate::strategies`]) while keeping the exactness guarantees.

use crate::compress::compress_all;
use crate::labels::ComponentLabels;
use crate::link::link;
use crate::parents::ParentArray;
use crate::sampling::sample_frequent_element;
use afforest_graph::{CsrGraph, Edge};
use rayon::prelude::*;

/// Schedule for a batched run.
#[derive(Clone, Debug, PartialEq)]
pub struct BatchedConfig {
    /// Compress between batches (keeps later `link` walks short).
    pub compress_between: bool,
    /// After this many batches, identify the giant intermediate component
    /// and skip its incident edges in all later batches (`None` = never).
    pub skip_after_batch: Option<usize>,
    /// Sample count for the most-frequent-element search.
    pub sample_size: usize,
    /// Seed for the probabilistic search.
    pub seed: u64,
}

impl Default for BatchedConfig {
    fn default() -> Self {
        Self {
            compress_between: true,
            skip_after_batch: None,
            sample_size: crate::sampling::DEFAULT_SAMPLES,
            seed: 0xBA7C,
        }
    }
}

/// Work counters from a batched run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchedStats {
    /// Edges handed to `link` (skipped edges excluded).
    pub edges_linked: usize,
    /// Edges skipped by the component heuristic.
    pub edges_skipped: usize,
    /// Batches processed.
    pub batches: usize,
}

/// Runs `link` over the batches in order and returns the exact labeling.
///
/// Correct for any batches whose union ⊇ a spanning structure of every
/// component the caller cares about; passing a full partition of `E`
/// (e.g. from [`crate::strategies::partition`]) guarantees exactness on
/// the whole graph (Theorem 1 + Theorem 3 for the skipped edges).
///
/// # Panics
///
/// Panics if any batch references a vertex outside `g`.
pub fn afforest_batched(
    g: &CsrGraph,
    batches: &[Vec<Edge>],
    cfg: &BatchedConfig,
) -> (ComponentLabels, BatchedStats) {
    let n = g.num_vertices();
    let pi = ParentArray::new(n);
    let mut stats = BatchedStats::default();
    let mut giant = None;

    for (i, batch) in batches.iter().enumerate() {
        if let Some(c) = giant {
            let (linked, skipped): (usize, usize) = batch
                .par_iter()
                .map(|&(u, v)| {
                    // Theorem 3: an edge with an endpoint already inside
                    // the fixed component is redundant or will be seen
                    // from its other endpoint in this same batch set.
                    if pi.get(u) == c && pi.get(v) == c {
                        (0, 1)
                    } else {
                        link(u, v, &pi);
                        (1, 0)
                    }
                })
                .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
            stats.edges_linked += linked;
            stats.edges_skipped += skipped;
        } else {
            batch.par_iter().for_each(|&(u, v)| {
                link(u, v, &pi);
            });
            stats.edges_linked += batch.len();
        }
        stats.batches += 1;

        if cfg.compress_between {
            compress_all(&pi);
        }
        if giant.is_none() && cfg.skip_after_batch == Some(i + 1) && n > 0 {
            if !cfg.compress_between {
                compress_all(&pi); // the sampler expects depth-1 trees
            }
            giant = Some(sample_frequent_element(
                &pi,
                cfg.sample_size.min(16 * n).max(1),
                cfg.seed,
            ));
        }
    }

    compress_all(&pi);
    (ComponentLabels::from_vec(pi.snapshot()), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::afforest::{afforest, AfforestConfig};
    use crate::strategies::{partition, Strategy};
    use afforest_graph::generators::{rmat_scale, uniform_random, web_graph};

    fn reference(g: &CsrGraph) -> ComponentLabels {
        let l = afforest(g, &AfforestConfig::default());
        assert!(l.verify_against(g));
        l
    }

    #[test]
    fn all_strategies_exact_without_skip() {
        let g = uniform_random(2_000, 12_000, 3);
        let truth = reference(&g);
        for s in Strategy::ALL {
            let batches = partition(&g, s, 7, 1);
            let (labels, stats) = afforest_batched(&g, &batches, &BatchedConfig::default());
            assert!(labels.equivalent(&truth), "strategy {s:?}");
            assert_eq!(stats.edges_linked, g.num_edges());
            assert_eq!(stats.edges_skipped, 0);
            assert_eq!(stats.batches, batches.len());
        }
    }

    #[test]
    fn skipping_preserves_exactness_and_saves_work() {
        let g = uniform_random(5_000, 50_000, 5);
        let truth = reference(&g);
        let batches = partition(&g, Strategy::NeighborSampling, 10, 1);
        let cfg = BatchedConfig {
            skip_after_batch: Some(2),
            ..Default::default()
        };
        let (labels, stats) = afforest_batched(&g, &batches, &cfg);
        assert!(labels.equivalent(&truth));
        assert!(
            stats.edges_skipped > g.num_edges() / 4,
            "only skipped {}",
            stats.edges_skipped
        );
        assert_eq!(stats.edges_linked + stats.edges_skipped, g.num_edges());
    }

    #[test]
    fn skip_without_compress_between() {
        let g = web_graph(3_000, 5, 0.7, 8.0, 2);
        let truth = reference(&g);
        let batches = partition(&g, Strategy::NeighborSampling, 6, 1);
        let cfg = BatchedConfig {
            compress_between: false,
            skip_after_batch: Some(2),
            ..Default::default()
        };
        let (labels, _) = afforest_batched(&g, &batches, &cfg);
        assert!(labels.equivalent(&truth));
    }

    #[test]
    fn skewed_graph_all_configs() {
        let g = rmat_scale(11, 8, 7);
        let truth = reference(&g);
        for skip in [None, Some(1), Some(3)] {
            for compress_between in [true, false] {
                let cfg = BatchedConfig {
                    compress_between,
                    skip_after_batch: skip,
                    ..Default::default()
                };
                let batches = partition(&g, Strategy::UniformEdge, 5, 9);
                let (labels, _) = afforest_batched(&g, &batches, &cfg);
                assert!(
                    labels.equivalent(&truth),
                    "skip {skip:?} compress {compress_between}"
                );
            }
        }
    }

    #[test]
    fn empty_batches_and_graph() {
        let g = afforest_graph::GraphBuilder::from_edges(4, &[]).build();
        let (labels, stats) = afforest_batched(&g, &[], &BatchedConfig::default());
        assert_eq!(labels.num_components(), 4);
        assert_eq!(stats.batches, 0);

        let empty = afforest_graph::GraphBuilder::from_edges(0, &[]).build();
        let (labels, _) = afforest_batched(&empty, &[], &BatchedConfig::default());
        assert!(labels.is_empty());
    }

    #[test]
    fn single_big_batch_equals_plain_run() {
        let g = uniform_random(1_500, 9_000, 11);
        let truth = reference(&g);
        let all = vec![g.collect_edges()];
        let (labels, stats) = afforest_batched(&g, &all, &BatchedConfig::default());
        assert!(labels.equivalent(&truth));
        assert_eq!(stats.edges_linked, g.num_edges());
    }
}
