//! Executable worst-case constructions (Section V-A).
//!
//! The paper exhibits adversarial scenarios bounding the core procedures:
//!
//! - **`link` worst case**: a depth-one tree whose root has the *highest*
//!   index; leaves hook in descending index order, so each hook makes the
//!   previous root a child and the final, lowest-index leaf must walk a
//!   linear-depth chain — `O(|V|)` work for one edge.
//! - **`compress` worst case**: a linear-depth tree compressed by every
//!   processor simultaneously — `O(|V|²)` total traversal on the first
//!   invocation.
//!
//! These builders create exactly those states so tests (and curious
//! users) can measure the bounds, and verify the paper's observation that
//! the scenarios require an adversarial *order*, not just an adversarial
//! *graph*.

use crate::link::{link, link_counted};
use crate::parents::ParentArray;
use afforest_graph::Node;

/// Builds the `link` worst-case state over `n` vertices: hooks the star
/// `{(n−1, v)}` in descending leaf order, producing a linear-depth chain
/// under Invariant 1. Returns the parent array *before* the final
/// adversarial edge is linked.
///
/// After this call, `link(0, n-1, π)` must walk `Θ(n)` ancestors.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn link_adversarial_state(n: usize) -> ParentArray {
    assert!(n >= 3, "need at least 3 vertices");
    let pi = ParentArray::new(n);
    let hub = (n - 1) as Node;
    // Descending order: each hook attaches the current root under the
    // next-lower leaf, growing the chain by one.
    for v in (1..hub).rev() {
        link(hub, v, &pi);
    }
    pi
}

/// Measures the local iterations of the final adversarial `link` edge on
/// the state from [`link_adversarial_state`].
pub fn link_worst_case_iterations(n: usize) -> u32 {
    let pi = link_adversarial_state(n);
    let (_, iters) = link_counted(0, (n - 1) as Node, &pi);
    iters
}

/// Builds the `compress` worst case: a single path `v → v−1 → … → 0` of
/// depth `n − 1`.
pub fn compress_adversarial_state(n: usize) -> ParentArray {
    let pi = ParentArray::new(n);
    for v in 1..n as Node {
        pi.set(v, v - 1);
    }
    pi
}

/// The same star graph linked in *ascending* leaf order — the benign
/// schedule, showing the bound needs the adversarial order.
pub fn link_benign_state(n: usize) -> ParentArray {
    assert!(n >= 3, "need at least 3 vertices");
    let pi = ParentArray::new(n);
    let hub = (n - 1) as Node;
    for v in 1..hub {
        link(hub, v, &pi);
    }
    pi
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::{compress_all, compress_counted};

    #[test]
    fn adversarial_link_walk_is_linear() {
        // Iterations grow linearly with n: doubling n roughly doubles the
        // final link's local iteration count.
        let small = link_worst_case_iterations(1_000);
        let large = link_worst_case_iterations(2_000);
        assert!(small > 400, "small {small}");
        assert!(
            (large as f64) > 1.8 * small as f64,
            "not linear: {small} -> {large}"
        );
    }

    #[test]
    fn adversarial_state_is_a_deep_chain() {
        let pi = link_adversarial_state(500);
        assert!(pi.check_invariant());
        assert!(pi.max_depth() > 400, "depth {}", pi.max_depth());
    }

    #[test]
    fn benign_order_stays_shallow() {
        // Ascending hooks always attach under the fixed minimum leaf, so
        // the tree stays flat and the final link is cheap.
        let pi = link_benign_state(2_000);
        assert!(pi.max_depth() <= 3, "depth {}", pi.max_depth());
        let (_, iters) = crate::link::link_counted(0, 1_999, &pi);
        assert!(iters <= 4, "iters {iters}");
    }

    #[test]
    fn compress_worst_case_is_linear_per_vertex() {
        let n = 4_000;
        let pi = compress_adversarial_state(n);
        // The deepest vertex performs Θ(n) pointer jumps when compressed
        // alone from the cold state.
        let stores = compress_counted((n - 1) as Node, &pi);
        assert!(stores as usize > n / 2, "stores {stores}");
    }

    #[test]
    fn compress_recovers_in_one_parallel_pass() {
        // And yet a single compress_all resolves the pathology (Theorem 2):
        // afterwards every access is O(1).
        let n = 4_000;
        let pi = compress_adversarial_state(n);
        compress_all(&pi);
        assert_eq!(pi.max_depth(), 1);
        assert_eq!(compress_counted((n - 1) as Node, &pi), 0);
    }

    #[test]
    fn worst_case_never_breaks_correctness() {
        // The adversarial state still converges to one component.
        let n = 1_000;
        let pi = link_adversarial_state(n);
        crate::link::link(0, (n - 1) as Node, &pi);
        compress_all(&pi);
        let root = pi.get(0);
        assert!((0..n as Node).all(|v| pi.get(v) == root));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn rejects_tiny_n() {
        let _ = link_adversarial_state(2);
    }
}
