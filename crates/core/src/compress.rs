//! The `compress` procedure (paper Fig. 2b).
//!
//! Repeatedly replaces `π(v)` by `π(π(v))` until `v`'s parent is a root,
//! flattening every component tree to depth one (Theorem 2). Each
//! processor writes exclusively to its own `π(v)`, so there are no write
//! conflicts; concurrent reads of other entries can only observe a
//! *shorter* path to the same root, never a different root.
//!
//! Interleaving `compress` between `link` phases is sound because the
//! procedure is idempotent and preserves tree connectivity (Lemma 2,
//! Theorem 2); Afforest uses it after every neighbor round to keep
//! subsequent `link` walks short.

use crate::parents::ParentArray;
use afforest_graph::Node;
use rayon::prelude::*;

/// Compresses the path from `v`: on return, `π(v)` is a root.
#[inline]
pub fn compress(v: Node, pi: &ParentArray) {
    while pi.get(pi.get(v)) != pi.get(v) {
        pi.set(v, pi.get(pi.get(v)));
        afforest_obs::count(afforest_obs::Counter::CompressStores, 1);
    }
}

/// Applies [`compress`] to every vertex in parallel, producing a forest of
/// depth-one trees.
///
/// ```
/// use afforest_core::{compress_all, link, ParentArray};
///
/// let pi = ParentArray::new(4);
/// link(3, 2, &pi);
/// link(2, 1, &pi);
/// link(1, 0, &pi);
/// compress_all(&pi);
/// assert!(pi.max_depth() <= 1);
/// assert_eq!(pi.get(3), 0);
/// ```
pub fn compress_all(pi: &ParentArray) {
    (0..pi.len() as Node)
        .into_par_iter()
        .for_each(|v| compress(v, pi));
}

/// Instrumented variant: returns the number of pointer-jump store
/// operations performed for `v` (0 when `v` already points at a root).
#[inline]
pub fn compress_counted(v: Node, pi: &ParentArray) -> u32 {
    let mut stores = 0u32;
    while pi.get(pi.get(v)) != pi.get(v) {
        pi.set(v, pi.get(pi.get(v)));
        stores += 1;
    }
    stores
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flattens_chain() {
        let pi = ParentArray::new(5);
        for v in 1..5u32 {
            pi.set(v, v - 1);
        }
        compress_all(&pi);
        assert_eq!(pi.max_depth(), 1);
        assert!((1..5u32).all(|v| pi.get(v) == 0));
    }

    #[test]
    fn idempotent() {
        let pi = ParentArray::new(5);
        for v in 1..5u32 {
            pi.set(v, v - 1);
        }
        compress_all(&pi);
        let first = pi.snapshot();
        compress_all(&pi);
        assert_eq!(pi.snapshot(), first);
    }

    #[test]
    fn roots_unchanged() {
        let pi = ParentArray::new(6);
        pi.set(5, 3);
        pi.set(3, 1);
        compress_all(&pi);
        assert!(pi.is_root(0));
        assert!(pi.is_root(1));
        assert_eq!(pi.get(5), 1);
        assert_eq!(pi.get(3), 1);
    }

    #[test]
    fn preserves_invariant() {
        let pi = ParentArray::new(10);
        for v in (1..10u32).rev() {
            pi.set(v, v / 2);
        }
        compress_all(&pi);
        assert!(pi.check_invariant());
        assert_eq!(pi.max_depth(), 1);
    }

    #[test]
    fn counted_zero_when_flat() {
        let pi = ParentArray::new(3);
        pi.set(2, 0);
        assert_eq!(compress_counted(2, &pi), 0);
    }

    #[test]
    fn counted_measures_depth_reduction() {
        let pi = ParentArray::new(8);
        for v in 1..8u32 {
            pi.set(v, v - 1);
        }
        let stores = compress_counted(7, &pi);
        assert!(stores >= 1);
        assert_eq!(pi.get(7), 0);
    }

    #[test]
    fn parallel_compress_on_deep_forest() {
        let n = 100_000u32;
        let pi = ParentArray::new(n as usize);
        // Single path of depth n-1: the compress worst case of Section V-A.
        for v in 1..n {
            pi.set(v, v - 1);
        }
        compress_all(&pi);
        assert_eq!(pi.max_depth(), 1);
        assert!((1..n).all(|v| pi.get(v) == 0));
    }
}
