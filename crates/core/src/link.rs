//! The `link` procedure (paper Fig. 3).
//!
//! Given an edge `(u, v)`, `link` guarantees on return that `u` and `v`
//! belong to the same component tree of `π`, merging their trees if
//! necessary. Unlike Shiloach–Vishkin's `hook`, which defers conflicting
//! connections to the next global iteration, `link` resolves everything
//! locally: it walks both parent chains upward until it either discovers a
//! common ancestor or reaches a root it can hook with a single
//! compare-and-swap. The CAS always hooks the **higher**-index root under
//! the **lower** one, preserving Invariant 1 (`π(x) ≤ x`, Lemma 2), which
//! in turn keeps `π` acyclic (Lemma 1).
//!
//! Because convergence is local, each edge needs to be processed exactly
//! once (Theorem 1) — the property that enables all of Section IV's
//! subgraph sampling.

use crate::parents::ParentArray;
use afforest_graph::Node;

/// Links the edge `(u, v)`: ensures both endpoints share a component tree.
///
/// Lock-free; safe to call concurrently from any number of threads for any
/// set of edges. Returns `true` if this call performed the compare-and-swap
/// that merged two trees (used by spanning-forest extraction; exactly
/// `|V| − C` calls over a full pass return `true`).
///
/// ```
/// use afforest_core::{link, ParentArray};
///
/// let pi = ParentArray::new(3);
/// assert!(link(2, 1, &pi));       // merges {1} and {2}
/// assert!(!link(1, 2, &pi));      // already together
/// assert_eq!(pi.find_root(2), 1); // higher index hooked under lower
/// ```
#[inline]
pub fn link(u: Node, v: Node, pi: &ParentArray) -> bool {
    afforest_obs::count(afforest_obs::Counter::LinkCalls, 1);
    let mut p1 = pi.get(u);
    let mut p2 = pi.get(v);
    while p1 != p2 {
        let high = p1.max(p2);
        let low = p1.min(p2);
        let p_high = pi.get(high);
        // Already hooked under `low` by a racing thread, or we win the race
        // on a still-root `high` ourselves.
        if p_high == low {
            return false;
        }
        if p_high == high {
            if pi.compare_and_swap(high, high, low) {
                afforest_obs::count(afforest_obs::Counter::EdgesLinked, 1);
                return true;
            }
            afforest_obs::count(afforest_obs::Counter::CasRetries, 1);
        }
        // Walk both chains upward and retry (paper Fig. 3 lines 9–10;
        // the double dereference mirrors the GAP formulation).
        p1 = pi.get(pi.get(high));
        p2 = pi.get(low);
    }
    false
}

/// Instrumented variant: returns `(merged, local_iterations)` where
/// `local_iterations` counts loop trips (Table II's "average iterations"
/// column measures exactly this; a converged tree pair costs one trip).
#[inline]
pub fn link_counted(u: Node, v: Node, pi: &ParentArray) -> (bool, u32) {
    let mut iters = 1u32;
    let mut p1 = pi.get(u);
    let mut p2 = pi.get(v);
    while p1 != p2 {
        iters += 1;
        let high = p1.max(p2);
        let low = p1.min(p2);
        let p_high = pi.get(high);
        if p_high == low {
            return (false, iters);
        }
        if p_high == high && pi.compare_and_swap(high, high, low) {
            return (true, iters);
        }
        p1 = pi.get(pi.get(high));
        p2 = pi.get(low);
    }
    (false, iters)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn links_two_singletons() {
        let pi = ParentArray::new(2);
        assert!(link(0, 1, &pi));
        assert_eq!(pi.find_root(1), 0);
        assert!(pi.check_invariant());
    }

    #[test]
    fn idempotent_on_same_tree() {
        let pi = ParentArray::new(2);
        assert!(link(0, 1, &pi));
        assert!(!link(0, 1, &pi)); // second call finds them merged
        assert!(!link(1, 0, &pi));
    }

    #[test]
    fn hooks_high_under_low() {
        let pi = ParentArray::new(10);
        link(9, 3, &pi);
        assert_eq!(pi.get(9), 3);
        assert_eq!(pi.get(3), 3);
    }

    #[test]
    fn merges_two_chains() {
        let pi = ParentArray::new(6);
        link(4, 5, &pi); // tree {4,5} rooted at 4
        link(1, 2, &pi); // tree {1,2} rooted at 1
        link(5, 2, &pi); // must merge both, root 1
        assert_eq!(pi.find_root(4), 1);
        assert_eq!(pi.find_root(5), 1);
        assert!(pi.check_invariant());
    }

    #[test]
    fn self_edge_is_noop() {
        let pi = ParentArray::new(3);
        assert!(!link(1, 1, &pi));
        assert!(pi.is_root(1));
    }

    #[test]
    fn counted_reports_single_iteration_when_converged() {
        let pi = ParentArray::new(4);
        link(0, 1, &pi);
        let (merged, iters) = link_counted(0, 1, &pi);
        assert!(!merged);
        assert_eq!(iters, 1);
    }

    #[test]
    fn counted_counts_walks() {
        let pi = ParentArray::new(8);
        // Build a chain 7→6→…→0 by linking adjacent pairs descending.
        for v in (1..8).rev() {
            link(v, v - 1, &pi);
        }
        let (_, iters) = link_counted(7, 0, &pi);
        assert!(iters >= 1);
        assert!(pi.check_invariant());
    }

    #[test]
    fn parallel_links_converge_to_one_tree() {
        use rayon::prelude::*;
        let n: Node = 10_000;
        let pi = ParentArray::new(n as usize);
        // Random-ish edge soup guaranteeing connectivity: v — v/2 chain
        // (binary-tree edges) plus stride links, all in parallel.
        (1..n).into_par_iter().for_each(|v| {
            link(v, v / 2, &pi);
            link(v, v.saturating_sub(7), &pi);
        });
        assert!(pi.check_invariant());
        // Everything must share root 0.
        assert!((0..n).all(|v| pi.find_root(v) == 0));
    }

    #[test]
    fn adversarial_star_high_hub() {
        use rayon::prelude::*;
        // Section V-A worst case: leaves compete to hook the highest root.
        let n: Node = 5_000;
        let pi = ParentArray::new(n as usize);
        (0..n - 1).into_par_iter().for_each(|v| {
            link(n - 1, v, &pi);
        });
        assert!(pi.check_invariant());
        let root = pi.find_root(n - 1);
        assert!((0..n - 1).all(|v| pi.find_root(v) == root));
    }
}
