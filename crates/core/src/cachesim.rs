//! Cache simulation over π access traces.
//!
//! Section V-C argues Afforest's memory access pattern is "geared towards
//! modern parallel architectures" — sequential neighbor rounds, hot root
//! region, structured sampling — while SV "exhibits seemingly random
//! access". Fig. 7 shows this visually; this module quantifies it by
//! replaying an [`AccessTrace`](crate::instrument::AccessTrace) through a
//! set-associative LRU cache model and reporting hit rates, overall and
//! per phase.
//!
//! The model is a single shared cache (the last-level view; per-core
//! private levels would only amplify the locality differences) with
//! configurable line size, set count, and associativity.

use crate::instrument::{AccessTrace, TracePhase};

/// Set-associative LRU cache geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CacheConfig {
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Number of sets.
    pub num_sets: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Bytes per traced element (π entries are 4-byte `u32`s).
    pub element_bytes: usize,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 64-byte-line cache — typical L1d geometry.
    pub const L1: Self = Self {
        line_bytes: 64,
        num_sets: 64,
        ways: 8,
        element_bytes: 4,
    };

    /// A 1 MiB, 16-way cache — typical per-core L2 geometry.
    pub const L2: Self = Self {
        line_bytes: 64,
        num_sets: 1024,
        ways: 16,
        element_bytes: 4,
    };

    /// Total capacity in bytes.
    pub fn capacity(&self) -> usize {
        self.line_bytes * self.num_sets * self.ways
    }

    fn validate(&self) {
        assert!(self.line_bytes.is_power_of_two(), "line size must be 2^k");
        assert!(self.num_sets > 0 && self.ways > 0, "degenerate geometry");
        assert!(self.element_bytes > 0, "element size must be positive");
    }
}

/// Hit/miss counts, overall and per phase.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses replayed.
    pub accesses: u64,
    /// Total hits.
    pub hits: u64,
    /// Per-phase `(phase, accesses, hits)` in first-seen order.
    pub per_phase: Vec<(TracePhase, u64, u64)>,
}

impl CacheStats {
    /// Overall hit rate in `[0, 1]` (1.0 for an empty trace).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            1.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Hit rate of one phase, if it appears in the trace.
    pub fn phase_hit_rate(&self, phase: TracePhase) -> Option<f64> {
        self.per_phase
            .iter()
            .find(|&&(p, _, _)| p == phase)
            .map(|&(_, a, h)| if a == 0 { 1.0 } else { h as f64 / a as f64 })
    }
}

/// A set-associative LRU cache over element indices.
pub struct CacheSim {
    cfg: CacheConfig,
    /// Per set: resident line tags, most-recently-used last.
    sets: Vec<Vec<u64>>,
    stats: CacheStats,
}

impl CacheSim {
    /// Creates an empty (cold) cache.
    ///
    /// # Panics
    ///
    /// Panics on degenerate geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        cfg.validate();
        Self {
            cfg,
            sets: vec![Vec::with_capacity(cfg.ways); cfg.num_sets],
            stats: CacheStats::default(),
        }
    }

    /// Replays one access to element `index`; returns `true` on hit.
    pub fn access(&mut self, index: u64, phase: TracePhase) -> bool {
        let byte = index * self.cfg.element_bytes as u64;
        let line = byte / self.cfg.line_bytes as u64;
        let set = (line % self.cfg.num_sets as u64) as usize;
        let ways = self.cfg.ways;
        let set_lines = &mut self.sets[set];

        let hit = if let Some(pos) = set_lines.iter().position(|&t| t == line) {
            let tag = set_lines.remove(pos);
            set_lines.push(tag); // refresh LRU position
            true
        } else {
            if set_lines.len() == ways {
                set_lines.remove(0); // evict least-recently-used
            }
            set_lines.push(line);
            false
        };

        self.stats.accesses += 1;
        self.stats.hits += hit as u64;
        match self
            .stats
            .per_phase
            .iter_mut()
            .find(|(p, _, _)| *p == phase)
        {
            Some((_, a, h)) => {
                *a += 1;
                *h += hit as u64;
            }
            None => self.stats.per_phase.push((phase, 1, hit as u64)),
        }
        hit
    }

    /// Consumes the simulator, returning the accumulated statistics.
    pub fn into_stats(self) -> CacheStats {
        self.stats
    }
}

/// Replays a full trace (in `seq` order) through a cold cache.
pub fn simulate_trace(trace: &AccessTrace, cfg: CacheConfig) -> CacheStats {
    let mut sim = CacheSim::new(cfg);
    for e in &trace.events {
        sim.access(e.index as u64, e.phase);
    }
    sim.into_stats()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::afforest::AfforestConfig;
    use crate::instrument::{trace_afforest, trace_sv};
    use afforest_graph::generators::uniform_random;

    fn tiny_cache() -> CacheConfig {
        CacheConfig {
            line_bytes: 64,
            num_sets: 4,
            ways: 2,
            element_bytes: 4,
        }
    }

    #[test]
    fn sequential_scan_is_spatially_local() {
        // 16 u32 per 64-byte line ⇒ 15/16 of a cold sequential scan hits.
        let mut sim = CacheSim::new(tiny_cache());
        for i in 0..1_024u64 {
            sim.access(i, TracePhase::Init);
        }
        let stats = sim.into_stats();
        let expected = 1.0 - 1.0 / 16.0;
        assert!(
            (stats.hit_rate() - expected).abs() < 1e-9,
            "hit rate {}",
            stats.hit_rate()
        );
    }

    #[test]
    fn strided_scan_misses_every_line() {
        let mut sim = CacheSim::new(tiny_cache());
        for i in 0..512u64 {
            sim.access(i * 16, TracePhase::Init); // one access per line
        }
        assert_eq!(sim.into_stats().hits, 0);
    }

    #[test]
    fn repeated_access_hits_after_warmup() {
        let mut sim = CacheSim::new(tiny_cache());
        assert!(!sim.access(0, TracePhase::Init));
        assert!(sim.access(0, TracePhase::Init));
        assert!(sim.access(1, TracePhase::Init)); // same line
    }

    #[test]
    fn lru_evicts_oldest() {
        // tiny cache: 4 sets × 2 ways; lines mapping to the same set are
        // 4 lines apart (line = idx/16, set = line % 4) → indices 0, 64·4?
        // Use line numbers directly: elements 0, 256, 512 share set 0
        // (lines 0, 4, 8).
        let mut sim = CacheSim::new(tiny_cache());
        sim.access(0, TracePhase::Init); // line 0 → set 0
        sim.access(256, TracePhase::Init); // line 4 → set 0
        sim.access(512, TracePhase::Init); // line 8 → set 0, evicts line 0
        assert!(!sim.access(0, TracePhase::Init), "line 0 must be evicted");
        assert!(sim.access(512, TracePhase::Init), "line 8 still resident");
    }

    #[test]
    fn capacity_and_presets() {
        assert_eq!(CacheConfig::L1.capacity(), 32 * 1024);
        assert_eq!(CacheConfig::L2.capacity(), 1024 * 1024);
    }

    #[test]
    fn per_phase_accounting_sums_to_total() {
        let g = uniform_random(512, 4_096, 3);
        let trace = trace_afforest(&g, &AfforestConfig::default());
        let stats = simulate_trace(&trace, CacheConfig::L1);
        assert_eq!(stats.accesses, trace.len() as u64);
        let phase_sum: u64 = stats.per_phase.iter().map(|&(_, a, _)| a).sum();
        assert_eq!(phase_sum, stats.accesses);
        assert!(stats.phase_hit_rate(TracePhase::Init).is_some());
    }

    #[test]
    fn afforest_beats_sv_on_hit_rate() {
        // Section V-C quantified: on a urand graph whose π (64 KiB)
        // exceeds the simulated L1 (32 KiB), Afforest's hit rate clearly
        // beats SV's (measured ≈0.99 vs ≈0.81).
        let g = uniform_random(1 << 14, 1 << 17, 7);
        let sv = simulate_trace(&trace_sv(&g), CacheConfig::L1);
        let aff = simulate_trace(
            &trace_afforest(&g, &AfforestConfig::default()),
            CacheConfig::L1,
        );
        assert!(
            aff.hit_rate() > sv.hit_rate(),
            "afforest {:.3} should beat sv {:.3}",
            aff.hit_rate(),
            sv.hit_rate()
        );
    }

    #[test]
    fn empty_trace() {
        let stats = simulate_trace(&AccessTrace::default(), CacheConfig::L1);
        assert_eq!(stats.accesses, 0);
        assert_eq!(stats.hit_rate(), 1.0);
    }

    #[test]
    #[should_panic(expected = "2^k")]
    fn rejects_bad_line_size() {
        let _ = CacheSim::new(CacheConfig {
            line_bytes: 48,
            num_sets: 4,
            ways: 2,
            element_bytes: 4,
        });
    }
}
