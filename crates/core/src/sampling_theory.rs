//! Executable version of the paper's Section IV-B sampling analysis.
//!
//! The section argues three things, all reproducible here:
//!
//! 1. **Claim 1**: uniformly sampling each edge of a `d`-regular graph
//!    with probability `p = (1 + ε)/d` yields an expected `O(n)` edges,
//!    and (Frieze et al.) the sampled subgraph contains a `Θ(n)`
//!    component almost surely — [`uniform_edge_sample`] +
//!    [`giant_fraction`] let tests and experiments check both sides of
//!    the threshold.
//! 2. **Degree bias**: on graphs with skewed degree distributions,
//!    uniform edge sampling over-covers high-degree vertices and misses
//!    degree-one vertices whose single edge is mandatory in any spanning
//!    forest — quantified by [`coverage_by_degree`].
//! 3. **Neighbor sampling fixes the bias**: [`neighbor_sample`] selects a
//!    fixed number of edges per *vertex*, spreading `O(|V|)` samples
//!    evenly across vertices and components.

use afforest_graph::{CsrGraph, Edge, Node};
use rand::Rng;
use rand::SeedableRng;

/// Samples each undirected edge independently with probability `p`
/// (the `G'_p` construction of Section IV-B). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn uniform_edge_sample(g: &CsrGraph, p: f64, seed: u64) -> Vec<Edge> {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0,1]");
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    g.edges().filter(|_| rng.random::<f64>() < p).collect()
}

/// The first `rounds` neighbors of every vertex, deduplicated — the
/// vertex-neighborhood sample of Section IV-C (exactly the edges
/// Afforest's neighbor rounds process).
pub fn neighbor_sample(g: &CsrGraph, rounds: usize) -> Vec<Edge> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for r in 0..rounds {
        for v in g.vertices() {
            if r < g.degree(v) {
                let w = g.neighbor(v, r);
                let e = (v.min(w), v.max(w));
                if e.0 != e.1 && seen.insert(e) {
                    out.push(e);
                }
            }
        }
    }
    out
}

/// Expected sampled edge count under Claim 1's parameters: for average
/// degree `d` and `p = (1 + eps)/d`, returns `p · |E|` — which the claim
/// shows equals `(1 + eps) · n / 2 = O(n)`.
pub fn claim1_expected_edges(g: &CsrGraph, eps: f64) -> f64 {
    let d = g.avg_degree();
    if d == 0.0 {
        return 0.0;
    }
    ((1.0 + eps) / d) * g.num_edges() as f64
}

/// Fraction of all vertices inside the largest component of the subgraph
/// formed by `edges` over `n` vertices.
pub fn giant_fraction(n: usize, edges: &[Edge]) -> f64 {
    if n == 0 {
        return 0.0;
    }
    let mut parent: Vec<Node> = (0..n as Node).collect();
    fn find(p: &mut [Node], mut x: Node) -> Node {
        while p[x as usize] != x {
            p[x as usize] = p[p[x as usize] as usize];
            x = p[x as usize];
        }
        x
    }
    for &(u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru.max(rv) as usize] = ru.min(rv);
        }
    }
    let mut sizes = std::collections::HashMap::new();
    for v in 0..n as Node {
        *sizes.entry(find(&mut parent, v)).or_insert(0usize) += 1;
    }
    *sizes.values().max().unwrap_or(&0) as f64 / n as f64
}

/// Per-degree coverage of a sampled edge set: `result[d]` is the fraction
/// of degree-`d` vertices touched by at least one sampled edge
/// (`None` when the graph has no degree-`d` vertices).
///
/// Section IV-B's bias argument in numbers: under uniform sampling,
/// coverage at low degrees is far below coverage at high degrees;
/// neighbor sampling covers every vertex with `degree ≥ 1` fully.
pub fn coverage_by_degree(g: &CsrGraph, edges: &[Edge]) -> Vec<Option<f64>> {
    let mut touched = vec![false; g.num_vertices()];
    for &(u, v) in edges {
        touched[u as usize] = true;
        touched[v as usize] = true;
    }
    let max_deg = g.max_degree();
    let mut total = vec![0usize; max_deg + 1];
    let mut covered = vec![0usize; max_deg + 1];
    for v in g.vertices() {
        let d = g.degree(v);
        total[d] += 1;
        if touched[v as usize] {
            covered[d] += 1;
        }
    }
    total
        .into_iter()
        .zip(covered)
        .map(|(t, c)| (t > 0).then(|| c as f64 / t as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_graph::generators::{rmat_scale, uniform_random};

    /// A urand graph with concentrated degree ≈ d, standing in for the
    /// d-regular graphs of the Frieze et al. result.
    fn near_regular(n: usize, d: usize, seed: u64) -> CsrGraph {
        uniform_random(n, n * d / 2, seed)
    }

    #[test]
    fn claim1_expected_edges_is_linear_in_n() {
        let g = near_regular(20_000, 16, 1);
        let expected = claim1_expected_edges(&g, 0.5);
        // (1 + ε) n / 2 = 15_000.
        let target = 1.5 * 20_000.0 / 2.0;
        assert!(
            (expected - target).abs() / target < 0.05,
            "expected {expected}, target {target}"
        );
    }

    #[test]
    fn sample_size_matches_expectation() {
        let g = near_regular(20_000, 16, 2);
        let p = 1.5 / g.avg_degree();
        let edges = uniform_edge_sample(&g, p, 7);
        let expected = claim1_expected_edges(&g, 0.5);
        assert!(
            (edges.len() as f64 - expected).abs() / expected < 0.1,
            "sampled {} vs expected {expected}",
            edges.len()
        );
    }

    #[test]
    fn above_threshold_has_giant_component() {
        // p = 1.5/d ⇒ Θ(n) component (Frieze et al., Section IV-B).
        let g = near_regular(30_000, 16, 3);
        let p = 1.5 / g.avg_degree();
        let edges = uniform_edge_sample(&g, p, 11);
        let frac = giant_fraction(g.num_vertices(), &edges);
        assert!(
            frac > 0.3,
            "giant fraction {frac} too small above threshold"
        );
    }

    #[test]
    fn below_threshold_shatters() {
        // p = 0.5/d ⇒ sub-critical: all components are tiny.
        let g = near_regular(30_000, 16, 4);
        let p = 0.5 / g.avg_degree();
        let edges = uniform_edge_sample(&g, p, 11);
        let frac = giant_fraction(g.num_vertices(), &edges);
        assert!(
            frac < 0.01,
            "giant fraction {frac} too large below threshold"
        );
    }

    #[test]
    fn uniform_sampling_is_degree_biased_on_skewed_graphs() {
        let g = rmat_scale(14, 8, 5);
        let p = 1.5 / g.avg_degree();
        let edges = uniform_edge_sample(&g, p, 9);
        let cov = coverage_by_degree(&g, &edges);
        let low = cov[1].expect("degree-1 vertices exist in RMAT");
        let high_bucket = cov
            .iter()
            .skip(32)
            .flatten()
            .copied()
            .fold(0.0f64, f64::max);
        assert!(
            high_bucket > low + 0.2,
            "expected bias: high-degree coverage {high_bucket:.2} vs degree-1 {low:.2}"
        );
    }

    #[test]
    fn neighbor_sampling_covers_every_nonisolated_vertex() {
        let g = rmat_scale(13, 8, 6);
        let edges = neighbor_sample(&g, 1);
        let cov = coverage_by_degree(&g, &edges);
        for (d, c) in cov.iter().enumerate().skip(1) {
            if let Some(c) = c {
                assert!(
                    (*c - 1.0).abs() < 1e-12,
                    "degree-{d} coverage {c} below 1.0"
                );
            }
        }
        // And the sample is O(|V|): at most one edge per vertex.
        assert!(edges.len() <= g.num_vertices());
    }

    #[test]
    fn neighbor_sample_grows_with_rounds() {
        let g = uniform_random(5_000, 40_000, 8);
        let one = neighbor_sample(&g, 1).len();
        let two = neighbor_sample(&g, 2).len();
        let all = neighbor_sample(&g, g.max_degree()).len();
        assert!(one <= two && two <= all);
        assert_eq!(all, g.num_edges(), "all rounds must cover E");
    }

    #[test]
    fn sample_determinism_and_bounds() {
        let g = uniform_random(1_000, 8_000, 10);
        assert_eq!(
            uniform_edge_sample(&g, 0.3, 5),
            uniform_edge_sample(&g, 0.3, 5)
        );
        assert!(uniform_edge_sample(&g, 0.0, 5).is_empty());
        assert_eq!(uniform_edge_sample(&g, 1.0, 5).len(), g.num_edges());
    }

    #[test]
    fn giant_fraction_edge_cases() {
        assert_eq!(giant_fraction(0, &[]), 0.0);
        assert_eq!(giant_fraction(4, &[]), 0.25);
        assert_eq!(giant_fraction(4, &[(0, 1), (1, 2), (2, 3)]), 1.0);
    }
}
