//! Probabilistic giant-component identification (paper Fig. 5, line 10).
//!
//! After the neighbor rounds plus compression, most vertices of the giant
//! component already point at a single root. Sampling `π` a constant
//! number of times and taking the most frequent value identifies that root
//! with overwhelming probability — at `O(sample_size)` cost, independent
//! of graph size. A wrong answer only costs performance (fewer edges are
//! skipped), never correctness, because Theorem 3 holds for *any* fixed
//! intermediate component.

use crate::parents::ParentArray;
use afforest_graph::Node;
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashMap;

/// Default number of `π` samples (matches the GAP implementation).
pub const DEFAULT_SAMPLES: usize = 1024;

/// Returns the most frequent parent value among `samples` random probes of
/// `π`, i.e. the likely root of the largest intermediate component.
///
/// Assumes trees are depth-1 (call after `compress_all`); with deeper
/// trees the estimate degrades gracefully — sampled values are still
/// tree-internal labels, and ties merely shrink the skipped set.
///
/// # Panics
///
/// Panics if `π` is empty or `samples == 0`.
pub fn sample_frequent_element(pi: &ParentArray, samples: usize, seed: u64) -> Node {
    assert!(!pi.is_empty(), "cannot sample an empty parent array");
    assert!(samples > 0, "need at least one sample");
    let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
    let n = pi.len();
    let mut counts: HashMap<Node, u32> = HashMap::with_capacity(samples.min(n));
    for _ in 0..samples {
        let v = rng.random_range(0..n as u64) as Node;
        *counts.entry(pi.get(v)).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(label, count)| (count, std::cmp::Reverse(label)))
        .map(|(label, _)| label)
        .expect("samples > 0")
}

/// Exact most-frequent element (full scan) — the deterministic reference
/// the sampler is tested against and an option for small graphs.
pub fn exact_frequent_element(pi: &ParentArray) -> Node {
    assert!(!pi.is_empty(), "cannot scan an empty parent array");
    let mut counts: HashMap<Node, u32> = HashMap::new();
    for v in 0..pi.len() as Node {
        *counts.entry(pi.get(v)).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|&(label, count)| (count, std::cmp::Reverse(label)))
        .map(|(label, _)| label)
        .expect("non-empty")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Depth-1 forest where the first `giant_frac` of vertices point at
    /// `giant_root` and the rest stay singletons.
    fn skewed_parents(n: usize, giant_root: Node, giant_frac: f64) -> ParentArray {
        let pi = ParentArray::new(n);
        let cutoff = (n as f64 * giant_frac) as usize;
        for v in 0..cutoff as Node {
            if v > giant_root {
                pi.set(v, giant_root);
            }
        }
        pi
    }

    #[test]
    fn finds_dominant_root() {
        let pi = skewed_parents(10_000, 0, 0.9);
        assert_eq!(sample_frequent_element(&pi, 1024, 7), 0);
    }

    #[test]
    fn exact_matches_sampling_on_dominant() {
        let pi = skewed_parents(5_000, 0, 0.8);
        assert_eq!(
            exact_frequent_element(&pi),
            sample_frequent_element(&pi, 2048, 3)
        );
    }

    #[test]
    fn deterministic_in_seed() {
        let pi = skewed_parents(1000, 0, 0.5);
        assert_eq!(
            sample_frequent_element(&pi, 64, 9),
            sample_frequent_element(&pi, 64, 9)
        );
    }

    #[test]
    fn exact_on_uniform_singletons() {
        // All self-pointing: every value appears once; tie-break picks the
        // lowest label.
        let pi = ParentArray::new(10);
        assert_eq!(exact_frequent_element(&pi), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn rejects_empty() {
        let pi = ParentArray::new(0);
        let _ = sample_frequent_element(&pi, 8, 0);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_zero_samples() {
        let pi = ParentArray::new(4);
        let _ = sample_frequent_element(&pi, 0, 0);
    }
}
