//! Convergence measures (Section V-B): **Linkage** and **Coverage**.
//!
//! For a tree-hooking execution, let `T_t` be the number of trees in `π`
//! after batch `t` (`T_0 = |V|`, `T_∞ = C`):
//!
//! ```text
//! Linkage(t)  = (|V| − T_t) / (|V| − C)
//! Coverage(t) = τ_max^(t) / |c_max|
//! ```
//!
//! where `τ_max^(t)` is the number of `c_max` vertices already gathered in
//! a single tree. Linkage measures global merge progress; Coverage
//! measures how much of the giant component has coalesced — the quantity
//! that decides when large-component skipping becomes profitable.

use crate::compress::compress_all;
use crate::labels::ComponentLabels;
use crate::link::link;
use crate::parents::ParentArray;
use afforest_graph::{CsrGraph, Edge, Node};
use rayon::prelude::*;

/// One measurement after processing a batch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvergencePoint {
    /// Cumulative fraction of edges processed so far, in `[0, 1]`.
    pub edge_fraction: f64,
    /// Linkage measure in `[0, 1]`.
    pub linkage: f64,
    /// Coverage measure in `[0, 1]`.
    pub coverage: f64,
    /// Raw tree count `T_t`.
    pub trees: usize,
}

/// A full convergence curve for one strategy.
#[derive(Clone, Debug, Default)]
pub struct ConvergenceCurve {
    /// Measurements in batch order (first entry is the pre-processing
    /// state at `edge_fraction = 0`).
    pub points: Vec<ConvergencePoint>,
}

impl ConvergenceCurve {
    /// First edge fraction at which linkage reaches `threshold`
    /// (`None` if never).
    pub fn linkage_reaches(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.linkage >= threshold)
            .map(|p| p.edge_fraction)
    }

    /// First edge fraction at which coverage reaches `threshold`.
    pub fn coverage_reaches(&self, threshold: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.coverage >= threshold)
            .map(|p| p.edge_fraction)
    }

    /// The final point (post-convergence).
    pub fn last(&self) -> Option<&ConvergencePoint> {
        self.points.last()
    }
}

/// Runs `link` over the given batches (with `compress` interleaved, as in
/// Section III-B), measuring Linkage and Coverage after every batch.
///
/// `ground_truth` supplies `C` and the membership of `c_max`; obtain it
/// from any verified algorithm (e.g. [`crate::afforest`]).
///
/// # Panics
///
/// Panics if `ground_truth.len() != g.num_vertices()`.
pub fn convergence_curve(
    g: &CsrGraph,
    batches: &[Vec<Edge>],
    ground_truth: &ComponentLabels,
) -> ConvergenceCurve {
    assert_eq!(
        ground_truth.len(),
        g.num_vertices(),
        "ground truth size mismatch"
    );
    let n = g.num_vertices();
    let total_edges: usize = batches.iter().map(|b| b.len()).sum();
    let c = ground_truth.num_components();

    // Members of the true largest component.
    let sizes = ground_truth.component_sizes();
    let dense = ground_truth.dense_ids();
    let (cmax_id, &cmax_size) = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .map(|(i, s)| (i as Node, s))
        .unwrap_or((0, &0));

    let pi = ParentArray::new(n);
    let mut curve = ConvergenceCurve::default();
    let mut processed = 0usize;

    let measure = |pi: &ParentArray, processed: usize| -> ConvergencePoint {
        let trees = pi.count_trees();
        let linkage = if n == c {
            1.0
        } else {
            (n - trees) as f64 / (n - c) as f64
        };
        let coverage = if cmax_size == 0 {
            1.0
        } else {
            coverage_of(pi, &dense, cmax_id, cmax_size)
        };
        ConvergencePoint {
            edge_fraction: if total_edges == 0 {
                1.0
            } else {
                processed as f64 / total_edges as f64
            },
            linkage,
            coverage,
            trees,
        }
    };

    curve.points.push(measure(&pi, 0));
    for batch in batches {
        batch.par_iter().for_each(|&(u, v)| {
            link(u, v, &pi);
        });
        compress_all(&pi);
        processed += batch.len();
        curve.points.push(measure(&pi, processed));
    }
    curve
}

/// `τ_max / |c_max|`: the largest fraction of the true giant component
/// already gathered under one root.
fn coverage_of(pi: &ParentArray, dense: &[Node], cmax_id: Node, cmax_size: usize) -> f64 {
    use std::collections::HashMap;
    let mut counts: HashMap<Node, usize> = HashMap::new();
    for (v, &d) in dense.iter().enumerate() {
        if d == cmax_id {
            *counts.entry(pi.find_root(v as Node)).or_insert(0) += 1;
        }
    }
    let tau_max = counts.values().copied().max().unwrap_or(0);
    tau_max as f64 / cmax_size as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::afforest::{afforest, AfforestConfig};
    use crate::strategies::{partition, Strategy};
    use afforest_graph::generators::{uniform_random, web_graph};

    fn truth(g: &CsrGraph) -> ComponentLabels {
        let l = afforest(g, &AfforestConfig::default());
        assert!(l.verify_against(g));
        l
    }

    #[test]
    fn starts_at_zero_ends_at_one() {
        let g = uniform_random(500, 3_000, 3);
        let gt = truth(&g);
        let batches = partition(&g, Strategy::RowSampling, 8, 0);
        let curve = convergence_curve(&g, &batches, &gt);
        let first = curve.points.first().unwrap();
        let last = curve.last().unwrap();
        assert_eq!(first.edge_fraction, 0.0);
        assert_eq!(first.linkage, 0.0);
        assert!((last.edge_fraction - 1.0).abs() < 1e-12);
        assert!(
            (last.linkage - 1.0).abs() < 1e-12,
            "linkage {}",
            last.linkage
        );
        assert!((last.coverage - 1.0).abs() < 1e-12);
        assert_eq!(last.trees, gt.num_components());
    }

    #[test]
    fn linkage_monotone_nondecreasing() {
        let g = uniform_random(400, 2_000, 5);
        let gt = truth(&g);
        for s in Strategy::ALL {
            let curve = convergence_curve(&g, &partition(&g, s, 10, 1), &gt);
            assert!(
                curve
                    .points
                    .windows(2)
                    .all(|w| w[1].linkage >= w[0].linkage - 1e-12),
                "strategy {s:?} linkage not monotone"
            );
        }
    }

    #[test]
    fn neighbor_sampling_converges_fastest_early() {
        // Fig. 6a's qualitative claim on a web-like graph: after the first
        // two neighbor rounds, neighbor sampling's linkage beats row
        // sampling at a comparable edge fraction.
        let g = web_graph(3_000, 6, 0.8, 8.0, 2);
        let gt = truth(&g);

        let ns = convergence_curve(&g, &partition(&g, Strategy::NeighborSampling, 10, 1), &gt);
        let row = convergence_curve(&g, &partition(&g, Strategy::RowSampling, 10, 1), &gt);

        // Edge fraction needed to reach 80% linkage.
        let ns80 = ns.linkage_reaches(0.8).unwrap();
        let row80 = row.linkage_reaches(0.8).unwrap();
        assert!(
            ns80 < row80,
            "neighbor sampling ({ns80:.3}) should reach 80% linkage before row sampling ({row80:.3})"
        );
    }

    #[test]
    fn spanning_forest_is_optimal() {
        let g = uniform_random(500, 4_000, 7);
        let gt = truth(&g);
        let sf = convergence_curve(&g, &partition(&g, Strategy::SpanningForest, 1, 0), &gt);
        // After the SF batch (its first batch), linkage is already 1.
        assert!((sf.points[1].linkage - 1.0).abs() < 1e-12);
        // And the SF holds |V| − C edges out of |E|.
        let expected_frac = (500 - gt.num_components()) as f64 / g.num_edges() as f64;
        assert!((sf.points[1].edge_fraction - expected_frac).abs() < 1e-9);
    }

    #[test]
    fn single_component_coverage_tracks_linkage() {
        let g = uniform_random(300, 3_000, 9);
        let gt = truth(&g);
        assert_eq!(gt.num_components(), 1);
        let curve = convergence_curve(&g, &partition(&g, Strategy::UniformEdge, 10, 2), &gt);
        for p in &curve.points {
            assert!(p.coverage >= 0.0 && p.coverage <= 1.0);
        }
    }

    #[test]
    fn reaches_helpers() {
        let g = uniform_random(200, 1_200, 4);
        let gt = truth(&g);
        let curve = convergence_curve(&g, &partition(&g, Strategy::RowSampling, 5, 0), &gt);
        assert!(curve.linkage_reaches(0.5).is_some());
        assert!(curve.coverage_reaches(0.5).is_some());
        assert!(curve.linkage_reaches(2.0).is_none());
    }

    #[test]
    fn edgeless_graph_trivially_converged() {
        let g = afforest_graph::GraphBuilder::from_edges(5, &[]).build();
        let gt = truth(&g);
        let curve = convergence_curve(&g, &[], &gt);
        let p = curve.points[0];
        assert_eq!(p.linkage, 1.0); // n == C
        assert_eq!(p.edge_fraction, 1.0);
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn rejects_mismatched_truth() {
        let g = uniform_random(10, 20, 0);
        let gt = ComponentLabels::from_vec(vec![0, 0]);
        let _ = convergence_curve(&g, &[], &gt);
    }
}
