// Seeded lint fixture: everything in here must be flagged. Never compiled —
// the `fixtures` directory is excluded from the workspace and the scan; the
// lint's unit tests feed this file through `lint_source` directly.

use std::sync::atomic::{AtomicU32, Ordering};

fn lost_update(counter: &AtomicU32, p: *mut u32) {
    // A load in a file outside the ordering allowlist.
    let x = counter.load(Ordering::Relaxed);
    // A full fence nobody justified.
    counter.store(x + 1, Ordering::SeqCst);
    unsafe { *p = x };
}
