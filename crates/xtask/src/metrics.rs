//! Telemetry smoke test for `cargo xtask ci`.
//!
//! Drives the live telemetry plane the way an operator's scrape stack
//! would: start `afforest serve` with `--metrics-addr` (and a flight
//! recording destination), push a mixed workload through `afforest
//! loadgen`, then scrape `GET /metrics` twice over plain HTTP. The
//! exposition must parse, the request counters must show the workload,
//! and every `*_total` counter must be monotonic between the two
//! scrapes. After a clean shutdown the flight recording must exist and
//! look like the dump schema.
//!
//! Like the other smokes, the HTTP client and the exposition parser are
//! hand-rolled so xtask stays dependency-free.

use crate::smoke::{cli_cmd, shutdown_and_reap, Reaper};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::Stdio;
use std::time::Duration;

/// Runs the telemetry smoke; returns success.
pub fn run_metrics(root: &Path) -> bool {
    match metrics(root) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("==> metrics smoke failed: {e}");
            false
        }
    }
}

/// A one-shot `GET path` against `addr`; returns the body on HTTP 200.
fn http_get(addr: &str, path: &str) -> Result<String, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())
        .map_err(|e| format!("send request: {e}"))?;
    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("no header/body separator in response")?;
    if !head.starts_with("HTTP/1.0 200") {
        return Err(format!(
            "scrape answered: {}",
            head.lines().next().unwrap_or("")
        ));
    }
    Ok(body.to_string())
}

/// Parses exposition text into `(name, value)` samples, skipping `#`
/// comment lines. Histogram bucket samples keep their `{le="..."}`
/// label as part of the name, which is all the monotonicity check needs.
fn parse_samples(text: &str) -> Result<Vec<(String, u64)>, String> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("malformed sample line: {line}"))?;
        let value: u64 = value
            .parse()
            .map_err(|e| format!("bad value in '{line}': {e}"))?;
        out.push((name.to_string(), value));
    }
    if out.is_empty() {
        return Err("exposition has no samples".to_string());
    }
    Ok(out)
}

fn sample(samples: &[(String, u64)], name: &str) -> Result<u64, String> {
    samples
        .iter()
        .find(|(n, _)| n == name)
        .map(|&(_, v)| v)
        .ok_or_else(|| format!("metric {name} missing from exposition"))
}

fn metrics(root: &Path) -> Result<(), String> {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let graph = tmp.join(format!("afforest-metrics-{pid}.el"));
    let flight = tmp.join(format!("afforest-metrics-flight-{pid}.json"));
    let graph_s = graph.to_string_lossy().into_owned();
    let flight_s = flight.to_string_lossy().into_owned();
    let _ = std::fs::remove_file(&flight);

    // 1. A small graph to serve.
    let status = cli_cmd(root, false)
        .args([
            "generate",
            "urand",
            "--out",
            &graph_s,
            "--n",
            "2000",
            "--edge-factor",
            "4",
            "--seed",
            "9",
        ])
        .status()
        .map_err(|e| format!("spawn generate: {e}"))?;
    if !status.success() {
        return Err(format!("generate failed ({status})"));
    }

    // 2. Serve with the metrics sidecar and a flight recording, both on
    // ephemeral ports; parse both announced addresses.
    let mut server = Reaper(
        cli_cmd(root, false)
            .args([
                "serve",
                &graph_s,
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "4",
                "--metrics-addr",
                "127.0.0.1:0",
                "--events-out",
                &flight_s,
            ])
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn serve: {e}"))?,
    );
    let stdout = server.0.stdout.take().ok_or("serve stdout not captured")?;
    let mut lines = BufReader::new(stdout).lines();
    let mut wire_addr = None;
    let mut scrape_addr = None;
    while wire_addr.is_none() || scrape_addr.is_none() {
        let line = lines
            .next()
            .ok_or("serve exited before announcing its addresses")?
            .map_err(|e| format!("read serve stdout: {e}"))?;
        if let Some(rest) = line.strip_prefix("listening on ") {
            wire_addr = rest.split_whitespace().next().map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("metrics on http://") {
            scrape_addr = rest.strip_suffix("/metrics").map(str::to_string);
        }
    }
    let (wire_addr, scrape_addr) = (wire_addr.unwrap(), scrape_addr.unwrap());

    // 3. A mixed workload so every hot-path metric moves.
    let out = cli_cmd(root, false)
        .args([
            "loadgen",
            &wire_addr,
            "--connections",
            "3",
            "--requests",
            "2000",
            "--read-pct",
            "80",
            "--insert-batch",
            "16",
            "--seed",
            "11",
        ])
        .output()
        .map_err(|e| format!("spawn loadgen: {e}"))?;
    if !out.status.success() {
        return Err(format!(
            "loadgen failed ({}):\n{}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stdout),
            String::from_utf8_lossy(&out.stderr)
        ));
    }

    // 4. Scrape twice. The workload is already drained, so the second
    // scrape must show every counter at-or-above the first (monotonic).
    let first = parse_samples(&http_get(&scrape_addr, "/metrics")?)?;
    let second = parse_samples(&http_get(&scrape_addr, "/metrics")?)?;
    let connected = sample(&first, "afforest_requests_connected_total")?;
    let ingested = sample(&first, "afforest_edges_ingested_total")?;
    if connected == 0 || ingested == 0 {
        return Err(format!(
            "workload not visible in scrape: connected={connected}, ingested={ingested}"
        ));
    }
    if sample(&first, "afforest_request_latency_connected_ns_count")? == 0 {
        return Err("latency histogram recorded no samples".to_string());
    }
    for (name, v1) in &first {
        if !name.ends_with("_total") {
            continue;
        }
        let v2 = sample(&second, name)?;
        if v2 < *v1 {
            return Err(format!("counter {name} went backwards: {v1} -> {v2}"));
        }
    }

    // 5. Clean shutdown; the flight recording must appear and parse as a
    // dump document.
    shutdown_and_reap(&wire_addr, &mut server)?;
    let dump = std::fs::read_to_string(&flight).map_err(|e| format!("{flight_s}: {e}"))?;
    if !dump.contains("\"schema\": 1") || !dump.contains("\"events\"") {
        return Err(format!(
            "flight recording does not look like a dump:\n{dump}"
        ));
    }

    let _ = std::fs::remove_file(&graph);
    let _ = std::fs::remove_file(&flight);
    println!(
        "==> metrics smoke: {} samples scraped from {scrape_addr}, counters monotonic, flight dump written",
        first.len()
    );
    Ok(())
}
