//! Sharded serving smoke test for `cargo xtask ci`.
//!
//! The `crates/shard` contract end to end, across real processes: start
//! two shard workers (`afforest serve --vertices N_k`, each with its own
//! WAL namespace), put a router in front (`--shard-addrs`), ingest a
//! deterministic edge mix — shard-local and cross-shard — over the wire,
//! and require the router's answers to equal a single-engine
//! `IncrementalCc` oracle. Then SIGKILL one worker mid-serve, restart it
//! from its WAL namespace on the same port, and require the router —
//! whose per-shard clients reconnect and retry — to answer identically
//! again. The router's `/metrics` sidecar must expose the
//! `{shard="k"}`-labelled series throughout.

use crate::smoke::{cli_cmd, connect, shutdown_and_reap, Reaper};
use afforest_core::IncrementalCc;
use afforest_serve::http::http_get;
use afforest_serve::RetryPolicy;
use afforest_shard::ShardPlan;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::Stdio;
use std::time::{Duration, Instant};

/// Global vertex universe, split across [`SHARDS`] workers.
const N: usize = 2000;
const SHARDS: usize = 2;
/// Edges ingested over the wire (the workers start empty).
const INSERTS: usize = 240;

/// Runs the sharded serving smoke; returns success.
pub fn run_shard(root: &Path) -> bool {
    match shard(root) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("==> sharded serving smoke failed: {e}");
            false
        }
    }
}

/// The deterministic ingest workload (shared with the oracle). The
/// multipliers mod `N` land on both sides of the slice boundary, so the
/// mix always contains shard-local and cross-shard edges.
fn inserted_edges() -> Vec<(u32, u32)> {
    (0..INSERTS as u32)
        .map(|i| ((i * 37) % N as u32, (i * 61 + 1) % N as u32))
        .collect()
}

/// A worker's stdout reader. Kept alive for the worker's lifetime: the
/// child prints its shutdown report at exit, and a closed pipe would
/// turn that print into a panic.
pub(crate) type WorkerOut = BufReader<std::process::ChildStdout>;

/// Starts one shard worker serving an empty `vertices`-vertex slice on
/// `addr` with WAL namespace `wal` (plus any `extra` serve flags, e.g.
/// `--slow-log` for the trace smoke); returns the reaper, the bound
/// address parsed from its announcement, and the live stdout reader.
pub(crate) fn spawn_worker(
    root: &Path,
    vertices: usize,
    addr: &str,
    wal: &str,
    extra: &[&str],
) -> Result<(Reaper, String, WorkerOut), String> {
    let vertices = vertices.to_string();
    let mut child = Reaper(
        cli_cmd(root, false)
            .args([
                "serve",
                "--vertices",
                &vertices,
                "--addr",
                addr,
                "--workers",
                "2",
                "--max-batch-edges",
                "64",
                "--max-batch-delay-ms",
                "1",
                "--wal-dir",
                wal,
                "--wal-snapshot-every",
                "8",
            ])
            .args(extra)
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn worker: {e}"))?,
    );
    let stdout = child.0.stdout.take().ok_or("worker stdout not captured")?;
    let mut reader = BufReader::new(stdout);
    loop {
        let mut line = String::new();
        let read = reader
            .read_line(&mut line)
            .map_err(|e| format!("read worker stdout: {e}"))?;
        if read == 0 {
            return Err("worker exited before announcing its address".into());
        }
        if let Some(rest) = line.strip_prefix("listening on ") {
            let bound = rest
                .split_whitespace()
                .next()
                .ok_or("malformed listen line")?
                .to_string();
            return Ok((child, bound, reader));
        }
    }
}

/// Restarts a killed worker on its original (now fixed) address,
/// retrying while the kernel releases the port.
pub(crate) fn respawn_worker(
    root: &Path,
    vertices: usize,
    addr: &str,
    wal: &str,
) -> Result<(Reaper, WorkerOut), String> {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        match spawn_worker(root, vertices, addr, wal, &[]) {
            Ok((child, _, reader)) => return Ok((child, reader)),
            Err(e) if Instant::now() > deadline => return Err(format!("restart worker: {e}")),
            Err(_) => std::thread::sleep(Duration::from_millis(250)),
        }
    }
}

/// Waits for a clean process exit (the shutdown cascade reaches workers
/// through the router's backend teardown).
pub(crate) fn wait_exit(name: &str, child: &mut Reaper) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match child.0.try_wait().map_err(|e| e.to_string())? {
            Some(s) if s.success() => return Ok(()),
            Some(s) => return Err(format!("{name} exited with {s}")),
            None if Instant::now() > deadline => {
                return Err(format!("{name} did not exit within 30 s of shutdown"))
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// The labelled and router-global series every scrape must contain.
const REQUIRED_SERIES: [&str; 6] = [
    "afforest_shard_requests_total{shard=\"0\"}",
    "afforest_shard_requests_total{shard=\"1\"}",
    "afforest_shard_epoch{shard=\"0\"}",
    "afforest_shard_epoch{shard=\"1\"}",
    "afforest_router_requests_total",
    "afforest_boundary_edges",
];

fn scrape_has_series(scrape_addr: &str) -> Result<(), String> {
    let (status, scrape) = http_get(scrape_addr, "/metrics")?;
    if status != 200 {
        return Err(format!("scrape answered HTTP {status}"));
    }
    for series in REQUIRED_SERIES {
        if !scrape.contains(series) {
            return Err(format!("scrape is missing the series {series}"));
        }
    }
    Ok(())
}

fn shard(root: &Path) -> Result<(), String> {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let wal: Vec<String> = (0..SHARDS)
        .map(|k| {
            tmp.join(format!("afforest-shard-smoke-w{k}-{pid}"))
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    let router_wal = tmp
        .join(format!("afforest-shard-smoke-router-{pid}"))
        .to_string_lossy()
        .into_owned();
    for dir in wal.iter().chain([&router_wal]) {
        let _ = std::fs::remove_dir_all(dir);
    }

    // 1. Two shard workers on ephemeral ports, each an empty slice of
    // the plan plus a private WAL namespace.
    let plan = ShardPlan::new(N, SHARDS);
    let (mut w0, a0, _out0) = spawn_worker(root, plan.shard_len(0), "127.0.0.1:0", &wal[0], &[])?;
    let (mut w1, a1, _out1) = spawn_worker(root, plan.shard_len(1), "127.0.0.1:0", &wal[1], &[])?;

    // 2. The router, dialing both workers, with the metrics sidecar. A
    // generous retry budget is the point: it is what absorbs the worker
    // kill below.
    let shard_addrs = format!("{a0},{a1}");
    let n_s = N.to_string();
    let mut router = Reaper(
        cli_cmd(root, false)
            .args([
                "serve",
                "--shard-addrs",
                &shard_addrs,
                "--vertices",
                &n_s,
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "4",
                "--metrics-addr",
                "127.0.0.1:0",
                "--wal-dir",
                &router_wal,
                "--max-retries",
                "60",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn router: {e}"))?,
    );
    let stdout = router.0.stdout.take().ok_or("router stdout not captured")?;
    let mut lines = BufReader::new(stdout).lines();
    let mut addr = None;
    let mut scrape_addr = None;
    while addr.is_none() || scrape_addr.is_none() {
        let line = lines
            .next()
            .ok_or("router exited before announcing its addresses")?
            .map_err(|e| format!("read router stdout: {e}"))?;
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = rest.split_whitespace().next().map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("metrics on http://") {
            scrape_addr = rest.strip_suffix("/metrics").map(str::to_string);
        }
    }
    let (addr, scrape_addr) = (addr.unwrap(), scrape_addr.unwrap());

    // 3. Ingest the deterministic workload through the router. The
    // client retries, and re-inserting an edge is idempotent for
    // connectivity, so the oracle comparison below stays exact.
    let edges = inserted_edges();
    let cut = edges.iter().filter(|&&(u, v)| plan.is_cut(u, v)).count();
    if cut == 0 || cut == edges.len() {
        return Err(format!(
            "workload degenerated: {cut} of {} edges cross shards",
            edges.len()
        ));
    }
    let mut client = connect(&addr)?.with_retry(RetryPolicy {
        max_retries: 12,
        backoff: Duration::from_millis(20),
    });
    for chunk in edges.chunks(10) {
        let accepted = client
            .insert_edges(chunk)
            .map_err(|e| format!("insert: {e}"))?;
        if accepted as usize != chunk.len() {
            return Err(format!(
                "insert accepted {accepted} of {} edge(s)",
                chunk.len()
            ));
        }
    }

    // 4. Wait until every admitted internal edge has been applied by its
    // shard: aggregated queue empty and the ingested counter stable
    // (retried inserts may re-apply, so `>=`, not `==`). Applied ⇒
    // logged, so from here a worker kill loses nothing.
    let internal = (edges.len() - cut) as u64;
    let deadline = Instant::now() + Duration::from_secs(60);
    let mut last_ingested = u64::MAX;
    loop {
        let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
        if stats.queue_depth == 0
            && stats.edges_ingested >= internal
            && stats.edges_ingested == last_ingested
        {
            break;
        }
        last_ingested = stats.edges_ingested;
        if Instant::now() > deadline {
            return Err(format!(
                "ingest never settled: {} applied of {internal} internal, queue depth {}",
                stats.edges_ingested, stats.queue_depth
            ));
        }
        std::thread::sleep(Duration::from_millis(150));
    }

    // 5. Oracle: one unsharded union-find over the same edges. Component
    // count, per-vertex labels around the slice boundary, and a
    // cross-shard connectivity probe must all agree.
    let mut oracle = IncrementalCc::new(N);
    oracle.insert_batch(&edges);
    let expected = oracle.num_components() as u64;
    if expected <= 1 {
        return Err("oracle degenerated to one component; the assertion has no teeth".into());
    }
    let got = client
        .num_components()
        .map_err(|e| format!("num_components: {e}"))?;
    if got != expected {
        return Err(format!(
            "router reports {got} component(s), oracle has {expected}"
        ));
    }
    let labels = oracle.labels();
    let boundary = plan.shard_len(0) as u32;
    for u in [0, boundary - 1, boundary, (N - 1) as u32] {
        let label = client.component(u).map_err(|e| format!("component: {e}"))?;
        if label != labels.label(u) {
            return Err(format!(
                "Component({u}) = {label}, oracle says {}",
                labels.label(u)
            ));
        }
    }
    let &(cu, cv) = edges
        .iter()
        .find(|&&(u, v)| plan.is_cut(u, v))
        .ok_or("no cut edge despite the count above")?;
    if !client
        .connected(cu, cv)
        .map_err(|e| format!("connected: {e}"))?
    {
        return Err(format!("cross-shard edge ({cu}, {cv}) not connected"));
    }
    scrape_has_series(&scrape_addr)?;

    // 6. SIGKILL worker 1 — no drain, no goodbye — and restart it from
    // its WAL namespace on the same port. The router's shard client
    // reconnects on the next call; answers must be unchanged.
    w1.0.kill().map_err(|e| format!("kill worker: {e}"))?;
    let _ = w1.0.wait();
    let (mut w1, _out1b) = respawn_worker(root, plan.shard_len(1), &a1, &wal[1])?;
    let got = client
        .num_components()
        .map_err(|e| format!("num_components after restart: {e}"))?;
    if got != expected {
        return Err(format!(
            "after worker restart the router reports {got} component(s), oracle has {expected}"
        ));
    }
    if !client
        .connected(cu, cv)
        .map_err(|e| format!("connected after restart: {e}"))?
    {
        return Err(format!(
            "cross-shard edge ({cu}, {cv}) lost across the worker restart"
        ));
    }
    scrape_has_series(&scrape_addr)?;

    // 7. One Shutdown frame to the router tears the whole cluster down:
    // the router drains, stops its backend (which forwards Shutdown to
    // every worker), and all three processes exit cleanly.
    shutdown_and_reap(&addr, &mut router)?;
    wait_exit("worker 0", &mut w0)?;
    wait_exit("worker 1", &mut w1)?;

    for dir in wal.iter().chain([&router_wal]) {
        let _ = std::fs::remove_dir_all(dir);
    }
    println!(
        "==> sharded serving smoke: router + {SHARDS} workers served {INSERTS} edges ({cut} cut), \
         survived a worker SIGKILL, {expected} component(s) == oracle"
    );
    Ok(())
}
