//! Crash-recovery smoke test for `cargo xtask ci`.
//!
//! The WAL's whole contract in one scenario: start `afforest serve` with
//! `--wal-dir`, ingest a known edge set over the wire, wait until the
//! server has applied it (append precedes apply, so applied ⇒ logged),
//! then SIGKILL the process — no drain, no shutdown frame. `afforest
//! recover` must then report exactly the component count an uninterrupted
//! run would have: `afforest cc` over the seed graph plus the ingested
//! edges is the oracle.
//!
//! CI runs it twice: once clean and once with chaos faults injected
//! (stretched applies and torn response frames). The injected fault
//! classes preserve WAL equivalence — a torn response only hides an ack,
//! and re-inserting an edge is idempotent for connectivity — so the same
//! exact-count assertion holds under chaos.

use crate::smoke::{cli_cmd, Reaper};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::Stdio;
use std::time::{Duration, Instant};

/// Edges ingested over the wire, on top of the generated graph.
const INSERTS: usize = 200;
const GRAPH_N: u32 = 2000;

/// Runs the crash-recovery smoke; returns success.
pub fn run_crash(root: &Path, faults: bool) -> bool {
    match crash(root, faults) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("==> crash recovery smoke{} failed: {e}", tag(faults));
            false
        }
    }
}

fn tag(faults: bool) -> &'static str {
    if faults {
        " (faults)"
    } else {
        ""
    }
}

/// The deterministic ingest workload (shared with the oracle).
fn inserted_edges() -> Vec<(u32, u32)> {
    (0..INSERTS as u32)
        .map(|i| ((i * 37) % GRAPH_N, (i * 61 + 1) % GRAPH_N))
        .collect()
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut framed = (payload.len() as u32).to_le_bytes().to_vec();
    framed.extend_from_slice(&payload);
    framed
}

/// A framed `InsertEdges` request (opcode 0x05), hand-encoded like the
/// Shutdown frame in `smoke.rs` so xtask stays dependency-free.
fn insert_frame(edges: &[(u32, u32)]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(5 + edges.len() * 8);
    payload.push(0x05);
    payload.extend_from_slice(&(edges.len() as u32).to_le_bytes());
    for &(u, v) in edges {
        payload.extend_from_slice(&u.to_le_bytes());
        payload.extend_from_slice(&v.to_le_bytes());
    }
    frame(payload)
}

/// One request on a fresh connection; returns the response payload.
fn try_call(addr: &str, framed: &[u8]) -> Result<Vec<u8>, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| e.to_string())?;
    stream.write_all(framed).map_err(|e| format!("send: {e}"))?;
    let mut len = [0u8; 4];
    stream
        .read_exact(&mut len)
        .map_err(|e| format!("read length: {e}"))?;
    let n = u32::from_le_bytes(len) as usize;
    if n > 1 << 20 {
        return Err(format!("absurd response length {n}"));
    }
    let mut payload = vec![0u8; n];
    stream
        .read_exact(&mut payload)
        .map_err(|e| format!("read payload: {e}"))?;
    Ok(payload)
}

/// [`try_call`] with retries: under `--faults` the server tears response
/// frames, which looks like a dead connection. Retrying an insert is safe
/// — edge insertion is idempotent for connectivity.
fn call(addr: &str, framed: &[u8]) -> Result<Vec<u8>, String> {
    let mut last = String::new();
    for _ in 0..12 {
        match try_call(addr, framed) {
            Ok(p) => return Ok(p),
            Err(e) => {
                last = e;
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
    Err(format!("request kept failing after retries: {last}"))
}

/// Extracts `(edges_ingested, queue_depth)` from a Stats response
/// (opcode 0x86 then nine u64s; fields 4 and 6 — the telemetry fields
/// appended after queue_depth keep the original offsets valid).
fn parse_stats(payload: &[u8]) -> Result<(u64, u64), String> {
    if payload.first() != Some(&0x86) || payload.len() != 73 {
        return Err(format!("unexpected stats response: {payload:02x?}"));
    }
    let u64_at = |i: usize| u64::from_le_bytes(payload[i..i + 8].try_into().expect("8 bytes"));
    Ok((u64_at(25), u64_at(41)))
}

/// Pulls `components:  N` out of `afforest recover` / `afforest cc` text.
fn parse_components(text: &str) -> Result<u64, String> {
    text.lines()
        .find_map(|l| l.strip_prefix("components:"))
        .ok_or_else(|| format!("no components line in:\n{text}"))?
        .trim()
        .parse()
        .map_err(|e| format!("bad components line: {e}"))
}

fn crash(root: &Path, faults: bool) -> Result<(), String> {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let suffix = format!("{pid}-{}", faults as u8);
    let graph = tmp.join(format!("afforest-crash-{suffix}.el"));
    let combined = tmp.join(format!("afforest-crash-combined-{suffix}.el"));
    let wal_dir = tmp.join(format!("afforest-crash-wal-{suffix}"));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let graph_s = graph.to_string_lossy().into_owned();
    let wal_s = wal_dir.to_string_lossy().into_owned();

    // 1. Generate the seed graph. Sparse on purpose: hundreds of
    // components, so a single lost batch moves the count — a dense graph
    // would make the equivalence assertion trivially `1 == 1`.
    let status = cli_cmd(root, false)
        .args([
            "generate",
            "urand",
            "--out",
            &graph_s,
            "--n",
            "2000",
            "--edge-factor",
            "1",
            "--seed",
            "3",
        ])
        .status()
        .map_err(|e| format!("spawn generate: {e}"))?;
    if !status.success() {
        return Err(format!("generate failed ({status})"));
    }

    // 2. Serve with a WAL (snapshot interval small enough that compaction
    // actually runs), ephemeral port.
    let mut args = vec![
        "serve",
        &graph_s,
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "4",
        "--max-batch-edges",
        "64",
        "--max-batch-delay-ms",
        "1",
        "--wal-dir",
        &wal_s,
        "--wal-snapshot-every",
        "8",
    ];
    if faults {
        args.extend([
            "--faults",
            "seed=5,apply_delay_ms=2,apply_delay_prob=0.5,torn_frame=0.02",
        ]);
    }
    let mut server = Reaper(
        cli_cmd(root, false)
            .args(&args)
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn serve: {e}"))?,
    );
    let stdout = server.0.stdout.take().ok_or("serve stdout not captured")?;
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .ok_or("serve exited before announcing its address")?
            .map_err(|e| format!("read serve stdout: {e}"))?;
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest
                .split_whitespace()
                .next()
                .ok_or("malformed listen line")?
                .to_string();
        }
    };

    // 3. Ingest the known workload in small batches.
    let edges = inserted_edges();
    for chunk in edges.chunks(10) {
        let resp = call(&addr, &insert_frame(chunk))?;
        if resp.first() != Some(&0x85) {
            return Err(format!("insert answered {resp:02x?}, expected Accepted"));
        }
    }

    // 4. Wait until everything admitted has been applied: queue empty and
    // the ingested counter stable across two polls. Applied ⇒ logged, so
    // from here a kill loses nothing.
    let stats_frame = frame(vec![0x06]);
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last_ingested = 0u64;
    loop {
        let (ingested, depth) = parse_stats(&call(&addr, &stats_frame)?)?;
        if depth == 0 && ingested >= INSERTS as u64 && ingested == last_ingested {
            break;
        }
        last_ingested = ingested;
        if Instant::now() > deadline {
            return Err(format!(
                "ingest never settled: {ingested} applied, queue depth {depth}"
            ));
        }
        std::thread::sleep(Duration::from_millis(150));
    }

    // 5. Crash: SIGKILL, no drain, no goodbye.
    server.0.kill().map_err(|e| format!("kill serve: {e}"))?;
    let _ = server.0.wait();

    // 6. Offline recovery must see the full ingested history.
    let out = cli_cmd(root, false)
        .args(["recover", &graph_s, "--wal-dir", &wal_s])
        .output()
        .map_err(|e| format!("spawn recover: {e}"))?;
    let text = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        return Err(format!(
            "recover failed ({}):\n{text}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let recovered = parse_components(&text)?;

    // 7. Oracle: an uninterrupted run over seed graph + ingested edges.
    let mut all = std::fs::read_to_string(&graph).map_err(|e| format!("read graph: {e}"))?;
    for &(u, v) in &edges {
        all.push_str(&format!("{u} {v}\n"));
    }
    let combined_s = combined.to_string_lossy().into_owned();
    std::fs::write(&combined, all).map_err(|e| format!("write combined graph: {e}"))?;
    let out = cli_cmd(root, false)
        .args(["cc", &combined_s])
        .output()
        .map_err(|e| format!("spawn cc: {e}"))?;
    if !out.status.success() {
        return Err(format!("oracle cc failed ({})", out.status));
    }
    let expected = parse_components(&String::from_utf8_lossy(&out.stdout))?;

    if recovered != expected {
        return Err(format!(
            "recovered {recovered} component(s), uninterrupted run has {expected}"
        ));
    }
    if recovered <= 1 {
        // The seed graph is generated sparse so the count is sensitive to
        // lost batches; a single component means this check went soft.
        return Err(format!(
            "oracle degenerated to {recovered} component(s); the assertion has no teeth"
        ));
    }

    let _ = std::fs::remove_file(&graph);
    let _ = std::fs::remove_file(&combined);
    let _ = std::fs::remove_dir_all(&wal_dir);
    println!(
        "==> crash recovery smoke{}: killed mid-serve, recovered {recovered} component(s) == uninterrupted run",
        tag(faults)
    );
    Ok(())
}
