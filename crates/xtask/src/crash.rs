//! Crash-recovery smoke test for `cargo xtask ci`.
//!
//! The WAL's whole contract in one scenario: start `afforest serve` with
//! `--wal-dir`, ingest a known edge set over the wire, wait until the
//! server has applied it (append precedes apply, so applied ⇒ logged),
//! then SIGKILL the process — no drain, no shutdown frame. `afforest
//! recover` must then report exactly the component count an uninterrupted
//! run would have: `afforest cc` over the seed graph plus the ingested
//! edges is the oracle.
//!
//! CI runs it twice: once clean and once with chaos faults injected
//! (stretched applies and torn response frames). The injected fault
//! classes preserve WAL equivalence — a torn response only hides an ack,
//! and re-inserting an edge is idempotent for connectivity — so the same
//! exact-count assertion holds under chaos.

use crate::smoke::{cli_cmd, connect, Reaper};
use afforest_serve::{Client, RetryPolicy};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::Stdio;
use std::time::{Duration, Instant};

/// Edges ingested over the wire, on top of the generated graph.
const INSERTS: usize = 200;
const GRAPH_N: u32 = 2000;

/// Runs the crash-recovery smoke; returns success.
pub fn run_crash(root: &Path, faults: bool) -> bool {
    match crash(root, faults) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("==> crash recovery smoke{} failed: {e}", tag(faults));
            false
        }
    }
}

fn tag(faults: bool) -> &'static str {
    if faults {
        " (faults)"
    } else {
        ""
    }
}

/// The deterministic ingest workload (shared with the oracle).
fn inserted_edges() -> Vec<(u32, u32)> {
    (0..INSERTS as u32)
        .map(|i| ((i * 37) % GRAPH_N, (i * 61 + 1) % GRAPH_N))
        .collect()
}

/// A typed client tuned for the chaos run: under `--faults` the server
/// tears response frames, which looks like a dead connection; the
/// client's retry policy reconnects and re-sends. Retrying an insert is
/// safe — edge insertion is idempotent for connectivity.
fn chaos_client(addr: &str) -> Result<Client, String> {
    Ok(connect(addr)?.with_retry(RetryPolicy {
        max_retries: 12,
        backoff: Duration::from_millis(20),
    }))
}

/// Pulls `components:  N` out of `afforest recover` / `afforest cc` text.
fn parse_components(text: &str) -> Result<u64, String> {
    text.lines()
        .find_map(|l| l.strip_prefix("components:"))
        .ok_or_else(|| format!("no components line in:\n{text}"))?
        .trim()
        .parse()
        .map_err(|e| format!("bad components line: {e}"))
}

fn crash(root: &Path, faults: bool) -> Result<(), String> {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let suffix = format!("{pid}-{}", faults as u8);
    let graph = tmp.join(format!("afforest-crash-{suffix}.el"));
    let combined = tmp.join(format!("afforest-crash-combined-{suffix}.el"));
    let wal_dir = tmp.join(format!("afforest-crash-wal-{suffix}"));
    let _ = std::fs::remove_dir_all(&wal_dir);
    let graph_s = graph.to_string_lossy().into_owned();
    let wal_s = wal_dir.to_string_lossy().into_owned();

    // 1. Generate the seed graph. Sparse on purpose: hundreds of
    // components, so a single lost batch moves the count — a dense graph
    // would make the equivalence assertion trivially `1 == 1`.
    let status = cli_cmd(root, false)
        .args([
            "generate",
            "urand",
            "--out",
            &graph_s,
            "--n",
            "2000",
            "--edge-factor",
            "1",
            "--seed",
            "3",
        ])
        .status()
        .map_err(|e| format!("spawn generate: {e}"))?;
    if !status.success() {
        return Err(format!("generate failed ({status})"));
    }

    // 2. Serve with a WAL (snapshot interval small enough that compaction
    // actually runs), ephemeral port.
    let mut args = vec![
        "serve",
        &graph_s,
        "--addr",
        "127.0.0.1:0",
        "--workers",
        "4",
        "--max-batch-edges",
        "64",
        "--max-batch-delay-ms",
        "1",
        "--wal-dir",
        &wal_s,
        "--wal-snapshot-every",
        "8",
    ];
    if faults {
        args.extend([
            "--faults",
            "seed=5,apply_delay_ms=2,apply_delay_prob=0.5,torn_frame=0.02",
        ]);
    }
    let mut server = Reaper(
        cli_cmd(root, false)
            .args(&args)
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn serve: {e}"))?,
    );
    let stdout = server.0.stdout.take().ok_or("serve stdout not captured")?;
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .ok_or("serve exited before announcing its address")?
            .map_err(|e| format!("read serve stdout: {e}"))?;
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest
                .split_whitespace()
                .next()
                .ok_or("malformed listen line")?
                .to_string();
        }
    };

    // 3. Ingest the known workload in small batches.
    let mut client = chaos_client(&addr)?;
    let edges = inserted_edges();
    for chunk in edges.chunks(10) {
        let accepted = client
            .insert_edges(chunk)
            .map_err(|e| format!("insert: {e}"))?;
        if accepted as usize != chunk.len() {
            return Err(format!(
                "insert accepted {accepted} of {} edge(s)",
                chunk.len()
            ));
        }
    }

    // 4. Wait until everything admitted has been applied: queue empty and
    // the ingested counter stable across two polls. Applied ⇒ logged, so
    // from here a kill loses nothing.
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut last_ingested = 0u64;
    loop {
        let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
        let (ingested, depth) = (stats.edges_ingested, stats.queue_depth);
        if depth == 0 && ingested >= INSERTS as u64 && ingested == last_ingested {
            break;
        }
        last_ingested = ingested;
        if Instant::now() > deadline {
            return Err(format!(
                "ingest never settled: {ingested} applied, queue depth {depth}"
            ));
        }
        std::thread::sleep(Duration::from_millis(150));
    }
    drop(client);

    // 5. Crash: SIGKILL, no drain, no goodbye.
    server.0.kill().map_err(|e| format!("kill serve: {e}"))?;
    let _ = server.0.wait();

    // 6. Offline recovery must see the full ingested history.
    let out = cli_cmd(root, false)
        .args(["recover", &graph_s, "--wal-dir", &wal_s])
        .output()
        .map_err(|e| format!("spawn recover: {e}"))?;
    let text = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        return Err(format!(
            "recover failed ({}):\n{text}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    let recovered = parse_components(&text)?;

    // 7. Oracle: an uninterrupted run over seed graph + ingested edges.
    let mut all = std::fs::read_to_string(&graph).map_err(|e| format!("read graph: {e}"))?;
    for &(u, v) in &edges {
        all.push_str(&format!("{u} {v}\n"));
    }
    let combined_s = combined.to_string_lossy().into_owned();
    std::fs::write(&combined, all).map_err(|e| format!("write combined graph: {e}"))?;
    let out = cli_cmd(root, false)
        .args(["cc", &combined_s])
        .output()
        .map_err(|e| format!("spawn cc: {e}"))?;
    if !out.status.success() {
        return Err(format!("oracle cc failed ({})", out.status));
    }
    let expected = parse_components(&String::from_utf8_lossy(&out.stdout))?;

    if recovered != expected {
        return Err(format!(
            "recovered {recovered} component(s), uninterrupted run has {expected}"
        ));
    }
    if recovered <= 1 {
        // The seed graph is generated sparse so the count is sensitive to
        // lost batches; a single component means this check went soft.
        return Err(format!(
            "oracle degenerated to {recovered} component(s); the assertion has no teeth"
        ));
    }

    let _ = std::fs::remove_file(&graph);
    let _ = std::fs::remove_file(&combined);
    let _ = std::fs::remove_dir_all(&wal_dir);
    println!(
        "==> crash recovery smoke{}: killed mid-serve, recovered {recovered} component(s) == uninterrupted run",
        tag(faults)
    );
    Ok(())
}
