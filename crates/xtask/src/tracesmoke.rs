//! End-to-end request-tracing smoke test for `cargo xtask ci`.
//!
//! The tracing contract across real processes: start two shard workers
//! and a router, all with `--slow-log 0` (retain every request trace),
//! drive one traced `InsertEdges` whose edges land on both shards plus a
//! traced read, and require
//!
//! 1. `afforest trace <router> --shards <w0>,<w1> --trace-id <id>` to
//!    render ONE merged tree for the insert's trace id containing the
//!    router-side stages (`router_request`, `shard_fanout`), the
//!    worker-side request stage (`shard_request`), and the worker
//!    writer-thread durability stage (`wal_fsync`) — spans from all
//!    three processes, stitched by the trace context that rode the wire;
//! 2. the router's `/metrics` scrape to carry at least one OpenMetrics
//!    histogram exemplar (`# {trace_id="…"}`);
//! 3. the router's slow-log (`<wal-dir>/slowlog.jsonl`) to contain a
//!    JSON line for the insert's trace.

use crate::shard_smoke::{spawn_worker, wait_exit};
use crate::smoke::{cli_cmd, connect, shutdown_and_reap, Reaper};
use afforest_serve::http::http_get;
use afforest_shard::ShardPlan;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::Stdio;
use std::time::Duration;

/// Global vertex universe, split across two workers.
const N: usize = 1000;

/// Runs the tracing smoke; returns success.
pub fn run_tracesmoke(root: &Path) -> bool {
    match tracesmoke(root) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("==> tracing smoke failed: {e}");
            false
        }
    }
}

fn tracesmoke(root: &Path) -> Result<(), String> {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let wal: Vec<String> = (0..2)
        .map(|k| {
            tmp.join(format!("afforest-trace-smoke-w{k}-{pid}"))
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    let router_wal = tmp
        .join(format!("afforest-trace-smoke-router-{pid}"))
        .to_string_lossy()
        .into_owned();
    for dir in wal.iter().chain([&router_wal]) {
        let _ = std::fs::remove_dir_all(dir);
    }

    // 1. Two workers and a router, every process retaining all traces
    // (`--slow-log 0`); the router also runs the scrape sidecar.
    let plan = ShardPlan::new(N, 2);
    let slow = ["--slow-log", "0"];
    let (mut w0, a0, _out0) = spawn_worker(root, plan.shard_len(0), "127.0.0.1:0", &wal[0], &slow)?;
    let (mut w1, a1, _out1) = spawn_worker(root, plan.shard_len(1), "127.0.0.1:0", &wal[1], &slow)?;
    let shard_addrs = format!("{a0},{a1}");
    let n_s = N.to_string();
    let mut router = Reaper(
        cli_cmd(root, false)
            .args([
                "serve",
                "--shard-addrs",
                &shard_addrs,
                "--vertices",
                &n_s,
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "2",
                "--metrics-addr",
                "127.0.0.1:0",
                "--wal-dir",
                &router_wal,
                "--slow-log",
                "0",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn router: {e}"))?,
    );
    let stdout = router.0.stdout.take().ok_or("router stdout not captured")?;
    let mut lines = BufReader::new(stdout).lines();
    let mut addr = None;
    let mut scrape_addr = None;
    while addr.is_none() || scrape_addr.is_none() {
        let line = lines
            .next()
            .ok_or("router exited before announcing its addresses")?
            .map_err(|e| format!("read router stdout: {e}"))?;
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = rest.split_whitespace().next().map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("metrics on http://") {
            scrape_addr = rest.strip_suffix("/metrics").map(str::to_string);
        }
    }
    let (addr, scrape_addr) = (addr.unwrap(), scrape_addr.unwrap());

    // 2. One traced insert whose edges straddle the slice boundary, so
    // both workers apply a batch attributed to this trace (the writer
    // thread's representative request), plus a traced read. The insert's
    // id is the one the tree assertion pins below.
    let boundary = plan.shard_len(0) as u32;
    let edges = [
        (0, 1),                       // shard 0 local
        (boundary, boundary + 1),     // shard 1 local
        (boundary - 1, boundary + 2), // cut edge -> boundary store
    ];
    let mut client = connect(&addr)?.with_tracing();
    let accepted = client
        .insert_edges(&edges)
        .map_err(|e| format!("insert: {e}"))?;
    if accepted as usize != edges.len() {
        return Err(format!(
            "insert accepted {accepted} of {} edge(s)",
            edges.len()
        ));
    }
    let insert_trace = client.last_trace_id();
    if insert_trace == 0 {
        return Err("traced client did not mint a trace id".into());
    }
    if !client
        .flush(Duration::from_secs(30))
        .map_err(|e| format!("flush: {e}"))?
    {
        return Err("ingest queue never drained".into());
    }
    if !client
        .connected(0, 1)
        .map_err(|e| format!("connected: {e}"))?
    {
        return Err("edge (0, 1) not connected after flush".into());
    }

    // 3. The merged cross-process tree for the insert's trace.
    let id_hex = format!("{insert_trace:016x}");
    let out = cli_cmd(root, false)
        .args([
            "trace",
            &addr,
            "--shards",
            &shard_addrs,
            "--trace-id",
            &id_hex,
        ])
        .output()
        .map_err(|e| format!("spawn trace: {e}"))?;
    let tree = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        return Err(format!(
            "afforest trace failed ({}):\n{tree}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    for needle in [
        id_hex.as_str(),  // the header names the pinned trace
        "router_request", // router ingress
        "shard_fanout",   // router per-shard relay
        "shard_request",  // worker ingress
        "wal_fsync",      // worker writer-thread durability
        "stage self-times:",
    ] {
        if !tree.contains(needle) {
            return Err(format!("trace output is missing '{needle}':\n{tree}"));
        }
    }
    // Spans from all three processes: the router plus each worker, each
    // tagged with the source it was scraped from.
    for source in [
        "router@".to_string(),
        format!("serve@{a0}"),
        format!("serve@{a1}"),
    ] {
        if !tree.contains(&source) {
            return Err(format!("trace output has no spans from {source}:\n{tree}"));
        }
    }

    // 4. The scrape carries a histogram exemplar for a retained trace.
    let (status, scrape) = http_get(&scrape_addr, "/metrics")?;
    if status != 200 {
        return Err(format!("scrape answered HTTP {status}"));
    }
    if !scrape.contains("# {trace_id=\"") {
        return Err("scrape has no histogram exemplar (`# {trace_id=\"…\"}`)".into());
    }

    // 5. With `--slow-log 0` every request is slow: the router's
    // slow-log must hold a JSON line for the insert's trace.
    let slowlog = Path::new(&router_wal).join("slowlog.jsonl");
    let log =
        std::fs::read_to_string(&slowlog).map_err(|e| format!("{}: {e}", slowlog.display()))?;
    if !log.contains(&format!("\"trace_id\":\"{id_hex}\"")) {
        return Err(format!(
            "router slow-log has no entry for trace {id_hex}:\n{log}"
        ));
    }

    // 6. Clean teardown through the router.
    shutdown_and_reap(&addr, &mut router)?;
    wait_exit("worker 0", &mut w0)?;
    wait_exit("worker 1", &mut w1)?;

    for dir in wal.iter().chain([&router_wal]) {
        let _ = std::fs::remove_dir_all(dir);
    }
    println!(
        "==> tracing smoke: trace {id_hex} stitched across router + 2 workers \
         (router_request/shard_fanout/shard_request/wal_fsync), exemplar scraped, slow-log written"
    );
    Ok(())
}
