//! Loopback serving smoke test for `cargo xtask ci`.
//!
//! Exercises the full binary surface end to end, the way a deployment
//! would: generate a graph with the CLI, start `afforest serve` on an
//! ephemeral loopback port with the metrics sidecar, drive a small mixed
//! read/write workload with `afforest loadgen`, assert zero protocol
//! errors, create two tenants over the wire and require their labelled
//! series in `GET /metrics`, then stop the server with a real `Shutdown`
//! frame and require a clean exit. Run twice by CI — with the obs feature
//! off and on — so both builds of the serving path stay green.

use afforest_serve::http::http_get;
use afforest_serve::{Client, TenantId};
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Runs the smoke test; returns success. `obs` selects the instrumented
/// build of the CLI.
pub fn run_smoke(root: &Path, obs: bool) -> bool {
    match smoke(root, obs) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("==> serve smoke{} failed: {e}", obs_tag(obs));
            false
        }
    }
}

fn obs_tag(obs: bool) -> &'static str {
    if obs {
        " (obs)"
    } else {
        ""
    }
}

pub(crate) fn cli_cmd(root: &Path, obs: bool) -> Command {
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root)
        .args(["run", "-q", "-p", "afforest-cli", "--bin", "afforest"]);
    if obs {
        cmd.args(["--features", "obs"]);
    }
    cmd.arg("--");
    cmd
}

/// Kills the server child on every exit path.
pub(crate) struct Reaper(pub(crate) Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

/// Connects a typed client with a generous read timeout.
pub(crate) fn connect(addr: &str) -> Result<Client, String> {
    Client::connect(addr)
        .and_then(|c| c.with_read_timeout(Some(Duration::from_secs(10))))
        .map_err(|e| format!("connect {addr}: {e}"))
}

/// Asks the server to stop and waits for a clean process exit.
pub(crate) fn shutdown_and_reap(addr: &str, server: &mut Reaper) -> Result<(), String> {
    connect(addr)?
        .shutdown()
        .map_err(|e| format!("shutdown: {e}"))?;
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match server.0.try_wait().map_err(|e| e.to_string())? {
            Some(status) if status.success() => return Ok(()),
            Some(status) => return Err(format!("serve exited with {status}")),
            None if Instant::now() > deadline => {
                return Err("serve did not exit within 30 s of Shutdown".into())
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn smoke(root: &Path, obs: bool) -> Result<(), String> {
    let graph = std::env::temp_dir().join(format!(
        "afforest-smoke-{}-{}.el",
        std::process::id(),
        obs as u8
    ));
    let graph = graph.to_string_lossy().into_owned();

    // 1. Generate a small graph.
    let status = cli_cmd(root, obs)
        .args([
            "generate",
            "urand",
            "--out",
            &graph,
            "--n",
            "2000",
            "--edge-factor",
            "8",
            "--seed",
            "1",
        ])
        .status()
        .map_err(|e| format!("spawn generate: {e}"))?;
    if !status.success() {
        return Err(format!("generate failed ({status})"));
    }

    // 2. Start the server (wire + metrics sidecar, both ephemeral); parse
    // the announced addresses from its stdout.
    let mut server = Reaper(
        cli_cmd(root, obs)
            .args([
                "serve",
                &graph,
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "4",
                "--metrics-addr",
                "127.0.0.1:0",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn serve: {e}"))?,
    );
    let stdout = server.0.stdout.take().ok_or("serve stdout not captured")?;
    let mut lines = BufReader::new(stdout).lines();
    let mut addr = None;
    let mut scrape_addr = None;
    while addr.is_none() || scrape_addr.is_none() {
        let line = lines
            .next()
            .ok_or("serve exited before announcing its addresses")?
            .map_err(|e| format!("read serve stdout: {e}"))?;
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = rest.split_whitespace().next().map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("metrics on http://") {
            scrape_addr = rest.strip_suffix("/metrics").map(str::to_string);
        }
    }
    let (addr, scrape_addr) = (addr.unwrap(), scrape_addr.unwrap());

    // 3. Drive a small mixed workload; the loadgen subcommand exits
    // non-zero on any protocol error.
    let out = cli_cmd(root, obs)
        .args([
            "loadgen",
            &addr,
            "--connections",
            "3",
            "--requests",
            "2000",
            "--read-pct",
            "90",
            "--insert-batch",
            "16",
            "--seed",
            "7",
        ])
        .output()
        .map_err(|e| format!("spawn loadgen: {e}"))?;
    let text = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        return Err(format!(
            "loadgen failed ({}):\n{text}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    if !text.contains("errors:     0") {
        return Err(format!("loadgen reported errors:\n{text}"));
    }

    // 4. Multi-tenancy over the wire: create two tenants, route traffic
    // through each via v2 envelopes, and require their labelled series in
    // the scrape.
    let mut admin = connect(&addr)?;
    for name in ["smoke-a", "smoke-b"] {
        let tenant = TenantId::new(name).map_err(|e| format!("tenant {name}: {e}"))?;
        admin
            .create_tenant(&tenant, 512)
            .map_err(|e| format!("create tenant {name}: {e}"))?;
        let mut scoped = connect(&addr)?.with_tenant(tenant);
        scoped
            .insert_edges(&[(0, 1), (1, 2)])
            .map_err(|e| format!("insert into {name}: {e}"))?;
        scoped
            .connected(0, 1)
            .map_err(|e| format!("query {name}: {e}"))?;
    }
    let tenants = admin.list_tenants().map_err(|e| format!("list: {e}"))?;
    if tenants != ["default", "smoke-a", "smoke-b"] {
        return Err(format!("unexpected tenant list: {tenants:?}"));
    }
    let (status, scrape) = http_get(&scrape_addr, "/metrics")?;
    if status != 200 {
        return Err(format!("scrape answered HTTP {status}"));
    }
    for series in [
        "afforest_tenant_requests_total{tenant=\"smoke-a\"}",
        "afforest_tenant_requests_total{tenant=\"smoke-b\"}",
        "afforest_tenant_queue_depth{tenant=\"smoke-a\"}",
        "afforest_tenant_requests_shed_total{tenant=\"smoke-b\"}",
        "afforest_tenant_edges_ingested_total{tenant=\"smoke-a\"}",
    ] {
        if !scrape.contains(series) {
            return Err(format!("scrape is missing the labelled series {series}"));
        }
    }

    // 5. Graceful shutdown via a real protocol frame; the server process
    // must exit cleanly on its own.
    shutdown_and_reap(&addr, &mut server)?;

    let _ = std::fs::remove_file(&graph);
    println!(
        "==> serve smoke{}: {addr} served 2000 mixed requests + 2 tenants, zero errors, clean shutdown",
        obs_tag(obs)
    );
    Ok(())
}
