//! Loopback serving smoke test for `cargo xtask ci`.
//!
//! Exercises the full binary surface end to end, the way a deployment
//! would: generate a graph with the CLI, start `afforest serve` on an
//! ephemeral loopback port, drive a small mixed read/write workload with
//! `afforest loadgen`, assert zero protocol errors, then stop the server
//! with a real `Shutdown` frame and require a clean exit. Run twice by CI
//! — with the obs feature off and on — so both builds of the serving
//! path stay green.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::Path;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

// The two wire frames this module needs, hand-encoded so xtask stays
// dependency-free (see Cargo.toml): a length-prefixed `Shutdown` request
// (opcode 0x07) and the expected `Bye` response (opcode 0x87). The
// protocol crate's own tests pin these opcodes.
const SHUTDOWN_FRAME: [u8; 5] = [1, 0, 0, 0, 0x07];
const BYE_FRAME: [u8; 5] = [1, 0, 0, 0, 0x87];

/// Runs the smoke test; returns success. `obs` selects the instrumented
/// build of the CLI.
pub fn run_smoke(root: &Path, obs: bool) -> bool {
    match smoke(root, obs) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("==> serve smoke{} failed: {e}", obs_tag(obs));
            false
        }
    }
}

fn obs_tag(obs: bool) -> &'static str {
    if obs {
        " (obs)"
    } else {
        ""
    }
}

pub(crate) fn cli_cmd(root: &Path, obs: bool) -> Command {
    let mut cmd = Command::new("cargo");
    cmd.current_dir(root)
        .args(["run", "-q", "-p", "afforest-cli", "--bin", "afforest"]);
    if obs {
        cmd.args(["--features", "obs"]);
    }
    cmd.arg("--");
    cmd
}

/// Kills the server child on every exit path.
pub(crate) struct Reaper(pub(crate) Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

fn smoke(root: &Path, obs: bool) -> Result<(), String> {
    let graph = std::env::temp_dir().join(format!(
        "afforest-smoke-{}-{}.el",
        std::process::id(),
        obs as u8
    ));
    let graph = graph.to_string_lossy().into_owned();

    // 1. Generate a small graph.
    let status = cli_cmd(root, obs)
        .args([
            "generate",
            "urand",
            "--out",
            &graph,
            "--n",
            "2000",
            "--edge-factor",
            "8",
            "--seed",
            "1",
        ])
        .status()
        .map_err(|e| format!("spawn generate: {e}"))?;
    if !status.success() {
        return Err(format!("generate failed ({status})"));
    }

    // 2. Start the server on an ephemeral port; parse the announced
    // address from its stdout.
    let mut server = Reaper(
        cli_cmd(root, obs)
            .args(["serve", &graph, "--addr", "127.0.0.1:0", "--workers", "4"])
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn serve: {e}"))?,
    );
    let stdout = server.0.stdout.take().ok_or("serve stdout not captured")?;
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .ok_or("serve exited before announcing its address")?
            .map_err(|e| format!("read serve stdout: {e}"))?;
        if let Some(rest) = line.strip_prefix("listening on ") {
            break rest
                .split_whitespace()
                .next()
                .ok_or("malformed listen line")?
                .to_string();
        }
    };

    // 3. Drive a small mixed workload; the loadgen subcommand exits
    // non-zero on any protocol error.
    let out = cli_cmd(root, obs)
        .args([
            "loadgen",
            &addr,
            "--connections",
            "3",
            "--requests",
            "2000",
            "--read-pct",
            "90",
            "--insert-batch",
            "16",
            "--seed",
            "7",
        ])
        .output()
        .map_err(|e| format!("spawn loadgen: {e}"))?;
    let text = String::from_utf8_lossy(&out.stdout);
    if !out.status.success() {
        return Err(format!(
            "loadgen failed ({}):\n{text}\n{}",
            out.status,
            String::from_utf8_lossy(&out.stderr)
        ));
    }
    if !text.contains("errors:     0") {
        return Err(format!("loadgen reported errors:\n{text}"));
    }

    // 4. Graceful shutdown via a real protocol frame; the server process
    // must exit cleanly on its own.
    let mut stream = TcpStream::connect(&addr).map_err(|e| format!("connect {addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| e.to_string())?;
    stream
        .write_all(&SHUTDOWN_FRAME)
        .map_err(|e| format!("send shutdown: {e}"))?;
    let mut reply = [0u8; 5];
    stream
        .read_exact(&mut reply)
        .map_err(|e| format!("read shutdown reply: {e}"))?;
    if reply != BYE_FRAME {
        return Err(format!("shutdown answered {reply:02x?}, expected Bye"));
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match server.0.try_wait().map_err(|e| e.to_string())? {
            Some(status) if status.success() => break,
            Some(status) => return Err(format!("serve exited with {status}")),
            None if Instant::now() > deadline => {
                return Err("serve did not exit within 30 s of Shutdown".into())
            }
            None => std::thread::sleep(Duration::from_millis(50)),
        }
    }

    let _ = std::fs::remove_file(&graph);
    println!(
        "==> serve smoke{}: {addr} served 2000 mixed requests, zero errors, clean shutdown",
        obs_tag(obs)
    );
    Ok(())
}
