//! Static concurrency lints for the workspace sources.
//!
//! Three rules, all motivated by the memory-ordering audit in DESIGN.md:
//!
//! 1. **SAFETY comments** — every `unsafe` keyword in code must carry a
//!    justification: a `// SAFETY:` comment on the same line or in the
//!    contiguous comment/attribute block immediately above (doc-comment
//!    `# Safety` sections count for `unsafe fn` declarations).
//! 2. **Ordering allowlist** — atomic memory orderings may appear only in
//!    the files that the audit covers ([`ORDERING_ALLOWLIST`]). Any new
//!    atomic site must be added to the audit *and* the allowlist,
//!    making "sprinkle an atomic somewhere" a reviewed decision.
//! 3. **No SeqCst** — the algorithm's correctness argument never needs
//!    sequential consistency; a SeqCst anywhere means someone is patching
//!    over a race they don't understand (and paying full fences for it).
//!
//! Additionally, every crate that contains `unsafe` code must opt into
//! `#![deny(unsafe_op_in_unsafe_fn)]` so unsafe operations inside unsafe
//! fns still need their own block and SAFETY comment.
//!
//! The scanner is line-oriented and deliberately simple: it strips `//`
//! comments before matching and skips pure comment lines, which is exact
//! for this codebase's style (no `unsafe` or `Ordering` tokens inside
//! string literals). Vendored shims (`vendor/`), generated output
//! (`target/`), lint fixtures (`fixtures/`), and this crate itself are
//! excluded from the scan.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Files (by `/`-normalized path suffix) where atomic orderings are
/// allowed. Each entry must have a matching subsection in DESIGN.md's
/// "Memory-ordering audit".
pub const ORDERING_ALLOWLIST: &[&str] = &[
    // The parent array: the audit's centerpiece (Relaxed loads/stores/CAS).
    "crates/core/src/parents.rs",
    // Per-thread counter buffers aggregated after the parallel phase.
    "crates/core/src/instrument.rs",
    // CSR scatter cursors (fetch_add slot claiming).
    "crates/graph/src/builder.rs",
    // DisjointWriter's tests replay the builder's claim protocol.
    "crates/graph/src/disjoint.rs",
    // Baseline algorithms (SV, parallel UF, BFS, label propagation) use
    // atomics as published; they are comparison subjects, not the
    // contribution under audit.
    "crates/baselines/src/",
    // Observability recorder: sharded Relaxed statistics counters and the
    // session-active flag, summed only after parallel phases join.
    "crates/obs/src/",
    // Serving runtime: Relaxed service statistics and the shutdown flag;
    // all cross-thread hand-off goes through Mutex/Condvar/RwLock.
    "crates/serve/src/",
];

/// Atomic-ordering variant names. `cmp::Ordering`'s variants (`Less`,
/// `Equal`, `Greater`) do not collide, so matching variants keeps
/// comparison code out of scope.
const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    /// `/`-normalized path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` without a SAFETY justification.
    MissingSafetyComment,
    /// Atomic ordering outside the allowlist.
    OrderingOutsideAllowlist,
    /// Any use of `Ordering::SeqCst`.
    SeqCstForbidden,
    /// Crate has unsafe code but no `#![deny(unsafe_op_in_unsafe_fn)]`.
    MissingUnsafeOpLint,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rule = match self.rule {
            Rule::MissingSafetyComment => "missing-safety-comment",
            Rule::OrderingOutsideAllowlist => "ordering-outside-allowlist",
            Rule::SeqCstForbidden => "seqcst-forbidden",
            Rule::MissingUnsafeOpLint => "missing-unsafe-op-lint",
        };
        write!(f, "{}:{}: [{rule}] {}", self.file, self.line, self.message)
    }
}

/// Splits a source line into (code, comment) at the first `//` outside
/// nothing fancier than this codebase uses.
fn split_comment(line: &str) -> (&str, &str) {
    match line.find("//") {
        Some(i) => (&line[..i], &line[i..]),
        None => (line, ""),
    }
}

/// Whether the trimmed line is purely a comment (`//`, `///`, `//!`).
fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Whether the trimmed line is an attribute (`#[...]` / `#![...]`).
fn is_attr_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("#[") || t.starts_with("#![")
}

/// Whether `word` occurs in `code` delimited by non-identifier characters.
fn contains_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

/// Whether the comment/attribute block ending at `line_idx - 1` (walking
/// upward through contiguous comments and attributes) contains a SAFETY
/// justification.
fn block_above_has_safety(lines: &[&str], line_idx: usize) -> bool {
    let mut i = line_idx;
    while i > 0 {
        i -= 1;
        let line = lines[i];
        if is_comment_line(line) {
            if line.contains("SAFETY:") || line.contains("# Safety") {
                return true;
            }
        } else if !is_attr_line(line) {
            break;
        }
    }
    false
}

/// Lints one file's content. `rel_path` must be `/`-normalized and
/// relative to the workspace root (used for allowlist matching and
/// reporting).
pub fn lint_source(rel_path: &str, content: &str) -> Vec<LintError> {
    let mut errors = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let allowlisted = ORDERING_ALLOWLIST
        .iter()
        .any(|prefix| rel_path.starts_with(prefix) || rel_path == prefix.trim_end_matches('/'));

    for (idx, &line) in lines.iter().enumerate() {
        if is_comment_line(line) {
            continue;
        }
        let (code, trailing_comment) = split_comment(line);

        // Rule 3: SeqCst is banned outright, allowlist or not.
        if code.contains("SeqCst") {
            errors.push(LintError {
                file: rel_path.to_string(),
                line: idx + 1,
                rule: Rule::SeqCstForbidden,
                message: "Ordering::SeqCst is banned: no property of the \
                          algorithm requires sequential consistency (see \
                          DESIGN.md, Memory-ordering audit)"
                    .to_string(),
            });
        }

        // Rule 2: atomic orderings only in audited files.
        if !allowlisted && ATOMIC_ORDERINGS.iter().any(|o| code.contains(o)) {
            errors.push(LintError {
                file: rel_path.to_string(),
                line: idx + 1,
                rule: Rule::OrderingOutsideAllowlist,
                message: "atomic memory ordering outside the audited \
                          allowlist; add the site to DESIGN.md's \
                          Memory-ordering audit and to ORDERING_ALLOWLIST \
                          in crates/xtask/src/lint.rs"
                    .to_string(),
            });
        }

        // Rule 1: unsafe needs a SAFETY justification. Lint-control
        // attributes mentioning unsafe are not unsafe code.
        if contains_word(code, "unsafe")
            && !code.contains("unsafe_op_in_unsafe_fn")
            && !code.contains("unsafe_code")
        {
            let justified =
                trailing_comment.contains("SAFETY:") || block_above_has_safety(&lines, idx);
            if !justified {
                errors.push(LintError {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    rule: Rule::MissingSafetyComment,
                    message: "`unsafe` without a `// SAFETY:` comment (same \
                              line or the comment block directly above)"
                        .to_string(),
                });
            }
        }
    }
    errors
}

/// Whether the file contains `unsafe` in code position (not comments).
fn has_code_unsafe(content: &str) -> bool {
    content.lines().any(|line| {
        if is_comment_line(line) {
            return false;
        }
        let (code, _) = split_comment(line);
        contains_word(code, "unsafe") && !code.contains("unsafe_op_in_unsafe_fn")
    })
}

/// Recursively collects workspace `.rs` files to scan, excluding vendored
/// shims, build output, fixtures, and the lint's own sources (they contain
/// every banned token as pattern data).
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(
                    name.as_ref(),
                    "target" | "vendor" | ".git" | "fixtures" | "xtask"
                ) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Runs all lints over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Vec<LintError> {
    let mut errors = Vec::new();
    let mut crates_with_unsafe: Vec<PathBuf> = Vec::new();

    for path in collect_sources(root) {
        let Ok(content) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        errors.extend(lint_source(&rel, &content));

        if has_code_unsafe(&content) {
            // Crate root = the directory holding the Cargo.toml above src/.
            let mut dir = path.parent();
            while let Some(d) = dir {
                if d.join("Cargo.toml").exists() {
                    if !crates_with_unsafe.contains(&d.to_path_buf()) {
                        crates_with_unsafe.push(d.to_path_buf());
                    }
                    break;
                }
                dir = d.parent();
            }
        }
    }

    // Crates containing unsafe must deny unsafe_op_in_unsafe_fn at the root.
    for crate_dir in crates_with_unsafe {
        let lib = crate_dir.join("src/lib.rs");
        let root_file = if lib.exists() {
            lib
        } else {
            crate_dir.join("src/main.rs")
        };
        let opted_in = fs::read_to_string(&root_file)
            .map(|c| c.contains("deny(unsafe_op_in_unsafe_fn)"))
            .unwrap_or(false);
        if !opted_in {
            let rel = root_file
                .strip_prefix(root)
                .unwrap_or(&root_file)
                .to_string_lossy()
                .replace('\\', "/");
            errors.push(LintError {
                file: rel,
                line: 1,
                rule: Rule::MissingUnsafeOpLint,
                message: "crate contains unsafe code but its root module \
                          does not declare #![deny(unsafe_op_in_unsafe_fn)]"
                    .to_string(),
            });
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seeded bad fixture: an uncommented unsafe block, a SeqCst, and
    /// an atomic ordering — in a path outside the allowlist. The lint must
    /// fail on it (acceptance criterion).
    const BAD_FIXTURE: &str = include_str!("../fixtures/bad_unsafe.rs");

    #[test]
    fn bad_fixture_fails_all_three_rules() {
        let errors = lint_source("crates/core/src/evil.rs", BAD_FIXTURE);
        assert!(
            errors.iter().any(|e| e.rule == Rule::MissingSafetyComment),
            "uncommented unsafe not caught: {errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.rule == Rule::SeqCstForbidden),
            "SeqCst not caught: {errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.rule == Rule::OrderingOutsideAllowlist),
            "ordering outside allowlist not caught: {errors:?}"
        );
    }

    #[test]
    fn safety_comment_on_block_above_passes() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: caller guarantees exclusivity.\n    unsafe { *p = 1 };\n}\n";
        assert!(lint_source("crates/graph/src/x.rs", src)
            .iter()
            .all(|e| e.rule != Rule::MissingSafetyComment));
    }

    #[test]
    fn safety_comment_on_same_line_passes() {
        let src = "fn f(p: *mut u8) {\n    unsafe { *p = 1 }; // SAFETY: exclusive.\n}\n";
        assert!(lint_source("crates/graph/src/x.rs", src).is_empty());
    }

    #[test]
    fn doc_safety_section_covers_unsafe_fn() {
        let src = "/// Does a thing.\n///\n/// # Safety\n///\n/// Caller must own `index`.\n#[inline]\npub unsafe fn write(i: usize) {}\n";
        assert!(lint_source("crates/graph/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_without_comment_fails() {
        let src = "fn f(p: *mut u8) {\n    unsafe { *p = 1 };\n}\n";
        let errors = lint_source("crates/graph/src/x.rs", src);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].rule, Rule::MissingSafetyComment);
        assert_eq!(errors[0].line, 2);
    }

    #[test]
    fn interrupted_comment_block_does_not_justify() {
        // A SAFETY comment separated from the unsafe by real code must not
        // count as justification for the later unsafe.
        let src = "fn f(p: *mut u8) {\n    // SAFETY: for the first one.\n    unsafe { *p = 1 };\n    let x = 3;\n    unsafe { *p = x };\n}\n";
        let errors = lint_source("crates/graph/src/x.rs", src);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].line, 5);
    }

    #[test]
    fn ordering_in_allowlisted_file_passes() {
        let src = "use std::sync::atomic::Ordering;\nfn f(a: &std::sync::atomic::AtomicU32) { a.load(Ordering::Relaxed); }\n";
        assert!(lint_source("crates/core/src/parents.rs", src).is_empty());
        assert!(lint_source("crates/baselines/src/label_prop.rs", src).is_empty());
    }

    #[test]
    fn ordering_outside_allowlist_fails() {
        let src = "fn f(a: &std::sync::atomic::AtomicU32) { a.load(Ordering::Relaxed); }\n";
        let errors = lint_source("crates/bench/src/sneaky.rs", src);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].rule, Rule::OrderingOutsideAllowlist);
    }

    #[test]
    fn seqcst_fails_even_in_allowlisted_file() {
        let src = "fn f(a: &std::sync::atomic::AtomicU32) { a.load(Ordering::SeqCst); }\n";
        let errors = lint_source("crates/core/src/parents.rs", src);
        assert!(errors.iter().any(|e| e.rule == Rule::SeqCstForbidden));
    }

    #[test]
    fn cmp_ordering_is_not_flagged() {
        let src = "fn f(a: u32, b: u32) { match a.cmp(&b) { std::cmp::Ordering::Less => {}, _ => {} } }\n";
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_comments_and_lint_attrs_ignored() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n// this mentions unsafe casually\n/// docs about unsafe code\nfn safe() {}\n";
        assert!(lint_source("crates/graph/src/x.rs", src).is_empty());
    }

    #[test]
    fn identifier_containing_unsafe_not_flagged() {
        let src = "fn f() { let unsafely_named = 3; let _ = unsafely_named; }\n";
        assert!(lint_source("crates/graph/src/x.rs", src).is_empty());
    }

    /// The real workspace passes the lint (run from the repo root).
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let errors = lint_workspace(&root);
        assert!(
            errors.is_empty(),
            "workspace lint failures:\n{}",
            errors
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
