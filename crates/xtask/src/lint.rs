//! Static lints for the workspace sources.
//!
//! Three concurrency rules, all motivated by the memory-ordering audit
//! in DESIGN.md:
//!
//! 1. **SAFETY comments** — every `unsafe` keyword in code must carry a
//!    justification: a `// SAFETY:` comment on the same line or in the
//!    contiguous comment/attribute block immediately above (doc-comment
//!    `# Safety` sections count for `unsafe fn` declarations).
//! 2. **Ordering allowlist** — atomic memory orderings may appear only in
//!    the files that the audit covers ([`ORDERING_ALLOWLIST`]). Any new
//!    atomic site must be added to the audit *and* the allowlist,
//!    making "sprinkle an atomic somewhere" a reviewed decision.
//! 3. **No SeqCst** — the algorithm's correctness argument never needs
//!    sequential consistency; a SeqCst anywhere means someone is patching
//!    over a race they don't understand (and paying full fences for it).
//!
//! Additionally, every crate that contains `unsafe` code must opt into
//! `#![deny(unsafe_op_in_unsafe_fn)]` so unsafe operations inside unsafe
//! fns still need their own block and SAFETY comment.
//!
//! One telemetry rule rides along (DESIGN.md §12): every metric name
//! registered via `registry::counter/gauge/histogram` must be a string
//! literal, and every such literal must appear in the exposition fixture
//! ([`METRIC_FIXTURE`]) — a metric cannot be added without the
//! exposition tests seeing it.
//!
//! The scanner is line-oriented and deliberately simple: it strips `//`
//! comments before matching and skips pure comment lines, which is exact
//! for this codebase's style (no `unsafe` or `Ordering` tokens inside
//! string literals). Vendored shims (`vendor/`), generated output
//! (`target/`), lint fixtures (`fixtures/`), and this crate itself are
//! excluded from the scan.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// Files (by `/`-normalized path suffix) where atomic orderings are
/// allowed. Each entry must have a matching subsection in DESIGN.md's
/// "Memory-ordering audit".
pub const ORDERING_ALLOWLIST: &[&str] = &[
    // The parent array: the audit's centerpiece (Relaxed loads/stores/CAS).
    "crates/core/src/parents.rs",
    // Per-thread counter buffers aggregated after the parallel phase.
    "crates/core/src/instrument.rs",
    // CSR scatter cursors (fetch_add slot claiming).
    "crates/graph/src/builder.rs",
    // DisjointWriter's tests replay the builder's claim protocol.
    "crates/graph/src/disjoint.rs",
    // Baseline algorithms (SV, parallel UF, BFS, label propagation) use
    // atomics as published; they are comparison subjects, not the
    // contribution under audit.
    "crates/baselines/src/",
    // Observability recorder: sharded Relaxed statistics counters and the
    // session-active flag, summed only after parallel phases join.
    "crates/obs/src/",
    // Serving runtime: Relaxed service statistics and the shutdown flag;
    // all cross-thread hand-off goes through Mutex/Condvar/RwLock.
    "crates/serve/src/",
];

/// Atomic-ordering variant names. `cmp::Ordering`'s variants (`Less`,
/// `Equal`, `Greater`) do not collide, so matching variants keeps
/// comparison code out of scope.
const ATOMIC_ORDERINGS: &[&str] = &[
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
    "Ordering::SeqCst",
];

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LintError {
    /// `/`-normalized path relative to the workspace root.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation.
    pub message: String,
}

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// `unsafe` without a SAFETY justification.
    MissingSafetyComment,
    /// Atomic ordering outside the allowlist.
    OrderingOutsideAllowlist,
    /// Any use of `Ordering::SeqCst`.
    SeqCstForbidden,
    /// Crate has unsafe code but no `#![deny(unsafe_op_in_unsafe_fn)]`.
    MissingUnsafeOpLint,
    /// A registry metric registered with a non-literal name (the fixture
    /// coverage check cannot see it).
    NonLiteralMetricName,
    /// A registry metric name literal missing from the exposition fixture.
    MetricMissingFromFixture,
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rule = match self.rule {
            Rule::MissingSafetyComment => "missing-safety-comment",
            Rule::OrderingOutsideAllowlist => "ordering-outside-allowlist",
            Rule::SeqCstForbidden => "seqcst-forbidden",
            Rule::MissingUnsafeOpLint => "missing-unsafe-op-lint",
            Rule::NonLiteralMetricName => "non-literal-metric-name",
            Rule::MetricMissingFromFixture => "metric-missing-from-fixture",
        };
        write!(f, "{}:{}: [{rule}] {}", self.file, self.line, self.message)
    }
}

/// Splits a source line into (code, comment) at the first `//` outside
/// nothing fancier than this codebase uses.
fn split_comment(line: &str) -> (&str, &str) {
    match line.find("//") {
        Some(i) => (&line[..i], &line[i..]),
        None => (line, ""),
    }
}

/// Whether the trimmed line is purely a comment (`//`, `///`, `//!`).
fn is_comment_line(line: &str) -> bool {
    line.trim_start().starts_with("//")
}

/// Whether the trimmed line is an attribute (`#[...]` / `#![...]`).
fn is_attr_line(line: &str) -> bool {
    let t = line.trim_start();
    t.starts_with("#[") || t.starts_with("#![")
}

/// Whether `word` occurs in `code` delimited by non-identifier characters.
fn contains_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = abs + word.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

/// Whether the comment/attribute block ending at `line_idx - 1` (walking
/// upward through contiguous comments and attributes) contains a SAFETY
/// justification.
fn block_above_has_safety(lines: &[&str], line_idx: usize) -> bool {
    let mut i = line_idx;
    while i > 0 {
        i -= 1;
        let line = lines[i];
        if is_comment_line(line) {
            if line.contains("SAFETY:") || line.contains("# Safety") {
                return true;
            }
        } else if !is_attr_line(line) {
            break;
        }
    }
    false
}

/// Lints one file's content. `rel_path` must be `/`-normalized and
/// relative to the workspace root (used for allowlist matching and
/// reporting).
pub fn lint_source(rel_path: &str, content: &str) -> Vec<LintError> {
    let mut errors = Vec::new();
    let lines: Vec<&str> = content.lines().collect();
    let allowlisted = ORDERING_ALLOWLIST
        .iter()
        .any(|prefix| rel_path.starts_with(prefix) || rel_path == prefix.trim_end_matches('/'));

    for (idx, &line) in lines.iter().enumerate() {
        if is_comment_line(line) {
            continue;
        }
        let (code, trailing_comment) = split_comment(line);

        // Rule 3: SeqCst is banned outright, allowlist or not.
        if code.contains("SeqCst") {
            errors.push(LintError {
                file: rel_path.to_string(),
                line: idx + 1,
                rule: Rule::SeqCstForbidden,
                message: "Ordering::SeqCst is banned: no property of the \
                          algorithm requires sequential consistency (see \
                          DESIGN.md, Memory-ordering audit)"
                    .to_string(),
            });
        }

        // Rule 2: atomic orderings only in audited files.
        if !allowlisted && ATOMIC_ORDERINGS.iter().any(|o| code.contains(o)) {
            errors.push(LintError {
                file: rel_path.to_string(),
                line: idx + 1,
                rule: Rule::OrderingOutsideAllowlist,
                message: "atomic memory ordering outside the audited \
                          allowlist; add the site to DESIGN.md's \
                          Memory-ordering audit and to ORDERING_ALLOWLIST \
                          in crates/xtask/src/lint.rs"
                    .to_string(),
            });
        }

        // Rule 1: unsafe needs a SAFETY justification. Lint-control
        // attributes mentioning unsafe are not unsafe code.
        if contains_word(code, "unsafe")
            && !code.contains("unsafe_op_in_unsafe_fn")
            && !code.contains("unsafe_code")
        {
            let justified =
                trailing_comment.contains("SAFETY:") || block_above_has_safety(&lines, idx);
            if !justified {
                errors.push(LintError {
                    file: rel_path.to_string(),
                    line: idx + 1,
                    rule: Rule::MissingSafetyComment,
                    message: "`unsafe` without a `// SAFETY:` comment (same \
                              line or the comment block directly above)"
                        .to_string(),
                });
            }
        }
    }
    errors
}

/// The exposition fixture that must name every registry metric. The
/// serve crate's `exposition_fixture` test checks the converse direction
/// at runtime (every registered metric appears in a live scrape).
pub const METRIC_FIXTURE: &str = "crates/serve/tests/fixtures/exposition.txt";

/// Registry registration calls whose first argument is a metric name.
const METRIC_CALLS: &[&str] = &[
    "registry::counter(",
    "registry::gauge(",
    "registry::histogram(",
];

/// Extracts registry metric-name literals from one file, flagging
/// registrations whose name is not a string literal (those would dodge
/// the fixture coverage below). `crates/obs/` is exempt: the registry's
/// own sources and tests register scratch names that are not part of the
/// service metric set.
pub fn scan_metric_names(rel_path: &str, content: &str) -> (Vec<(usize, String)>, Vec<LintError>) {
    let mut names = Vec::new();
    let mut errors = Vec::new();
    if rel_path.starts_with("crates/obs/") {
        return (names, errors);
    }
    // Comment-stripped text with newlines preserved, so a call wrapped by
    // rustfmt (name literal on the following line) still scans.
    let code: String = content
        .lines()
        .map(|line| {
            if is_comment_line(line) {
                ""
            } else {
                split_comment(line).0
            }
        })
        .collect::<Vec<_>>()
        .join("\n");
    for call in METRIC_CALLS {
        let mut start = 0;
        while let Some(pos) = code[start..].find(call) {
            let after = start + pos + call.len();
            start = after;
            let line = code[..after].matches('\n').count() + 1;
            let rest = code[after..].trim_start();
            if let Some(lit) = rest.strip_prefix('"') {
                if let Some(end) = lit.find('"') {
                    names.push((line, lit[..end].to_string()));
                    continue;
                }
            }
            errors.push(LintError {
                file: rel_path.to_string(),
                line,
                rule: Rule::NonLiteralMetricName,
                message: format!(
                    "`{call}...)` called with a non-literal metric name; the \
                     fixture coverage check ({METRIC_FIXTURE}) can only \
                     verify string literals"
                ),
            });
        }
    }
    names.sort();
    (names, errors)
}

/// Whether the file contains `unsafe` in code position (not comments).
fn has_code_unsafe(content: &str) -> bool {
    content.lines().any(|line| {
        if is_comment_line(line) {
            return false;
        }
        let (code, _) = split_comment(line);
        contains_word(code, "unsafe") && !code.contains("unsafe_op_in_unsafe_fn")
    })
}

/// Recursively collects workspace `.rs` files to scan, excluding vendored
/// shims, build output, fixtures, and the lint's own sources (they contain
/// every banned token as pattern data).
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(
                    name.as_ref(),
                    "target" | "vendor" | ".git" | "fixtures" | "xtask"
                ) {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

/// Runs all lints over the workspace rooted at `root`.
pub fn lint_workspace(root: &Path) -> Vec<LintError> {
    let mut errors = Vec::new();
    let mut crates_with_unsafe: Vec<PathBuf> = Vec::new();
    let mut metric_sites: Vec<(String, usize, String)> = Vec::new();

    for path in collect_sources(root) {
        let Ok(content) = fs::read_to_string(&path) else {
            continue;
        };
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        errors.extend(lint_source(&rel, &content));
        let (names, name_errors) = scan_metric_names(&rel, &content);
        errors.extend(name_errors);
        metric_sites.extend(
            names
                .into_iter()
                .map(|(line, name)| (rel.clone(), line, name)),
        );

        if has_code_unsafe(&content) {
            // Crate root = the directory holding the Cargo.toml above src/.
            let mut dir = path.parent();
            while let Some(d) = dir {
                if d.join("Cargo.toml").exists() {
                    if !crates_with_unsafe.contains(&d.to_path_buf()) {
                        crates_with_unsafe.push(d.to_path_buf());
                    }
                    break;
                }
                dir = d.parent();
            }
        }
    }

    // Crates containing unsafe must deny unsafe_op_in_unsafe_fn at the root.
    for crate_dir in crates_with_unsafe {
        let lib = crate_dir.join("src/lib.rs");
        let root_file = if lib.exists() {
            lib
        } else {
            crate_dir.join("src/main.rs")
        };
        let opted_in = fs::read_to_string(&root_file)
            .map(|c| c.contains("deny(unsafe_op_in_unsafe_fn)"))
            .unwrap_or(false);
        if !opted_in {
            let rel = root_file
                .strip_prefix(root)
                .unwrap_or(&root_file)
                .to_string_lossy()
                .replace('\\', "/");
            errors.push(LintError {
                file: rel,
                line: 1,
                rule: Rule::MissingUnsafeOpLint,
                message: "crate contains unsafe code but its root module \
                          does not declare #![deny(unsafe_op_in_unsafe_fn)]"
                    .to_string(),
            });
        }
    }

    // Metric-name fixture coverage: every registered name must appear in
    // the exposition fixture, so adding a metric forces the exposition
    // tests (and this fixture) to see it. Exact matching against the
    // fixture's `# TYPE <name> <kind>` lines, not substring search.
    let fixture = fs::read_to_string(root.join(METRIC_FIXTURE)).unwrap_or_default();
    let fixture_names: Vec<&str> = fixture
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    for (file, line, name) in metric_sites {
        if !fixture_names.contains(&name.as_str()) {
            errors.push(LintError {
                file,
                line,
                rule: Rule::MetricMissingFromFixture,
                message: format!(
                    "metric `{name}` is registered here but absent from \
                     {METRIC_FIXTURE}; regenerate the fixture (see the \
                     fixture's header) so the exposition tests cover it"
                ),
            });
        }
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The seeded bad fixture: an uncommented unsafe block, a SeqCst, and
    /// an atomic ordering — in a path outside the allowlist. The lint must
    /// fail on it (acceptance criterion).
    const BAD_FIXTURE: &str = include_str!("../fixtures/bad_unsafe.rs");

    #[test]
    fn bad_fixture_fails_all_three_rules() {
        let errors = lint_source("crates/core/src/evil.rs", BAD_FIXTURE);
        assert!(
            errors.iter().any(|e| e.rule == Rule::MissingSafetyComment),
            "uncommented unsafe not caught: {errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.rule == Rule::SeqCstForbidden),
            "SeqCst not caught: {errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.rule == Rule::OrderingOutsideAllowlist),
            "ordering outside allowlist not caught: {errors:?}"
        );
    }

    #[test]
    fn safety_comment_on_block_above_passes() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: caller guarantees exclusivity.\n    unsafe { *p = 1 };\n}\n";
        assert!(lint_source("crates/graph/src/x.rs", src)
            .iter()
            .all(|e| e.rule != Rule::MissingSafetyComment));
    }

    #[test]
    fn safety_comment_on_same_line_passes() {
        let src = "fn f(p: *mut u8) {\n    unsafe { *p = 1 }; // SAFETY: exclusive.\n}\n";
        assert!(lint_source("crates/graph/src/x.rs", src).is_empty());
    }

    #[test]
    fn doc_safety_section_covers_unsafe_fn() {
        let src = "/// Does a thing.\n///\n/// # Safety\n///\n/// Caller must own `index`.\n#[inline]\npub unsafe fn write(i: usize) {}\n";
        assert!(lint_source("crates/graph/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_without_comment_fails() {
        let src = "fn f(p: *mut u8) {\n    unsafe { *p = 1 };\n}\n";
        let errors = lint_source("crates/graph/src/x.rs", src);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].rule, Rule::MissingSafetyComment);
        assert_eq!(errors[0].line, 2);
    }

    #[test]
    fn interrupted_comment_block_does_not_justify() {
        // A SAFETY comment separated from the unsafe by real code must not
        // count as justification for the later unsafe.
        let src = "fn f(p: *mut u8) {\n    // SAFETY: for the first one.\n    unsafe { *p = 1 };\n    let x = 3;\n    unsafe { *p = x };\n}\n";
        let errors = lint_source("crates/graph/src/x.rs", src);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].line, 5);
    }

    #[test]
    fn ordering_in_allowlisted_file_passes() {
        let src = "use std::sync::atomic::Ordering;\nfn f(a: &std::sync::atomic::AtomicU32) { a.load(Ordering::Relaxed); }\n";
        assert!(lint_source("crates/core/src/parents.rs", src).is_empty());
        assert!(lint_source("crates/baselines/src/label_prop.rs", src).is_empty());
    }

    #[test]
    fn ordering_outside_allowlist_fails() {
        let src = "fn f(a: &std::sync::atomic::AtomicU32) { a.load(Ordering::Relaxed); }\n";
        let errors = lint_source("crates/bench/src/sneaky.rs", src);
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].rule, Rule::OrderingOutsideAllowlist);
    }

    #[test]
    fn seqcst_fails_even_in_allowlisted_file() {
        let src = "fn f(a: &std::sync::atomic::AtomicU32) { a.load(Ordering::SeqCst); }\n";
        let errors = lint_source("crates/core/src/parents.rs", src);
        assert!(errors.iter().any(|e| e.rule == Rule::SeqCstForbidden));
    }

    #[test]
    fn cmp_ordering_is_not_flagged() {
        let src = "fn f(a: u32, b: u32) { match a.cmp(&b) { std::cmp::Ordering::Less => {}, _ => {} } }\n";
        assert!(lint_source("crates/bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn unsafe_in_comments_and_lint_attrs_ignored() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\n// this mentions unsafe casually\n/// docs about unsafe code\nfn safe() {}\n";
        assert!(lint_source("crates/graph/src/x.rs", src).is_empty());
    }

    #[test]
    fn identifier_containing_unsafe_not_flagged() {
        let src = "fn f() { let unsafely_named = 3; let _ = unsafely_named; }\n";
        assert!(lint_source("crates/graph/src/x.rs", src).is_empty());
    }

    #[test]
    fn metric_scan_finds_literals_across_wrapped_lines() {
        let src = "fn f() {\n    let c = registry::counter(\"my_requests_total\");\n    let g = afforest_obs::registry::gauge(\n        \"my_depth\",\n    );\n    c.inc(); g.set(1);\n}\n";
        let (names, errors) = scan_metric_names("crates/serve/src/x.rs", src);
        assert!(errors.is_empty(), "{errors:?}");
        let just_names: Vec<&str> = names.iter().map(|(_, n)| n.as_str()).collect();
        // Source order (scan results sort by line).
        assert_eq!(just_names, ["my_requests_total", "my_depth"]);
    }

    #[test]
    fn non_literal_metric_name_is_flagged() {
        let src = "fn f(name: &'static str) { registry::histogram(name); }\n";
        let (names, errors) = scan_metric_names("crates/serve/src/x.rs", src);
        assert!(names.is_empty());
        assert_eq!(errors.len(), 1);
        assert_eq!(errors[0].rule, Rule::NonLiteralMetricName);
    }

    #[test]
    fn obs_crate_and_comments_are_exempt_from_metric_scan() {
        let src =
            "// registry::counter(\"commented_out\")\nfn f() { registry::counter(\"scratch\"); }\n";
        let (names, errors) = scan_metric_names("crates/obs/src/registry.rs", src);
        assert!(names.is_empty() && errors.is_empty());
        // Outside obs, the comment is still ignored but the code counts.
        let (names, _) = scan_metric_names("crates/serve/src/x.rs", src);
        assert_eq!(names.len(), 1);
        assert_eq!(names[0].1, "scratch");
    }

    /// Every metric the serving stack registers is named in the fixture
    /// (the workspace-level MetricMissingFromFixture check has teeth:
    /// deleting a fixture line must fail the lint).
    #[test]
    fn fixture_covers_the_serve_metric_set() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let fixture = fs::read_to_string(root.join(METRIC_FIXTURE)).expect("fixture exists");
        let metrics_rs = fs::read_to_string(root.join("crates/serve/src/metrics.rs")).unwrap();
        let (names, _) = scan_metric_names("crates/serve/src/metrics.rs", &metrics_rs);
        assert!(names.len() >= 20, "suspiciously few metrics: {names:?}");
        for (_, name) in &names {
            assert!(
                fixture.lines().any(|l| l
                    .strip_prefix("# TYPE ")
                    .is_some_and(|r| { r.split_whitespace().next() == Some(name.as_str()) })),
                "{name} not in fixture"
            );
        }
    }

    /// The real workspace passes the lint (run from the repo root).
    #[test]
    fn workspace_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let errors = lint_workspace(&root);
        assert!(
            errors.is_empty(),
            "workspace lint failures:\n{}",
            errors
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
