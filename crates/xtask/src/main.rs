//! Workspace automation, runnable as `cargo xtask <command>` (aliased in
//! `.cargo/config.toml`).
//!
//! - `cargo xtask lint` — the static concurrency lints ([`lint`]):
//!   SAFETY-comment coverage for `unsafe`, the atomic-ordering allowlist,
//!   the SeqCst ban, `#![deny(unsafe_op_in_unsafe_fn)]` opt-in, and
//!   metric-name coverage (every registry metric literal must appear in
//!   the exposition fixture).
//! - `cargo xtask ci` — the full gate: fmt, clippy (`-D warnings`), the
//!   lints, the test suite both without and with the observability
//!   feature (`obs`), the loopback serving smoke test ([`smoke`], also
//!   with obs off and on), the crash-recovery smoke test ([`crash`],
//!   clean and with chaos faults injected), the telemetry scrape smoke
//!   ([`metrics`]), and the schedule-exploring model checker (`ci.sh` is
//!   a thin wrapper around this).

mod crash;
mod lint;
mod metrics;
mod smoke;

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let errors = lint::lint_workspace(&root);
    let files = lint::collect_sources(&root).len();
    if errors.is_empty() {
        println!(
            "xtask lint: {files} files clean (SAFETY comments, ordering allowlist, no SeqCst, metric fixture coverage)"
        );
        ExitCode::SUCCESS
    } else {
        for e in &errors {
            eprintln!("{e}");
        }
        eprintln!(
            "xtask lint: {} violation(s) in {files} scanned files",
            errors.len()
        );
        ExitCode::FAILURE
    }
}

/// Runs one CI step, echoing the command line.
fn step(root: &Path, name: &str, program: &str, args: &[&str]) -> bool {
    println!("==> {name}: {program} {}", args.join(" "));
    let status = Command::new(program).args(args).current_dir(root).status();
    match status {
        Ok(s) if s.success() => true,
        Ok(s) => {
            eprintln!("==> {name} failed ({s})");
            false
        }
        Err(e) => {
            eprintln!("==> {name} could not start: {e}");
            false
        }
    }
}

fn run_ci() -> ExitCode {
    let root = workspace_root();
    let steps: &[(&str, &str, &[&str])] = &[
        ("format", "cargo", &["fmt", "--all", "--", "--check"]),
        (
            "clippy",
            "cargo",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ),
        ("tests", "cargo", &["test", "--workspace", "-q"]),
        // Second test pass with the observability runtime compiled in:
        // the obs-gated tests (trace coverage, span emission) only exist
        // there, and it proves the instrumented build stays green.
        (
            "tests (obs)",
            "cargo",
            &[
                "test",
                "-q",
                "-p",
                "afforest-obs",
                "-p",
                "afforest-core",
                "-p",
                "afforest-baselines",
                "-p",
                "afforest-bench",
                "-p",
                "afforest-cli",
                "-p",
                "afforest-serve",
                "--features",
                "afforest-obs/enabled,afforest-core/obs,afforest-baselines/obs,\
                 afforest-bench/obs,afforest-cli/obs,afforest-serve/obs",
            ],
        ),
        (
            "model check",
            "cargo",
            &["run", "-q", "-p", "afforest-modelcheck"],
        ),
    ];

    // Lint first: it is the cheapest step and the most likely to catch a
    // concurrency-relevant edit.
    println!("==> concurrency lints");
    if run_lint() != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }
    for &(name, program, args) in steps {
        if !step(&root, name, program, args) {
            return ExitCode::FAILURE;
        }
    }
    // End-to-end serving smoke over loopback TCP, in both builds of the
    // serving path (obs compiled out and in).
    for obs in [false, true] {
        println!("==> serve smoke{}", if obs { " (obs)" } else { "" });
        if !smoke::run_smoke(&root, obs) {
            return ExitCode::FAILURE;
        }
    }
    // WAL crash-recovery smoke: kill -9 mid-serve, recover, compare with
    // an uninterrupted run — once clean, once under injected chaos.
    for faults in [false, true] {
        println!(
            "==> crash recovery smoke{}",
            if faults { " (faults)" } else { "" }
        );
        if !crash::run_crash(&root, faults) {
            return ExitCode::FAILURE;
        }
    }
    // Telemetry smoke: serve with the scrape sidecar, drive load, scrape
    // twice over HTTP, require monotonic counters and a flight dump.
    println!("==> metrics smoke");
    if !metrics::run_metrics(&root) {
        return ExitCode::FAILURE;
    }
    println!("==> ci passed");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let task = std::env::args().nth(1);
    match task.as_deref() {
        Some("lint") => run_lint(),
        Some("ci") => run_ci(),
        Some("crash") => {
            // The crash-recovery smoke alone (also part of `ci`).
            let root = workspace_root();
            for faults in [false, true] {
                println!(
                    "==> crash recovery smoke{}",
                    if faults { " (faults)" } else { "" }
                );
                if !crash::run_crash(&root, faults) {
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Some("metrics") => {
            // The telemetry smoke alone (also part of `ci`).
            println!("==> metrics smoke");
            if metrics::run_metrics(&workspace_root()) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask <lint|ci|crash|metrics>");
            eprintln!("  lint     static concurrency lints (SAFETY comments, ordering allowlist, SeqCst ban) + metric-name fixture coverage");
            eprintln!("  ci       fmt --check + clippy -D warnings + lints + tests (with and without obs) + model checker + serve/crash/metrics smokes");
            eprintln!("  crash    the WAL crash-recovery smoke alone");
            eprintln!("  metrics  the telemetry scrape smoke alone");
            ExitCode::FAILURE
        }
    }
}
