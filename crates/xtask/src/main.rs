//! Workspace automation, runnable as `cargo xtask <command>` (aliased in
//! `.cargo/config.toml`).
//!
//! - `cargo xtask lint [--json <path>] [--list-passes]` — a thin driver
//!   over the `afforest-analysis` battery (see DESIGN.md §13): the exact
//!   lexer, the eight passes, and the structured diagnostics all live in
//!   `crates/analysis`; this binary only loads the workspace, runs the
//!   battery, prints findings, and optionally writes the JSON report.
//! - `cargo xtask ci` — the full gate: the analysis battery (JSON report
//!   to `target/analysis.json`), fmt, clippy (`-D warnings`), the test
//!   suite both without and with the observability feature (`obs`), the
//!   loopback serving smoke test ([`smoke`], also with obs off and on),
//!   the crash-recovery smoke test ([`crash`], clean and with chaos
//!   faults injected), the telemetry scrape smoke ([`metrics`]), the
//!   sharded serving smoke ([`shard_smoke`]: router + workers + a worker
//!   SIGKILL), the request-tracing smoke ([`tracesmoke`]: one traced
//!   insert stitched into a cross-process span tree), the cluster chaos soak ([`chaos_soak`]: a scripted
//!   kill/hang/slow/partition fault matrix against a 3-shard cluster,
//!   asserting parked-write replay, degraded reads and oracle-exact
//!   convergence), and the schedule-exploring model checker (`ci.sh` is
//!   a thin wrapper around this).

#![forbid(unsafe_code)]

mod chaos_soak;
mod crash;
mod metrics;
mod shard_smoke;
mod smoke;
mod tracesmoke;

use afforest_analysis::diag::{to_json, Severity};
use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn workspace_root() -> PathBuf {
    // xtask lives at <root>/crates/xtask.
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Runs the battery; prints findings; writes the JSON report when asked.
/// Exit status fails on any `Error`-severity diagnostic.
fn run_lint(json_out: Option<&Path>) -> ExitCode {
    let root = workspace_root();
    let report = afforest_analysis::run_workspace(&root);
    for d in &report.diagnostics {
        match d.severity {
            Severity::Error => eprintln!("{d}"),
            Severity::Warning => println!("{d}"),
        }
    }
    if let Some(path) = json_out {
        let path = if path.is_absolute() {
            path.to_path_buf()
        } else {
            root.join(path)
        };
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        if let Err(e) = std::fs::write(&path, to_json(&report)) {
            eprintln!("xtask lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("xtask lint: report written to {}", path.display());
    }
    let errors = report
        .diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    if errors == 0 {
        println!(
            "xtask lint: {} files clean across {} passes ({})",
            report.files_scanned,
            report.passes.len(),
            report.passes.join(", ")
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "xtask lint: {errors} error(s) in {} scanned files",
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}

fn list_passes() -> ExitCode {
    for (id, description) in afforest_analysis::list_passes() {
        println!("{id:<20} {description}");
    }
    ExitCode::SUCCESS
}

/// Runs one CI step, echoing the command line.
fn step(root: &Path, name: &str, program: &str, args: &[&str]) -> bool {
    println!("==> {name}: {program} {}", args.join(" "));
    let status = Command::new(program).args(args).current_dir(root).status();
    match status {
        Ok(s) if s.success() => true,
        Ok(s) => {
            eprintln!("==> {name} failed ({s})");
            false
        }
        Err(e) => {
            eprintln!("==> {name} could not start: {e}");
            false
        }
    }
}

fn run_ci() -> ExitCode {
    let root = workspace_root();
    let steps: &[(&str, &str, &[&str])] = &[
        ("format", "cargo", &["fmt", "--all", "--", "--check"]),
        (
            "clippy",
            "cargo",
            &[
                "clippy",
                "--workspace",
                "--all-targets",
                "--",
                "-D",
                "warnings",
            ],
        ),
        ("tests", "cargo", &["test", "--workspace", "-q"]),
        // Second test pass with the observability runtime compiled in:
        // the obs-gated tests (trace coverage, span emission) only exist
        // there, and it proves the instrumented build stays green.
        (
            "tests (obs)",
            "cargo",
            &[
                "test",
                "-q",
                "-p",
                "afforest-obs",
                "-p",
                "afforest-core",
                "-p",
                "afforest-baselines",
                "-p",
                "afforest-bench",
                "-p",
                "afforest-cli",
                "-p",
                "afforest-serve",
                "--features",
                "afforest-obs/enabled,afforest-core/obs,afforest-baselines/obs,\
                 afforest-bench/obs,afforest-cli/obs,afforest-serve/obs",
            ],
        ),
        (
            "model check",
            "cargo",
            &["run", "-q", "-p", "afforest-modelcheck"],
        ),
    ];

    // The analysis battery first: it is the cheapest step and the most
    // likely to catch a concurrency- or protocol-relevant edit. CI always
    // writes the machine-readable report for downstream tooling.
    println!("==> analysis battery");
    if run_lint(Some(Path::new("target/analysis.json"))) != ExitCode::SUCCESS {
        return ExitCode::FAILURE;
    }
    for &(name, program, args) in steps {
        if !step(&root, name, program, args) {
            return ExitCode::FAILURE;
        }
    }
    // End-to-end serving smoke over loopback TCP, in both builds of the
    // serving path (obs compiled out and in).
    for obs in [false, true] {
        println!("==> serve smoke{}", if obs { " (obs)" } else { "" });
        if !smoke::run_smoke(&root, obs) {
            return ExitCode::FAILURE;
        }
    }
    // WAL crash-recovery smoke: kill -9 mid-serve, recover, compare with
    // an uninterrupted run — once clean, once under injected chaos.
    for faults in [false, true] {
        println!(
            "==> crash recovery smoke{}",
            if faults { " (faults)" } else { "" }
        );
        if !crash::run_crash(&root, faults) {
            return ExitCode::FAILURE;
        }
    }
    // Telemetry smoke: serve with the scrape sidecar, drive load, scrape
    // twice over HTTP, require monotonic counters and a flight dump.
    println!("==> metrics smoke");
    if !metrics::run_metrics(&root) {
        return ExitCode::FAILURE;
    }
    // Sharded serving smoke: router + 2 shard workers over the wire,
    // SIGKILL one worker, restart from its WAL namespace, compare with a
    // single-engine oracle and require per-shard labelled metrics.
    println!("==> sharded serving smoke");
    if !shard_smoke::run_shard(&root) {
        return ExitCode::FAILURE;
    }
    // Request-tracing smoke: one traced insert stitched into a single
    // cross-process span tree (router + 2 workers), exemplar in the
    // scrape, slow-log on disk.
    println!("==> tracing smoke");
    if !tracesmoke::run_tracesmoke(&root) {
        return ExitCode::FAILURE;
    }
    // Cluster chaos soak: the failure-domain layer under a scripted
    // fault matrix — breaker, parked writes, degraded reads, recovery.
    println!("==> cluster chaos soak");
    if !chaos_soak::run_chaos(&root) {
        return ExitCode::FAILURE;
    }
    println!("==> ci passed");
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let rest = &args[1..];
            if rest.iter().any(|a| a == "--list-passes") {
                return list_passes();
            }
            let mut json_out = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                if a == "--json" {
                    match it.next() {
                        Some(path) => json_out = Some(PathBuf::from(path)),
                        None => {
                            eprintln!("usage: cargo xtask lint [--json <path>] [--list-passes]");
                            return ExitCode::FAILURE;
                        }
                    }
                } else {
                    eprintln!("xtask lint: unknown flag {a}");
                    eprintln!("usage: cargo xtask lint [--json <path>] [--list-passes]");
                    return ExitCode::FAILURE;
                }
            }
            run_lint(json_out.as_deref())
        }
        Some("ci") => run_ci(),
        Some("crash") => {
            // The crash-recovery smoke alone (also part of `ci`).
            let root = workspace_root();
            for faults in [false, true] {
                println!(
                    "==> crash recovery smoke{}",
                    if faults { " (faults)" } else { "" }
                );
                if !crash::run_crash(&root, faults) {
                    return ExitCode::FAILURE;
                }
            }
            ExitCode::SUCCESS
        }
        Some("metrics") => {
            // The telemetry smoke alone (also part of `ci`).
            println!("==> metrics smoke");
            if metrics::run_metrics(&workspace_root()) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("chaos") => {
            // The cluster chaos soak alone (also part of `ci`).
            println!("==> cluster chaos soak");
            if chaos_soak::run_chaos(&workspace_root()) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("shard") => {
            // The sharded serving smoke alone (also part of `ci`).
            println!("==> sharded serving smoke");
            if shard_smoke::run_shard(&workspace_root()) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Some("tracesmoke") => {
            // The request-tracing smoke alone (also part of `ci`).
            println!("==> tracing smoke");
            if tracesmoke::run_tracesmoke(&workspace_root()) {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask <lint|ci|crash|metrics|shard|tracesmoke|chaos>");
            eprintln!("  lint     the static analysis battery (crates/analysis, DESIGN.md section 13); --json <path> writes the report, --list-passes enumerates passes");
            eprintln!("  ci       analysis battery + fmt --check + clippy -D warnings + tests (with and without obs) + model checker + serve/crash/metrics/shard smokes + chaos soak");
            eprintln!("  crash    the WAL crash-recovery smoke alone");
            eprintln!("  metrics  the telemetry scrape smoke alone");
            eprintln!("  shard    the sharded serving smoke alone (router + workers + SIGKILL)");
            eprintln!("  tracesmoke  the request-tracing smoke alone (cross-process span tree + exemplar + slow-log)");
            eprintln!("  chaos    the cluster chaos soak alone (scripted fault matrix, parked-write replay)");
            ExitCode::FAILURE
        }
    }
}
