//! Cluster chaos soak for `cargo xtask ci` (`cargo xtask chaos`).
//!
//! The failure-domain layer end to end, across real processes: a router
//! in front of three shard workers, driven through a scripted fault
//! matrix while edges stream in. The deterministic core: SIGKILL one
//! worker mid-ingest and require that live-shard ingest keeps flowing,
//! that writes bound for the dead shard park durably, that reads
//! straddling it come back tagged Degraded (while live-shard reads stay
//! plain), and that the breaker/park/degraded state is visible in the
//! live `/metrics` scrape. Then a seeded [`FaultPlan`] cluster schedule
//! kills, hangs, slows and partitions workers (`SIGKILL` / `SIGSTOP` …
//! `SIGCONT`) between ingest rounds. After every worker is back and the
//! parked backlogs have replayed, the router's answers must equal a
//! single-engine `IncrementalCc` oracle that saw every edge, untagged —
//! and the router's flight recording must show the health transitions
//! and the replay.

use crate::shard_smoke::{respawn_worker, spawn_worker, wait_exit, WorkerOut};
use crate::smoke::{cli_cmd, connect, shutdown_and_reap, Reaper};
use afforest_core::IncrementalCc;
use afforest_serve::events::{self, EventKind};
use afforest_serve::http::http_get;
use afforest_serve::{ClusterFault, FaultPlan, RetryPolicy, TenantId};
use afforest_shard::ShardPlan;
use std::io::{BufRead, BufReader};
use std::path::Path;
use std::process::Stdio;
use std::time::{Duration, Instant};

/// Global vertex universe, split across [`SHARDS`] workers.
const N: usize = 3000;
const SHARDS: usize = 3;
/// Seeded cluster fault schedule: every flavor fires over the soak.
const FAULT_SPEC: &str = "seed=11,shard_kill=0.25,shard_hang=0.25,shard_slow=0.25,\
                          shard_partition=0.25,shard_fault_ms=150";
/// Plan-driven soak rounds after the deterministic kill drill.
const SOAK_STEPS: usize = 4;

/// Runs the chaos soak; returns success.
pub fn run_chaos(root: &Path) -> bool {
    match chaos(root) {
        Ok(()) => true,
        Err(e) => {
            eprintln!("==> cluster chaos soak failed: {e}");
            false
        }
    }
}

/// One live shard worker: its process, fixed address, WAL namespace and
/// stdout reader (dropping the reader would turn the worker's shutdown
/// report into a panic).
struct Worker {
    child: Reaper,
    addr: String,
    wal: String,
    _out: WorkerOut,
}

impl Worker {
    fn pid(&self) -> u32 {
        self.child.0.id()
    }

    /// SIGKILL — no drain, no goodbye.
    fn kill(&mut self) -> Result<(), String> {
        self.child
            .0
            .kill()
            .map_err(|e| format!("kill worker: {e}"))?;
        let _ = self.child.0.wait();
        Ok(())
    }

    /// Restart on the original port from the WAL namespace.
    fn restart(&mut self, root: &Path, vertices: usize) -> Result<(), String> {
        let (child, out) = respawn_worker(root, vertices, &self.addr, &self.wal)?;
        self.child = child;
        self._out = out;
        Ok(())
    }
}

/// Sends `sig` (e.g. `-STOP`, `-CONT`) to a worker process.
fn signal(pid: u32, sig: &str) -> Result<(), String> {
    let status = std::process::Command::new("kill")
        .args([sig, &pid.to_string()])
        .status()
        .map_err(|e| format!("kill {sig}: {e}"))?;
    if !status.success() {
        return Err(format!("kill {sig} {pid} exited with {status}"));
    }
    Ok(())
}

/// The value of one exposition series (exact name + label match).
fn series_value(scrape: &str, series: &str) -> Option<u64> {
    scrape.lines().find_map(|l| {
        l.strip_prefix(series)
            .and_then(|rest| rest.trim().parse::<u64>().ok())
    })
}

/// Polls the scrape until `pred` holds on it, or fails after 30 s.
fn await_scrape(
    scrape_addr: &str,
    what: &str,
    pred: impl Fn(&str) -> bool,
) -> Result<String, String> {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let (status, scrape) = http_get(scrape_addr, "/metrics")?;
        if status == 200 && pred(&scrape) {
            return Ok(scrape);
        }
        if Instant::now() > deadline {
            return Err(format!("scrape never showed {what}"));
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Shard-local edges for shard `k` of `plan`, offset by `salt` so
/// successive rounds add genuinely new edges.
fn local_edges(plan: &ShardPlan, k: usize, count: usize, salt: u32) -> Vec<(u32, u32)> {
    let r = plan.range(k);
    let len = r.end - r.start;
    (0..count as u32)
        .map(|i| {
            (
                r.start + (i * 7 + salt) % len,
                r.start + (i * 13 + salt + 1) % len,
            )
        })
        .collect()
}

fn chaos(root: &Path) -> Result<(), String> {
    let tmp = std::env::temp_dir();
    let pid = std::process::id();
    let router_wal = tmp
        .join(format!("afforest-chaos-router-{pid}"))
        .to_string_lossy()
        .into_owned();
    let worker_wals: Vec<String> = (0..SHARDS)
        .map(|k| {
            tmp.join(format!("afforest-chaos-w{k}-{pid}"))
                .to_string_lossy()
                .into_owned()
        })
        .collect();
    for dir in worker_wals.iter().chain([&router_wal]) {
        let _ = std::fs::remove_dir_all(dir);
    }

    // 1. Three shard workers, then the router with tight failure-domain
    // knobs: two strikes open the breaker, probes every 100 ms, and a
    // small retry budget so a dead worker is *detected* (and its writes
    // parked) instead of being retried into oblivion. The park logs and
    // the flight recording both land in the router's wal-dir.
    let plan = ShardPlan::new(N, SHARDS);
    let mut workers = Vec::new();
    for (k, wal) in worker_wals.iter().enumerate() {
        let (child, addr, out) = spawn_worker(root, plan.shard_len(k), "127.0.0.1:0", wal, &[])?;
        workers.push(Worker {
            child,
            addr,
            wal: wal.clone(),
            _out: out,
        });
    }
    let shard_addrs = workers
        .iter()
        .map(|w| w.addr.clone())
        .collect::<Vec<_>>()
        .join(",");
    let n_s = N.to_string();
    let mut router = Reaper(
        cli_cmd(root, false)
            .args([
                "serve",
                "--shard-addrs",
                &shard_addrs,
                "--vertices",
                &n_s,
                "--addr",
                "127.0.0.1:0",
                "--workers",
                "4",
                "--metrics-addr",
                "127.0.0.1:0",
                "--wal-dir",
                &router_wal,
                "--max-retries",
                "4",
                "--retry-backoff-us",
                "2000",
                "--suspect-after",
                "1",
                "--down-after",
                "2",
                "--probe-interval-ms",
                "100",
            ])
            .stdout(Stdio::piped())
            .spawn()
            .map_err(|e| format!("spawn router: {e}"))?,
    );
    let stdout = router.0.stdout.take().ok_or("router stdout not captured")?;
    let mut lines = BufReader::new(stdout).lines();
    let (mut addr, mut scrape_addr) = (None, None);
    while addr.is_none() || scrape_addr.is_none() {
        let line = lines
            .next()
            .ok_or("router exited before announcing its addresses")?
            .map_err(|e| format!("read router stdout: {e}"))?;
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = rest.split_whitespace().next().map(str::to_string);
        } else if let Some(rest) = line.strip_prefix("metrics on http://") {
            scrape_addr = rest.strip_suffix("/metrics").map(str::to_string);
        }
    }
    let (addr, scrape_addr) = (addr.unwrap(), scrape_addr.unwrap());

    // The wire-v2 client: Degraded arrives as a tag it can report, not
    // as a conservative v1 error.
    let mut client = connect(&addr)?
        .with_tenant(TenantId::new("default").map_err(|e| format!("tenant: {e}"))?)
        .with_retry(RetryPolicy {
            max_retries: 12,
            backoff: Duration::from_millis(20),
        });
    let mut oracle = IncrementalCc::new(N);

    let ingest = |client: &mut afforest_serve::Client,
                  oracle: &mut IncrementalCc,
                  edges: &[(u32, u32)]|
     -> Result<(), String> {
        for chunk in edges.chunks(8) {
            let accepted = client
                .insert_edges(chunk)
                .map_err(|e| format!("insert: {e}"))?;
            if accepted as usize != chunk.len() {
                return Err(format!(
                    "insert accepted {accepted} of {} edge(s)",
                    chunk.len()
                ));
            }
        }
        oracle.insert_batch(edges);
        Ok(())
    };
    // Settling (queue drained, ingest counter stable) is the safety
    // fence before every kill: applied ⇒ WAL-logged, so a settled kill
    // loses nothing and the oracle comparison stays exact.
    let settle = |client: &mut afforest_serve::Client| -> Result<(), String> {
        let deadline = Instant::now() + Duration::from_secs(60);
        let mut last = u64::MAX;
        loop {
            let stats = client.stats().map_err(|e| format!("stats: {e}"))?;
            if stats.queue_depth == 0 && stats.edges_ingested == last {
                return Ok(());
            }
            last = stats.edges_ingested;
            if Instant::now() > deadline {
                return Err("ingest never settled".into());
            }
            std::thread::sleep(Duration::from_millis(150));
        }
    };

    // 2. Baseline: a mixed round (local and cut edges), settled and
    // oracle-exact, with every shard reporting Healthy (0).
    let round1: Vec<(u32, u32)> = (0..180u32)
        .map(|i| ((i * 37) % N as u32, (i * 61 + 1) % N as u32))
        .collect();
    ingest(&mut client, &mut oracle, &round1)?;
    settle(&mut client)?;
    let got = client
        .num_components()
        .map_err(|e| format!("num_components: {e}"))?;
    if got != oracle.num_components() as u64 {
        return Err(format!(
            "baseline: router reports {got} component(s), oracle has {}",
            oracle.num_components()
        ));
    }
    await_scrape(&scrape_addr, "every shard Healthy", |s| {
        (0..SHARDS)
            .all(|k| series_value(s, &format!("afforest_shard_health{{shard=\"{k}\"}}")) == Some(0))
    })?;

    // 3. The deterministic kill drill: SIGKILL worker 1 mid-stream, then
    // keep ingesting a round that touches every shard. Live-shard writes
    // must keep flowing; shard-1 writes park; the whole insert answer is
    // tagged Degraded.
    settle(&mut client)?;
    workers[1].kill()?;
    let parked_round = local_edges(&plan, 1, 30, 1000);
    ingest(&mut client, &mut oracle, &parked_round)?;
    if !client.last_answer_degraded() {
        return Err("insert touching the dead shard was not tagged Degraded".into());
    }
    let mut live_round = local_edges(&plan, 0, 30, 1000);
    live_round.extend(local_edges(&plan, 2, 30, 1000));
    ingest(&mut client, &mut oracle, &live_round)?;
    if client.last_answer_degraded() {
        return Err("live-shard insert was tagged Degraded".into());
    }

    // Reads while down: pinned to a live shard → plain; straddling the
    // dead shard → answered, but tagged.
    let r0 = plan.range(0);
    let r1 = plan.range(1);
    client
        .connected(r0.start, r0.start + 1)
        .map_err(|e| format!("live connected: {e}"))?;
    if client.last_answer_degraded() {
        return Err("live-shard read was tagged Degraded".into());
    }
    client
        .connected(r0.start, r1.start)
        .map_err(|e| format!("straddling connected: {e}"))?;
    if !client.last_answer_degraded() {
        return Err("read straddling the dead shard was not tagged Degraded".into());
    }

    // The live telemetry plane shows the whole failure domain: breaker
    // open (2 = Down), a parked backlog, and degraded reads served.
    await_scrape(&scrape_addr, "shard 1 Down with a parked backlog", |s| {
        series_value(s, "afforest_shard_health{shard=\"1\"}") == Some(2)
            && series_value(s, "afforest_parked_batches{shard=\"1\"}").is_some_and(|v| v > 0)
            && series_value(s, "afforest_degraded_reads").is_some_and(|v| v > 0)
    })?;

    // 4. Recovery: restart worker 1 from its WAL on the same port. The
    // next calls probe the breaker, replay the backlog in order, and
    // close the loop: gauges back to Healthy/0 parked.
    workers[1].restart(root, plan.shard_len(1))?;
    let recovered = Instant::now() + Duration::from_secs(30);
    loop {
        let _ = client.stats().map_err(|e| format!("stats: {e}"))?;
        let (status, scrape) = http_get(&scrape_addr, "/metrics")?;
        if status == 200
            && series_value(&scrape, "afforest_shard_health{shard=\"1\"}") == Some(0)
            && series_value(&scrape, "afforest_parked_batches{shard=\"1\"}") == Some(0)
        {
            break;
        }
        if Instant::now() > recovered {
            return Err("shard 1 never recovered (health/parked gauges)".into());
        }
        std::thread::sleep(Duration::from_millis(100));
    }

    // 5. The seeded fault matrix: between ingest rounds the plan picks a
    // worker to kill (restart from WAL), hang, slow, or partition — the
    // latter three all materialize as SIGSTOP…SIGCONT, which from the
    // router's side is exactly an unresponsive peer. Settling before
    // each fault keeps the oracle comparison exact.
    let faults = FaultPlan::parse(FAULT_SPEC).map_err(|e| format!("fault spec: {e}"))?;
    let mut fired = 0usize;
    for step in 0..SOAK_STEPS {
        settle(&mut client)?;
        match faults.on_cluster_step(SHARDS) {
            Some(ClusterFault::Kill { shard }) => {
                fired += 1;
                workers[shard].kill()?;
                // A couple of writes park against the dead shard...
                ingest(
                    &mut client,
                    &mut oracle,
                    &local_edges(&plan, shard, 6, 3000 + step as u32),
                )?;
                // ...then it comes back and the backlog replays.
                workers[shard].restart(root, plan.shard_len(shard))?;
            }
            Some(
                ClusterFault::Hang { shard, pause } | ClusterFault::Partition { shard, pause },
            ) => {
                fired += 1;
                signal(workers[shard].pid(), "-STOP")?;
                std::thread::sleep(pause);
                signal(workers[shard].pid(), "-CONT")?;
            }
            Some(ClusterFault::Slow { shard, pause }) => {
                fired += 1;
                for _ in 0..3 {
                    signal(workers[shard].pid(), "-STOP")?;
                    std::thread::sleep(pause / 6);
                    signal(workers[shard].pid(), "-CONT")?;
                    std::thread::sleep(pause / 6);
                }
            }
            None => {}
        }
        let mut round = local_edges(&plan, step % SHARDS, 8, 4000 + step as u32);
        round.push(((step * 17 % N) as u32, ((step * 23 + N / 2) % N) as u32));
        ingest(&mut client, &mut oracle, &round)?;
    }
    if fired == 0 {
        return Err("the fault schedule never fired; the soak has no teeth".into());
    }
    if faults.injected().total() != fired as u64 {
        return Err("fault plan counters disagree with the faults applied".into());
    }

    // 6. Convergence: everyone is back, every backlog has replayed, and
    // the composite answers equal the oracle — untagged.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let _ = client.stats().map_err(|e| format!("stats: {e}"))?;
        let (status, scrape) = http_get(&scrape_addr, "/metrics")?;
        let healthy = status == 200
            && (0..SHARDS).all(|k| {
                series_value(&scrape, &format!("afforest_shard_health{{shard=\"{k}\"}}")) == Some(0)
                    && series_value(
                        &scrape,
                        &format!("afforest_parked_batches{{shard=\"{k}\"}}"),
                    ) == Some(0)
            });
        if healthy {
            break;
        }
        if Instant::now() > deadline {
            return Err("cluster never converged back to Healthy/0 parked".into());
        }
        std::thread::sleep(Duration::from_millis(100));
    }
    settle(&mut client)?;
    let expected = oracle.num_components() as u64;
    let got = client
        .num_components()
        .map_err(|e| format!("num_components after soak: {e}"))?;
    if got != expected || client.last_answer_degraded() {
        return Err(format!(
            "after the soak the router reports {got} component(s) (degraded: {}), oracle has \
             {expected}",
            client.last_answer_degraded()
        ));
    }
    let labels = oracle.labels();
    for k in 0..SHARDS {
        let r = plan.range(k);
        for u in [r.start, r.end - 1] {
            let label = client.component(u).map_err(|e| format!("component: {e}"))?;
            if label != labels.label(u) || client.last_answer_degraded() {
                return Err(format!(
                    "Component({u}) = {label} (degraded: {}), oracle says {}",
                    client.last_answer_degraded(),
                    labels.label(u)
                ));
            }
        }
    }

    // 7. Clean teardown, then the post-mortem: the router's flight
    // recording must show the health transitions and the replay.
    shutdown_and_reap(&addr, &mut router)?;
    for (k, w) in workers.iter_mut().enumerate() {
        wait_exit(&format!("worker {k}"), &mut w.child)?;
    }
    let flight = Path::new(&router_wal).join("flight.json");
    let text = std::fs::read_to_string(&flight)
        .map_err(|e| format!("flight recording {}: {e}", flight.display()))?;
    let dump = events::parse_dump(&text).map_err(|e| format!("flight recording: {e}"))?;
    let transitions = dump.of_kind(EventKind::ShardHealthChanged).count();
    let replays = dump.of_kind(EventKind::ParkReplayed).count();
    if transitions == 0 || replays == 0 {
        return Err(format!(
            "flight recording shows {transitions} health transition(s) and {replays} park \
             replay(s); expected both"
        ));
    }

    for dir in worker_wals.iter().chain([&router_wal]) {
        let _ = std::fs::remove_dir_all(dir);
    }
    println!(
        "==> cluster chaos soak: router + {SHARDS} workers survived a SIGKILL drill and {fired} \
         scheduled fault(s); {expected} component(s) == oracle, {transitions} health \
         transition(s), {replays} replay(s) on the flight ring"
    );
    Ok(())
}
