//! Distributed CC by spanning-forest reduction.
//!
//! The Afforest-side insight (Section IV-A): a component labeling needs
//! only a spanning forest, never the full edge set. Distributed, this
//! means a rank never ships raw edges — it ships its *local spanning
//! forest* (≤ `|V| − 1` edges however large its edge subset is), and
//! merged forests are re-reduced at every step:
//!
//! 1. Every rank links its local edge subset with Afforest's `link`
//!    primitive (in parallel, via rayon) and keeps the merge edges — its
//!    local spanning forest.
//! 2. Forests flow up a binomial reduction tree: in round `r`, rank
//!    `p` with `p mod 2^{r+1} = 2^r` sends its forest to `p − 2^r`, and
//!    the receiver merges + re-extracts. After `⌈log₂ P⌉` rounds, rank 0
//!    holds a spanning forest of the whole graph.
//! 3. Rank 0 derives the labeling.
//!
//! Total communication is at most `(P − 1)(|V| − 1)` words, and any
//! single rank's critical path carries at most `(|V| − 1)·⌈log₂ P⌉` — in
//! both cases independent of `|E|`, the distributed analogue of the
//! paper's work-efficiency argument.

use crate::bsp::{run_bsp, CommStats};
use crate::partition::VertexPartition;
use afforest_core::labels::ComponentLabels;
use afforest_core::link::link;
use afforest_core::parents::ParentArray;
use afforest_graph::{CsrGraph, Edge, Node};
use rayon::prelude::*;

/// Per-rank state: the current (partial) spanning forest.
struct RankState {
    forest: Vec<Edge>,
}

/// Runs distributed CC via spanning-forest reduction.
///
/// Returns the labeling (identical partition to any shared-memory
/// algorithm) plus exact communication statistics.
pub fn distributed_cc_forest(g: &CsrGraph, part: &VertexPartition) -> (ComponentLabels, CommStats) {
    assert_eq!(part.len(), g.num_vertices(), "partition size mismatch");
    let n = g.num_vertices();
    let p = part.num_ranks();

    // Step 1: local spanning forests via parallel link merge-tracking.
    let per_rank_edges = part.partition_edges(g);
    let states: Vec<RankState> = per_rank_edges
        .into_iter()
        .map(|edges| RankState {
            forest: local_forest(n, &edges),
        })
        .collect();

    // Step 2: binomial reduction over BSP supersteps.
    let rounds = p.next_power_of_two().trailing_zeros() as usize;
    let (states, stats) = run_bsp(
        states,
        rounds + 2,
        move |rank, superstep, state, inbox: Vec<Edge>, out| {
            // Merge everything received last superstep, re-reducing to a
            // forest so the payload stays ≤ |V| − 1 edges.
            if !inbox.is_empty() {
                let mut combined = std::mem::take(&mut state.forest);
                combined.extend(inbox);
                state.forest = forest_of(n, &combined);
            }
            // Send for round `superstep` if this rank is that round's sender.
            if superstep < rounds {
                let bit = 1usize << superstep;
                if rank & (2 * bit - 1) == bit {
                    let dst = rank - bit;
                    for &e in &state.forest {
                        out.send(dst, e);
                    }
                    state.forest.clear();
                }
                return true;
            }
            false
        },
    );

    // Step 3: rank 0 derives the labeling from the global forest.
    let labels = labels_from_forest(n, &states[0].forest);
    (ComponentLabels::from_vec(labels), stats)
}

/// Spanning forest of an edge subset via Afforest's parallel `link`
/// (successful-CAS tracking, exactly as `afforest_core::spanning_forest`).
fn local_forest(n: usize, edges: &[Edge]) -> Vec<Edge> {
    let pi = ParentArray::new(n);
    edges
        .par_iter()
        .filter(|&&(u, v)| link(u, v, &pi))
        .copied()
        .collect()
}

/// Serial union-find spanning forest of an arbitrary edge list.
fn forest_of(n: usize, edges: &[Edge]) -> Vec<Edge> {
    let mut parent: Vec<Node> = (0..n as Node).collect();
    let mut forest = Vec::new();
    for &(u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru.max(rv) as usize] = ru.min(rv);
            forest.push((u, v));
        }
    }
    forest
}

/// Component-minimum labeling induced by a forest.
fn labels_from_forest(n: usize, forest: &[Edge]) -> Vec<Node> {
    let mut parent: Vec<Node> = (0..n as Node).collect();
    for &(u, v) in forest {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            parent[ru.max(rv) as usize] = ru.min(rv);
        }
    }
    (0..n as Node).map(|v| find(&mut parent, v)).collect()
}

fn find(parent: &mut [Node], mut x: Node) -> Node {
    while parent[x as usize] != x {
        parent[x as usize] = parent[parent[x as usize] as usize];
        x = parent[x as usize];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionKind;
    use afforest_graph::generators::classic::{cycle, path};
    use afforest_graph::generators::{rmat_scale, road_network, uniform_random};

    fn oracle(g: &CsrGraph) -> ComponentLabels {
        ComponentLabels::from_vec(afforest_baselines::union_find::union_find_cc(g))
    }

    fn check(g: &CsrGraph, ranks: usize, kind: PartitionKind) -> CommStats {
        let part = VertexPartition::new(g.num_vertices(), ranks, kind);
        let (labels, stats) = distributed_cc_forest(g, &part);
        assert!(
            labels.equivalent(&oracle(g)),
            "P={ranks} {kind:?} disagrees"
        );
        stats
    }

    #[test]
    fn single_rank_no_communication() {
        let g = uniform_random(1_000, 6_000, 1);
        let stats = check(&g, 1, PartitionKind::Block);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn correctness_across_rank_counts() {
        let g = uniform_random(2_000, 12_000, 2);
        for ranks in [2, 3, 4, 7, 8, 16] {
            check(&g, ranks, PartitionKind::Block);
            check(&g, ranks, PartitionKind::Hash);
        }
    }

    #[test]
    fn classic_and_structured_graphs() {
        check(&path(500), 4, PartitionKind::Block);
        check(&cycle(512), 8, PartitionKind::Hash);
        check(&road_network(60, 60, 0.6, 0.01, 3), 5, PartitionKind::Block);
        check(&rmat_scale(11, 8, 4), 6, PartitionKind::Hash);
    }

    #[test]
    fn communication_bounded_by_forest_times_rounds() {
        // Messages ≤ (P − 1) · (|V| − 1): each of the P − 1 senders ships
        // a re-reduced forest exactly once.
        let g = uniform_random(4_000, 40_000, 5);
        let p = 8;
        let stats = check(&g, p, PartitionKind::Hash);
        let bound = (p as u64 - 1) * (g.num_vertices() as u64 - 1);
        assert!(
            stats.messages <= bound,
            "messages {} exceed bound {bound}",
            stats.messages
        );
        // And crucially, far below shipping all edges once.
        assert!(stats.messages < g.num_edges() as u64);
    }

    #[test]
    fn superstep_count_is_logarithmic() {
        let g = uniform_random(1_000, 5_000, 7);
        let stats = check(&g, 16, PartitionKind::Block);
        assert!(stats.supersteps <= 6, "supersteps {}", stats.supersteps);
    }

    #[test]
    fn disconnected_graph() {
        let g = road_network(50, 50, 0.45, 0.0, 9); // heavily fragmented
        check(&g, 4, PartitionKind::Hash);
    }

    #[test]
    fn empty_graph() {
        let g = afforest_graph::GraphBuilder::from_edges(0, &[]).build();
        let part = VertexPartition::new(0, 3, PartitionKind::Block);
        let (labels, _) = distributed_cc_forest(&g, &part);
        assert!(labels.is_empty());
    }
}
