//! Distributed CC by iterative boundary-label exchange.
//!
//! The natural distributed baseline (the LP-style approach the paper
//! credits with distributed-memory scalability in Section II-B): every
//! rank keeps a replicated label array, locally propagates minimum labels
//! over its own edge subset to a fixpoint, then ships the labels that
//! changed to the ranks that can observe them (ranks with incident edges,
//! plus the vertex's owner). The algorithm quiesces when no rank changes
//! any label.
//!
//! Communication depends on convergence behaviour — `O(changes)` per
//! superstep over diameter-ish many supersteps — in contrast to
//! [`crate::forest_merge`]'s fixed `O(|V| log P)`, which is the point the
//! comparison experiment makes.

use crate::bsp::{run_bsp, CommStats};
use crate::partition::VertexPartition;
use afforest_core::labels::ComponentLabels;
use afforest_graph::{CsrGraph, Edge, Node};

/// Per-rank state.
struct RankState {
    /// Replicated label array.
    labels: Vec<Node>,
    /// This rank's edge subset.
    edges: Vec<Edge>,
    /// Vertices whose labels changed since the last exchange.
    dirty: Vec<Node>,
}

/// An update message: vertex + new (smaller) label.
type Update = (Node, Node);

/// Runs distributed CC via iterative label exchange.
pub fn distributed_cc_labels(g: &CsrGraph, part: &VertexPartition) -> (ComponentLabels, CommStats) {
    assert_eq!(part.len(), g.num_vertices(), "partition size mismatch");
    let n = g.num_vertices();

    // Interest map: which ranks hold edges incident to each vertex.
    let per_rank_edges = part.partition_edges(g);
    let mut interested: Vec<Vec<u16>> = vec![Vec::new(); n];
    for (rank, edges) in per_rank_edges.iter().enumerate() {
        for &(u, v) in edges {
            for w in [u, v] {
                let list = &mut interested[w as usize];
                if list.last() != Some(&(rank as u16)) && !list.contains(&(rank as u16)) {
                    list.push(rank as u16);
                }
            }
        }
    }
    // Owners always hear about their vertices (needed for final gather).
    for (v, list) in interested.iter_mut().enumerate() {
        let o = part.owner(v as Node) as u16;
        if !list.contains(&o) {
            list.push(o);
        }
    }

    let states: Vec<RankState> = per_rank_edges
        .into_iter()
        .map(|edges| RankState {
            labels: (0..n as Node).collect(),
            edges,
            dirty: Vec::new(),
        })
        .collect();

    let interested = &interested;
    let (states, stats) = run_bsp(
        states,
        4 * n + 16, // label propagation converges within diameter rounds
        move |rank, superstep, state, inbox: Vec<Update>, out| {
            // Apply remote updates.
            for (v, l) in inbox {
                if l < state.labels[v as usize] {
                    state.labels[v as usize] = l;
                    state.dirty.push(v);
                }
            }
            // Local min-label fixpoint over this rank's edges.
            let mut changed_any = superstep == 0; // first round: everything fresh
            loop {
                let mut changed = false;
                for &(u, v) in &state.edges {
                    let (lu, lv) = (state.labels[u as usize], state.labels[v as usize]);
                    if lu < lv {
                        state.labels[v as usize] = lu;
                        state.dirty.push(v);
                        changed = true;
                    } else if lv < lu {
                        state.labels[u as usize] = lv;
                        state.dirty.push(u);
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
                changed_any = true;
            }
            // Ship every dirty vertex's final label to interested peers.
            state.dirty.sort_unstable();
            state.dirty.dedup();
            for &v in &state.dirty {
                for &peer in &interested[v as usize] {
                    if peer as usize != rank {
                        out.send(peer as usize, (v, state.labels[v as usize]));
                    }
                }
            }
            state.dirty.clear();
            changed_any && out.queued() > 0
        },
    );

    // Gather: each vertex's label from its owner (guaranteed current).
    let labels: Vec<Node> = (0..n as Node)
        .map(|v| states[part.owner(v)].labels[v as usize])
        .collect();
    (ComponentLabels::from_vec(labels), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forest_merge::distributed_cc_forest;
    use crate::partition::PartitionKind;
    use afforest_graph::generators::classic::{cycle, path, star};
    use afforest_graph::generators::{rmat_scale, road_network, uniform_random};

    fn oracle(g: &CsrGraph) -> ComponentLabels {
        ComponentLabels::from_vec(afforest_baselines::union_find::union_find_cc(g))
    }

    fn check(g: &CsrGraph, ranks: usize, kind: PartitionKind) -> CommStats {
        let part = VertexPartition::new(g.num_vertices(), ranks, kind);
        let (labels, stats) = distributed_cc_labels(g, &part);
        assert!(
            labels.equivalent(&oracle(g)),
            "P={ranks} {kind:?} disagrees"
        );
        stats
    }

    #[test]
    fn single_rank_no_communication() {
        let g = uniform_random(500, 3_000, 1);
        let stats = check(&g, 1, PartitionKind::Block);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn correctness_across_rank_counts() {
        let g = uniform_random(1_500, 9_000, 2);
        for ranks in [2, 3, 4, 8] {
            check(&g, ranks, PartitionKind::Block);
            check(&g, ranks, PartitionKind::Hash);
        }
    }

    #[test]
    fn classic_graphs() {
        check(&path(300), 4, PartitionKind::Block);
        check(&cycle(256), 4, PartitionKind::Hash);
        check(&star(200, 199), 3, PartitionKind::Block);
    }

    #[test]
    fn structured_graphs() {
        check(&road_network(40, 40, 0.6, 0.01, 3), 4, PartitionKind::Block);
        check(&rmat_scale(10, 8, 4), 5, PartitionKind::Hash);
    }

    #[test]
    fn forest_merge_communicates_less_on_cut_heavy_partitions() {
        // With hash partitioning on a path graph nearly every edge is cut:
        // label exchange pays per-update messages over many rounds while
        // forest merge ships at most |V| log P words.
        let g = path(2_000);
        let part = VertexPartition::new(2_000, 8, PartitionKind::Hash);
        let (l1, lp_stats) = distributed_cc_labels(&g, &part);
        let (l2, fm_stats) = distributed_cc_forest(&g, &part);
        assert!(l1.equivalent(&l2));
        assert!(
            fm_stats.supersteps < lp_stats.supersteps,
            "forest-merge rounds {} should beat label-exchange rounds {}",
            fm_stats.supersteps,
            lp_stats.supersteps
        );
    }

    #[test]
    fn block_partition_on_path_converges_fast() {
        // Only block-border labels cross ranks; supersteps stay ≈ P.
        let g = path(1_000);
        let stats = check(&g, 4, PartitionKind::Block);
        assert!(stats.supersteps <= 16, "supersteps {}", stats.supersteps);
    }

    #[test]
    fn disconnected_graph() {
        let g = road_network(40, 40, 0.45, 0.0, 9);
        check(&g, 4, PartitionKind::Hash);
    }

    #[test]
    fn empty_graph() {
        let g = afforest_graph::GraphBuilder::from_edges(0, &[]).build();
        let part = VertexPartition::new(0, 2, PartitionKind::Block);
        let (labels, _) = distributed_cc_labels(&g, &part);
        assert!(labels.is_empty());
    }
}
