//! A bulk-synchronous-parallel (BSP) simulation engine.
//!
//! Ranks execute supersteps in lockstep; messages sent during superstep
//! `t` are delivered at the start of superstep `t + 1`. The engine runs
//! single-process (rank steps execute sequentially within a superstep,
//! deterministically, in rank order — the algorithms under study are
//! data-parallel *within* a rank via rayon), and counts every message and
//! byte so experiments can report communication volume exactly.

/// Communication accounting for one BSP run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Total messages delivered across all supersteps.
    pub messages: u64,
    /// Total payload bytes delivered (`messages × size_of::<M>()`).
    pub bytes: u64,
    /// Number of supersteps executed.
    pub supersteps: usize,
}

/// Per-superstep send buffer handed to each rank.
#[derive(Debug)]
pub struct Outbox<M> {
    num_ranks: usize,
    queues: Vec<Vec<M>>,
}

impl<M> Outbox<M> {
    fn new(num_ranks: usize) -> Self {
        Self {
            num_ranks,
            queues: (0..num_ranks).map(|_| Vec::new()).collect(),
        }
    }

    /// Queues `msg` for delivery to `rank` at the next superstep.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn send(&mut self, rank: usize, msg: M) {
        assert!(rank < self.num_ranks, "destination rank out of range");
        self.queues[rank].push(msg);
    }

    /// Messages queued so far this superstep.
    pub fn queued(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

/// Runs a BSP program to quiescence.
///
/// `step(rank, superstep, state, inbox, outbox) -> active` is invoked for
/// every rank each superstep; the run terminates when **no rank reports
/// active and no messages are in flight**. A `max_supersteps` bound turns
/// livelock into a panic instead of a hang.
///
/// Returns the final states and the communication statistics.
///
/// # Panics
///
/// Panics if the program fails to quiesce within `max_supersteps`.
pub fn run_bsp<S, M>(
    mut states: Vec<S>,
    max_supersteps: usize,
    mut step: impl FnMut(usize, usize, &mut S, Vec<M>, &mut Outbox<M>) -> bool,
) -> (Vec<S>, CommStats) {
    let num_ranks = states.len();
    let mut stats = CommStats::default();
    let mut inboxes: Vec<Vec<M>> = (0..num_ranks).map(|_| Vec::new()).collect();
    let msg_size = std::mem::size_of::<M>() as u64;

    for superstep in 0..max_supersteps {
        let mut next_inboxes: Vec<Vec<M>> = (0..num_ranks).map(|_| Vec::new()).collect();
        let mut any_active = false;
        let mut in_flight = 0u64;

        for (rank, state) in states.iter_mut().enumerate() {
            let inbox = std::mem::take(&mut inboxes[rank]);
            let mut outbox = Outbox::new(num_ranks);
            let active = step(rank, superstep, state, inbox, &mut outbox);
            any_active |= active;
            for (dst, queue) in outbox.queues.into_iter().enumerate() {
                in_flight += queue.len() as u64;
                next_inboxes[dst].extend(queue);
            }
        }

        stats.supersteps = superstep + 1;
        stats.messages += in_flight;
        stats.bytes += in_flight * msg_size;
        inboxes = next_inboxes;

        if !any_active && in_flight == 0 {
            return (states, stats);
        }
    }
    panic!("BSP program did not quiesce within {max_supersteps} supersteps");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn immediate_quiescence() {
        let (states, stats) = run_bsp(vec![0u32; 4], 10, |_, _, _, _inbox: Vec<u32>, _| false);
        assert_eq!(states, vec![0; 4]);
        assert_eq!(stats.supersteps, 1);
        assert_eq!(stats.messages, 0);
    }

    #[test]
    fn ring_token_pass() {
        // Rank 0 injects a token that travels the ring once.
        let n = 5;
        let (states, stats) = run_bsp(
            vec![0u32; n],
            32,
            |rank, superstep, state, inbox: Vec<u32>, out| {
                if superstep == 0 && rank == 0 {
                    out.send(1, 1);
                    return true;
                }
                for token in inbox {
                    *state += token;
                    let next = (rank + 1) % n;
                    if next != 0 {
                        out.send(next, token);
                    }
                }
                false
            },
        );
        assert_eq!(states, vec![0, 1, 1, 1, 1]);
        assert_eq!(stats.messages, (n - 1) as u64);
        assert_eq!(stats.bytes, 4 * (n - 1) as u64);
    }

    #[test]
    fn byte_accounting_uses_message_size() {
        let (_, stats) = run_bsp(vec![(); 2], 4, |rank, step, _, _inbox: Vec<u64>, out| {
            if step == 0 && rank == 0 {
                out.send(1, 42u64);
            }
            false
        });
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.bytes, 8);
    }

    #[test]
    fn messages_delivered_next_superstep_only() {
        // A rank must not see its own same-superstep sends.
        let (states, _) = run_bsp(
            vec![Vec::<usize>::new(); 2],
            8,
            |rank, step, state, inbox, out| {
                state.extend(inbox.iter().map(|_| step));
                if step == 0 && rank == 0 {
                    out.send(0, 7usize);
                    out.send(1, 7usize);
                }
                false
            },
        );
        // Both ranks received at superstep 1, not 0.
        assert_eq!(states[0], vec![1]);
        assert_eq!(states[1], vec![1]);
    }

    #[test]
    #[should_panic(expected = "did not quiesce")]
    fn livelock_detected() {
        let _ = run_bsp(vec![(); 2], 5, |rank, _, _, _inbox: Vec<u8>, out| {
            out.send(1 - rank, 0u8);
            false
        });
    }

    #[test]
    #[should_panic(expected = "destination rank out of range")]
    fn bad_destination_panics() {
        let _ = run_bsp(vec![(); 1], 2, |_, _, _, _inbox: Vec<u8>, out| {
            out.send(3, 0u8);
            false
        });
    }

    #[test]
    fn outbox_queued_counter() {
        let mut out = Outbox::<u8>::new(3);
        assert_eq!(out.queued(), 0);
        out.send(0, 1);
        out.send(2, 2);
        assert_eq!(out.queued(), 2);
    }
}
