//! Distributed-memory connected components — the extension direction the
//! paper names in its conclusions ("it may be possible to use insights
//! gained from this paper to generalize the algorithm to distributed
//! memory environments").
//!
//! Since no cluster is available (or needed) for a laptop-scale
//! reproduction, the crate simulates a distributed system faithfully
//! enough to study the *algorithmic* questions — communication volume,
//! round counts, partition sensitivity:
//!
//! - [`partition`]: vertex-to-rank assignment (contiguous blocks, hashed,
//!   or explicit), plus the induced edge ownership.
//! - [`bsp`]: a bulk-synchronous message-passing engine with exact
//!   message/byte/round accounting.
//! - [`forest_merge`]: distributed CC by spanning-forest reduction — each
//!   rank runs Afforest-style linking locally, extracts its spanning
//!   forest (the Section IV-A duality), and forests are merged up a
//!   binomial tree in `⌈log₂ P⌉` rounds. Communication is
//!   `O(|V| log P)` words, independent of `|E|` — the same
//!   work-avoidance idea as subgraph sampling, applied across machines.
//! - [`label_exchange`]: the natural baseline — replicated parent arrays
//!   with iterative boundary-label exchange (distributed min-label
//!   hooking), whose communication depends on convergence behaviour.

#![forbid(unsafe_code)]

pub mod bsp;
pub mod forest_merge;
pub mod label_exchange;
pub mod partition;

pub use bsp::{run_bsp, CommStats, Outbox};
pub use forest_merge::distributed_cc_forest;
pub use label_exchange::distributed_cc_labels;
pub use partition::{PartitionKind, VertexPartition};
