//! Vertex partitioning across simulated ranks.
//!
//! Distributed graph systems assign each vertex an owning rank; an
//! undirected edge is stored by the owner of its lower endpoint (single
//! ownership keeps the global edge multiset a partition, so each edge is
//! linked exactly once — the invariant Theorem 1 needs). Edges whose
//! endpoints live on different ranks are *cut* edges; the cut fraction is
//! the classic proxy for communication pressure.

use afforest_graph::{CsrGraph, Edge, Node};
use std::collections::VecDeque;

/// Partitioning scheme.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PartitionKind {
    /// Contiguous index blocks (`n / p` vertices each) — preserves any
    /// locality present in the vertex numbering.
    Block,
    /// Multiplicative hash of the vertex id — destroys locality,
    /// approximating a random partition without RNG state.
    Hash,
}

/// A vertex-to-rank assignment.
///
/// ```
/// use afforest_distrib::{PartitionKind, VertexPartition};
///
/// let p = VertexPartition::new(10, 2, PartitionKind::Block);
/// assert_eq!(p.owner(0), 0);
/// assert_eq!(p.owner(9), 1);
/// assert_eq!(p.rank_sizes(), vec![5, 5]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VertexPartition {
    owner: Vec<u16>,
    num_ranks: usize,
}

impl VertexPartition {
    /// Builds a partition of `n` vertices across `num_ranks` ranks.
    ///
    /// # Panics
    ///
    /// Panics if `num_ranks` is 0 or exceeds `u16::MAX`.
    pub fn new(n: usize, num_ranks: usize, kind: PartitionKind) -> Self {
        assert!(num_ranks > 0, "need at least one rank");
        assert!(num_ranks <= u16::MAX as usize, "too many ranks");
        let owner = (0..n)
            .map(|v| match kind {
                PartitionKind::Block => {
                    // Even blocks with remainder spread over the first ranks.
                    let per = n / num_ranks;
                    let extra = n % num_ranks;
                    let cutoff = (per + 1) * extra;
                    if v < cutoff {
                        (v / (per + 1)) as u16
                    } else {
                        match (v - cutoff).checked_div(per) {
                            Some(q) => (extra + q) as u16,
                            None => (num_ranks - 1) as u16,
                        }
                    }
                }
                PartitionKind::Hash => {
                    let h = (v as u64).wrapping_mul(0x9E3779B97F4A7C15) >> 32;
                    (h as usize % num_ranks) as u16
                }
            })
            .collect();
        Self { owner, num_ranks }
    }

    /// Builds a partition by growing `num_ranks` regions with a
    /// multi-source BFS from index-spread seeds: regions expand in
    /// lockstep, so each rank gets a connected, roughly ball-shaped
    /// region — the classic low-cut heuristic for spatial graphs
    /// (unreached vertices, e.g. isolated ones, are dealt round-robin).
    ///
    /// # Panics
    ///
    /// Panics if `num_ranks` is 0 or exceeds `u16::MAX`.
    pub fn bfs_grow(g: &CsrGraph, num_ranks: usize) -> Self {
        assert!(num_ranks > 0, "need at least one rank");
        assert!(num_ranks <= u16::MAX as usize, "too many ranks");
        let n = g.num_vertices();
        let mut owner = vec![u16::MAX; n];
        let mut queues: Vec<VecDeque<Node>> = (0..num_ranks).map(|_| VecDeque::new()).collect();
        for (r, queue) in queues.iter_mut().enumerate() {
            let seed = (r * n / num_ranks) as Node;
            if n > 0 && owner[seed as usize] == u16::MAX {
                owner[seed as usize] = r as u16;
                queue.push_back(seed);
            }
        }
        // Lockstep expansion: each rank claims one frontier layer per turn.
        let mut active = true;
        while active {
            active = false;
            for (r, queue) in queues.iter_mut().enumerate() {
                let layer = queue.len();
                for _ in 0..layer {
                    let v = queue.pop_front().expect("layer counted");
                    for &w in g.neighbors(v) {
                        if owner[w as usize] == u16::MAX {
                            owner[w as usize] = r as u16;
                            queue.push_back(w);
                        }
                    }
                }
                active |= !queue.is_empty();
            }
        }
        // Round-robin the unreached remainder.
        let mut next = 0u16;
        for o in owner.iter_mut() {
            if *o == u16::MAX {
                *o = next;
                next = (next + 1) % num_ranks as u16;
            }
        }
        Self { owner, num_ranks }
    }

    /// Builds a partition from an explicit owner table.
    ///
    /// # Panics
    ///
    /// Panics if any owner is `>= num_ranks`.
    pub fn from_owners(owner: Vec<u16>, num_ranks: usize) -> Self {
        assert!(
            owner.iter().all(|&o| (o as usize) < num_ranks),
            "owner out of range"
        );
        Self { owner, num_ranks }
    }

    /// Number of ranks.
    #[inline]
    pub fn num_ranks(&self) -> usize {
        self.num_ranks
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether the partition covers zero vertices.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    /// The rank owning vertex `v`.
    #[inline]
    pub fn owner(&self, v: Node) -> usize {
        self.owner[v as usize] as usize
    }

    /// Vertices per rank.
    pub fn rank_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.num_ranks];
        for &o in &self.owner {
            sizes[o as usize] += 1;
        }
        sizes
    }

    /// The rank that owns — i.e. stores and links — the undirected edge
    /// `(u, v)`.
    ///
    /// **Owner rule (load-bearing, pinned by tests):** an edge belongs
    /// to the rank owning its *lower-numbered* endpoint,
    /// `owner(min(u, v))`. The rule is symmetric in argument order, so
    /// `(u, v)` and `(v, u)` always land on the same rank and the
    /// global edge multiset partitions into per-rank lists with each
    /// edge delivered exactly once — the invariant Theorem 1's
    /// spanning-forest merge needs, and the one the shard router relies
    /// on to route `InsertEdges` deterministically.
    #[inline]
    pub fn edge_owner(&self, u: Node, v: Node) -> usize {
        self.owner(u.min(v))
    }

    /// Whether `(u, v)` is a *cut* edge — its endpoints live on
    /// different ranks. Cut edges are still owned by exactly one rank
    /// (see [`Self::edge_owner`]), but a sharded deployment must also
    /// record them in a boundary structure because neither rank alone
    /// can see the component they merge.
    #[inline]
    pub fn is_cut(&self, u: Node, v: Node) -> bool {
        self.owner(u) != self.owner(v)
    }

    /// Assigns every undirected edge to the rank owning its lower
    /// endpoint (the [`Self::edge_owner`] rule); returns per-rank edge
    /// lists whose concatenation is exactly the input edge multiset.
    pub fn partition_edges(&self, g: &CsrGraph) -> Vec<Vec<Edge>> {
        let mut per_rank: Vec<Vec<Edge>> = vec![Vec::new(); self.num_ranks];
        for (u, v) in g.edges() {
            per_rank[self.edge_owner(u, v)].push((u, v));
        }
        per_rank
    }

    /// Splits the edge multiset into per-rank *internal* lists (both
    /// endpoints on the owning rank) and one global *cut* list (edges
    /// straddling ranks). Every edge appears exactly once across the
    /// two return values: internal edges under [`Self::edge_owner`],
    /// cut edges once in the boundary list. This is the ingest shape a
    /// sharded deployment wants — internal edges go to one shard's
    /// queue, cut edges to the boundary store.
    pub fn split_edges(&self, g: &CsrGraph) -> (Vec<Vec<Edge>>, Vec<Edge>) {
        let mut per_rank: Vec<Vec<Edge>> = vec![Vec::new(); self.num_ranks];
        let mut cut = Vec::new();
        for (u, v) in g.edges() {
            if self.is_cut(u, v) {
                cut.push((u, v));
            } else {
                per_rank[self.edge_owner(u, v)].push((u, v));
            }
        }
        (per_rank, cut)
    }

    /// The contiguous global-index range owned by `rank`, if that
    /// rank's vertices form one contiguous run (always true for
    /// [`PartitionKind::Block`]; usually false for `Hash`). Returns an
    /// empty range at the partition's end for ranks that own nothing.
    pub fn rank_range(&self, rank: usize) -> Option<std::ops::Range<Node>> {
        let r = rank as u16;
        let start = self.owner.iter().position(|&o| o == r);
        let Some(start) = start else {
            return Some(self.owner.len() as Node..self.owner.len() as Node);
        };
        let len = self.owner[start..].iter().take_while(|&&o| o == r).count();
        // Contiguity: no vertex of this rank may appear after the run.
        if self.owner[start + len..].contains(&r) {
            return None;
        }
        Some(start as Node..(start + len) as Node)
    }

    /// Fraction of edges whose endpoints live on different ranks.
    pub fn cut_fraction(&self, g: &CsrGraph) -> f64 {
        if g.num_edges() == 0 {
            return 0.0;
        }
        let cut = g
            .edges()
            .filter(|&(u, v)| self.owner(u) != self.owner(v))
            .count();
        cut as f64 / g.num_edges() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_graph::generators::classic::path;
    use afforest_graph::generators::uniform_random;

    #[test]
    fn block_partition_is_contiguous_and_even() {
        let p = VertexPartition::new(10, 3, PartitionKind::Block);
        let owners: Vec<usize> = (0..10).map(|v| p.owner(v)).collect();
        assert_eq!(owners, vec![0, 0, 0, 0, 1, 1, 1, 2, 2, 2]);
        assert_eq!(p.rank_sizes(), vec![4, 3, 3]);
    }

    #[test]
    fn block_partition_exact_division() {
        let p = VertexPartition::new(12, 4, PartitionKind::Block);
        assert_eq!(p.rank_sizes(), vec![3, 3, 3, 3]);
    }

    #[test]
    fn hash_partition_is_balanced() {
        let p = VertexPartition::new(100_000, 8, PartitionKind::Hash);
        let sizes = p.rank_sizes();
        let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
        assert!(
            (max - min) as f64 / (100_000.0 / 8.0) < 0.1,
            "imbalance: {sizes:?}"
        );
    }

    #[test]
    fn edges_partition_exactly_once() {
        let g = uniform_random(1_000, 5_000, 3);
        let p = VertexPartition::new(1_000, 4, PartitionKind::Hash);
        let per_rank = p.partition_edges(&g);
        let total: usize = per_rank.iter().map(|e| e.len()).sum();
        assert_eq!(total, g.num_edges());
    }

    #[test]
    fn owner_rule_is_min_endpoint_and_symmetric() {
        // Pins the documented rule: an edge goes to the rank owning its
        // lower endpoint, regardless of the order the endpoints are
        // named in.
        let p = VertexPartition::new(10, 2, PartitionKind::Block);
        assert_eq!(p.owner(4), 0);
        assert_eq!(p.owner(5), 1);
        assert_eq!(p.edge_owner(4, 5), 0);
        assert_eq!(p.edge_owner(5, 4), 0);
        assert!(p.is_cut(4, 5));
        assert!(!p.is_cut(5, 6));
        // A cut edge is still delivered exactly once, to min's owner.
        let g = afforest_graph::GraphBuilder::from_edges(10, &[(4, 5), (8, 9)]).build();
        let per_rank = p.partition_edges(&g);
        assert_eq!(per_rank[0], vec![(4, 5)]);
        assert_eq!(per_rank[1], vec![(8, 9)]);
    }

    #[test]
    fn split_edges_delivers_each_edge_exactly_once() {
        let g = uniform_random(500, 2_000, 11);
        let p = VertexPartition::new(500, 4, PartitionKind::Hash);
        let (internal, cut) = p.split_edges(&g);
        let total: usize = internal.iter().map(|e| e.len()).sum::<usize>() + cut.len();
        assert_eq!(total, g.num_edges());
        for (r, edges) in internal.iter().enumerate() {
            for &(u, v) in edges {
                assert_eq!(p.owner(u), r);
                assert_eq!(p.owner(v), r);
            }
        }
        for &(u, v) in &cut {
            assert!(p.is_cut(u, v));
        }
    }

    #[test]
    fn rank_range_reports_block_slices() {
        let p = VertexPartition::new(10, 3, PartitionKind::Block);
        assert_eq!(p.rank_range(0), Some(0..4));
        assert_eq!(p.rank_range(1), Some(4..7));
        assert_eq!(p.rank_range(2), Some(7..10));
        // An interleaved assignment has no contiguous range.
        let q = VertexPartition::from_owners(vec![0, 1, 0, 1], 2);
        assert_eq!(q.rank_range(0), None);
        // A rank owning nothing gets the empty range at the end.
        let r = VertexPartition::new(3, 8, PartitionKind::Block);
        assert_eq!(r.rank_range(7), Some(3..3));
    }

    #[test]
    fn block_cut_is_low_on_paths() {
        // A path with block partitioning cuts only at block borders.
        let g = path(1_000);
        let p = VertexPartition::new(1_000, 4, PartitionKind::Block);
        let cut = p.cut_fraction(&g);
        assert!(cut < 0.01, "cut {cut}");
        // Hash partitioning cuts almost everything.
        let h = VertexPartition::new(1_000, 4, PartitionKind::Hash);
        assert!(h.cut_fraction(&g) > 0.5);
    }

    #[test]
    fn single_rank_owns_everything() {
        let p = VertexPartition::new(50, 1, PartitionKind::Hash);
        assert!((0..50).all(|v| p.owner(v) == 0));
        let g = path(50);
        assert_eq!(p.cut_fraction(&g), 0.0);
    }

    #[test]
    fn more_ranks_than_vertices() {
        let p = VertexPartition::new(3, 8, PartitionKind::Block);
        assert_eq!(p.rank_sizes().iter().sum::<usize>(), 3);
        assert!((0..3).all(|v| p.owner(v) < 8));
    }

    #[test]
    fn from_owners_validates() {
        let p = VertexPartition::from_owners(vec![0, 1, 0], 2);
        assert_eq!(p.owner(1), 1);
        assert!(
            std::panic::catch_unwind(|| { VertexPartition::from_owners(vec![0, 5], 2) }).is_err()
        );
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn rejects_zero_ranks() {
        let _ = VertexPartition::new(10, 0, PartitionKind::Block);
    }

    #[test]
    fn bfs_grow_covers_everything() {
        let g = uniform_random(2_000, 8_000, 5);
        let p = VertexPartition::bfs_grow(&g, 6);
        assert_eq!(p.rank_sizes().iter().sum::<usize>(), 2_000);
        assert!((0..2_000u32).all(|v| p.owner(v) < 6));
    }

    #[test]
    fn bfs_grow_beats_hash_on_spatial_graphs() {
        use afforest_graph::generators::grid::full_grid;
        let g = full_grid(48, 48);
        let grown = VertexPartition::bfs_grow(&g, 8).cut_fraction(&g);
        let hashed =
            VertexPartition::new(g.num_vertices(), 8, PartitionKind::Hash).cut_fraction(&g);
        assert!(
            grown < hashed / 2.0,
            "bfs-grow cut {grown} vs hash cut {hashed}"
        );
    }

    #[test]
    fn bfs_grow_handles_isolated_vertices() {
        let g = afforest_graph::GraphBuilder::from_edges(10, &[(0, 1)]).build();
        let p = VertexPartition::bfs_grow(&g, 3);
        assert_eq!(p.rank_sizes().iter().sum::<usize>(), 10);
    }

    #[test]
    fn bfs_grow_single_rank() {
        let g = path(20);
        let p = VertexPartition::bfs_grow(&g, 1);
        assert!((0..20u32).all(|v| p.owner(v) == 0));
    }
}
