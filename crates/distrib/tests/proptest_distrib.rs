//! Property-based tests for partitioning and the distributed algorithms.

use afforest_baselines::union_find::union_find_cc;
use afforest_core::ComponentLabels;
use afforest_distrib::{
    distributed_cc_forest, distributed_cc_labels, PartitionKind, VertexPartition,
};
use afforest_graph::{GraphBuilder, Node};
use proptest::prelude::*;

fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(Node, Node)>)> {
    (2usize..max_n).prop_flat_map(move |n| {
        let edge = (0..n as Node, 0..n as Node);
        (Just(n), proptest::collection::vec(edge, 0..max_m))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn partition_covers_all_vertices_and_edges(
        (n, edges) in arb_edges(150, 400),
        ranks in 1usize..12,
        hash in any::<bool>(),
    ) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let kind = if hash { PartitionKind::Hash } else { PartitionKind::Block };
        let part = VertexPartition::new(n, ranks, kind);
        // Every vertex owned by a valid rank.
        prop_assert_eq!(part.rank_sizes().iter().sum::<usize>(), n);
        for v in 0..n as Node {
            prop_assert!(part.owner(v) < ranks);
        }
        // Edges partition exactly.
        let per_rank = part.partition_edges(&g);
        prop_assert_eq!(per_rank.len(), ranks);
        let total: usize = per_rank.iter().map(|e| e.len()).sum();
        prop_assert_eq!(total, g.num_edges());
        // Cut fraction within bounds.
        let cut = part.cut_fraction(&g);
        prop_assert!((0.0..=1.0).contains(&cut));
        if ranks == 1 {
            prop_assert_eq!(cut, 0.0);
        }
    }

    #[test]
    fn block_partition_is_monotone(n in 1usize..500, ranks in 1usize..16) {
        // Owners are non-decreasing in vertex index for block partitions.
        let part = VertexPartition::new(n, ranks, PartitionKind::Block);
        let owners: Vec<usize> = (0..n as Node).map(|v| part.owner(v)).collect();
        prop_assert!(owners.windows(2).all(|w| w[0] <= w[1]));
        // Sizes differ by at most one.
        let sizes = part.rank_sizes();
        let nonzero: Vec<usize> = sizes.iter().copied().filter(|&s| s > 0).collect();
        if let (Some(&min), Some(&max)) = (nonzero.iter().min(), nonzero.iter().max()) {
            prop_assert!(max - min <= 1, "sizes {:?}", sizes);
        }
    }

    #[test]
    fn distributed_algorithms_match_oracle(
        (n, edges) in arb_edges(120, 350),
        ranks in 1usize..9,
        hash in any::<bool>(),
    ) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let kind = if hash { PartitionKind::Hash } else { PartitionKind::Block };
        let part = VertexPartition::new(n, ranks, kind);
        let oracle = ComponentLabels::from_vec(union_find_cc(&g));
        let (fm, fm_stats) = distributed_cc_forest(&g, &part);
        let (lx, _) = distributed_cc_labels(&g, &part);
        prop_assert!(fm.equivalent(&oracle), "forest-merge wrong");
        prop_assert!(lx.equivalent(&oracle), "label-exchange wrong");
        // Forest-merge communication never exceeds (P−1)(|V|−1).
        prop_assert!(
            fm_stats.messages <= (ranks as u64).saturating_sub(1) * (n as u64 - 1)
        );
    }
}
