//! Schedule-exploring model checker for Afforest's lock-free primitives.
//!
//! `link` and `compress` (crates/core/src/{link,compress}.rs) are correct
//! only by a memory-ordering argument: `link` hooks the higher-index root
//! under the lower via a single `compare_and_swap`, and `compress` relies
//! on each vertex's slot having a single writer. Unit tests cannot probe
//! that argument — they see whatever interleavings the OS scheduler
//! happens to produce. This crate instead *enumerates* the interleavings:
//!
//! 1. [`machine`] reifies each call as a state machine whose steps are
//!    exactly the shared accesses to the parent array `π`;
//! 2. [`explore`] runs a memoized DFS over every schedule of 2–3 such
//!    threads on 3–6-vertex graphs, checking on **every** reachable state
//!    that Invariant 1 (`π(x) ≤ x`) holds and `π` is acyclic, and on every
//!    terminal state that the resulting partition equals sequential
//!    union-find (no lost merges) and that exactly `|V| − C` `link` calls
//!    returned `true` (the spanning-forest duality, Theorem 1 of the
//!    paper).
//!
//! The reduction is sound for the code under test because all of its
//! shared state lives in one `AtomicU32` array accessed with `Relaxed`
//! loads/stores/CAS: coherence gives a single modification order per cell,
//! and no property checked here depends on cross-cell ordering — so
//! serializing the accesses in every possible order covers every real
//! execution.
//!
//! The checker deliberately shares no code with `afforest-core`; the
//! [`machine`] docs carry the mirrored pseudocode and the
//! `model_matches_real_implementation` test below replays sequential
//! schedules through the real `link`/`compress` to guard the
//! correspondence.
//!
//! Run the standard battery with `cargo run -p afforest-modelcheck`
//! (wired into `cargo xtask ci` / `ci.sh`).

#![forbid(unsafe_code)]

pub mod explore;
pub mod machine;
pub mod oracle;

pub use explore::{explore, Outcome, Scenario, Violation, MAX_VIOLATIONS};
pub use machine::{
    CompressMachine, FindRootMachine, LinkMachine, Memory, Node, StepOutcome, Thread,
};

/// A named scenario in the standard battery.
pub struct BatteryEntry {
    /// Human-readable scenario name (shown by the CLI).
    pub name: &'static str,
    /// The scenario itself.
    pub scenario: Scenario,
}

/// The standard verification battery: every shape the paper's proof
/// sketch leans on, sized so exhaustive exploration stays well under a
/// second.
///
/// Covers racing links on shared endpoints (triangle, star, path),
/// disjoint links (independence), duplicate edges (idempotence),
/// link+compress races, link+find_root races, and 3-thread mixes.
pub fn standard_battery() -> Vec<BatteryEntry> {
    let entry = |name, scenario| BatteryEntry { name, scenario };
    vec![
        entry("2 links / triangle", Scenario::links(3, &[(0, 1), (1, 2)])),
        entry(
            "3 links / triangle (closing edge)",
            Scenario::links(3, &[(0, 1), (1, 2), (2, 0)]),
        ),
        entry(
            "2 links / 4-path, disjoint",
            Scenario::links(4, &[(0, 1), (2, 3)]),
        ),
        entry(
            "2 links / 4-path, shared vertex",
            Scenario::links(4, &[(0, 1), (1, 2)]),
        ),
        entry(
            "3 links / 4-path",
            Scenario::links(4, &[(0, 1), (1, 2), (2, 3)]),
        ),
        entry(
            "2 links into one hub / star",
            Scenario::links(4, &[(0, 3), (1, 3)]),
        ),
        entry(
            "3 links into one hub / star-5",
            Scenario::links(5, &[(0, 4), (1, 4), (2, 4)]),
        ),
        entry("same edge twice", Scenario::links(3, &[(1, 2), (1, 2)])),
        entry(
            "link vs compress",
            Scenario {
                n: 4,
                threads: vec![
                    Thread::Link(LinkMachine::new(2, 3)),
                    Thread::Compress(CompressMachine::new(3)),
                ],
            },
        ),
        entry(
            "2 links vs compress / path",
            Scenario {
                n: 5,
                threads: vec![
                    Thread::Link(LinkMachine::new(0, 1)),
                    Thread::Link(LinkMachine::new(1, 2)),
                    Thread::Compress(CompressMachine::new(2)),
                ],
            },
        ),
        entry(
            "2 links vs find_root",
            Scenario {
                n: 4,
                threads: vec![
                    Thread::Link(LinkMachine::new(1, 2)),
                    Thread::Link(LinkMachine::new(2, 3)),
                    Thread::FindRoot(FindRootMachine::new(3)),
                ],
            },
        ),
        entry(
            "2 links / 6 vertices, two components",
            Scenario::links(6, &[(0, 2), (3, 5)]),
        ),
        entry(
            "3 links / 6 vertices, chain merge",
            Scenario::links(6, &[(0, 1), (2, 3), (1, 3)]),
        ),
    ]
}

/// Runs the standard battery, returning per-scenario outcomes.
pub fn run_standard_battery() -> Vec<(&'static str, Outcome)> {
    standard_battery()
        .into_iter()
        .map(|e| (e.name, explore(&e.scenario)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Acceptance criterion: exhaustive exploration of ≥2 concurrent links
    /// on a triangle passes every property.
    #[test]
    fn triangle_two_links_exhaustive() {
        let out = explore(&Scenario::links(3, &[(0, 1), (1, 2)]));
        assert!(out.passed(), "violations: {:?}", out.violations);
        // Exhaustiveness sanity: interleaving two multi-step machines must
        // reach strictly more states than either sequential order alone.
        assert!(out.states > 12, "only {} states explored", out.states);
        assert!(out.terminal_states >= 1);
    }

    /// Acceptance criterion: exhaustive exploration on a 4-path.
    #[test]
    fn four_path_links_exhaustive() {
        for edges in [
            vec![(0, 1), (2, 3)],
            vec![(0, 1), (1, 2)],
            vec![(0, 1), (1, 2), (2, 3)],
        ] {
            let out = explore(&Scenario::links(4, &edges));
            assert!(out.passed(), "{edges:?}: {:?}", out.violations);
        }
    }

    /// Acceptance criterion: the load+store variant of `link` loses merges,
    /// and the checker catches it. With both threads linking distinct
    /// neighbours under the same high vertex, both can observe
    /// `π(high) == high` before either stores — one hook is then lost and
    /// the terminal partition splits a component.
    #[test]
    fn broken_link_is_caught() {
        let out = explore(&Scenario::broken_links(3, &[(2, 1), (2, 0)]));
        assert!(
            out.violations
                .iter()
                .any(|v| matches!(v, Violation::WrongPartition { .. })),
            "expected a WrongPartition violation, got {:?}",
            out.violations
        );
    }

    /// Same bug shape on a star: the hub's slot is stored twice, the first
    /// hook vanishes. A second regression angle so a future "fix" that
    /// only handles triangles cannot pass.
    #[test]
    fn broken_link_star_is_caught() {
        let out = explore(&Scenario::broken_links(4, &[(1, 3), (2, 3)]));
        assert!(!out.passed(), "broken star scenario slipped through");
    }

    /// The faithful battery passes wholesale.
    #[test]
    fn standard_battery_passes() {
        for (name, out) in run_standard_battery() {
            assert!(out.passed(), "{name}: {:?}", out.violations);
            assert!(out.states > 0 && out.terminal_states > 0, "{name}: empty");
        }
    }

    /// Theorem 1 duality observed concretely: on a connected triangle with
    /// three links, every terminal state must have exactly |V|−C = 2
    /// merging links — the checker flags any schedule where the
    /// cycle-closing edge also merged.
    #[test]
    fn merge_count_matches_duality() {
        let out = explore(&Scenario::links(3, &[(0, 1), (1, 2), (2, 0)]));
        assert!(out.passed(), "violations: {:?}", out.violations);
    }

    /// find_root never observes a cycle or diverges while links run.
    #[test]
    fn find_root_during_links_terminates() {
        let scenario = Scenario {
            n: 4,
            threads: vec![
                Thread::Link(LinkMachine::new(0, 2)),
                Thread::Link(LinkMachine::new(1, 3)),
                Thread::FindRoot(FindRootMachine::new(3)),
            ],
        };
        let out = explore(&scenario);
        assert!(out.passed(), "violations: {:?}", out.violations);
    }

    /// Guard on the model/implementation correspondence promised in the
    /// `machine` module docs: replaying each single-thread machine to
    /// completion (the sequential schedule) must produce exactly the same
    /// memory and return value as the real `afforest-core` primitives,
    /// for every edge over every Invariant-1-respecting parent array of a
    /// 4-vertex universe (1·2·3·4 = 24 start states).
    #[test]
    fn model_matches_real_implementation() {
        use afforest_core::{compress, link, ParentArray};

        fn pi_from(start: &[Node]) -> ParentArray {
            let pi = ParentArray::new(start.len());
            for (v, &p) in start.iter().enumerate() {
                pi.set(v as Node, p);
            }
            pi
        }

        let n = 4usize;
        let mut starts = Vec::new();
        for p1 in 0..2u32 {
            for p2 in 0..3u32 {
                for p3 in 0..4u32 {
                    starts.push(vec![0, p1, p2, p3]);
                }
            }
        }
        assert_eq!(starts.len(), 24);
        for start in &starts {
            for u in 0..n as Node {
                for v in 0..n as Node {
                    let mut mem = start.clone();
                    let mut m = LinkMachine::new(u, v);
                    let merged = loop {
                        if let StepOutcome::Finished { merged } = m.step(&mut mem) {
                            break merged;
                        }
                    };
                    let pi = pi_from(start);
                    let real_merged = link(u, v, &pi);
                    assert_eq!(merged, real_merged, "link({u},{v}) from {start:?}");
                    assert_eq!(mem, pi.snapshot(), "link({u},{v}) from {start:?}");
                }
                let mut mem = start.clone();
                let mut m = CompressMachine::new(u);
                while m.step(&mut mem) == StepOutcome::Running {}
                let pi = pi_from(start);
                compress(u, &pi);
                assert_eq!(mem, pi.snapshot(), "compress({u}) from {start:?}");

                let mut mem = start.clone();
                let mut m = FindRootMachine::new(u);
                while m.step(&mut mem) == StepOutcome::Running {}
                let pi = pi_from(start);
                let real_root = pi.find_root(u);
                let mut model_root = u;
                while mem[model_root as usize] != model_root {
                    model_root = mem[model_root as usize];
                }
                assert_eq!(model_root, real_root, "find_root({u}) from {start:?}");
            }
        }
    }

    /// The memoized DFS really is exhaustive on a known-size instance:
    /// freeze the state-space size of two disjoint links so accidental
    /// pruning in a future refactor shows up as a diff here.
    #[test]
    fn state_counts_are_stable() {
        let out = explore(&Scenario::links(4, &[(0, 1), (2, 3)]));
        assert!(out.passed());
        let frozen = (out.states, out.terminal_states);
        let again = explore(&Scenario::links(4, &[(0, 1), (2, 3)]));
        assert_eq!(frozen, (again.states, again.terminal_states));
        // Lower bound: strictly more states than one sequential order
        // (two 4-step machines sequentially = 9 states).
        assert!(out.states > 9, "state space suspiciously small: {frozen:?}");
    }
}
