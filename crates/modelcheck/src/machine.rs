//! Thread state machines mirroring the lock-free primitives.
//!
//! Each machine reifies one call from `afforest-core` as an explicit
//! interpreter state: **every shared access to `π` (`get` / `set` /
//! `compare_and_swap`) is exactly one [`Machine::step`]**, and all local
//! computation between two shared accesses happens "for free" inside the
//! step that precedes it. This is the standard reduction for model checking
//! lock-free code: only the order of shared-memory accesses matters, so
//! exploring all interleavings of these steps covers every behaviour the
//! real code can exhibit under any thread schedule (for `Relaxed`-but-
//! coherent atomics, i.e. all threads observe a single modification order
//! per memory cell — which `AtomicU32` guarantees).
//!
//! The code mirrored here (kept in lock-step with `afforest-core`; the
//! `model_matches_real_implementation` test in `lib.rs` guards the
//! correspondence):
//!
//! ```text
//! link(u, v):                      compress(v):
//!   p1 = get(u)                      while get(get(v)) != get(v):
//!   p2 = get(v)                          set(v, get(get(v)))
//!   while p1 != p2:
//!     high, low = max/min(p1, p2)    find_root(v):
//!     p_high = get(high)               x = v
//!     if p_high == low: ret false      loop:
//!     if p_high == high                  p = get(x)
//!        && cas(high, high, low):        if p == x: ret x
//!       ret true                         x = p
//!     p1 = get(get(high))
//!     p2 = get(low)
//!   ret false
//! ```

/// Vertex/parent value inside the model (mirrors `afforest_graph::Node`).
pub type Node = u32;

/// The shared parent array `π`, as plain model memory. The checker owns the
/// only copy and serializes every access, so no atomics are needed here.
pub type Memory = Vec<Node>;

/// Result of advancing a machine by one shared-memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// The machine performed an access and has more steps to run.
    Running,
    /// The machine finished; `merged` is `link`'s return value (always
    /// `false` for non-link machines).
    Finished {
        /// Whether this call performed the tree-merging CAS.
        merged: bool,
    },
}

/// Program counter of a (possibly broken) `link` machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum LinkPc {
    /// `p1 = get(u)`
    ReadU,
    /// `p2 = get(v)`
    ReadV,
    /// `p_high = get(high)`
    ReadHigh,
    /// `compare_and_swap(high, high, low)` — or, for the broken variant,
    /// an unconditional `set(high, low)`.
    Hook,
    /// `tmp = get(high)` (first load of the double dereference)
    Walk1,
    /// `p1 = get(tmp)`
    Walk2,
    /// `p2 = get(low)`
    Walk3,
}

/// One `link(u, v)` call as an interpretable state machine.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LinkMachine {
    u: Node,
    v: Node,
    p1: Node,
    p2: Node,
    high: Node,
    low: Node,
    tmp: Node,
    pc: LinkPc,
    /// When `true`, the `Hook` step performs a plain load+store instead of
    /// a compare-and-swap — the lost-merge bug the checker must catch.
    broken: bool,
}

impl LinkMachine {
    /// Prepares `link(u, v)` (the faithful CAS version).
    pub fn new(u: Node, v: Node) -> Self {
        Self {
            u,
            v,
            p1: 0,
            p2: 0,
            high: 0,
            low: 0,
            tmp: 0,
            pc: LinkPc::ReadU,
            broken: false,
        }
    }

    /// Prepares the deliberately broken variant whose hook is a separate
    /// load (at `ReadHigh`) and store (at `Hook`) instead of a CAS.
    pub fn new_broken(u: Node, v: Node) -> Self {
        Self {
            broken: true,
            ..Self::new(u, v)
        }
    }

    /// The edge this call processes.
    pub fn edge(&self) -> (Node, Node) {
        (self.u, self.v)
    }

    /// Loop head: decides convergence or computes `high`/`low` for the next
    /// iteration. Runs "for free" after the step that produced `p1`/`p2`.
    fn loop_head(&mut self) -> StepOutcome {
        if self.p1 == self.p2 {
            return StepOutcome::Finished { merged: false };
        }
        self.high = self.p1.max(self.p2);
        self.low = self.p1.min(self.p2);
        self.pc = LinkPc::ReadHigh;
        StepOutcome::Running
    }

    /// Executes one shared-memory access.
    pub fn step(&mut self, mem: &mut Memory) -> StepOutcome {
        match self.pc {
            LinkPc::ReadU => {
                self.p1 = mem[self.u as usize];
                self.pc = LinkPc::ReadV;
                StepOutcome::Running
            }
            LinkPc::ReadV => {
                self.p2 = mem[self.v as usize];
                self.loop_head()
            }
            LinkPc::ReadHigh => {
                let p_high = mem[self.high as usize];
                if p_high == self.low {
                    return StepOutcome::Finished { merged: false };
                }
                if p_high == self.high {
                    self.pc = LinkPc::Hook;
                } else {
                    self.pc = LinkPc::Walk1;
                }
                StepOutcome::Running
            }
            LinkPc::Hook => {
                if self.broken {
                    // Bug under test: the root check happened at ReadHigh,
                    // the store happens now — racing writes are lost.
                    mem[self.high as usize] = self.low;
                    return StepOutcome::Finished { merged: true };
                }
                // Faithful CAS: check and write in one atomic step.
                if mem[self.high as usize] == self.high {
                    mem[self.high as usize] = self.low;
                    return StepOutcome::Finished { merged: true };
                }
                self.pc = LinkPc::Walk1;
                StepOutcome::Running
            }
            LinkPc::Walk1 => {
                self.tmp = mem[self.high as usize];
                self.pc = LinkPc::Walk2;
                StepOutcome::Running
            }
            LinkPc::Walk2 => {
                self.p1 = mem[self.tmp as usize];
                self.pc = LinkPc::Walk3;
                StepOutcome::Running
            }
            LinkPc::Walk3 => {
                self.p2 = mem[self.low as usize];
                self.loop_head()
            }
        }
    }
}

/// Program counter of a `compress` machine; one variant per shared access
/// in `while get(get(v)) != get(v) { set(v, get(get(v))) }`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum CompressPc {
    /// `a = get(v)` (condition, inner load)
    CondInner,
    /// `b = get(a)` (condition, outer load)
    CondOuter,
    /// `c = get(v)` (condition, right-hand side)
    CondRhs,
    /// `d = get(v)` (body, inner load)
    BodyInner,
    /// `e = get(d)` (body, outer load)
    BodyOuter,
    /// `set(v, e)`
    BodyStore,
}

/// One `compress(v)` call as an interpretable state machine.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct CompressMachine {
    v: Node,
    a: Node,
    b: Node,
    d: Node,
    e: Node,
    pc: CompressPc,
}

impl CompressMachine {
    /// Prepares `compress(v)`.
    pub fn new(v: Node) -> Self {
        Self {
            v,
            a: 0,
            b: 0,
            d: 0,
            e: 0,
            pc: CompressPc::CondInner,
        }
    }

    /// Executes one shared-memory access.
    pub fn step(&mut self, mem: &mut Memory) -> StepOutcome {
        match self.pc {
            CompressPc::CondInner => {
                self.a = mem[self.v as usize];
                self.pc = CompressPc::CondOuter;
                StepOutcome::Running
            }
            CompressPc::CondOuter => {
                self.b = mem[self.a as usize];
                self.pc = CompressPc::CondRhs;
                StepOutcome::Running
            }
            CompressPc::CondRhs => {
                let c = mem[self.v as usize];
                if self.b == c {
                    return StepOutcome::Finished { merged: false };
                }
                self.pc = CompressPc::BodyInner;
                StepOutcome::Running
            }
            CompressPc::BodyInner => {
                self.d = mem[self.v as usize];
                self.pc = CompressPc::BodyOuter;
                StepOutcome::Running
            }
            CompressPc::BodyOuter => {
                self.e = mem[self.d as usize];
                self.pc = CompressPc::BodyStore;
                StepOutcome::Running
            }
            CompressPc::BodyStore => {
                mem[self.v as usize] = self.e;
                self.pc = CompressPc::CondInner;
                StepOutcome::Running
            }
        }
    }
}

/// One `find_root(v)` call as an interpretable state machine: a pure
/// reader, included to verify root walks terminate and never observe a
/// cycle while `link`s run concurrently.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct FindRootMachine {
    x: Node,
}

impl FindRootMachine {
    /// Prepares `find_root(v)`.
    pub fn new(v: Node) -> Self {
        Self { x: v }
    }

    /// Executes one shared-memory access (`p = get(x)`).
    pub fn step(&mut self, mem: &mut Memory) -> StepOutcome {
        let p = mem[self.x as usize];
        if p == self.x {
            return StepOutcome::Finished { merged: false };
        }
        self.x = p;
        StepOutcome::Running
    }
}

/// Any thread the checker can schedule.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Thread {
    /// A `link(u, v)` call (faithful or broken).
    Link(LinkMachine),
    /// A `compress(v)` call.
    Compress(CompressMachine),
    /// A `find_root(v)` call.
    FindRoot(FindRootMachine),
    /// A finished thread (kept so indices stay stable); records whether a
    /// finished link merged.
    Done {
        /// `link`'s return value (`false` for other machines).
        merged: bool,
    },
}

impl Thread {
    /// Whether the thread still has steps to execute.
    pub fn is_runnable(&self) -> bool {
        !matches!(self, Thread::Done { .. })
    }

    /// Advances by one shared-memory access. Panics on finished threads.
    pub fn step(&mut self, mem: &mut Memory) -> StepOutcome {
        let outcome = match self {
            Thread::Link(m) => m.step(mem),
            Thread::Compress(m) => m.step(mem),
            Thread::FindRoot(m) => m.step(mem),
            Thread::Done { .. } => panic!("stepping a finished thread"),
        };
        if let StepOutcome::Finished { merged } = outcome {
            *self = Thread::Done { merged };
        }
        outcome
    }
}
