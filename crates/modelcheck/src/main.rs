//! CLI entry point: runs the standard scenario battery and exits non-zero
//! on any violation. Wired into `cargo xtask ci` and `ci.sh`.

use afforest_modelcheck::run_standard_battery;

fn main() {
    let mut failed = 0usize;
    let results = run_standard_battery();
    let width = results.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    println!(
        "model-checking {} scenarios (exhaustive DFS over interleavings):",
        results.len()
    );
    for (name, out) in &results {
        let status = if out.passed() { "ok" } else { "FAILED" };
        println!(
            "  {name:width$}  {:>7} states  {:>5} terminal  {status}",
            out.states, out.terminal_states
        );
        for v in &out.violations {
            println!("      violation: {v}");
            failed += 1;
        }
    }
    if failed > 0 {
        eprintln!("model check FAILED: {failed} violation(s)");
        std::process::exit(1);
    }
    println!("model check passed: all scenarios hold on every interleaving");
}
