//! Sequential union-find oracle the model's terminal states are compared
//! against (self-contained — the checker must not share code with the
//! implementation under test).

use crate::machine::Node;

/// Root label per vertex after sequentially uniting `edges` over `n`
/// vertices, with every root being its component's minimum index.
pub fn sequential_components(n: usize, edges: &[(Node, Node)]) -> Vec<Node> {
    let mut parent: Vec<Node> = (0..n as Node).collect();

    fn find(parent: &mut [Node], v: Node) -> Node {
        let mut root = v;
        while parent[root as usize] != root {
            root = parent[root as usize];
        }
        // Path compression.
        let mut x = v;
        while parent[x as usize] != root {
            let next = parent[x as usize];
            parent[x as usize] = root;
            x = next;
        }
        root
    }

    for &(u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        // Union by min index, matching link's "hook high under low".
        if ru < rv {
            parent[rv as usize] = ru;
        } else if rv < ru {
            parent[ru as usize] = rv;
        }
    }
    (0..n as Node).map(|v| find(&mut parent, v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_single_component() {
        let roots = sequential_components(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(roots, vec![0, 0, 0]);
    }

    #[test]
    fn disjoint_pairs() {
        let roots = sequential_components(4, &[(0, 1), (2, 3)]);
        assert_eq!(roots, vec![0, 0, 2, 2]);
    }

    #[test]
    fn no_edges() {
        assert_eq!(sequential_components(3, &[]), vec![0, 1, 2]);
    }

    #[test]
    fn min_index_roots() {
        let roots = sequential_components(5, &[(4, 3), (3, 2), (2, 1), (1, 0)]);
        assert!(roots.iter().all(|&r| r == 0));
    }
}
