//! Memoized DFS over all interleavings of the thread machines.
//!
//! A checker state is `(π memory, thread states)`. From each state, every
//! runnable thread may take the next shared-memory access; the explorer
//! branches on all of them, deduplicating states it has already expanded
//! (two different schedule prefixes reaching the same state have identical
//! futures, so one expansion suffices — this is what keeps the search
//! tractable despite the factorial number of schedules).
//!
//! Safety properties (Invariant 1, acyclicity) are checked on **every**
//! reached state; functional properties (partition correctness, the
//! merge-count duality of Theorem 1) are checked on terminal states where
//! all threads have finished.

use crate::machine::{Memory, Node, Thread};
use crate::oracle::sequential_components;
use std::collections::HashSet;

/// A scenario to exhaustively check: `n` vertices (initially `π(v) = v`)
/// and one machine per logical thread.
#[derive(Clone, Debug)]
pub struct Scenario {
    /// Number of vertices.
    pub n: usize,
    /// Concurrent calls, one per thread.
    pub threads: Vec<Thread>,
}

impl Scenario {
    /// Scenario running `link` on each edge, one thread per edge.
    pub fn links(n: usize, edges: &[(Node, Node)]) -> Self {
        Self {
            n,
            threads: edges
                .iter()
                .map(|&(u, v)| Thread::Link(crate::machine::LinkMachine::new(u, v)))
                .collect(),
        }
    }

    /// Like [`Scenario::links`] but with the deliberately broken
    /// load+store hook on every edge.
    pub fn broken_links(n: usize, edges: &[(Node, Node)]) -> Self {
        Self {
            n,
            threads: edges
                .iter()
                .map(|&(u, v)| Thread::Link(crate::machine::LinkMachine::new_broken(u, v)))
                .collect(),
        }
    }
}

/// A property violation discovered during exploration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// `π(x) > x` observed in some reachable state.
    InvariantBroken {
        /// The offending vertex.
        vertex: Node,
        /// Its parent at the time.
        parent: Node,
        /// Full memory snapshot.
        memory: Memory,
    },
    /// A parent-pointer cycle (other than a root's self-loop) observed.
    Cycle {
        /// A vertex on the cycle.
        vertex: Node,
        /// Full memory snapshot.
        memory: Memory,
    },
    /// A terminal state whose partition differs from sequential union-find.
    WrongPartition {
        /// Terminal memory.
        memory: Memory,
        /// Component id per vertex reached by the model.
        got: Vec<Node>,
        /// Component id per vertex from the sequential oracle.
        expected: Vec<Node>,
    },
    /// A terminal state where the number of `link` calls that returned
    /// `true` differs from `|V| - C` (Theorem 1).
    MergeCountMismatch {
        /// Merges observed.
        got: usize,
        /// `|V| - C` from the oracle.
        expected: usize,
        /// Terminal memory.
        memory: Memory,
    },
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Violation::InvariantBroken {
                vertex,
                parent,
                memory,
            } => write!(
                f,
                "Invariant 1 broken: pi({vertex}) = {parent} > {vertex} in {memory:?}"
            ),
            Violation::Cycle { vertex, memory } => {
                write!(f, "cycle through vertex {vertex} in {memory:?}")
            }
            Violation::WrongPartition {
                memory,
                got,
                expected,
            } => write!(
                f,
                "terminal partition {got:?} != sequential {expected:?} (pi = {memory:?})"
            ),
            Violation::MergeCountMismatch {
                got,
                expected,
                memory,
            } => write!(
                f,
                "{got} links merged, expected |V|-C = {expected} (pi = {memory:?})"
            ),
        }
    }
}

/// Result of exhausting a scenario's interleavings.
#[derive(Clone, Debug, Default)]
pub struct Outcome {
    /// Distinct states expanded.
    pub states: usize,
    /// Distinct terminal states (all threads finished).
    pub terminal_states: usize,
    /// Violations found (capped at [`MAX_VIOLATIONS`]).
    pub violations: Vec<Violation>,
}

impl Outcome {
    /// Whether every property held on every interleaving.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Exploration stops collecting after this many violations (the state
/// space downstream of a bug usually contains thousands of equivalent
/// failures; a handful is enough to diagnose).
pub const MAX_VIOLATIONS: usize = 8;

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    mem: Memory,
    threads: Vec<Thread>,
}

/// Exhaustively explores every interleaving of the scenario's threads.
pub fn explore(scenario: &Scenario) -> Outcome {
    let mem: Memory = (0..scenario.n as Node).collect();
    let edges: Vec<(Node, Node)> = scenario
        .threads
        .iter()
        .filter_map(|t| match t {
            Thread::Link(m) => Some(m.edge()),
            _ => None,
        })
        .collect();
    let expected = sequential_components(scenario.n, &edges);
    let expected_merges = scenario.n - count_components(&expected);

    let mut outcome = Outcome::default();
    let mut visited: HashSet<State> = HashSet::new();
    let mut stack: Vec<State> = vec![State {
        mem,
        threads: scenario.threads.clone(),
    }];

    while let Some(state) = stack.pop() {
        if !visited.insert(state.clone()) {
            continue;
        }
        outcome.states += 1;

        check_safety(&state.mem, &mut outcome);
        if outcome.violations.len() >= MAX_VIOLATIONS {
            break;
        }

        let mut terminal = true;
        for i in 0..state.threads.len() {
            if !state.threads[i].is_runnable() {
                continue;
            }
            terminal = false;
            let mut next = state.clone();
            next.threads[i].step(&mut next.mem);
            stack.push(next);
        }

        if terminal {
            outcome.terminal_states += 1;
            check_terminal(&state, &expected, expected_merges, &mut outcome);
            if outcome.violations.len() >= MAX_VIOLATIONS {
                break;
            }
        }
    }
    outcome
}

/// Checks Invariant 1 and acyclicity on one reachable state.
fn check_safety(mem: &Memory, outcome: &mut Outcome) {
    for (x, &p) in mem.iter().enumerate() {
        if p > x as Node {
            outcome.violations.push(Violation::InvariantBroken {
                vertex: x as Node,
                parent: p,
                memory: mem.clone(),
            });
            return;
        }
    }
    // With Invariant 1 intact, only self-loops can close cycles, but check
    // independently so broken variants that preserve the invariant still
    // get cycle coverage: walk each chain at most |V| steps.
    for start in 0..mem.len() {
        let mut x = start;
        for _ in 0..=mem.len() {
            let p = mem[x] as usize;
            if p == x {
                break;
            }
            x = p;
        }
        if mem[x] as usize != x {
            outcome.violations.push(Violation::Cycle {
                vertex: start as Node,
                memory: mem.clone(),
            });
            return;
        }
    }
}

/// Checks partition correctness and the merge-count duality on a terminal
/// state.
fn check_terminal(state: &State, expected: &[Node], expected_merges: usize, out: &mut Outcome) {
    let got: Vec<Node> = (0..state.mem.len())
        .map(|v| chase_root(&state.mem, v as Node))
        .collect();
    if !same_partition(&got, expected) {
        out.violations.push(Violation::WrongPartition {
            memory: state.mem.clone(),
            got,
            expected: expected.to_vec(),
        });
        return;
    }
    let merges = state
        .threads
        .iter()
        .filter(|t| matches!(t, Thread::Done { merged: true }))
        .count();
    if merges != expected_merges {
        out.violations.push(Violation::MergeCountMismatch {
            got: merges,
            expected: expected_merges,
            memory: state.mem.clone(),
        });
    }
}

fn chase_root(mem: &Memory, v: Node) -> Node {
    let mut x = v;
    loop {
        let p = mem[x as usize];
        if p == x {
            return x;
        }
        x = p;
    }
}

fn count_components(roots: &[Node]) -> usize {
    let mut seen = vec![false; roots.len()];
    let mut c = 0;
    for &r in roots {
        if !seen[r as usize] {
            seen[r as usize] = true;
            c += 1;
        }
    }
    c
}

/// Whether two root labelings induce the same partition.
fn same_partition(a: &[Node], b: &[Node]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let mut a_to_b = vec![Node::MAX; n];
    let mut b_to_a = vec![Node::MAX; n];
    for i in 0..n {
        let (ra, rb) = (a[i] as usize, b[i]);
        if a_to_b[ra] == Node::MAX {
            a_to_b[ra] = rb;
        } else if a_to_b[ra] != rb {
            return false;
        }
        let rb = rb as usize;
        if b_to_a[rb] == Node::MAX {
            b_to_a[rb] = a[i];
        } else if b_to_a[rb] != a[i] {
            return false;
        }
    }
    true
}
