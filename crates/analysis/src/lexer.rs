//! An exact, small Rust lexer.
//!
//! The predecessor of this crate was a line-oriented scanner that stripped
//! `//` comments with `str::find` — which misfires the moment a string
//! literal contains `//` or a `/* */` block spans lines. This lexer
//! tokenizes real Rust: identifiers (including raw `r#ident`), lifetimes,
//! string/char/byte/raw-string literals with escapes, numbers, line
//! comments, *nested* block comments, and single-character punctuation,
//! each with a byte span and a 1-based line/column.
//!
//! It deliberately does **not** parse: passes work on the token stream
//! (plus light structural helpers in [`crate::pass`]), which is exact for
//! every question the battery asks — "is this `unsafe` token code or
//! prose?", "which identifier receives this `.lock()` call?" — without
//! the weight of a grammar.
//!
//! Scope limits, stated rather than hidden: shebang lines are skipped;
//! `cfg`-conditional code is lexed like any other code (passes see both
//! sides of a `#[cfg]`); and exotic literals (C strings, reserved guarded
//! strings) lex as ordinary string literals. None of these affect the
//! soundness of the shipped passes.

/// What a token is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`unsafe`, `Ordering`, `lock`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// Any string-like literal: `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br"…"`.
    Str,
    /// A character or byte literal: `'x'`, `'\n'`, `b'x'`.
    Char,
    /// A numeric literal (integer or float, any radix, with suffix).
    Num,
    /// A `//` comment (including `///` and `//!`), excluding the newline.
    LineComment,
    /// A `/* … */` comment, nesting handled, possibly spanning lines.
    BlockComment,
    /// A single punctuation character (`::` is two `Punct(':')` tokens).
    Punct,
}

/// One token: kind plus byte span and 1-based position of its first byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte, into the lexed source.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: usize,
    /// 1-based byte column of the first byte within its line.
    pub col: usize,
}

impl Token {
    /// The token's text within `src` (the string passed to [`lex`]).
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }

    /// 1-based line of the token's **last** byte (differs from `line`
    /// only for multi-line tokens: block comments and raw strings).
    pub fn end_line(&self, src: &str) -> usize {
        self.line + src[self.start..self.end].matches('\n').count()
    }

    /// Whether the token is a comment of either kind.
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this is the punctuation character `c`.
    pub fn is_punct(&self, src: &str, c: char) -> bool {
        self.kind == TokenKind::Punct && self.text(src).starts_with(c)
    }

    /// Whether this is an identifier with exactly the text `name`.
    pub fn is_ident(&self, src: &str, name: &str) -> bool {
        self.kind == TokenKind::Ident && self.text(src) == name
    }
}

struct Lexer<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    line_start: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.bytes.get(self.pos + ahead).copied()
    }

    /// Advances `n` bytes, keeping the line accounting right even when
    /// the skipped bytes contain newlines (block comments, raw strings).
    fn advance(&mut self, n: usize) {
        let end = (self.pos + n).min(self.bytes.len());
        while self.pos < end {
            if self.bytes[self.pos] == b'\n' {
                self.line += 1;
                self.line_start = self.pos + 1;
            }
            self.pos += 1;
        }
    }

    fn token(&self, kind: TokenKind, start: usize, start_line: usize, start_col: usize) -> Token {
        Token {
            kind,
            start,
            end: self.pos,
            line: start_line,
            col: start_col,
        }
    }

    /// Consumes a line comment (`//…`), leaving the newline unconsumed.
    fn line_comment(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.advance(1);
        }
    }

    /// Consumes a block comment with nesting. An unterminated comment
    /// swallows the rest of the file (what rustc does, minus the error).
    fn block_comment(&mut self) {
        self.advance(2); // the opening `/*`
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.advance(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.advance(2);
                }
                (Some(_), _) => self.advance(1),
                (None, _) => break,
            }
        }
    }

    /// Consumes a `"…"` body starting at the opening quote; `\"` and
    /// `\\` escapes are honored.
    fn quoted_string(&mut self) {
        self.advance(1); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.advance(2),
                b'"' => {
                    self.advance(1);
                    return;
                }
                _ => self.advance(1),
            }
        }
    }

    /// Consumes a raw string starting at the `r` (or after a `b`):
    /// `r"…"` / `r#…#"…"#…#`. Returns false if it was not actually a raw
    /// string opener (then nothing is consumed past the probe).
    fn raw_string(&mut self) -> bool {
        let mut hashes = 0usize;
        while self.peek(1 + hashes) == Some(b'#') {
            hashes += 1;
        }
        if self.peek(1 + hashes) != Some(b'"') {
            return false;
        }
        self.advance(2 + hashes); // r, hashes, opening quote
        loop {
            match self.peek(0) {
                Some(b'"') => {
                    let mut closing = 0usize;
                    while closing < hashes && self.peek(1 + closing) == Some(b'#') {
                        closing += 1;
                    }
                    if closing == hashes {
                        self.advance(1 + hashes);
                        return true;
                    }
                    self.advance(1);
                }
                Some(_) => self.advance(1),
                None => return true,
            }
        }
    }

    /// Consumes a char/byte literal starting at the opening `'`.
    fn char_literal(&mut self) {
        self.advance(1); // opening quote
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.advance(2),
                b'\'' => {
                    self.advance(1);
                    return;
                }
                // A newline before the closing quote: not a char literal
                // after all (defensive; the lifetime probe should have
                // caught it). Stop rather than swallow the file.
                b'\n' => return,
                _ => self.advance(1),
            }
        }
    }

    fn ident(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'_' || b.is_ascii_alphanumeric() || b >= 0x80 {
                self.advance(1);
            } else {
                break;
            }
        }
    }

    /// Consumes a numeric literal. Exactness matters only insofar as the
    /// lexer must not leak into neighboring tokens: `0..n` keeps the
    /// range dots, `1e+3` keeps its exponent, `0x1F` keeps its radix.
    fn number(&mut self) {
        let start = self.pos;
        let radix_prefixed = self.peek(0) == Some(b'0')
            && matches!(self.peek(1), Some(b'x' | b'o' | b'b' | b'X' | b'O' | b'B'));
        let mut seen_dot = false;
        loop {
            match self.peek(0) {
                Some(b) if b == b'_' || b.is_ascii_alphanumeric() => self.advance(1),
                Some(b'.') if !seen_dot && !radix_prefixed => {
                    // `1.5` continues the number; `1..n` and `1.method()`
                    // end it at the dot.
                    match self.peek(1) {
                        Some(d) if d.is_ascii_digit() => {
                            seen_dot = true;
                            self.advance(1);
                        }
                        _ => break,
                    }
                }
                Some(b'+' | b'-')
                    if !radix_prefixed
                        && matches!(self.bytes.get(self.pos - 1), Some(b'e' | b'E'))
                        && self.pos > start =>
                {
                    // Exponent sign, as in `1e+3` / `2.5E-7`.
                    self.advance(1);
                }
                _ => break,
            }
        }
    }
}

/// Tokenizes `src`. Whitespace is dropped; comments are kept (passes need
/// them to find `SAFETY:` / `PANIC-OK:` justifications). Total function:
/// any byte string produces a token vector, never a panic — malformed
/// input (unterminated literals/comments) simply ends a token at EOF.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        bytes: src.as_bytes(),
        pos: 0,
        line: 1,
        line_start: 0,
    };
    // Shebang: `#!` at offset 0 not followed by `[` is a script header.
    if src.starts_with("#!") && !src.starts_with("#![") {
        lx.line_comment();
    }
    let mut out = Vec::new();
    while let Some(b) = lx.peek(0) {
        let (start, line, col) = (lx.pos, lx.line, lx.pos - lx.line_start + 1);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                lx.advance(1);
                continue;
            }
            b'/' if lx.peek(1) == Some(b'/') => {
                lx.line_comment();
                out.push(lx.token(TokenKind::LineComment, start, line, col));
            }
            b'/' if lx.peek(1) == Some(b'*') => {
                lx.block_comment();
                out.push(lx.token(TokenKind::BlockComment, start, line, col));
            }
            b'"' => {
                lx.quoted_string();
                out.push(lx.token(TokenKind::Str, start, line, col));
            }
            b'r' if matches!(lx.peek(1), Some(b'"' | b'#')) => {
                // `r"…"`, `r#"…"#`, or a raw identifier `r#ident`.
                if lx.raw_string() {
                    out.push(lx.token(TokenKind::Str, start, line, col));
                } else if lx.peek(1) == Some(b'#') {
                    lx.advance(2);
                    lx.ident();
                    out.push(lx.token(TokenKind::Ident, start, line, col));
                } else {
                    lx.advance(1);
                    lx.ident();
                    out.push(lx.token(TokenKind::Ident, start, line, col));
                }
            }
            b'b' if lx.peek(1) == Some(b'"') => {
                lx.advance(1);
                lx.quoted_string();
                out.push(lx.token(TokenKind::Str, start, line, col));
            }
            b'b' if lx.peek(1) == Some(b'\'') => {
                lx.advance(1);
                lx.char_literal();
                out.push(lx.token(TokenKind::Char, start, line, col));
            }
            b'b' if lx.peek(1) == Some(b'r') && matches!(lx.peek(2), Some(b'"' | b'#')) => {
                lx.advance(1);
                if lx.raw_string() {
                    out.push(lx.token(TokenKind::Str, start, line, col));
                } else {
                    lx.ident();
                    out.push(lx.token(TokenKind::Ident, start, line, col));
                }
            }
            b'c' if lx.peek(1) == Some(b'"') => {
                lx.advance(1);
                lx.quoted_string();
                out.push(lx.token(TokenKind::Str, start, line, col));
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'x'`,
                // `'\n'`): after the quote, an identifier char *not*
                // followed by a closing quote is a lifetime.
                let is_lifetime = matches!(
                    (lx.peek(1), lx.peek(2)),
                    (Some(c), after)
                        if (c == b'_' || c.is_ascii_alphabetic()) && after != Some(b'\'')
                );
                if is_lifetime {
                    lx.advance(1);
                    lx.ident();
                    out.push(lx.token(TokenKind::Lifetime, start, line, col));
                } else {
                    lx.char_literal();
                    out.push(lx.token(TokenKind::Char, start, line, col));
                }
            }
            b'0'..=b'9' => {
                lx.number();
                out.push(lx.token(TokenKind::Num, start, line, col));
            }
            b'_' | b'a'..=b'z' | b'A'..=b'Z' => {
                lx.ident();
                out.push(lx.token(TokenKind::Ident, start, line, col));
            }
            _ if b >= 0x80 => {
                // Non-ASCII outside a literal: lex as an identifier
                // (covers unicode idents; anything else is unreachable in
                // code that compiles).
                lx.ident();
                out.push(lx.token(TokenKind::Ident, start, line, col));
            }
            _ => {
                lx.advance(1);
                out.push(lx.token(TokenKind::Punct, start, line, col));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_keywords_puncts() {
        let ks = kinds("unsafe fn f(x: u32) -> bool { x == 0 }");
        let texts: Vec<&str> = ks.iter().map(|(_, t)| t.as_str()).collect();
        assert_eq!(
            texts,
            [
                "unsafe", "fn", "f", "(", "x", ":", "u32", ")", "-", ">", "bool", "{", "x", "=",
                "=", "0", "}"
            ]
        );
        assert_eq!(ks[0].0, TokenKind::Ident);
        assert_eq!(ks[3].0, TokenKind::Punct);
    }

    #[test]
    fn comment_containing_code_tokens_is_one_token() {
        let src = "// Ordering::SeqCst and unsafe live here\nlet x = 1;";
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokenKind::LineComment);
        assert!(ks[0].1.contains("SeqCst"));
        // Nothing after the comment lexes as those identifiers.
        assert!(!ks[1..].iter().any(|(_, t)| t == "SeqCst" || t == "unsafe"));
    }

    #[test]
    fn nested_block_comment_spans_lines() {
        let src = "/* outer /* inner */ still comment */ fn f() {}";
        let ks = kinds(src);
        assert_eq!(ks[0].0, TokenKind::BlockComment);
        assert!(ks[0].1.ends_with("*/"));
        assert_eq!(ks[1].1, "fn");

        let multi = "a /* line1\nline2 */ b";
        let toks = lex(multi);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].end_line(multi), 2);
        assert_eq!(toks[2].line, 2);
        assert_eq!(toks[2].text(multi), "b");
    }

    #[test]
    fn string_containing_comment_markers_is_one_token() {
        let src = r#"let s = "// SAFETY: not a comment /* nor this */";"#;
        let ks = kinds(src);
        let strs: Vec<_> = ks.iter().filter(|(k, _)| *k == TokenKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].1.contains("SAFETY"));
        assert!(!ks.iter().any(|(k, _)| *k == TokenKind::LineComment));
    }

    #[test]
    fn escaped_quotes_and_backslashes() {
        let src = r#"let s = "she said \"hi\" \\"; let t = 'x';"#;
        let ks = kinds(src);
        assert_eq!(
            ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(),
            1,
            "{ks:?}"
        );
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
    }

    #[test]
    fn raw_strings_and_raw_idents() {
        let src = r##"let a = r"no \ escapes"; let b = r#"has "quotes""#; let r#fn = 1;"##;
        let ks = kinds(src);
        let strs: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Str)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(strs, [r#"r"no \ escapes""#, r##"r#"has "quotes""#"##]);
        assert!(ks
            .iter()
            .any(|(k, t)| *k == TokenKind::Ident && t == "r#fn"));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let ks = kinds(r##"let m = b"AFWAL\x00"; let c = b'\n'; let r = br#"x"#;"##);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 2);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokenKind::Char).count(), 1);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'a'; let s = 'static_label: loop { break 's' } }";
        let ks = kinds(src);
        let lifetimes: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lifetimes, ["'a", "'a", "'static_label"]);
        let chars: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Char)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(chars, ["'a'", "'s'"]);
    }

    #[test]
    fn numbers_do_not_eat_ranges_or_methods() {
        let ks = kinds("for i in 0..16 { let f = 1.5e+3; let h = 0x1F; let m = 4.max(i); }");
        let nums: Vec<_> = ks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Num)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(nums, ["0", "16", "1.5e+3", "0x1F", "4"]);
    }

    #[test]
    fn positions_are_one_based_and_exact() {
        let src = "ab\n  cd /* x */ ef";
        let toks = lex(src);
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3)); // cd
        assert_eq!((toks[2].line, toks[2].col), (2, 6)); // comment
        assert_eq!((toks[3].line, toks[3].col), (2, 14)); // ef
    }

    #[test]
    fn total_on_malformed_input() {
        // Unterminated constructs must not panic or loop.
        for src in [
            "\"unterminated",
            "/* never closed",
            "'",
            "r#\"open",
            "b\"open",
            "let x = ",
            "#!shebang only",
        ] {
            let _ = lex(src);
        }
        assert!(lex("").is_empty());
    }

    #[test]
    fn shebang_skipped_but_inner_attr_lexed() {
        let ks = kinds("#!/usr/bin/env rust\nfn main() {}");
        assert_eq!(ks[0].1, "fn");
        let ks = kinds("#![forbid(unsafe_code)]");
        assert_eq!(ks[0].1, "#");
        assert!(ks.iter().any(|(_, t)| t == "unsafe_code"));
    }
}
