//! The pass framework: workspace loading, pre-lexed sources, and the
//! structural helpers every pass shares.
//!
//! A [`Pass`] sees a [`Context`]: every non-vendored `.rs` file in the
//! workspace, already lexed, plus the documentation files some passes
//! cross-check (`DESIGN.md`, `README.md`, the metric exposition fixture).
//! Passes are pure functions from context to diagnostics — no IO — which
//! is what makes the fixture tests in `tests/` possible: a fixture
//! context is just a handful of in-memory files with chosen paths.

use crate::diag::Diagnostic;
use crate::lexer::{lex, Token, TokenKind};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

/// One source file: path, text, and its token stream.
pub struct SourceFile {
    /// `/`-normalized path relative to the workspace root.
    pub rel: String,
    /// Full file contents.
    pub text: String,
    /// Tokens of `text`, comments included.
    pub tokens: Vec<Token>,
}

impl SourceFile {
    /// Builds a source file, lexing eagerly.
    pub fn new(rel: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let text = text.into();
        let tokens = lex(&text);
        SourceFile {
            rel: rel.into(),
            text,
            tokens,
        }
    }

    /// The token's text.
    pub fn text_of(&self, t: &Token) -> &str {
        t.text(&self.text)
    }

    /// Indices of non-comment tokens, in order.
    pub fn code_indices(&self) -> Vec<usize> {
        (0..self.tokens.len())
            .filter(|&i| !self.tokens[i].is_comment())
            .collect()
    }

    /// Whether the identifier `name` occurs anywhere in code position.
    pub fn has_code_ident(&self, name: &str) -> bool {
        self.tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && self.text_of(t) == name)
    }

    /// Matches `pattern` (mixed idents and puncts) against the code
    /// token stream starting at code-index `at` (an index into
    /// `code_indices()`-style filtered positions is awkward; this takes
    /// a raw token index and skips comments). Returns the raw index one
    /// past the match, or `None`.
    pub fn match_seq(&self, at: usize, pattern: &[Pat<'_>]) -> Option<usize> {
        let mut i = at;
        for p in pattern {
            // Skip comments between pattern elements.
            while i < self.tokens.len() && self.tokens[i].is_comment() {
                i += 1;
            }
            let t = self.tokens.get(i)?;
            let ok = match *p {
                Pat::Id(name) => t.is_ident(&self.text, name),
                Pat::AnyId => t.kind == TokenKind::Ident,
                Pat::P(c) => t.is_punct(&self.text, c),
                Pat::Str => t.kind == TokenKind::Str,
            };
            if !ok {
                return None;
            }
            i += 1;
        }
        Some(i)
    }

    /// The raw index of the previous non-comment token before `at`.
    pub fn prev_code(&self, at: usize) -> Option<usize> {
        (0..at).rev().find(|&j| !self.tokens[j].is_comment())
    }

    /// The raw index of the next non-comment token at or after `at`.
    pub fn next_code(&self, at: usize) -> Option<usize> {
        (at..self.tokens.len()).find(|&j| !self.tokens[j].is_comment())
    }

    /// Whether any comment token covering `line` contains `marker`.
    pub fn line_has_marker(&self, line: usize, marker: &str) -> bool {
        self.tokens.iter().any(|t| {
            t.is_comment()
                && t.line <= line
                && t.end_line(&self.text) >= line
                && self.text_of(t).contains(marker)
        })
    }

    /// Whether the contiguous comment/attribute block of lines directly
    /// above `line` contains `marker` in a comment. Mirrors the SAFETY
    /// discipline: a justification binds to the item it touches, and any
    /// interleaved code breaks the block.
    pub fn block_above_has_marker(&self, line: usize, markers: &[&str]) -> bool {
        let classes = self.line_classes();
        let mut l = line;
        while l > 1 {
            l -= 1;
            match classes.get(&l) {
                Some(LineClass::Comment) => {
                    if markers.iter().any(|m| self.line_has_marker(l, m)) {
                        return true;
                    }
                }
                Some(LineClass::Attr) => {}
                _ => return false,
            }
        }
        false
    }

    /// Classifies each line that holds tokens: comment-only, attribute,
    /// or code. Lines spanned by a multi-line comment are comment lines;
    /// a line is an attribute line if its first token is `#` (attributes
    /// may span lines, but this codebase's attributes that precede
    /// `unsafe` items do not).
    fn line_classes(&self) -> BTreeMap<usize, LineClass> {
        let mut classes: BTreeMap<usize, LineClass> = BTreeMap::new();
        for t in &self.tokens {
            let lines = t.line..=t.end_line(&self.text);
            for l in lines {
                let class = if t.is_comment() {
                    LineClass::Comment
                } else if t.is_punct(&self.text, '#') && !classes.contains_key(&l) {
                    LineClass::Attr
                } else {
                    match classes.get(&l) {
                        // An attribute line stays an attribute line even
                        // though `[`, idents, `]` follow the `#`.
                        Some(LineClass::Attr) => LineClass::Attr,
                        _ => LineClass::Code,
                    }
                };
                match (classes.get(&l), class) {
                    // Code wins over comment for mixed lines *only* when
                    // the code came first — a trailing comment does not
                    // make a code line a comment line, and a line inside
                    // a block comment stays a comment line.
                    (Some(LineClass::Code), _) => {}
                    (Some(LineClass::Attr), LineClass::Comment) => {}
                    _ => {
                        classes.insert(l, class);
                    }
                }
            }
        }
        classes
    }

    /// Line ranges (1-based, inclusive) of items gated behind
    /// `#[cfg(test)]` or `#[test]` — test modules and test functions.
    /// Passes that audit production paths skip tokens on these lines.
    pub fn test_line_ranges(&self) -> Vec<(usize, usize)> {
        let mut ranges = Vec::new();
        let toks = &self.tokens;
        let mut i = 0;
        while i < toks.len() {
            let matched = self
                .match_seq(
                    i,
                    &[
                        Pat::P('#'),
                        Pat::P('['),
                        Pat::Id("cfg"),
                        Pat::P('('),
                        Pat::Id("test"),
                        Pat::P(')'),
                        Pat::P(']'),
                    ],
                )
                .or_else(|| {
                    self.match_seq(i, &[Pat::P('#'), Pat::P('['), Pat::Id("test"), Pat::P(']')])
                });
            let Some(mut j) = matched else {
                i += 1;
                continue;
            };
            let start_line = toks[i].line;
            // Skip any further attributes on the item.
            while let Some(k) = self.next_code(j) {
                if toks[k].is_punct(&self.text, '#') {
                    // Consume `#[ ... ]` bracket-balanced.
                    let mut depth = 0usize;
                    let mut m = k;
                    while m < toks.len() {
                        if toks[m].is_punct(&self.text, '[') {
                            depth += 1;
                        } else if toks[m].is_punct(&self.text, ']') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        m += 1;
                    }
                    j = m + 1;
                } else {
                    break;
                }
            }
            // The item body: first `{ … }` at brace level, or a `;`.
            let mut depth = 0usize;
            let mut end_line = start_line;
            let mut k = j;
            while k < toks.len() {
                let t = &toks[k];
                if t.is_punct(&self.text, '{') {
                    depth += 1;
                } else if t.is_punct(&self.text, '}') {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_line = t.end_line(&self.text);
                        k += 1;
                        break;
                    }
                } else if depth == 0 && t.is_punct(&self.text, ';') {
                    end_line = t.line;
                    k += 1;
                    break;
                }
                end_line = t.end_line(&self.text);
                k += 1;
            }
            ranges.push((start_line, end_line));
            i = k.max(i + 1);
        }
        ranges
    }
}

/// Line classification for justification-block walking.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LineClass {
    Comment,
    Attr,
    Code,
}

/// A pattern element for [`SourceFile::match_seq`].
#[derive(Clone, Copy, Debug)]
pub enum Pat<'a> {
    /// An identifier with exactly this text.
    Id(&'a str),
    /// Any identifier.
    AnyId,
    /// A punctuation character.
    P(char),
    /// Any string literal.
    Str,
}

/// Everything a pass can look at.
pub struct Context {
    /// All scanned sources, sorted by path.
    pub files: Vec<SourceFile>,
    /// Non-Rust documents by rel path (`DESIGN.md`, `README.md`, the
    /// metric exposition fixture). Missing files are absent keys —
    /// passes that need one report its absence as a finding.
    pub docs: BTreeMap<String, String>,
}

impl Context {
    /// Builds a context from in-memory sources and docs (fixture tests).
    pub fn from_sources(sources: Vec<(&str, &str)>, docs: Vec<(&str, &str)>) -> Context {
        Context {
            files: sources
                .into_iter()
                .map(|(rel, text)| SourceFile::new(rel, text))
                .collect(),
            docs: docs
                .into_iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        }
    }

    /// Loads the real workspace rooted at `root`.
    pub fn load(root: &Path) -> Context {
        let mut files = Vec::new();
        for path in collect_sources(root) {
            let Ok(text) = fs::read_to_string(&path) else {
                continue;
            };
            let rel = rel_path(root, &path);
            files.push(SourceFile::new(rel, text));
        }
        let mut docs = BTreeMap::new();
        for doc in [crate::METRIC_FIXTURE, "DESIGN.md", "README.md"] {
            if let Ok(text) = fs::read_to_string(root.join(doc)) {
                docs.insert(doc.to_string(), text);
            }
        }
        Context { files, docs }
    }

    /// The file at `rel`, if scanned.
    pub fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }
}

/// A single analysis pass.
pub trait Pass {
    /// Stable kebab-case id, used in diagnostics, `--list-passes`, and
    /// the JSON report.
    fn id(&self) -> &'static str;
    /// One-line description for `--list-passes`.
    fn description(&self) -> &'static str;
    /// Runs the pass.
    fn run(&self, ctx: &Context) -> Vec<Diagnostic>;
}

/// `/`-normalized path of `path` relative to `root`.
fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

/// Recursively collects workspace `.rs` files to scan, excluding vendored
/// shims (`vendor/`), build output (`target/`), git internals, and lint
/// fixture directories (`fixtures/` — fixture files contain seeded
/// violations as test data).
pub fn collect_sources(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if matches!(name.as_ref(), "target" | "vendor" | ".git" | "fixtures") {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn match_seq_skips_comments() {
        let f = SourceFile::new("x.rs", "Ordering /* sneaky */ :: // more\n Relaxed");
        assert!(f
            .match_seq(
                0,
                &[
                    Pat::Id("Ordering"),
                    Pat::P(':'),
                    Pat::P(':'),
                    Pat::Id("Relaxed")
                ]
            )
            .is_some());
    }

    #[test]
    fn marker_found_on_line_and_in_block_above() {
        let src = "fn f(p: *mut u8) {\n    // SAFETY: exclusive owner.\n    #[allow(clippy::x)]\n    unsafe { *p = 1 };\n    unsafe { *p = 2 }; // SAFETY: still exclusive.\n}\n";
        let f = SourceFile::new("x.rs", src);
        assert!(f.block_above_has_marker(4, &["SAFETY:"]));
        assert!(f.line_has_marker(5, "SAFETY:"));
        assert!(!f.block_above_has_marker(2, &["SAFETY:"]));
    }

    #[test]
    fn code_interrupts_justification_block() {
        let src = "// SAFETY: for the first.\nlet a = 1;\nunsafe { x() };\n";
        let f = SourceFile::new("x.rs", src);
        assert!(!f.block_above_has_marker(3, &["SAFETY:"]));
    }

    #[test]
    fn multiline_block_comment_lines_all_justify() {
        let src = "/* SAFETY: a long\n   justification */\nunsafe { x() };\n";
        let f = SourceFile::new("x.rs", src);
        assert!(f.block_above_has_marker(3, &["SAFETY:"]));
    }

    #[test]
    fn test_ranges_cover_cfg_test_modules_and_test_fns() {
        let src = "fn prod() { a.unwrap(); }\n\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { b.unwrap(); }\n}\n";
        let f = SourceFile::new("x.rs", src);
        let ranges = f.test_line_ranges();
        assert!(ranges.iter().any(|&(s, e)| s <= 4 && e >= 7), "{ranges:?}");
        assert!(ranges.iter().all(|&(s, _)| s > 1), "{ranges:?}");
    }

    #[test]
    fn test_range_with_extra_attrs_and_semicolon_items() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nuse helper::x;\nfn prod() {}\n";
        let f = SourceFile::new("x.rs", src);
        let ranges = f.test_line_ranges();
        assert_eq!(ranges, vec![(1, 3)]);
    }
}
