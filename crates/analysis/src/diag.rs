//! Structured diagnostics and their machine-readable emission.
//!
//! Every finding carries the pass that produced it, a severity, an exact
//! location (file, 1-based line and column), a one-line message, and an
//! optional note with remediation detail. [`to_json`] renders a whole
//! report as a stable JSON document (`target/analysis.json` in CI), so
//! external tooling can consume the battery without scraping stderr.

use std::fmt;

/// How bad a finding is. CI fails on any [`Severity::Error`]; warnings
/// are printed but do not gate.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Informational or stylistic; never gates.
    Warning,
    /// A rule violation; fails `cargo xtask lint` and CI.
    Error,
}

impl Severity {
    /// Lowercase name, as emitted in JSON.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

/// One finding from one pass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Id of the pass that produced this (e.g. `lock-order`).
    pub pass: &'static str,
    /// Gate or inform.
    pub severity: Severity,
    /// `/`-normalized path relative to the workspace root. Documentation
    /// passes may point at `DESIGN.md` / `README.md`.
    pub file: String,
    /// 1-based line (0 = whole file).
    pub line: usize,
    /// 1-based byte column (0 = whole line).
    pub col: usize,
    /// One-line description of the violation.
    pub message: String,
    /// Optional remediation hint or supporting detail.
    pub note: Option<String>,
}

impl Diagnostic {
    /// Shorthand for an error-severity diagnostic.
    pub fn error(
        pass: &'static str,
        file: &str,
        line: usize,
        col: usize,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            pass,
            severity: Severity::Error,
            file: file.to_string(),
            line,
            col,
            message: message.into(),
            note: None,
        }
    }

    /// Attaches a remediation note.
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.note = Some(note.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    /// `file:line:col: [severity/pass] message (note)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}/{}] {}",
            self.file,
            self.line,
            self.col,
            self.severity.as_str(),
            self.pass,
            self.message
        )?;
        if let Some(note) = &self.note {
            write!(f, " ({note})")?;
        }
        Ok(())
    }
}

/// The result of running the battery: which passes ran, over how many
/// files, and what they found.
#[derive(Clone, Debug)]
pub struct Report {
    /// Pass ids, in execution order.
    pub passes: Vec<&'static str>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// All findings, in pass order then file/line order.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// Whether any finding gates (error severity).
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }
}

/// Escapes `s` for a JSON string body.
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Renders a report as a stable JSON document (schema version 1).
pub fn to_json(report: &Report) -> String {
    let mut out = String::with_capacity(256 + report.diagnostics.len() * 160);
    out.push_str("{\"version\":1,\"passes\":[");
    for (i, p) in report.passes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape(p, &mut out);
        out.push('"');
    }
    out.push_str("],\"files_scanned\":");
    out.push_str(&report.files_scanned.to_string());
    out.push_str(",\"diagnostics\":[");
    for (i, d) in report.diagnostics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"pass\":\"");
        escape(d.pass, &mut out);
        out.push_str("\",\"severity\":\"");
        out.push_str(d.severity.as_str());
        out.push_str("\",\"file\":\"");
        escape(&d.file, &mut out);
        out.push_str("\",\"line\":");
        out.push_str(&d.line.to_string());
        out.push_str(",\"col\":");
        out.push_str(&d.col.to_string());
        out.push_str(",\"message\":\"");
        escape(&d.message, &mut out);
        out.push('"');
        if let Some(note) = &d.note {
            out.push_str(",\"note\":\"");
            escape(note, &mut out);
            out.push('"');
        }
        out.push('}');
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_grep_friendly() {
        let d = Diagnostic::error("lock-order", "crates/serve/src/x.rs", 12, 5, "cycle A -> B")
            .with_note("see DESIGN.md section 13");
        assert_eq!(
            d.to_string(),
            "crates/serve/src/x.rs:12:5: [error/lock-order] cycle A -> B (see DESIGN.md section 13)"
        );
    }

    #[test]
    fn json_escapes_and_shapes() {
        let report = Report {
            passes: vec!["safety-coverage"],
            files_scanned: 3,
            diagnostics: vec![Diagnostic::error(
                "safety-coverage",
                "a\\b.rs",
                1,
                2,
                "needs \"SAFETY\"\ncomment",
            )],
        };
        let json = to_json(&report);
        assert!(json.contains("\"version\":1"));
        assert!(json.contains("\"files_scanned\":3"));
        assert!(json.contains("a\\\\b.rs"));
        assert!(json.contains("\\\"SAFETY\\\"\\ncomment"));
        assert!(!json.contains("\"note\""));
    }

    #[test]
    fn severity_ordering_gates_on_error() {
        let mut report = Report {
            passes: vec![],
            files_scanned: 0,
            diagnostics: vec![],
        };
        assert!(!report.has_errors());
        report.diagnostics.push(Diagnostic {
            pass: "x",
            severity: Severity::Warning,
            file: "f".into(),
            line: 0,
            col: 0,
            message: "m".into(),
            note: None,
        });
        assert!(!report.has_errors());
        report
            .diagnostics
            .push(Diagnostic::error("x", "f", 1, 1, "m"));
        assert!(report.has_errors());
    }
}
