//! `opcode-consistency`: the wire opcode constants, their uses, and the
//! documentation tables agree byte-for-byte.
//!
//! The protocol's desync story (DESIGN.md §10) rests on disjoint opcode
//! ranges: requests live in `0x01..=0x7F`, responses in `0x80..=0xFF`.
//! A duplicated value, a response constant that strays into the request
//! range, or a README that documents yesterday's byte would all pass the
//! compiler silently and fail on the wire loudly. This pass cross-checks
//! four surfaces:
//!
//! 1. **Declarations** — every `const OP_*: u8 = …;` in
//!    [`PROTOCOL_FILE`]. Values must be unique; `OP_R_*` (responses)
//!    must be `>= 0x80`, everything else `< 0x80` and nonzero (`0x00`
//!    is reserved so an all-zero frame can never parse).
//! 2. **Encoder and decoder** — each constant must appear at least
//!    twice outside its declaration. One side is the encode match, the
//!    other the decode match; a constant used once is a one-directional
//!    opcode, i.e. an encode/decode asymmetry.
//! 3. **The DESIGN.md opcode table** — rows of the form
//!    `` | `OP_X` | `0xNN` | … `` must be a bijection with the
//!    declarations, values included.
//! 4. **Prose** — any `0xNN` byte on a line mentioning "opcode" in
//!    README.md or DESIGN.md must be a declared opcode value.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::pass::{Context, Pass, Pat};
use std::collections::BTreeMap;

/// Pass id.
pub const ID: &str = "opcode-consistency";

/// Where the wire opcodes are declared (encoder and decoder live in the
/// same module, by design).
pub const PROTOCOL_FILE: &str = "crates/serve/src/protocol.rs";

/// Parses a Rust integer literal as used for opcode bytes (`0xNN` or
/// decimal, `_` separators tolerated).
pub fn parse_int(lit: &str) -> Option<u32> {
    let lit = lit.replace('_', "");
    if let Some(hex) = lit.strip_prefix("0x").or_else(|| lit.strip_prefix("0X")) {
        u32::from_str_radix(hex, 16).ok()
    } else {
        lit.parse().ok()
    }
}

/// Opcode table rows in a document: `(name, value, line)` for every
/// `` | `OP_X` | `0xNN` | … `` markdown row.
pub fn table_rows(doc: &str) -> Vec<(String, u32, usize)> {
    let mut out = Vec::new();
    for (idx, line) in doc.lines().enumerate() {
        let mut cells = line.split('|').map(str::trim);
        let Some("") = cells.next() else { continue };
        let (Some(name_cell), Some(value_cell)) = (cells.next(), cells.next()) else {
            continue;
        };
        let name = name_cell.trim_matches('`');
        if !name.starts_with("OP_") || name_cell == name {
            continue;
        }
        let Some(value) = parse_int(value_cell.trim_matches('`')) else {
            continue;
        };
        out.push((name.to_string(), value, idx + 1));
    }
    out
}

/// All `0xNN` bytes on "opcode"-mentioning lines: `(value, line)`.
pub fn prose_opcode_bytes(doc: &str) -> Vec<(u32, usize)> {
    let mut out = Vec::new();
    for (idx, line) in doc.lines().enumerate() {
        if !line.to_ascii_lowercase().contains("opcode") || line.trim_start().starts_with('|') {
            continue;
        }
        let mut rest = line;
        while let Some(pos) = rest.find("0x") {
            let hex: String = rest[pos + 2..]
                .chars()
                .take_while(|c| c.is_ascii_hexdigit())
                .collect();
            rest = &rest[pos + 2..];
            if hex.len() == 2 {
                if let Ok(v) = u32::from_str_radix(&hex, 16) {
                    out.push((v, idx + 1));
                }
            }
        }
    }
    out
}

/// See module docs.
pub struct OpcodeConsistency;

impl Pass for OpcodeConsistency {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "wire opcode constants, encoder/decoder uses, and the README/DESIGN opcode tables agree"
    }

    fn run(&self, ctx: &Context) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let Some(f) = ctx.file(PROTOCOL_FILE) else {
            return diags; // nothing to check in trees without the serve crate
        };

        // 1. Declarations.
        let mut consts: Vec<(String, u32, usize)> = Vec::new();
        let mut uses: BTreeMap<String, usize> = BTreeMap::new();
        for i in 0..f.tokens.len() {
            let t = &f.tokens[i];
            if t.kind == TokenKind::Ident && f.text_of(t).starts_with("OP_") {
                *uses.entry(f.text_of(t).to_string()).or_insert(0) += 1;
            }
            let Some(after) = f.match_seq(
                i,
                &[
                    Pat::Id("const"),
                    Pat::AnyId,
                    Pat::P(':'),
                    Pat::Id("u8"),
                    Pat::P('='),
                ],
            ) else {
                continue;
            };
            let name_tok = &f.tokens[f.next_code(i + 1).unwrap_or(i)];
            let name = f.text_of(name_tok);
            if !name.starts_with("OP_") {
                continue;
            }
            let Some(vi) = f.next_code(after) else {
                continue;
            };
            let Some(value) = parse_int(f.text_of(&f.tokens[vi])) else {
                continue;
            };
            consts.push((name.to_string(), value, name_tok.line));
        }

        let mut by_value: BTreeMap<u32, &str> = BTreeMap::new();
        for (name, value, line) in &consts {
            if let Some(prev) = by_value.insert(*value, name) {
                diags.push(Diagnostic::error(
                    ID,
                    PROTOCOL_FILE,
                    *line,
                    0,
                    format!("opcode value {value:#04x} assigned to both `{prev}` and `{name}`"),
                ));
            }
            let is_response = name.starts_with("OP_R_");
            if is_response && *value < 0x80 {
                diags.push(Diagnostic::error(
                    ID,
                    PROTOCOL_FILE,
                    *line,
                    0,
                    format!(
                        "response opcode `{name}` = {value:#04x} is inside the request range \
                         (responses are 0x80..=0xFF)"
                    ),
                ));
            } else if !is_response && !(0x01..0x80).contains(value) {
                diags.push(Diagnostic::error(
                    ID,
                    PROTOCOL_FILE,
                    *line,
                    0,
                    format!(
                        "request opcode `{name}` = {value:#04x} is outside the request range \
                         (requests are 0x01..=0x7F)"
                    ),
                ));
            }

            // 2. Encoder + decoder presence.
            if uses.get(name.as_str()).copied().unwrap_or(0) < 3 {
                diags.push(
                    Diagnostic::error(
                        ID,
                        PROTOCOL_FILE,
                        *line,
                        0,
                        format!("opcode `{name}` is not used by both the encoder and the decoder"),
                    )
                    .with_note(
                        "every opcode constant must appear in an encode arm and a decode arm; \
                         a one-sided opcode is an encode/decode asymmetry",
                    ),
                );
            }
        }

        // 3. Documentation tables (DESIGN.md authoritative; README may
        // also carry one).
        let decls: BTreeMap<&str, u32> = consts.iter().map(|(n, v, _)| (n.as_str(), *v)).collect();
        let mut any_table = false;
        for doc in ["DESIGN.md", "README.md"] {
            let Some(text) = ctx.docs.get(doc) else {
                continue;
            };
            let rows = table_rows(text);
            if !rows.is_empty() {
                any_table = true;
            }
            let mut documented: BTreeMap<&str, u32> = BTreeMap::new();
            for (name, value, line) in &rows {
                documented.insert(name, *value);
                match decls.get(name.as_str()) {
                    None => diags.push(Diagnostic::error(
                        ID,
                        doc,
                        *line,
                        0,
                        format!(
                            "opcode table names `{name}`, which is not declared in {PROTOCOL_FILE}"
                        ),
                    )),
                    Some(v) if *v != *value => diags.push(Diagnostic::error(
                        ID,
                        doc,
                        *line,
                        0,
                        format!(
                            "opcode table says `{name}` = {value:#04x} but {PROTOCOL_FILE} \
                             declares {v:#04x}"
                        ),
                    )),
                    Some(_) => {}
                }
            }
            if !rows.is_empty() {
                for (name, value, line) in &consts {
                    if !documented.contains_key(name.as_str()) {
                        diags.push(Diagnostic::error(
                            ID,
                            doc,
                            *line,
                            0,
                            format!(
                                "declared opcode `{name}` = {value:#04x} (line {line} of \
                                 {PROTOCOL_FILE}) is missing from {doc}'s opcode table"
                            ),
                        ));
                    }
                }
            }

            // 4. Prose mentions.
            for (value, line) in prose_opcode_bytes(text) {
                if !by_value.contains_key(&value) {
                    diags.push(
                        Diagnostic::error(
                            ID,
                            doc,
                            line,
                            0,
                            format!(
                                "prose mentions opcode {value:#04x}, which no constant in \
                                 {PROTOCOL_FILE} declares"
                            ),
                        )
                        .with_note("stale documentation: the byte changed or never existed"),
                    );
                }
            }
        }
        if !consts.is_empty() && !any_table {
            diags.push(
                Diagnostic::error(
                    ID,
                    "DESIGN.md",
                    0,
                    0,
                    "no opcode table found in DESIGN.md or README.md",
                )
                .with_note(
                    "the wire protocol section must carry a `| \\`OP_X\\` | \\`0xNN\\` | … |` \
                     table mirroring the constants",
                ),
            );
        }
        diags
    }
}
