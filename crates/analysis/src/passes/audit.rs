//! `audit-drift`: DESIGN.md §8's memory-ordering audit and the enforced
//! allowlist cannot drift apart.
//!
//! The `ordering-allowlist` pass makes sure no atomic appears outside
//! [`ORDERING_ALLOWLIST`]; this pass makes sure the allowlist itself
//! stays honest in both directions against the prose audit it claims to
//! mirror:
//!
//! - every allowlist entry must have a `### `path`` subsection under
//!   `## 8. Memory-ordering audit` (an entry without an audit is an
//!   unexplained exemption);
//! - every audited path must be an allowlist entry (an audit section for
//!   a path the lint does not exempt is dead prose that reads as
//!   coverage);
//! - every audited path must still contain atomics — an `Ordering::*`
//!   token or an `Atomic*`/`fetch_*` identifier in some covered file.
//!   When a refactor removes the last atomic from a file, its audit
//!   subsection and allowlist entry must be retired together, or the
//!   document claims an analysis of code that no longer exists.
//!
//! Paths are `/`-normalized; a directory audit is written `crates/x/src/*`
//! in the document and `crates/x/src/` in the allowlist.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::pass::{Context, Pass, Pat, SourceFile};
use crate::passes::ordering::{ATOMIC_ORDERINGS, ORDERING_ALLOWLIST};

/// Pass id.
pub const ID: &str = "audit-drift";

/// The §8 heading this pass anchors on.
const SECTION: &str = "## 8. Memory-ordering audit";

/// Audit subsections found in DESIGN.md §8: `(normalized_path, line)`.
/// Subsections without a backticked path (e.g. "Unsafe-code policy")
/// are not path audits and are skipped.
pub fn audit_sections(design: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in design.lines().enumerate() {
        if line.starts_with("## ") {
            in_section = line.starts_with(SECTION);
            continue;
        }
        if !in_section || !line.starts_with("### ") {
            continue;
        }
        let Some(rest) = line.split('`').nth(1) else {
            continue;
        };
        if !rest.contains('/') {
            continue; // backticked type name, not a path
        }
        let normalized = if let Some(prefix) = rest.strip_suffix("/*") {
            format!("{prefix}/")
        } else {
            rest.to_string()
        };
        out.push((normalized, idx + 1));
    }
    out
}

/// Whether `f` contains any atomic site: an `Ordering::<variant>` token
/// sequence, or an `Atomic*` / `fetch_*` identifier.
pub fn has_atomics(f: &SourceFile) -> bool {
    for i in 0..f.tokens.len() {
        let t = &f.tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let text = f.text_of(t);
        if text.starts_with("Atomic") || text.starts_with("fetch_") {
            return true;
        }
        if text == "Ordering"
            && ATOMIC_ORDERINGS.iter().any(|v| {
                f.match_seq(
                    i,
                    &[Pat::Id("Ordering"), Pat::P(':'), Pat::P(':'), Pat::Id(v)],
                )
                .is_some()
            })
        {
            return true;
        }
    }
    false
}

/// Whether allowlist-style `entry` covers file `rel`.
fn covers(entry: &str, rel: &str) -> bool {
    rel == entry || (entry.ends_with('/') && rel.starts_with(entry))
}

/// See module docs.
pub struct AuditDrift;

impl Pass for AuditDrift {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "DESIGN.md section 8 audit subsections and ORDERING_ALLOWLIST stay a bijection over files that still have atomics"
    }

    fn run(&self, ctx: &Context) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let Some(design) = ctx.docs.get("DESIGN.md") else {
            diags.push(Diagnostic::error(
                ID,
                "DESIGN.md",
                0,
                0,
                "DESIGN.md is missing; the memory-ordering audit cannot be cross-checked",
            ));
            return diags;
        };
        let sections = audit_sections(design);
        if sections.is_empty() {
            diags.push(
                Diagnostic::error(
                    ID,
                    "DESIGN.md",
                    0,
                    0,
                    format!("no path-audit subsections found under `{SECTION}`"),
                )
                .with_note(
                    "each ORDERING_ALLOWLIST entry needs a `### \\`path\\`` subsection arguing \
                     its orderings",
                ),
            );
            return diags;
        }

        for entry in ORDERING_ALLOWLIST {
            if !sections.iter().any(|(p, _)| p == entry) {
                diags.push(
                    Diagnostic::error(
                        ID,
                        "crates/analysis/src/passes/ordering.rs",
                        0,
                        0,
                        format!(
                            "allowlist entry `{entry}` has no audit subsection in DESIGN.md \
                             section 8"
                        ),
                    )
                    .with_note(
                        "write the per-site ordering argument in the audit, or remove the \
                         unexplained exemption",
                    ),
                );
            }
        }

        for (path, line) in &sections {
            if !ORDERING_ALLOWLIST.contains(&path.as_str()) {
                diags.push(
                    Diagnostic::error(
                        ID,
                        "DESIGN.md",
                        *line,
                        0,
                        format!(
                            "audit subsection for `{path}` has no matching ORDERING_ALLOWLIST \
                             entry"
                        ),
                    )
                    .with_note(
                        "add the entry to crates/analysis/src/passes/ordering.rs or retire the \
                         audit section",
                    ),
                );
                continue;
            }
            let alive = ctx
                .files
                .iter()
                .any(|f| covers(path, &f.rel) && has_atomics(f));
            if !alive {
                diags.push(
                    Diagnostic::error(
                        ID,
                        "DESIGN.md",
                        *line,
                        0,
                        format!("audit subsection for `{path}` covers no remaining atomics"),
                    )
                    .with_note(
                        "the audited code was removed or de-atomicized; retire this subsection \
                         and its ORDERING_ALLOWLIST entry together",
                    ),
                );
            }
        }
        diags
    }
}
