//! `seqcst-ban`: no sequential consistency anywhere, allowlist or not.
//!
//! The correctness argument (DESIGN.md §8) never needs `SeqCst`: every
//! property rests on per-cell coherence plus fork/join synchronization.
//! A `SeqCst` appearing anywhere means someone is patching over a race
//! they don't understand — and paying full fences for it. Banned as an
//! identifier token, so a mention in a comment or a string (this file's
//! own doc comment, say) is invisible; the predecessor line scanner
//! would have flagged a `SeqCst` inside a block comment.

use crate::diag::Diagnostic;
use crate::pass::{Context, Pass};

/// Pass id.
pub const ID: &str = "seqcst-ban";

/// See module docs.
pub struct SeqCstBan;

impl Pass for SeqCstBan {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "Ordering::SeqCst is banned workspace-wide (no property needs sequential consistency)"
    }

    fn run(&self, ctx: &Context) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for f in &ctx.files {
            for t in &f.tokens {
                if t.is_ident(&f.text, "SeqCst") {
                    diags.push(
                        Diagnostic::error(
                            ID,
                            &f.rel,
                            t.line,
                            t.col,
                            "Ordering::SeqCst is banned: no property of the algorithm \
                             requires sequential consistency",
                        )
                        .with_note("see DESIGN.md section 8, memory-ordering audit"),
                    );
                }
            }
        }
        diags
    }
}
