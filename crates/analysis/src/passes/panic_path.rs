//! `panic-path`: the request decode/apply/recovery paths are total
//! functions — no panics reachable from wire or disk bytes.
//!
//! PR 4's headline claim is that `recover()` is a total function and the
//! protocol decoder never panics on malformed frames. This pass turns
//! that claim from a review discipline into a gate over the files that
//! handle attacker-controlled bytes ([`PANIC_PATH_FILES`]):
//!
//! - banned identifiers: `unwrap`, `unwrap_err`, `expect`, `expect_err`,
//!   `panic`, `unreachable`, `todo`, `unimplemented` (method or macro —
//!   the token is the same);
//! - banned indexing: `expr[…]` can panic on an out-of-range index, and
//!   in these files indices routinely derive from wire data. A `[` whose
//!   preceding code token is an identifier, `)`, `]`, or `?` is an index
//!   expression (array literals, attributes, and types are preceded by
//!   other tokens and macro invocations by `!`). Keywords that legally
//!   precede a slice type or array literal (`mut`, `dyn`, `in`, …) are
//!   excluded from the identifier rule.
//!
//! `assert!`-family macros are deliberately **not** banned: `debug_assert`
//! is compiled out of release builds, and a release `assert` in these
//! files would be caught as a review question, not silently. `#[cfg(test)]`
//! items are exempt — tests panic on purpose.
//!
//! A site that is genuinely infallible (say, `try_into` on a slice whose
//! length the previous line checked) is allowlisted **in place** with a
//! `// PANIC-OK: <why>` comment on the same line or the comment block
//! directly above. The justification travels with the code; deleting the
//! bounds check without deleting the comment is exactly the kind of
//! drift review catches, and the comment makes the audit greppable.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::pass::{Context, Pass};

/// Pass id.
pub const ID: &str = "panic-path";

/// Files on the wire/disk byte path. Request framing and decode
/// (`protocol.rs`), WAL append/recovery (`wal.rs`), the ingest queue
/// between them (`ingest.rs`), the shard router front-end plus its
/// boundary-edge log (`router.rs`, `boundary.rs`), which parse the same
/// wire frames and their own on-disk record format, and the failure
/// domain that must stay total precisely when things are going wrong:
/// the health machine (`health.rs`) and the park log, which replays
/// arbitrary post-crash disk bytes (`park.rs`).
pub const PANIC_PATH_FILES: &[&str] = &[
    "crates/serve/src/protocol.rs",
    "crates/serve/src/wal.rs",
    "crates/serve/src/ingest.rs",
    "crates/shard/src/router.rs",
    "crates/shard/src/boundary.rs",
    "crates/shard/src/health.rs",
    "crates/shard/src/park.rs",
];

/// Identifiers that panic (as methods or macro names).
const BANNED_IDENTS: &[&str] = &[
    "unwrap",
    "unwrap_err",
    "expect",
    "expect_err",
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
];

/// The in-place justification marker.
pub const MARKER: &str = "PANIC-OK:";

/// Keywords that can directly precede a `[` that is a slice type or an
/// array literal rather than an index expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "mut", "dyn", "impl", "in", "as", "return", "break", "else", "const",
];

/// See module docs.
pub struct PanicPath;

impl Pass for PanicPath {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "no unwrap/expect/panic!/indexing on the request decode/apply/recovery paths (PANIC-OK: to allowlist)"
    }

    fn run(&self, ctx: &Context) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for f in &ctx.files {
            if !PANIC_PATH_FILES.contains(&f.rel.as_str()) {
                continue;
            }
            let test_ranges = f.test_line_ranges();
            let in_tests = |line: usize| test_ranges.iter().any(|&(s, e)| line >= s && line <= e);
            let justified = |line: usize| {
                f.line_has_marker(line, MARKER) || f.block_above_has_marker(line, &[MARKER])
            };

            for (i, t) in f.tokens.iter().enumerate() {
                if t.is_comment() || in_tests(t.line) {
                    continue;
                }
                if t.kind == TokenKind::Ident {
                    let text = f.text_of(t);
                    if BANNED_IDENTS.contains(&text) && !justified(t.line) {
                        diags.push(
                            Diagnostic::error(
                                ID,
                                &f.rel,
                                t.line,
                                t.col,
                                format!(
                                    "`{text}` on the request/recovery path can panic on \
                                     malformed input"
                                ),
                            )
                            .with_note(
                                "return a typed error instead, or justify the site with a \
                                 `// PANIC-OK: <why this cannot fire>` comment",
                            ),
                        );
                    }
                } else if t.is_punct(&f.text, '[') {
                    let is_index = f
                        .prev_code(i)
                        .map(|j| {
                            let p = &f.tokens[j];
                            (p.kind == TokenKind::Ident
                                && !NON_INDEX_KEYWORDS.contains(&f.text_of(p)))
                                || p.is_punct(&f.text, ')')
                                || p.is_punct(&f.text, ']')
                                || p.is_punct(&f.text, '?')
                        })
                        .unwrap_or(false);
                    if is_index && !justified(t.line) {
                        diags.push(
                            Diagnostic::error(
                                ID,
                                &f.rel,
                                t.line,
                                t.col,
                                "slice/array indexing on the request/recovery path can panic \
                                 on out-of-range wire data",
                            )
                            .with_note(
                                "use `get`/`chunks_exact`/pattern matching, or justify with \
                                 `// PANIC-OK: <why the index is in range>`",
                            ),
                        );
                    }
                }
            }
        }
        diags
    }
}
