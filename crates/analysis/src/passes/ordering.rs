//! `ordering-allowlist`: atomic memory orderings appear only in audited
//! files.
//!
//! Every file that spells `Ordering::Relaxed` (or any other atomic
//! ordering) must be covered by DESIGN.md §8's memory-ordering audit,
//! which [`ORDERING_ALLOWLIST`] mirrors. Adding an atomic site anywhere
//! else fails the battery until both the audit and the allowlist are
//! extended — "sprinkle an atomic somewhere" stays a reviewed decision.
//! The companion `audit-drift` pass checks the converse direction (the
//! audit document itself cannot go stale).
//!
//! `std::cmp::Ordering`'s variants (`Less`/`Equal`/`Greater`) do not
//! collide with the atomic variant names, so comparison code is out of
//! scope by construction.

use crate::diag::Diagnostic;
use crate::pass::{Context, Pass, Pat};

/// Pass id.
pub const ID: &str = "ordering-allowlist";

/// Files (by `/`-normalized path, or directory prefix ending in `/`)
/// where atomic orderings are allowed. Each entry must have a matching
/// subsection in DESIGN.md §8 "Memory-ordering audit" — the `audit-drift`
/// pass enforces that correspondence mechanically.
pub const ORDERING_ALLOWLIST: &[&str] = &[
    // The parent array: the audit's centerpiece (Relaxed loads/stores/CAS).
    "crates/core/src/parents.rs",
    // Per-thread counter buffers aggregated after the parallel phase.
    "crates/core/src/instrument.rs",
    // CSR scatter cursors (fetch_add slot claiming).
    "crates/graph/src/builder.rs",
    // DisjointWriter's tests replay the builder's claim protocol.
    "crates/graph/src/disjoint.rs",
    // Baseline algorithms (SV, parallel UF, BFS, label propagation) use
    // atomics as published; they are comparison subjects, not the
    // contribution under audit.
    "crates/baselines/src/",
    // Observability: sharded Relaxed statistics counters, the registry,
    // and the flight-recorder seqlock ring.
    "crates/obs/src/",
    // Serving runtime: Relaxed service statistics and the shutdown flag;
    // all cross-thread hand-off goes through Mutex/Condvar/RwLock.
    "crates/serve/src/",
    // Shard router: the Relaxed shutdown latch; every other piece of
    // shared router state (boundary forest, composite cache, backends)
    // is behind a Mutex.
    "crates/shard/src/",
];

/// Atomic-ordering variant names (including the banned one — a SeqCst
/// outside the allowlist is two findings, one per rule).
pub const ATOMIC_ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Whether `rel` is covered by the allowlist.
pub fn allowlisted(rel: &str) -> bool {
    ORDERING_ALLOWLIST
        .iter()
        .any(|entry| rel == *entry || (entry.ends_with('/') && rel.starts_with(entry)))
}

/// See module docs.
pub struct OrderingAllowlist;

impl Pass for OrderingAllowlist {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "atomic memory orderings (`Ordering::*`) only in files covered by DESIGN.md section 8"
    }

    fn run(&self, ctx: &Context) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        for f in &ctx.files {
            if allowlisted(&f.rel) {
                continue;
            }
            for i in 0..f.tokens.len() {
                for variant in ATOMIC_ORDERINGS {
                    if f.match_seq(
                        i,
                        &[
                            Pat::Id("Ordering"),
                            Pat::P(':'),
                            Pat::P(':'),
                            Pat::Id(variant),
                        ],
                    )
                    .is_some()
                    {
                        let t = &f.tokens[i];
                        diags.push(
                            Diagnostic::error(
                                ID,
                                &f.rel,
                                t.line,
                                t.col,
                                format!(
                                    "atomic memory ordering `Ordering::{variant}` outside the \
                                     audited allowlist"
                                ),
                            )
                            .with_note(
                                "add the site to DESIGN.md's memory-ordering audit (section 8) \
                                 and to ORDERING_ALLOWLIST in \
                                 crates/analysis/src/passes/ordering.rs",
                            ),
                        );
                    }
                }
            }
        }
        diags
    }
}
