//! `stage-doc`: the request-tracing stage taxonomy and the DESIGN.md
//! §16 stage table agree name-for-name.
//!
//! The tracing subsystem's only human-facing vocabulary is the stage
//! tag (`router_request`, `wal_fsync`, …): it labels every span in
//! `afforest trace` output, every slow-log line, and every per-stage
//! self-time row. The tags are declared once — the `STAGE_NAMES` array
//! in [`REQTRACE_FILE`] — and documented once, in the DESIGN.md
//! "Request tracing" section's stage table. A tag added to the code but
//! not the table (or renamed on one side only) would ship spans nobody
//! can look up. This pass cross-checks two surfaces:
//!
//! 1. **Declarations** — every string literal in the `STAGE_NAMES`
//!    array. Names must be unique, non-empty snake_case.
//! 2. **The DESIGN.md stage table** — rows of the form
//!    `` | `stage_name` | … `` inside the "Request tracing" section
//!    must be a bijection with the declarations.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::pass::{Context, Pass};
use std::collections::BTreeMap;

/// Pass id.
pub const ID: &str = "stage-doc";

/// Where the stage taxonomy is declared.
pub const REQTRACE_FILE: &str = "crates/obs/src/reqtrace.rs";

/// The DESIGN.md heading that opens the stage documentation; the table
/// must appear between it and the next same-level heading.
pub const SECTION_MARKER: &str = "Request tracing";

/// The `STAGE_NAMES` string literals: `(name, line)` in declaration
/// order. Collected by walking tokens from the `STAGE_NAMES` identifier
/// to the closing `]` of its array initializer.
pub fn declared_stages(f: &crate::pass::SourceFile) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let Some(start) = (0..f.tokens.len()).find(|&i| {
        f.tokens[i].kind == TokenKind::Ident && f.text_of(&f.tokens[i]) == "STAGE_NAMES"
    }) else {
        return out;
    };
    // Skip the type annotation (`: [&str; STAGES] =`) by walking to the
    // `=`, then collect strings until the initializer's `]`.
    let mut i = start;
    while i < f.tokens.len() && !f.tokens[i].is_punct(&f.text, '=') {
        i += 1;
    }
    let mut depth = 0usize;
    while i < f.tokens.len() {
        let t = &f.tokens[i];
        if t.is_punct(&f.text, '[') {
            depth += 1;
        } else if t.is_punct(&f.text, ']') {
            if depth <= 1 {
                break;
            }
            depth -= 1;
        } else if depth > 0 && t.kind == TokenKind::Str {
            let name = f.text_of(t).trim_matches('"').to_string();
            out.push((name, t.line));
        }
        i += 1;
    }
    out
}

/// Stage table rows in the document's "Request tracing" section:
/// `(name, line)` for every `` | `stage_name` | … `` markdown row
/// between the section heading and the next same-level heading.
pub fn table_rows(doc: &str) -> Vec<(String, usize)> {
    let mut out = Vec::new();
    let mut in_section = false;
    for (idx, line) in doc.lines().enumerate() {
        if let Some(rest) = line.strip_prefix("## ") {
            in_section = rest.contains(SECTION_MARKER);
            continue;
        }
        if !in_section {
            continue;
        }
        let mut cells = line.split('|').map(str::trim);
        let Some("") = cells.next() else { continue };
        let Some(name_cell) = cells.next() else {
            continue;
        };
        let name = name_cell.trim_matches('`');
        if name_cell == name || name.is_empty() {
            continue; // not backticked: a header or separator row
        }
        if !name
            .chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        {
            continue; // some other table in the section (flags, paths, …)
        }
        out.push((name.to_string(), idx + 1));
    }
    out
}

/// See module docs.
pub struct StageDoc;

impl Pass for StageDoc {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "the STAGE_NAMES tracing taxonomy and the DESIGN.md stage table agree name-for-name"
    }

    fn run(&self, ctx: &Context) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let Some(f) = ctx.file(REQTRACE_FILE) else {
            return diags; // nothing to check in trees without the obs crate
        };

        // 1. Declarations.
        let stages = declared_stages(f);
        if stages.is_empty() {
            return diags; // no taxonomy declared (or the array moved — the
                          // smoke test in tests/battery.rs pins the path)
        }
        let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
        for (name, line) in &stages {
            if let Some(prev) = seen.insert(name, *line) {
                diags.push(Diagnostic::error(
                    ID,
                    REQTRACE_FILE,
                    *line,
                    0,
                    format!("stage tag \"{name}\" is declared twice (first on line {prev})"),
                ));
            }
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
            {
                diags.push(Diagnostic::error(
                    ID,
                    REQTRACE_FILE,
                    *line,
                    0,
                    format!("stage tag \"{name}\" is not snake_case"),
                ));
            }
        }

        // 2. The DESIGN.md stage table.
        let Some(design) = ctx.docs.get("DESIGN.md") else {
            diags.push(
                Diagnostic::error(
                    ID,
                    "DESIGN.md",
                    0,
                    0,
                    "DESIGN.md is missing, so the tracing stage table cannot be checked",
                )
                .with_note(format!(
                    "the \"{SECTION_MARKER}\" section must carry a `| \\`stage\\` | … |` table \
                     mirroring STAGE_NAMES"
                )),
            );
            return diags;
        };
        let rows = table_rows(design);
        if rows.is_empty() {
            diags.push(
                Diagnostic::error(
                    ID,
                    "DESIGN.md",
                    0,
                    0,
                    format!("no stage table found in DESIGN.md's \"{SECTION_MARKER}\" section"),
                )
                .with_note(format!(
                    "every literal in {REQTRACE_FILE}'s STAGE_NAMES must appear as a \
                     `| \\`stage\\` | … |` row"
                )),
            );
            return diags;
        }
        let documented: BTreeMap<&str, usize> =
            rows.iter().map(|(n, l)| (n.as_str(), *l)).collect();
        for (name, line) in &rows {
            if !seen.contains_key(name.as_str()) {
                diags.push(Diagnostic::error(
                    ID,
                    "DESIGN.md",
                    *line,
                    0,
                    format!(
                        "stage table names `{name}`, which is not in {REQTRACE_FILE}'s \
                         STAGE_NAMES"
                    ),
                ));
            }
        }
        for (name, line) in &stages {
            if !documented.contains_key(name.as_str()) {
                diags.push(
                    Diagnostic::error(
                        ID,
                        REQTRACE_FILE,
                        *line,
                        0,
                        format!(
                            "stage tag \"{name}\" is missing from DESIGN.md's \
                             \"{SECTION_MARKER}\" stage table"
                        ),
                    )
                    .with_note(
                        "spans tagged with an undocumented stage cannot be looked up by \
                         whoever reads the trace",
                    ),
                );
            }
        }
        diags
    }
}
