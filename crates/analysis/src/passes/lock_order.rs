//! `lock-order`: the static lock-acquisition graph of the serving stack
//! is acyclic and every edge is a reviewed decision.
//!
//! The serving runtime's concurrency story (DESIGN.md §8, §10) is "all
//! cross-thread hand-off via `Mutex`/`Condvar`/`RwLock`, atomics are
//! side-band only". Blocking primitives trade data races for deadlocks,
//! and the deadlock-freedom argument is a lock *order*: if every thread
//! acquires locks consistently with one partial order, no cycle of
//! waiters can form. This pass extracts that order from the source of
//! `crates/serve` and `crates/obs` and enforces it:
//!
//! 1. **Lock discovery** — every field or static declared as `Mutex<…>`,
//!    `RwLock<…>`, or `Condvar` becomes a lock identity
//!    `<file_stem>::<name>` (e.g. `ingest::state`, `recorder::GATE`).
//! 2. **Acquisition sites** — `x.lock()`, and zero-argument `x.read()` /
//!    `x.write()` where `x` is a discovered lock (zero-argument, so
//!    `io::Read::read(buf)` never aliases). A call through a
//!    lock-returning accessor (`registry().lock()`) resolves via the
//!    accessor's body. `Condvar::wait` sites are recognized but create
//!    no edges: waiting releases and reacquires the same mutex.
//! 3. **Nesting evidence** — within one function, an acquisition while a
//!    previous guard is still live adds edge `held → acquired`. Guard
//!    liveness is tracked through `let` bindings (released at `drop(g)`
//!    or end of the binding's block) and through temporaries (released
//!    at the end of the statement). Calling a function that itself
//!    acquires locks, while holding a guard, adds the callee's direct
//!    acquisitions (one level of expansion — enough to see through
//!    `lock_state()`-style private accessors).
//! 4. **Verdicts** — any cycle in the edge set is an error; any edge not
//!    in [`LOCK_ORDER_EDGES`] is an error (new nesting must be added to
//!    the allowlist *and* the DESIGN.md §13 table); any allowlist entry
//!    with no remaining evidence is an error (stale discipline reads as
//!    stronger than it is).
//!
//! Known approximations, chosen to over-approximate holding (false
//! edges are reviewable; missed edges are not): a closure defined while
//! a guard is held is analyzed as if it ran inline, and a guard passed
//! *into* a function as a parameter is not tracked inside the callee.

use crate::diag::Diagnostic;
use crate::lexer::TokenKind;
use crate::pass::{Context, Pass, Pat, SourceFile};
use std::collections::{BTreeMap, BTreeSet};

/// Pass id.
pub const ID: &str = "lock-order";

/// Directory prefixes whose locks participate in the graph.
pub const LOCK_SCOPE: &[&str] = &["crates/serve/src/", "crates/obs/src/", "crates/shard/src/"];

/// The reviewed acquisition order: `(held, then_acquired, why)`. Must
/// mirror the table in DESIGN.md §13.
pub const LOCK_ORDER_EDGES: &[(&str, &str, &str)] = &[
    (
        "recorder::GATE",
        "recorder::STATE",
        "session begin/finish installs and tears down recorder state while holding the session gate",
    ),
    (
        "ingest::state",
        "engine::map",
        "over-approximation: bare-name call expansion reads `s.edges.len()` (VecDeque) as \
         `EngineRegistry::len`; no real path holds the ingest queue while touching the \
         registry, and the phantom order queue -> map is acyclic either way",
    ),
    (
        "registry::REGISTRY",
        "engine::map",
        "over-approximation: bare-name call expansion reads `Counter::get`/`Gauge::get` in \
         the snapshot loop as `EngineRegistry::get`; the metric registry never touches the \
         engine map, and the phantom order registry -> map is acyclic either way",
    ),
    (
        "reqtrace::GATE",
        "recorder::GATE",
        "over-approximation: bare-name call expansion reads `RootSpan::begin`/`StageSpan::begin` \
         under the reqtrace test gate as the flight recorder's session `begin`; the tracing \
         runtime never touches the recorder, and the phantom order test-gate -> recorder is \
         acyclic either way",
    ),
];

/// A discovered lock: identity, declaring file, line, primitive kind.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LockDecl {
    /// `<file_stem>::<ident>`.
    pub id: String,
    /// Declaring file (rel path).
    pub file: String,
    /// 1-based declaration line.
    pub line: usize,
    /// `Mutex`, `RwLock`, or `Condvar`.
    pub kind: &'static str,
}

/// One nesting observation: while `held` was live, `acquired` was taken.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub struct LockEdge {
    /// The lock already held.
    pub held: String,
    /// The lock acquired under it.
    pub acquired: String,
    /// Where the inner acquisition happened.
    pub file: String,
    /// 1-based line of the inner acquisition.
    pub line: usize,
}

/// Finds `name: …Mutex<` / `name: …RwLock<` / `name: Condvar` field and
/// static declarations.
pub fn find_locks(f: &SourceFile) -> Vec<LockDecl> {
    let stem = f
        .rel
        .rsplit('/')
        .next()
        .unwrap_or(&f.rel)
        .trim_end_matches(".rs");
    let mut locks = Vec::new();
    for (i, t) in f.tokens.iter().enumerate() {
        let kind = match f.text_of(t) {
            "Mutex" if t.kind == TokenKind::Ident => "Mutex",
            "RwLock" if t.kind == TokenKind::Ident => "RwLock",
            "Condvar" if t.kind == TokenKind::Ident => "Condvar",
            _ => continue,
        };
        // Walk back through type-position tokens to the `name:` that
        // declares this field/static. Anything else (use statements,
        // return types, turbofish) fails the walk.
        let mut j = i;
        let name = loop {
            let Some(p) = f.prev_code(j) else { break None };
            let pt = &f.tokens[p];
            if pt.is_punct(&f.text, ':') {
                let Some(q) = f.prev_code(p) else { break None };
                let qt = &f.tokens[q];
                let q_prev_is_colon = f
                    .prev_code(q)
                    .is_some_and(|r| f.tokens[r].is_punct(&f.text, ':'));
                if qt.kind == TokenKind::Ident && !q_prev_is_colon {
                    // `name :` — but `path::Mutex` also walks through
                    // `::`; a path segment's `:` is preceded by `:`.
                    let p_prev = f.prev_code(p);
                    if p_prev == Some(q) {
                        break Some((f.text_of(qt).to_string(), qt.line));
                    }
                }
                j = p;
            } else if pt.kind == TokenKind::Ident
                || pt.kind == TokenKind::Lifetime
                || pt.is_punct(&f.text, '<')
                || pt.is_punct(&f.text, '&')
            {
                j = p;
            } else {
                break None;
            }
        };
        if let Some((name, line)) = name {
            // Keywords reachable by the walk (`static X: Mutex` walks to
            // `X`; `use std::sync::Mutex` walks past `use` and fails at
            // the preceding `;`/start — but guard against `mut`, `let`).
            if matches!(name.as_str(), "let" | "mut" | "static" | "const" | "pub") {
                continue;
            }
            locks.push(LockDecl {
                id: format!("{stem}::{name}"),
                file: f.rel.clone(),
                line,
                kind,
            });
        }
    }
    locks
}

/// A function body: name and raw token range (body braces inclusive).
struct FnBody {
    name: String,
    /// Raw token index range of the signature start (the `fn` token).
    sig_start: usize,
    /// Raw token index of the opening `{` (None for trait/extern decls).
    body_open: Option<usize>,
    /// Raw token index one past the matching `}`.
    body_end: usize,
}

/// Splits a file into `fn` items (methods included; nested items end up
/// inside their parent's range, which is the conservative direction).
fn find_fns(f: &SourceFile) -> Vec<FnBody> {
    let mut fns = Vec::new();
    let toks = &f.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_ident(&f.text, "fn") {
            continue;
        }
        let Some(ni) = f.next_code(i + 1) else {
            continue;
        };
        if toks[ni].kind != TokenKind::Ident {
            continue;
        }
        let name = f.text_of(&toks[ni]).to_string();
        // Find the body `{`: first `{` before a `;` at angle/paren depth 0.
        let mut k = ni + 1;
        let mut paren = 0i32;
        let mut body_open = None;
        while k < toks.len() {
            let t = &toks[k];
            if t.is_comment() {
                k += 1;
                continue;
            }
            if t.is_punct(&f.text, '(') || t.is_punct(&f.text, '[') {
                paren += 1;
            } else if t.is_punct(&f.text, ')') || t.is_punct(&f.text, ']') {
                paren -= 1;
            } else if paren == 0 && t.is_punct(&f.text, ';') {
                break;
            } else if paren == 0 && t.is_punct(&f.text, '{') {
                body_open = Some(k);
                break;
            }
            k += 1;
        }
        let Some(open) = body_open else {
            continue;
        };
        // Matching close brace.
        let mut depth = 0usize;
        let mut end = toks.len();
        let mut m = open;
        while m < toks.len() {
            if toks[m].is_punct(&f.text, '{') {
                depth += 1;
            } else if toks[m].is_punct(&f.text, '}') {
                depth -= 1;
                if depth == 0 {
                    end = m + 1;
                    break;
                }
            }
            m += 1;
        }
        fns.push(FnBody {
            name,
            sig_start: i,
            body_open: Some(open),
            body_end: end,
        });
    }
    fns
}

/// Per-function facts gathered in the first sweep.
#[derive(Default)]
struct FnFacts {
    /// Locks acquired directly in the body (by lock id).
    acquires: BTreeSet<String>,
    /// Whether the return type mentions `Mutex`/`RwLock` (an accessor
    /// like `registry()` whose *call* is a lock handle).
    returns_lock: Option<String>,
}

/// An acquisition event found while scanning a body.
struct Acq {
    lock: String,
    tok: usize,
    line: usize,
    /// Raw token index one past the call's closing `)` — where the
    /// guard-liveness scan of the statement's continuation starts.
    after_call: usize,
}

/// Scans a function body for direct acquisitions. `locks` maps bare
/// declaration names to lock ids (per scope).
fn direct_acquisitions(
    f: &SourceFile,
    body: (usize, usize),
    locks: &BTreeMap<String, String>,
    accessors: &BTreeMap<String, String>,
) -> Vec<Acq> {
    let mut out = Vec::new();
    let (start, end) = body;
    for i in start..end {
        let t = &f.tokens[i];
        if t.is_comment() || t.kind != TokenKind::Ident {
            continue;
        }
        let method = f.text_of(t);
        let zero_arg_needed = matches!(method, "read" | "write");
        if !matches!(method, "lock" | "read" | "write") {
            continue;
        }
        // Shape: `<recv> . method ( )` — `(` then `)` for read/write.
        let Some(dot) = f.prev_code(i) else { continue };
        if !f.tokens[dot].is_punct(&f.text, '.') {
            continue;
        }
        let Some(open) = f.next_code(i + 1) else {
            continue;
        };
        if !f.tokens[open].is_punct(&f.text, '(') {
            continue;
        }
        if zero_arg_needed {
            match f.next_code(open + 1) {
                Some(c) if f.tokens[c].is_punct(&f.text, ')') => {}
                _ => continue,
            }
        }
        // Receiver: ident directly before the dot, or `accessor ( )`.
        let Some(recv) = f.prev_code(dot) else {
            continue;
        };
        let rt = &f.tokens[recv];
        let lock_id = if rt.kind == TokenKind::Ident {
            locks.get(f.text_of(rt)).cloned()
        } else if rt.is_punct(&f.text, ')') {
            // `accessor().lock()`: walk `( )` back to the callee ident.
            f.prev_code(recv)
                .filter(|&p| f.tokens[p].is_punct(&f.text, '('))
                .and_then(|p| f.prev_code(p))
                .filter(|&c| f.tokens[c].kind == TokenKind::Ident)
                .and_then(|c| accessors.get(f.text_of(&f.tokens[c])).cloned())
        } else {
            None
        };
        if let Some(lock) = lock_id {
            // Find the call's closing paren (arguments are empty or a
            // closure for `lock`; balance parens regardless).
            let mut depth = 0i32;
            let mut p = open;
            while p < end {
                if f.tokens[p].is_punct(&f.text, '(') {
                    depth += 1;
                } else if f.tokens[p].is_punct(&f.text, ')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                p += 1;
            }
            out.push(Acq {
                lock,
                tok: i,
                line: t.line,
                after_call: p + 1,
            });
        }
    }
    out
}

/// Whether the tokens after an acquisition are only the poison-recovery
/// tail this codebase uses (`.unwrap_or_else(|e| e.into_inner())`,
/// `.unwrap()`, `.expect("…")`) followed by `;`. If so, a `let` binding
/// before the receiver binds the *guard*; anything else (`.edges.len()`)
/// means the guard is a temporary that dies at the statement's end.
fn binds_guard(f: &SourceFile, mut k: usize, end: usize) -> bool {
    while k < end {
        let Some(i) = f.next_code(k) else {
            return false;
        };
        let t = &f.tokens[i];
        if t.is_punct(&f.text, ';') {
            return true;
        }
        if t.is_punct(&f.text, '.') {
            let Some(m) = f.next_code(i + 1) else {
                return false;
            };
            if !matches!(
                f.text_of(&f.tokens[m]),
                "unwrap_or_else" | "unwrap" | "expect"
            ) {
                return false;
            }
            // Skip the call's argument list.
            let Some(open) = f.next_code(m + 1) else {
                return false;
            };
            if !f.tokens[open].is_punct(&f.text, '(') {
                return false;
            }
            let mut depth = 0i32;
            let mut p = open;
            while p < end {
                if f.tokens[p].is_punct(&f.text, '(') {
                    depth += 1;
                } else if f.tokens[p].is_punct(&f.text, ')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                p += 1;
            }
            k = p + 1;
        } else {
            return false;
        }
    }
    false
}

/// A live guard while scanning.
struct Held {
    lock: String,
    /// Brace depth at acquisition (released when depth drops below).
    depth: usize,
    /// Binding ident, if the guard is `let`-bound (released by `drop(g)`).
    binding: Option<String>,
    /// For temporaries: released at the next `;` at `depth`.
    temporary: bool,
}

/// See module docs.
pub struct LockOrder;

impl Pass for LockOrder {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "lock acquisition graph over serve+obs is acyclic and matches the reviewed edge allowlist"
    }

    fn run(&self, ctx: &Context) -> Vec<Diagnostic> {
        let in_scope: Vec<&SourceFile> = ctx
            .files
            .iter()
            .filter(|f| LOCK_SCOPE.iter().any(|p| f.rel.starts_with(p)))
            .collect();

        // 1. Lock discovery, per file and global (bare name -> id).
        let mut locks_by_file: BTreeMap<&str, BTreeMap<String, String>> = BTreeMap::new();
        let mut condvars: BTreeSet<String> = BTreeSet::new();
        for f in &in_scope {
            let mut map = BTreeMap::new();
            for l in find_locks(f) {
                if l.kind == "Condvar" {
                    condvars.insert(l.id.clone());
                }
                map.insert(l.id.rsplit("::").next().unwrap_or("").to_string(), l.id);
            }
            locks_by_file.insert(f.rel.as_str(), map);
        }

        // 2. First sweep: per-function facts (direct acquisitions and
        // lock-returning accessors), keyed by bare fn name across the
        // scope (collisions merge conservatively).
        let mut facts: BTreeMap<String, FnFacts> = BTreeMap::new();
        let mut accessors: BTreeMap<String, String> = BTreeMap::new();
        for sweep in 0..2 {
            for f in &in_scope {
                let locks = &locks_by_file[f.rel.as_str()];
                for func in find_fns(f) {
                    let Some(open) = func.body_open else { continue };
                    // Accessor detection: return type names Mutex/RwLock
                    // and the body mentions exactly one known lock.
                    let sig_mentions_lock = (func.sig_start..open).any(|k| {
                        let t = &f.tokens[k];
                        !t.is_comment()
                            && t.kind == TokenKind::Ident
                            && matches!(f.text_of(t), "Mutex" | "RwLock")
                    });
                    if sig_mentions_lock {
                        let mentioned: BTreeSet<&String> = (open..func.body_end)
                            .filter_map(|k| {
                                let t = &f.tokens[k];
                                (!t.is_comment() && t.kind == TokenKind::Ident)
                                    .then(|| locks.get(f.text_of(t)))
                                    .flatten()
                            })
                            .collect();
                        if mentioned.len() == 1 {
                            let id = (*mentioned.iter().next().expect("len checked")).clone();
                            accessors.insert(func.name.clone(), id);
                        }
                    }
                    if sweep == 1 {
                        let acqs = direct_acquisitions(f, (open, func.body_end), locks, &accessors);
                        let entry = facts.entry(func.name.clone()).or_default();
                        for a in acqs {
                            entry.acquires.insert(a.lock);
                        }
                        if let Some(id) = accessors.get(&func.name) {
                            entry.returns_lock = Some(id.clone());
                        }
                    }
                }
            }
        }

        // 3. Second sweep: nesting evidence.
        let mut edges: BTreeSet<LockEdge> = BTreeSet::new();
        for f in &in_scope {
            let locks = &locks_by_file[f.rel.as_str()];
            for func in find_fns(f) {
                let Some(open) = func.body_open else { continue };
                let acqs = direct_acquisitions(f, (open, func.body_end), locks, &accessors);
                let acq_at: BTreeMap<usize, &Acq> = acqs.iter().map(|a| (a.tok, a)).collect();
                let mut held: Vec<Held> = Vec::new();
                let mut depth = 0usize;
                let mut k = open;
                while k < func.body_end {
                    let t = &f.tokens[k];
                    if t.is_comment() {
                        k += 1;
                        continue;
                    }
                    if t.is_punct(&f.text, '{') {
                        depth += 1;
                    } else if t.is_punct(&f.text, '}') {
                        depth = depth.saturating_sub(1);
                        held.retain(|h| h.depth <= depth);
                    } else if t.is_punct(&f.text, ';') {
                        held.retain(|h| !(h.temporary && h.depth == depth));
                    } else if t.is_ident(&f.text, "drop") {
                        // `drop ( g )` releases a named guard.
                        if let Some(close) =
                            f.match_seq(k, &[Pat::Id("drop"), Pat::P('('), Pat::AnyId])
                        {
                            let g = f.text_of(&f.tokens[f.prev_code(close).unwrap_or(k)]);
                            held.retain(|h| h.binding.as_deref() != Some(g));
                        }
                    }
                    if let Some(a) = acq_at.get(&k) {
                        if condvars.contains(&a.lock) {
                            k += 1;
                            continue;
                        }
                        for h in &held {
                            if h.lock != a.lock {
                                edges.insert(LockEdge {
                                    held: h.lock.clone(),
                                    acquired: a.lock.clone(),
                                    file: f.rel.clone(),
                                    line: a.line,
                                });
                            }
                        }
                        // Binding shape decides how long the new guard
                        // lives; find the `let` before the statement.
                        let stmt_binds = binds_guard(f, a.after_call, func.body_end);
                        let binding = if stmt_binds {
                            // Walk back: `let [mut] g = <recv chain>`.
                            let mut b = None;
                            let mut p = k;
                            for _ in 0..12 {
                                match f.prev_code(p) {
                                    Some(q) => {
                                        if f.tokens[q].is_punct(&f.text, '=') {
                                            let id = f
                                                .prev_code(q)
                                                .filter(|&r| f.tokens[r].kind == TokenKind::Ident);
                                            if let Some(r) = id {
                                                let is_let_chain =
                                                    f.prev_code(r).is_some_and(|s| {
                                                        let st = &f.tokens[s];
                                                        st.is_ident(&f.text, "let")
                                                            || st.is_ident(&f.text, "mut")
                                                    });
                                                if is_let_chain {
                                                    b = Some(f.text_of(&f.tokens[r]).to_string());
                                                }
                                            }
                                            break;
                                        }
                                        p = q;
                                    }
                                    None => break,
                                }
                            }
                            b
                        } else {
                            None
                        };
                        held.push(Held {
                            lock: a.lock.clone(),
                            depth,
                            binding: binding.clone(),
                            temporary: !stmt_binds || binding.is_none(),
                        });
                    }
                    // One-level call expansion: `callee(` while holding.
                    if t.kind == TokenKind::Ident && !held.is_empty() {
                        let callee = f.text_of(t);
                        let is_call = f
                            .next_code(k + 1)
                            .is_some_and(|n| f.tokens[n].is_punct(&f.text, '('));
                        let is_method = f
                            .prev_code(k)
                            .is_some_and(|p| f.tokens[p].is_punct(&f.text, '.'));
                        // Methods count too (`shared.ingest.next_batch(…)`).
                        let _ = is_method;
                        if is_call {
                            if let Some(callee_facts) = facts.get(callee) {
                                for inner in &callee_facts.acquires {
                                    if condvars.contains(inner) {
                                        continue;
                                    }
                                    for h in &held {
                                        if &h.lock != inner {
                                            edges.insert(LockEdge {
                                                held: h.lock.clone(),
                                                acquired: inner.clone(),
                                                file: f.rel.clone(),
                                                line: t.line,
                                            });
                                        }
                                    }
                                }
                            }
                        }
                    }
                    k += 1;
                }
            }
        }

        // 4. Verdicts.
        let mut diags = Vec::new();
        let allow: BTreeSet<(&str, &str)> =
            LOCK_ORDER_EDGES.iter().map(|(a, b, _)| (*a, *b)).collect();
        let unique: BTreeSet<(String, String)> = edges
            .iter()
            .map(|e| (e.held.clone(), e.acquired.clone()))
            .collect();

        for e in &edges {
            if !allow.contains(&(e.held.as_str(), e.acquired.as_str())) {
                diags.push(
                    Diagnostic::error(
                        ID,
                        &e.file,
                        e.line,
                        0,
                        format!(
                            "new lock-order edge `{}` -> `{}`: a lock acquired while \
                             another is held",
                            e.held, e.acquired
                        ),
                    )
                    .with_note(
                        "if intentional, add the edge to LOCK_ORDER_EDGES in \
                         crates/analysis/src/passes/lock_order.rs and to the DESIGN.md \
                         section 13 table with a justification",
                    ),
                );
            }
        }
        for (a, b, _) in LOCK_ORDER_EDGES {
            if !unique.contains(&(a.to_string(), b.to_string())) {
                diags.push(
                    Diagnostic::error(
                        ID,
                        "crates/analysis/src/passes/lock_order.rs",
                        0,
                        0,
                        format!("allowlisted lock-order edge `{a}` -> `{b}` has no remaining evidence in the source"),
                    )
                    .with_note("remove the stale edge from LOCK_ORDER_EDGES and the DESIGN.md section 13 table"),
                );
            }
        }
        // Cycle check over the union of observed edges (allowlisted or
        // not — an allowlisted cycle would still deadlock).
        if let Some(cycle) = find_cycle(&unique) {
            diags.push(
                Diagnostic::error(
                    ID,
                    "crates/serve/src",
                    0,
                    0,
                    format!("lock acquisition graph contains a cycle: {}", cycle.join(" -> ")),
                )
                .with_note("two code paths acquire these locks in opposite orders; one must be inverted or merged"),
            );
        }
        diags
    }
}

/// Finds one cycle in the digraph, as the list of lock ids along it.
fn find_cycle(edges: &BTreeSet<(String, String)>) -> Option<Vec<String>> {
    let mut adj: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (a, b) in edges {
        adj.entry(a.as_str()).or_default().push(b.as_str());
    }
    // Colored DFS: 0 unvisited, 1 on stack, 2 done.
    let mut color: BTreeMap<&str, u8> = BTreeMap::new();
    let mut stack: Vec<&str> = Vec::new();

    fn dfs<'a>(
        node: &'a str,
        adj: &BTreeMap<&'a str, Vec<&'a str>>,
        color: &mut BTreeMap<&'a str, u8>,
        stack: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        color.insert(node, 1);
        stack.push(node);
        for &next in adj.get(node).into_iter().flatten() {
            match color.get(next).copied().unwrap_or(0) {
                0 => {
                    if let Some(c) = dfs(next, adj, color, stack) {
                        return Some(c);
                    }
                }
                1 => {
                    let from = stack.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<String> =
                        stack[from..].iter().map(|s| s.to_string()).collect();
                    cycle.push(next.to_string());
                    return Some(cycle);
                }
                _ => {}
            }
        }
        stack.pop();
        color.insert(node, 2);
        None
    }

    let nodes: Vec<&str> = adj.keys().copied().collect();
    for n in nodes {
        if color.get(n).copied().unwrap_or(0) == 0 {
            if let Some(c) = dfs(n, &adj, &mut color, &mut stack) {
                return Some(c);
            }
        }
    }
    None
}
