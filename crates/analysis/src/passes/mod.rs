//! The pass catalog. Order matters only for report readability: cheap
//! token-local rules first, then the structural analyzers, then the
//! documentation drift detectors.

pub mod audit;
pub mod lock_order;
pub mod metric_fixture;
pub mod opcode;
pub mod ordering;
pub mod panic_path;
pub mod safety;
pub mod seqcst;
pub mod stage_doc;

use crate::pass::Pass;

/// Every pass in the battery, in execution order.
pub fn all() -> Vec<Box<dyn Pass>> {
    vec![
        Box::new(safety::SafetyCoverage),
        Box::new(ordering::OrderingAllowlist),
        Box::new(seqcst::SeqCstBan),
        Box::new(metric_fixture::MetricFixture),
        Box::new(lock_order::LockOrder),
        Box::new(panic_path::PanicPath),
        Box::new(audit::AuditDrift),
        Box::new(opcode::OpcodeConsistency),
        Box::new(stage_doc::StageDoc),
    ]
}
