//! `metric-fixture`: every registry metric is a string literal named in
//! the exposition fixture.
//!
//! Two rules (DESIGN.md §12):
//!
//! 1. `registry::counter/gauge/histogram` (and the `labeled_*` family
//!    variants) must be called with a string literal — a computed name
//!    would dodge the coverage check below.
//! 2. Every such literal must appear as a `# TYPE <name> <kind>` line in
//!    the exposition fixture (`crates/serve/tests/fixtures/exposition.txt`),
//!    so a metric cannot be added without the exposition tests seeing it.
//!    The serve crate's `exposition_fixture` test checks the converse at
//!    runtime (every fixture line matches a live scrape).
//!
//! `crates/obs/` is exempt: the registry's own sources and tests register
//! scratch names that are not part of the service metric set.

use crate::diag::Diagnostic;
use crate::pass::{Context, Pass, Pat, SourceFile};

/// Pass id.
pub const ID: &str = "metric-fixture";

/// Registration functions whose first argument is a metric name. The
/// labelled variants take `(name, label_key, label_value)`, but the
/// family name is still the first argument, so the same scan applies.
const METRIC_FNS: &[&str] = &[
    "counter",
    "gauge",
    "histogram",
    "labeled_counter",
    "labeled_gauge",
];

/// Extracted registration sites: `(line, col, Some(name))` for literal
/// names, `(line, col, None)` for non-literal ones.
pub fn scan_metric_names(f: &SourceFile) -> Vec<(usize, usize, Option<String>)> {
    let mut out = Vec::new();
    for i in 0..f.tokens.len() {
        for call in METRIC_FNS {
            let Some(after_open) = f.match_seq(
                i,
                &[
                    Pat::Id("registry"),
                    Pat::P(':'),
                    Pat::P(':'),
                    Pat::Id(call),
                    Pat::P('('),
                ],
            ) else {
                continue;
            };
            let t = &f.tokens[i];
            match f.next_code(after_open) {
                Some(j) if f.tokens[j].kind == crate::lexer::TokenKind::Str => {
                    let lit = f.text_of(&f.tokens[j]);
                    // Strip the quotes (plain `"…"` literals only; metric
                    // names have no reason to be raw or byte strings).
                    let name = lit.trim_matches('"').to_string();
                    out.push((t.line, t.col, Some(name)));
                }
                _ => out.push((t.line, t.col, None)),
            }
        }
    }
    out
}

/// Metric names declared by the fixture's `# TYPE <name> <kind>` lines.
pub fn fixture_names(fixture: &str) -> Vec<&str> {
    fixture
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect()
}

/// See module docs.
pub struct MetricFixture;

impl Pass for MetricFixture {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "registry metric names are string literals covered by the exposition fixture"
    }

    fn run(&self, ctx: &Context) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        let fixture = ctx.docs.get(crate::METRIC_FIXTURE);
        let names = fixture.map(|f| fixture_names(f)).unwrap_or_default();
        let mut any_sites = false;

        for f in &ctx.files {
            if f.rel.starts_with("crates/obs/") {
                continue;
            }
            for (line, col, name) in scan_metric_names(f) {
                any_sites = true;
                match name {
                    None => diags.push(
                        Diagnostic::error(
                            ID,
                            &f.rel,
                            line,
                            col,
                            "registry metric registered with a non-literal name",
                        )
                        .with_note(format!(
                            "the fixture coverage check ({}) can only verify string literals",
                            crate::METRIC_FIXTURE
                        )),
                    ),
                    Some(name) if !names.contains(&name.as_str()) => diags.push(
                        Diagnostic::error(
                            ID,
                            &f.rel,
                            line,
                            col,
                            format!(
                                "metric `{name}` is registered here but absent from {}",
                                crate::METRIC_FIXTURE
                            ),
                        )
                        .with_note(
                            "regenerate the fixture (see the fixture's header) so the \
                             exposition tests cover it",
                        ),
                    ),
                    Some(_) => {}
                }
            }
        }

        if any_sites && fixture.is_none() {
            diags.push(Diagnostic::error(
                ID,
                crate::METRIC_FIXTURE,
                0,
                0,
                "metrics are registered but the exposition fixture is missing",
            ));
        }
        diags
    }
}
