//! `safety-coverage`: every `unsafe` in code position carries a
//! justification, and crate roots declare the matching hygiene attribute.
//!
//! Three rules:
//!
//! 1. An `unsafe` keyword token must have a `// SAFETY:` comment on the
//!    same line or in the contiguous comment/attribute block directly
//!    above (doc-comment `# Safety` sections count, covering `unsafe fn`
//!    declarations documented for their callers).
//! 2. A crate that contains `unsafe` code must declare
//!    `#![deny(unsafe_op_in_unsafe_fn)]` at its root, so unsafe
//!    operations inside unsafe fns still need their own block and
//!    justification.
//! 3. A crate that contains **no** unsafe code must declare
//!    `#![forbid(unsafe_code)]` at its root — the strongest statement
//!    available, and one this pass can then rely on staying true.
//!
//! Because the lexer is exact, `unsafe` inside a string literal or a
//! comment is invisible here — the predecessor line scanner got both
//! wrong (a string containing `"// SAFETY:"` could justify real unsafe
//! code on the same line).

use crate::diag::Diagnostic;
use crate::pass::{Context, Pass, Pat, SourceFile};
use std::collections::BTreeMap;

/// Pass id.
pub const ID: &str = "safety-coverage";

/// Markers that justify an `unsafe` token.
const MARKERS: &[&str] = &["SAFETY:", "# Safety"];

/// See module docs.
pub struct SafetyCoverage;

/// The crate key of a scanned file: `crates/<name>` for workspace
/// crates, `` (empty) for the root package's `src/`, `None` for files
/// outside any crate root this pass audits (`tests/`, `examples/` —
/// integration tests and examples are their own crate roots and carry no
/// unsafe in this workspace; the per-token rule still covers them).
fn crate_key(rel: &str) -> Option<String> {
    if let Some(rest) = rel.strip_prefix("crates/") {
        let name = rest.split('/').next()?;
        if rest.strip_prefix(name)?.starts_with("/src/") {
            return Some(format!("crates/{name}"));
        }
        return None;
    }
    if rel.starts_with("src/") {
        return Some(String::new());
    }
    None
}

/// Whether the crate root file declares an inner attribute invoking
/// `lint` on `arg`: `#![<lint>(<arg>)]`, e.g. `#![forbid(unsafe_code)]`.
fn has_inner_lint_attr(f: &SourceFile, lints: &[&str], arg: &str) -> bool {
    (0..f.tokens.len()).any(|i| {
        lints.iter().any(|l| {
            f.match_seq(
                i,
                &[
                    Pat::P('#'),
                    Pat::P('!'),
                    Pat::P('['),
                    Pat::Id(l),
                    Pat::P('('),
                    Pat::Id(arg),
                    Pat::P(')'),
                    Pat::P(']'),
                ],
            )
            .is_some()
        })
    })
}

impl Pass for SafetyCoverage {
    fn id(&self) -> &'static str {
        ID
    }

    fn description(&self) -> &'static str {
        "`unsafe` requires a SAFETY justification; crates declare forbid(unsafe_code) or deny(unsafe_op_in_unsafe_fn)"
    }

    fn run(&self, ctx: &Context) -> Vec<Diagnostic> {
        let mut diags = Vec::new();
        // crate key -> whether any file in it has code-position unsafe.
        let mut crate_unsafe: BTreeMap<String, bool> = BTreeMap::new();

        for f in &ctx.files {
            let mut file_has_unsafe = false;
            for t in &f.tokens {
                if !t.is_ident(&f.text, "unsafe") {
                    continue;
                }
                file_has_unsafe = true;
                let justified = MARKERS.iter().any(|m| f.line_has_marker(t.line, m))
                    || f.block_above_has_marker(t.line, MARKERS);
                if !justified {
                    diags.push(
                        Diagnostic::error(
                            ID,
                            &f.rel,
                            t.line,
                            t.col,
                            "`unsafe` without a `// SAFETY:` comment (same line or the \
                             comment block directly above)",
                        )
                        .with_note(
                            "doc-comment `# Safety` sections also count for `unsafe fn` \
                             declarations",
                        ),
                    );
                }
            }
            if let Some(key) = crate_key(&f.rel) {
                *crate_unsafe.entry(key).or_insert(false) |= file_has_unsafe;
            }
        }

        // Crate-root hygiene attributes.
        for (key, has_unsafe) in crate_unsafe {
            let root_rel = if key.is_empty() {
                "src/lib.rs".to_string()
            } else {
                let lib = format!("{key}/src/lib.rs");
                if ctx.file(&lib).is_some() {
                    lib
                } else {
                    format!("{key}/src/main.rs")
                }
            };
            let Some(root_file) = ctx.file(&root_rel) else {
                continue;
            };
            if has_unsafe {
                if !has_inner_lint_attr(root_file, &["deny", "forbid"], "unsafe_op_in_unsafe_fn") {
                    diags.push(Diagnostic::error(
                        ID,
                        &root_rel,
                        1,
                        1,
                        "crate contains unsafe code but its root module does not declare \
                         #![deny(unsafe_op_in_unsafe_fn)]",
                    ));
                }
            } else if !has_inner_lint_attr(root_file, &["forbid"], "unsafe_code") {
                diags.push(
                    Diagnostic::error(
                        ID,
                        &root_rel,
                        1,
                        1,
                        "crate contains no unsafe code but its root module does not declare \
                         #![forbid(unsafe_code)]",
                    )
                    .with_note(
                        "declare the attribute so the absence of unsafe is compiler-enforced, \
                         not incidental",
                    ),
                );
            }
        }
        diags
    }
}
