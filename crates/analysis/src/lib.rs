//! afforest-analysis: the static analysis battery behind `cargo xtask lint`.
//!
//! A small exact Rust lexer ([`lexer`]), a pass framework over pre-lexed
//! sources ([`pass`]), structured diagnostics with JSON emission
//! ([`diag`]), and the pass catalog ([`passes`]): SAFETY coverage,
//! the memory-ordering allowlist, the SeqCst ban, metric-fixture
//! coverage, the lock-order graph, the panic-path totality gate, the
//! audit-drift detector, and wire-opcode consistency. DESIGN.md §13
//! documents each rule and the reasoning behind it.
//!
//! The crate is deliberately dependency-free (std only): the battery is
//! the thing that gates the build, so its own build must never be the
//! thing that breaks.

#![forbid(unsafe_code)]

pub mod diag;
pub mod lexer;
pub mod pass;
pub mod passes;

use diag::Report;
use pass::Context;
use std::path::Path;

/// The metric exposition fixture the `metric-fixture` pass cross-checks
/// (rel path from the workspace root).
pub const METRIC_FIXTURE: &str = "crates/serve/tests/fixtures/exposition.txt";

/// Runs the full battery over an in-memory context. Diagnostics come
/// back in pass order, then file/line order within a pass.
pub fn run(ctx: &Context) -> Report {
    let battery = passes::all();
    let mut diagnostics = Vec::new();
    for pass in &battery {
        let mut found = pass.run(ctx);
        found.sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
        diagnostics.extend(found);
    }
    Report {
        passes: battery.iter().map(|p| p.id()).collect(),
        files_scanned: ctx.files.len(),
        diagnostics,
    }
}

/// Loads the workspace rooted at `root` and runs the battery.
pub fn run_workspace(root: &Path) -> Report {
    run(&Context::load(root))
}

/// `(id, description)` for every pass, in execution order — the data
/// behind `cargo xtask lint --list-passes`.
pub fn list_passes() -> Vec<(&'static str, &'static str)> {
    passes::all()
        .iter()
        .map(|p| (p.id(), p.description()))
        .collect()
}
