// False-positive fixture for metric-fixture: literal names present in
// the exposition fixture, and a name-shaped call that is not a
// registry registration.

fn register() {
    let _a = registry::counter("serve_requests_total");
    let _b = registry::histogram("serve_latency_seconds");
    let _c = other::counter("irrelevant_namespace");
}
