// False-positive fixture for panic-path: justified sites, test-only
// panics, and identifiers that merely contain a banned name.

fn decode(payload: &[u8]) -> Option<u32> {
    if payload.len() < 5 {
        return None;
    }
    // PANIC-OK: length checked above; the range and conversion cannot fail.
    let field: [u8; 4] = payload[1..5].try_into().expect("4 bytes");
    let n = u32::from_le_bytes(field);
    Some(n)
}

fn recover_poison(m: &std::sync::Mutex<u64>) -> u64 {
    // `unwrap_or_else` is a distinct identifier, not `unwrap`.
    *m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic() {
        let v = [1u8, 2];
        assert_eq!(v[1], 2);
        let _ = std::str::from_utf8(&v).unwrap();
    }
}
