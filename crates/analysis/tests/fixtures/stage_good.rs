//! Fixture: a stage taxonomy whose DESIGN.md table agrees exactly.

pub const STAGES: usize = 3;

pub const STAGE_NAMES: [&str; STAGES] = [
    "router_request",
    "queue_wait",
    "wal_fsync",
];
