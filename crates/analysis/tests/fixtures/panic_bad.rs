// True-positive fixture for panic-path: every construct here must be
// flagged when the file sits on the wire/disk byte path.

fn decode(payload: &[u8]) -> u32 {
    let tag = payload[0];
    if tag != 1 {
        panic!("bad tag");
    }
    let field: [u8; 4] = payload[1..5].try_into().unwrap();
    let n = u32::from_le_bytes(field);
    let _last = payload.last().expect("nonempty");
    n
}
