// False-positive fixture: nothing here may be flagged by safety-coverage
// when placed in a crate whose root declares deny(unsafe_op_in_unsafe_fn).

/// Writes through `p`.
///
/// # Safety
/// Caller guarantees `p` is valid and exclusively owned.
pub unsafe fn poke(p: *mut u32) {
    // SAFETY: contract above — `p` is valid and exclusive.
    unsafe { *p = 7 };
}

pub fn justified_inline(p: *mut u32) {
    unsafe { *p = 1 }; // SAFETY: caller of this private fn owns `p`.
}
