// Companion fixture supplying evidence for the allowlisted
// over-approximation edge (`reqtrace::GATE` -> `recorder::GATE`),
// mirroring the real crates/obs/src/reqtrace.rs shape: a test holds
// the tracing test gate and calls a span constructor named `begin`,
// which bare-name call expansion reads as the recorder's `begin`.
// Lock-order tests include this file (together with the recorder
// fixture) so the "stale allowlist edge" rule stays quiet.

use std::sync::Mutex;

static GATE: Mutex<()> = Mutex::new(());

fn disabled_tracing_is_inert() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let _span = begin();
}
