//! Fixture: every stage-taxonomy drift mode at once — a duplicated
//! tag, a non-snake_case tag, and a tag the DESIGN.md table omits.

pub const STAGE_NAMES: [&str; 4] = [
    "router_request",
    "router_request",
    "Bad-Tag",
    "secret_stage",
];
