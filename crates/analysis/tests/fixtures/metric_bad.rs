// True-positive fixture for metric-fixture: a computed metric name and a
// literal name absent from the exposition fixture.

fn register(dynamic: &str) {
    let _a = registry::counter(dynamic);
    let _b = registry::gauge("not_in_fixture_gauge");
}
