// Seeded true-positive fixture (ported from the predecessor line
// scanner's `bad_unsafe.rs`): everything here must be flagged. Never
// compiled — `fixtures/` is excluded from the workspace scan; the
// battery tests feed this file through an in-memory `Context`.

use std::sync::atomic::{AtomicU32, Ordering};

fn lost_update(counter: &AtomicU32, p: *mut u32) {
    // A load in a file outside the ordering allowlist.
    let x = counter.load(Ordering::Relaxed);
    // A full fence nobody justified.
    counter.store(x + 1, Ordering::SeqCst);
    unsafe { *p = x };
}
