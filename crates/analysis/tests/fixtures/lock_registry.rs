// Evidence for the allowlisted edge `registry::REGISTRY` ->
// `engine::map`: `.get()` inside the snapshot loop, called while the
// metric registry mutex is held, shares a bare name with
// `EngineRegistry::get` (lock_engine.rs), which the one-level call
// expansion resolves here.

use std::sync::Mutex;

static REGISTRY: Mutex<Vec<u64>> = Mutex::new(Vec::new());

fn registry() -> &'static Mutex<Vec<u64>> {
    &REGISTRY
}

pub fn snapshot() -> Option<u64> {
    let reg = registry().lock().unwrap_or_else(|e| e.into_inner());
    reg.get(0).copied()
}
