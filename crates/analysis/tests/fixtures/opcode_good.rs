// False-positive fixture for opcode-consistency: two opcodes, each used
// by both the encoder and the decoder, values matching the doc table.

const OP_PING: u8 = 0x01;
const OP_R_PONG: u8 = 0x81;

fn encode(out: &mut Vec<u8>, req: bool) {
    if req {
        out.push(OP_PING);
    } else {
        out.push(OP_R_PONG);
    }
}

fn decode(b: u8) -> &'static str {
    match b {
        OP_PING => "ping",
        OP_R_PONG => "pong",
        _ => "unknown",
    }
}
