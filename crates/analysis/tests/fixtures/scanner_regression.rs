// Regression fixture for the two known unsoundnesses of the predecessor
// line-oriented scanner (it split each line at the first `//` and never
// tracked `/* */`):
//
// 1. A string literal containing `"// SAFETY:"` on the same line as an
//    `unsafe` token must NOT count as a justification — the safety pass
//    must still flag the unsafe below.
// 2. `Ordering::SeqCst` inside a block comment must NOT be flagged by
//    the seqcst-ban or ordering-allowlist passes — it is prose.

fn string_is_not_a_justification(p: *mut u32) {
    let _lie = "// SAFETY: totally fine"; unsafe { *p = 1 };
}

/* The old scanner saw this as code:
   counter.store(1, Ordering::SeqCst);
   and flagged it. The lexer knows it is a comment. */
fn comment_is_not_code() {}
