// Companion fixture supplying evidence for the one allowlisted edge
// (`recorder::GATE` -> `recorder::STATE`), mirroring the real
// crates/obs/src/recorder.rs shape. Lock-order tests include this file
// so the "stale allowlist edge" rule stays quiet.

use std::sync::{Mutex, MutexGuard};

static GATE: Mutex<()> = Mutex::new(());
static STATE: Mutex<Option<u64>> = Mutex::new(None);

fn lock_state() -> MutexGuard<'static, Option<u64>> {
    STATE.lock().unwrap_or_else(|e| e.into_inner())
}

pub(crate) fn begin() -> MutexGuard<'static, ()> {
    let gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    *lock_state() = Some(1);
    gate
}
