// Companion fixture declaring the `engine::map` leaf lock and the
// bare-named accessors (`len`, `get`) that acquire it, mirroring the
// real crates/serve/src/engine.rs registry. The one-level call
// expansion attributes these acquisitions to any `.len()` / `.get()`
// call made while another lock is held — the over-approximation the
// allowlisted `* -> engine::map` edges document.

use std::collections::BTreeMap;
use std::sync::RwLock;

pub(crate) struct EngineRegistry {
    map: RwLock<BTreeMap<String, u64>>,
}

impl EngineRegistry {
    pub(crate) fn len(&self) -> usize {
        self.map.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    pub(crate) fn get(&self, tenant: &str) -> Option<u64> {
        self.map
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(tenant)
            .copied()
    }
}
