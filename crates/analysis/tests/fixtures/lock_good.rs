// False-positive fixture for lock-order: patterns that must create no
// edges. A temporary guard dies at its statement's end; a dropped guard
// is released before the next acquisition; an RwLock read temporary
// never overlaps the write elsewhere.

use std::sync::{Condvar, Mutex, RwLock};

struct Queue {
    state: Mutex<Vec<u64>>,
    ready: Condvar,
    snap: RwLock<u64>,
}

impl Queue {
    fn temporary_then_lock(&self) -> Option<u64> {
        // The first guard is a temporary: released at the semicolon,
        // before `snap` is acquired on the next line. (`pop`, not
        // `len`: the companion lock_engine.rs fixture defines a `len`
        // that acquires `engine::map`, and bare-name call expansion
        // would attribute it here.)
        let newest = self.state.lock().unwrap_or_else(|e| e.into_inner()).pop();
        let _s = self.snap.read().unwrap();
        newest
    }

    fn drop_then_lock(&self) {
        let g = self.state.lock().unwrap();
        drop(g);
        let _w = self.snap.write().unwrap();
    }

    fn wait_is_not_nesting(&self) {
        // Condvar::wait releases and reacquires `state`; no edge.
        let g = self.state.lock().unwrap();
        let _g = self.ready.wait(g).unwrap();
    }
}
