// True-positive fixture for lock-order: two paths acquire the same two
// mutexes in opposite orders — an unallowlisted pair of edges forming a
// cycle (the textbook AB/BA deadlock).

use std::sync::Mutex;

struct Shared {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Shared {
    fn path_one(&self) {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        drop(b);
        drop(a);
    }

    fn path_two(&self) {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        drop(a);
        drop(b);
    }
}
