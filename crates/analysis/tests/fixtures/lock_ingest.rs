// Evidence for the allowlisted edge `ingest::state` -> `engine::map`:
// `.len()` on the queue's VecDeque, called while the queue mutex is
// held, shares a bare name with `EngineRegistry::len` (lock_engine.rs),
// which the one-level call expansion resolves here.

use std::collections::VecDeque;
use std::sync::Mutex;

pub(crate) struct IngestQueue {
    state: Mutex<VecDeque<(u32, u32)>>,
}

impl IngestQueue {
    pub(crate) fn depth(&self) -> usize {
        let s = self.state.lock().unwrap_or_else(|e| e.into_inner());
        s.len()
    }
}
