// True-positive fixture for opcode-consistency: a duplicated value, a
// response opcode in the request range, and a constant the decoder
// never matches.

const OP_PING: u8 = 0x01;
const OP_DUP: u8 = 0x01;
const OP_R_LOW: u8 = 0x10;
const OP_DEAD: u8 = 0x02;

fn encode(out: &mut Vec<u8>) {
    out.push(OP_PING);
    out.push(OP_DUP);
    out.push(OP_R_LOW);
}

fn decode(b: u8) -> &'static str {
    match b {
        OP_PING => "ping",
        OP_DUP => "dup",
        OP_R_LOW => "low",
        _ => "unknown",
    }
}
