//! The fixture battery: for every pass, a true-positive fixture that
//! must fire and a false-positive fixture that must stay silent.
//!
//! Fixtures live under `tests/fixtures/` (excluded from the workspace
//! scan — they contain seeded violations as test data) and are fed
//! through in-memory [`Context`]s with chosen paths, so each test pins
//! down exactly which rule fires where.

use afforest_analysis::diag::Diagnostic;
use afforest_analysis::pass::{Context, Pass};
use afforest_analysis::passes;

const SAFETY_BAD: &str = include_str!("fixtures/safety_bad.rs");
const SAFETY_GOOD: &str = include_str!("fixtures/safety_good.rs");
const SCANNER_REGRESSION: &str = include_str!("fixtures/scanner_regression.rs");
const METRIC_BAD: &str = include_str!("fixtures/metric_bad.rs");
const METRIC_GOOD: &str = include_str!("fixtures/metric_good.rs");
const EXPOSITION: &str = include_str!("fixtures/exposition_fixture.txt");
const LOCK_BAD: &str = include_str!("fixtures/lock_bad.rs");
const LOCK_GOOD: &str = include_str!("fixtures/lock_good.rs");
const LOCK_RECORDER: &str = include_str!("fixtures/lock_recorder.rs");
const LOCK_REQTRACE: &str = include_str!("fixtures/lock_reqtrace.rs");
const LOCK_ENGINE: &str = include_str!("fixtures/lock_engine.rs");
const LOCK_INGEST: &str = include_str!("fixtures/lock_ingest.rs");
const LOCK_REGISTRY: &str = include_str!("fixtures/lock_registry.rs");
const PANIC_BAD: &str = include_str!("fixtures/panic_bad.rs");
const PANIC_GOOD: &str = include_str!("fixtures/panic_good.rs");
const OPCODE_BAD: &str = include_str!("fixtures/opcode_bad.rs");
const OPCODE_GOOD: &str = include_str!("fixtures/opcode_good.rs");
const OPCODE_DESIGN_BAD: &str = include_str!("fixtures/opcode_design_bad.md");
const OPCODE_DESIGN_GOOD: &str = include_str!("fixtures/opcode_design_good.md");
const AUDIT_DESIGN_BAD: &str = include_str!("fixtures/audit_design_bad.md");
const AUDIT_DESIGN_GOOD: &str = include_str!("fixtures/audit_design_good.md");
const STAGE_BAD: &str = include_str!("fixtures/stage_bad.rs");
const STAGE_GOOD: &str = include_str!("fixtures/stage_good.rs");
const STAGE_DESIGN_BAD: &str = include_str!("fixtures/stage_design_bad.md");
const STAGE_DESIGN_GOOD: &str = include_str!("fixtures/stage_design_good.md");

/// A root module that satisfies the hygiene rule for crates with unsafe.
const DENY_ROOT: &str = "#![deny(unsafe_op_in_unsafe_fn)]\n";

/// A file with one relaxed atomic site, for audit-drift liveness.
const ATOMIC_FILE: &str =
    "use std::sync::atomic::{AtomicU64, Ordering};\nfn f(c: &AtomicU64) { c.fetch_add(1, Ordering::Relaxed); }\n";

fn run_pass(
    pass: &dyn Pass,
    sources: Vec<(&str, &str)>,
    docs: Vec<(&str, &str)>,
) -> Vec<Diagnostic> {
    pass.run(&Context::from_sources(sources, docs))
}

fn messages(diags: &[Diagnostic]) -> String {
    diags.iter().map(|d| d.to_string() + "\n").collect()
}

// ---------------------------------------------------------------- safety

#[test]
fn safety_fires_on_unjustified_unsafe() {
    let diags = run_pass(
        &passes::safety::SafetyCoverage,
        vec![
            ("crates/cli/src/lib.rs", DENY_ROOT),
            ("crates/cli/src/bad.rs", SAFETY_BAD),
        ],
        vec![],
    );
    assert_eq!(diags.len(), 1, "{}", messages(&diags));
    assert!(diags[0].message.contains("`unsafe` without"));
    assert_eq!(diags[0].file, "crates/cli/src/bad.rs");
}

#[test]
fn safety_silent_on_justified_unsafe() {
    let diags = run_pass(
        &passes::safety::SafetyCoverage,
        vec![
            ("crates/graph/src/lib.rs", DENY_ROOT),
            ("crates/graph/src/good.rs", SAFETY_GOOD),
        ],
        vec![],
    );
    assert!(diags.is_empty(), "{}", messages(&diags));
}

#[test]
fn safety_requires_forbid_in_unsafe_free_crates() {
    let diags = run_pass(
        &passes::safety::SafetyCoverage,
        vec![("crates/cli/src/lib.rs", "pub fn safe() {}\n")],
        vec![],
    );
    assert_eq!(diags.len(), 1, "{}", messages(&diags));
    assert!(diags[0].message.contains("forbid(unsafe_code)"));

    let diags = run_pass(
        &passes::safety::SafetyCoverage,
        vec![(
            "crates/cli/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn safe() {}\n",
        )],
        vec![],
    );
    assert!(diags.is_empty(), "{}", messages(&diags));
}

/// Regression: the predecessor line scanner let a string literal
/// containing `"// SAFETY:"` justify an `unsafe` on the same line.
#[test]
fn safety_regression_string_is_not_a_comment() {
    let diags = run_pass(
        &passes::safety::SafetyCoverage,
        vec![
            ("crates/cli/src/lib.rs", DENY_ROOT),
            ("crates/cli/src/reg.rs", SCANNER_REGRESSION),
        ],
        vec![],
    );
    assert_eq!(diags.len(), 1, "{}", messages(&diags));
    assert_eq!(diags[0].file, "crates/cli/src/reg.rs");
    assert!(
        SCANNER_REGRESSION
            .lines()
            .nth(diags[0].line - 1)
            .unwrap()
            .contains("_lie"),
        "must flag the unsafe next to the lying string literal"
    );
}

// -------------------------------------------------------------- ordering

#[test]
fn ordering_fires_outside_allowlist_and_not_inside() {
    let pass = passes::ordering::OrderingAllowlist;
    let diags = run_pass(&pass, vec![("crates/cli/src/bad.rs", SAFETY_BAD)], vec![]);
    assert_eq!(diags.len(), 2, "{}", messages(&diags)); // Relaxed + SeqCst
    let diags = run_pass(
        &pass,
        vec![("crates/core/src/parents.rs", SAFETY_BAD)],
        vec![],
    );
    assert!(diags.is_empty(), "{}", messages(&diags));
}

/// Regression: the predecessor scanner flagged `Ordering::SeqCst` inside
/// a block comment (it only understood `//`).
#[test]
fn ordering_regression_block_comment_is_prose() {
    for pass in [
        Box::new(passes::ordering::OrderingAllowlist) as Box<dyn Pass>,
        Box::new(passes::seqcst::SeqCstBan),
    ] {
        let diags = run_pass(
            pass.as_ref(),
            vec![("crates/cli/src/reg.rs", SCANNER_REGRESSION)],
            vec![],
        );
        assert!(
            diags.is_empty(),
            "{} fired on commented-out code:\n{}",
            pass.id(),
            messages(&diags)
        );
    }
}

// ---------------------------------------------------------------- seqcst

#[test]
fn seqcst_fires_even_in_allowlisted_files() {
    let diags = run_pass(
        &passes::seqcst::SeqCstBan,
        vec![("crates/core/src/parents.rs", SAFETY_BAD)],
        vec![],
    );
    assert_eq!(diags.len(), 1, "{}", messages(&diags));
    assert!(diags[0].message.contains("SeqCst"));
}

// -------------------------------------------------------- metric fixture

#[test]
fn metric_fixture_fires_on_dynamic_and_uncovered_names() {
    let diags = run_pass(
        &passes::metric_fixture::MetricFixture,
        vec![("crates/serve/src/metrics.rs", METRIC_BAD)],
        vec![(afforest_analysis::METRIC_FIXTURE, EXPOSITION)],
    );
    assert_eq!(diags.len(), 2, "{}", messages(&diags));
    assert!(diags.iter().any(|d| d.message.contains("non-literal")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("not_in_fixture_gauge")));
}

#[test]
fn metric_fixture_silent_on_covered_literals() {
    let diags = run_pass(
        &passes::metric_fixture::MetricFixture,
        vec![("crates/serve/src/metrics.rs", METRIC_GOOD)],
        vec![(afforest_analysis::METRIC_FIXTURE, EXPOSITION)],
    );
    assert!(diags.is_empty(), "{}", messages(&diags));
}

#[test]
fn metric_fixture_reports_missing_fixture() {
    let diags = run_pass(
        &passes::metric_fixture::MetricFixture,
        vec![("crates/serve/src/metrics.rs", METRIC_GOOD)],
        vec![],
    );
    assert!(
        diags
            .iter()
            .any(|d| d.message.contains("fixture is missing")),
        "{}",
        messages(&diags)
    );
}

// ------------------------------------------------------------ lock order

#[test]
fn lock_order_fires_on_ab_ba_cycle() {
    let diags = run_pass(
        &passes::lock_order::LockOrder,
        vec![
            ("crates/serve/src/shared.rs", LOCK_BAD),
            ("crates/obs/src/recorder.rs", LOCK_RECORDER),
        ],
        vec![],
    );
    let unallowlisted = diags
        .iter()
        .filter(|d| d.message.contains("new lock-order edge"))
        .count();
    assert_eq!(unallowlisted, 2, "{}", messages(&diags)); // alpha->beta and beta->alpha
    assert!(
        diags.iter().any(|d| d.message.contains("cycle")),
        "{}",
        messages(&diags)
    );
}

#[test]
fn lock_order_silent_on_temporaries_drops_and_condvar_wait() {
    // The companion fixtures supply evidence for every allowlisted
    // edge, so the only possible diagnostics are false positives from
    // LOCK_GOOD's patterns.
    let diags = run_pass(
        &passes::lock_order::LockOrder,
        vec![
            ("crates/serve/src/queue.rs", LOCK_GOOD),
            ("crates/obs/src/recorder.rs", LOCK_RECORDER),
            ("crates/obs/src/reqtrace.rs", LOCK_REQTRACE),
            ("crates/serve/src/engine.rs", LOCK_ENGINE),
            ("crates/serve/src/ingest.rs", LOCK_INGEST),
            ("crates/obs/src/registry.rs", LOCK_REGISTRY),
        ],
        vec![],
    );
    assert!(diags.is_empty(), "{}", messages(&diags));
}

#[test]
fn lock_order_reports_stale_allowlist_edge() {
    // The engine/ingest/registry fixtures evidence their edges, but no
    // recorder is in the tree: both allowlisted edges that involve the
    // recorder's GATE lose their evidence and must be reported stale.
    let diags = run_pass(
        &passes::lock_order::LockOrder,
        vec![
            ("crates/serve/src/queue.rs", LOCK_GOOD),
            ("crates/serve/src/engine.rs", LOCK_ENGINE),
            ("crates/serve/src/ingest.rs", LOCK_INGEST),
            ("crates/obs/src/registry.rs", LOCK_REGISTRY),
        ],
        vec![],
    );
    assert_eq!(diags.len(), 2, "{}", messages(&diags));
    for d in &diags {
        assert!(d.message.contains("no remaining evidence"), "{}", d.message);
    }
    assert!(diags
        .iter()
        .any(|d| d.message.contains("`recorder::GATE` -> `recorder::STATE`")));
    assert!(diags
        .iter()
        .any(|d| d.message.contains("`reqtrace::GATE` -> `recorder::GATE`")));
}

// ------------------------------------------------------------ panic path

#[test]
fn panic_path_fires_on_unwrap_expect_panic_and_indexing() {
    let diags = run_pass(
        &passes::panic_path::PanicPath,
        vec![("crates/serve/src/protocol.rs", PANIC_BAD)],
        vec![],
    );
    let msgs = messages(&diags);
    assert_eq!(diags.len(), 5, "{msgs}");
    for needle in ["`panic`", "`unwrap`", "`expect`"] {
        assert!(msgs.contains(needle), "{msgs}");
    }
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("indexing"))
            .count(),
        2,
        "{msgs}"
    );
}

#[test]
fn panic_path_silent_on_justified_tests_and_lookalikes() {
    let diags = run_pass(
        &passes::panic_path::PanicPath,
        vec![("crates/serve/src/protocol.rs", PANIC_GOOD)],
        vec![],
    );
    assert!(diags.is_empty(), "{}", messages(&diags));
}

#[test]
fn panic_path_ignores_files_off_the_wire_path() {
    let diags = run_pass(
        &passes::panic_path::PanicPath,
        vec![("crates/core/src/afforest.rs", PANIC_BAD)],
        vec![],
    );
    assert!(diags.is_empty(), "{}", messages(&diags));
}

// ----------------------------------------------------------- audit drift

#[test]
fn audit_drift_silent_when_audit_mirrors_allowlist() {
    let diags = run_pass(
        &passes::audit::AuditDrift,
        vec![
            ("crates/core/src/parents.rs", ATOMIC_FILE),
            ("crates/core/src/instrument.rs", ATOMIC_FILE),
            ("crates/graph/src/builder.rs", ATOMIC_FILE),
            ("crates/graph/src/disjoint.rs", ATOMIC_FILE),
            ("crates/obs/src/registry.rs", ATOMIC_FILE),
            ("crates/serve/src/stats.rs", ATOMIC_FILE),
            ("crates/baselines/src/sv.rs", ATOMIC_FILE),
            ("crates/shard/src/router.rs", ATOMIC_FILE),
        ],
        vec![("DESIGN.md", AUDIT_DESIGN_GOOD)],
    );
    assert!(diags.is_empty(), "{}", messages(&diags));
}

#[test]
fn audit_drift_fires_on_all_three_drift_modes() {
    let diags = run_pass(
        &passes::audit::AuditDrift,
        vec![
            // parents.rs exists but its atomics are gone.
            ("crates/core/src/parents.rs", "pub fn plain() {}\n"),
        ],
        vec![("DESIGN.md", AUDIT_DESIGN_BAD)],
    );
    let msgs = messages(&diags);
    // Allowlist entries with no audit section (7 of 8 are missing).
    assert_eq!(
        diags
            .iter()
            .filter(|d| d.message.contains("has no audit subsection"))
            .count(),
        7,
        "{msgs}"
    );
    // An audited path that is not allowlisted.
    assert!(msgs.contains("crates/cli/src/main.rs"), "{msgs}");
    assert!(msgs.contains("no matching ORDERING_ALLOWLIST"), "{msgs}");
    // An audited path whose atomics are gone.
    assert!(msgs.contains("covers no remaining atomics"), "{msgs}");
    // The `### \`crates/obs/src/*\`` under section 9 must NOT be parsed
    // as an audit subsection (only the one under section 8 counts, so no
    // "subsection for obs" finding may exist).
    assert!(!msgs.contains("subsection for `crates/obs/src/`"), "{msgs}");
}

#[test]
fn audit_drift_reports_missing_design() {
    let diags = run_pass(&passes::audit::AuditDrift, vec![], vec![]);
    assert_eq!(diags.len(), 1, "{}", messages(&diags));
    assert!(diags[0].message.contains("DESIGN.md is missing"));
}

// ---------------------------------------------------- opcode consistency

#[test]
fn opcode_silent_when_all_surfaces_agree() {
    let diags = run_pass(
        &passes::opcode::OpcodeConsistency,
        vec![(passes::opcode::PROTOCOL_FILE, OPCODE_GOOD)],
        vec![("DESIGN.md", OPCODE_DESIGN_GOOD)],
    );
    assert!(diags.is_empty(), "{}", messages(&diags));
}

#[test]
fn opcode_fires_on_every_drift_mode() {
    let diags = run_pass(
        &passes::opcode::OpcodeConsistency,
        vec![(passes::opcode::PROTOCOL_FILE, OPCODE_BAD)],
        vec![("DESIGN.md", OPCODE_DESIGN_BAD)],
    );
    let msgs = messages(&diags);
    assert!(
        msgs.contains("assigned to both `OP_PING` and `OP_DUP`"),
        "{msgs}"
    );
    assert!(msgs.contains("inside the request range"), "{msgs}");
    assert!(
        msgs.contains("`OP_DEAD` is not used by both the encoder and the decoder"),
        "{msgs}"
    );
    assert!(msgs.contains("`OP_GHOST`"), "{msgs}");
    assert!(msgs.contains("`OP_DUP` = 0x03 but"), "{msgs}");
    // OP_PING is declared but missing from the drifted table.
    assert!(
        msgs.contains("missing from DESIGN.md's opcode table"),
        "{msgs}"
    );
    // Stale prose byte 0x77.
    assert!(msgs.contains("0x77"), "{msgs}");
}

#[test]
fn opcode_requires_a_table_when_opcodes_exist() {
    let diags = run_pass(
        &passes::opcode::OpcodeConsistency,
        vec![(passes::opcode::PROTOCOL_FILE, OPCODE_GOOD)],
        vec![("DESIGN.md", "# No table here\n")],
    );
    assert!(
        diags.iter().any(|d| d.message.contains("no opcode table")),
        "{}",
        messages(&diags)
    );
}

// -------------------------------------------------------------- stage-doc

#[test]
fn stage_doc_silent_when_taxonomy_and_table_agree() {
    let diags = run_pass(
        &passes::stage_doc::StageDoc,
        vec![(passes::stage_doc::REQTRACE_FILE, STAGE_GOOD)],
        vec![("DESIGN.md", STAGE_DESIGN_GOOD)],
    );
    assert!(diags.is_empty(), "{}", messages(&diags));
}

#[test]
fn stage_doc_fires_on_every_drift_mode() {
    let diags = run_pass(
        &passes::stage_doc::StageDoc,
        vec![(passes::stage_doc::REQTRACE_FILE, STAGE_BAD)],
        vec![("DESIGN.md", STAGE_DESIGN_BAD)],
    );
    let msgs = messages(&diags);
    // Duplicate declaration.
    assert!(msgs.contains("declared twice"), "{msgs}");
    // Non-snake_case tag.
    assert!(msgs.contains("not snake_case"), "{msgs}");
    // Declared but undocumented.
    assert!(
        msgs.contains("\"secret_stage\" is missing from DESIGN.md"),
        "{msgs}"
    );
    // Documented but never declared.
    assert!(msgs.contains("`ghost_stage`"), "{msgs}");
}

#[test]
fn stage_doc_requires_a_table_when_stages_exist() {
    let diags = run_pass(
        &passes::stage_doc::StageDoc,
        vec![(passes::stage_doc::REQTRACE_FILE, STAGE_GOOD)],
        vec![("DESIGN.md", "# No tracing section here\n")],
    );
    assert!(
        diags.iter().any(|d| d.message.contains("no stage table")),
        "{}",
        messages(&diags)
    );
}

#[test]
fn stage_doc_ignores_tables_outside_the_tracing_section() {
    // `not_a_stage` appears in a table under a different heading in the
    // good fixture; it must not be reported.
    let rows = passes::stage_doc::table_rows(STAGE_DESIGN_GOOD);
    assert!(rows.iter().all(|(n, _)| n != "not_a_stage"), "{rows:?}");
    assert_eq!(rows.len(), 3, "{rows:?}");
}

// ------------------------------------------------------------ the driver

#[test]
fn full_battery_report_shape_and_json() {
    let ctx = Context::from_sources(
        vec![("crates/cli/src/bad.rs", SAFETY_BAD)],
        vec![("DESIGN.md", AUDIT_DESIGN_GOOD)],
    );
    let report = afforest_analysis::run(&ctx);
    assert_eq!(report.passes.len(), 9);
    assert_eq!(report.files_scanned, 1);
    assert!(report.has_errors());
    let json = afforest_analysis::diag::to_json(&report);
    assert!(json.contains("\"version\":1"));
    for (id, _) in afforest_analysis::list_passes() {
        assert!(json.contains(id), "{id} missing from JSON pass list");
    }
}
