//! Property-based tests for the graph substrate.

use afforest_graph::generators::{
    random_geometric, rmat, uniform_random, watts_strogatz, RmatParams,
};
use afforest_graph::perm::{invert_permutation, is_permutation, random_permutation, relabel};
use afforest_graph::{CsrGraph, DegreeDistribution, GraphBuilder, Node};
use proptest::prelude::*;

fn arb_edges(max_n: usize, max_m: usize) -> impl Strategy<Value = (usize, Vec<(Node, Node)>)> {
    (2usize..max_n).prop_flat_map(move |n| {
        let edge = (0..n as Node, 0..n as Node);
        (Just(n), proptest::collection::vec(edge, 0..max_m))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_structural_laws((n, edges) in arb_edges(150, 500)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        // Handshake lemma.
        let degree_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(degree_sum, g.num_arcs());
        prop_assert_eq!(g.num_arcs(), 2 * g.num_edges());
        // edges() yields canonical unique pairs.
        let es: Vec<_> = g.edges().collect();
        prop_assert!(es.iter().all(|&(u, v)| u <= v));
        let mut sorted = es.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), es.len());
        // has_edge agrees with neighbor lists.
        for &(u, v) in es.iter().take(50) {
            prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
        }
    }

    #[test]
    fn builder_is_idempotent((n, edges) in arb_edges(120, 400)) {
        // Rebuilding from a built graph's edges reproduces it exactly.
        let g = GraphBuilder::from_edges(n, &edges).build();
        let again = GraphBuilder::from_edges(n, &g.collect_edges()).build();
        prop_assert_eq!(g, again);
    }

    #[test]
    fn binary_io_roundtrip((n, edges) in arb_edges(100, 300)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let mut path = std::env::temp_dir();
        path.push(format!("afforest-pt-{}-{}.acsr", std::process::id(), n));
        afforest_graph::io::write_binary(&g, &path).unwrap();
        let g2 = afforest_graph::io::read_binary(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn degree_distribution_consistency((n, edges) in arb_edges(120, 400)) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let d = DegreeDistribution::compute(&g);
        prop_assert_eq!(d.histogram.iter().sum::<usize>(), n);
        prop_assert_eq!(d.max, g.max_degree());
        prop_assert!((d.mean - g.avg_degree()).abs() < 1e-9);
        prop_assert_eq!(
            d.isolated(),
            g.vertices().filter(|&v| g.degree(v) == 0).count()
        );
    }

    #[test]
    fn permutation_laws(n in 1usize..300, seed in any::<u64>()) {
        let p = random_permutation(n, seed);
        prop_assert!(is_permutation(&p));
        let inv = invert_permutation(&p);
        prop_assert!(is_permutation(&inv));
        for i in 0..n {
            prop_assert_eq!(inv[p[i] as usize] as usize, i);
        }
    }

    #[test]
    fn relabel_preserves_degree_multiset((n, edges) in arb_edges(100, 300), seed in any::<u64>()) {
        let g = GraphBuilder::from_edges(n, &edges).build();
        let p = random_permutation(n, seed);
        let h = relabel(&g, &p);
        let mut dg: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        let mut dh: Vec<usize> = h.vertices().map(|v| h.degree(v)).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        prop_assert_eq!(dg, dh);
    }

    #[test]
    fn generators_are_deterministic_and_sized(
        scale in 6u32..10,
        ef in 1usize..8,
        seed in any::<u64>(),
    ) {
        let a = uniform_random(1 << scale, ef << scale, seed);
        let b = uniform_random(1 << scale, ef << scale, seed);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.num_vertices(), 1 << scale);
        prop_assert!(a.num_edges() <= ef << scale);

        let k = rmat(scale, ef << scale, RmatParams::GRAPH500, seed);
        prop_assert_eq!(k.num_vertices(), 1 << scale);
        prop_assert!(k.num_edges() <= ef << scale);
    }

    #[test]
    fn watts_strogatz_edge_count_invariant(
        n in 10usize..200,
        beta in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        // WS draws exactly n·k/2 edges; dedup can only shrink slightly.
        let k = 4;
        let g = watts_strogatz(n, k, beta, seed);
        prop_assert!(g.num_edges() <= n * k / 2);
        prop_assert!(g.num_edges() >= n * k / 2 - n / 2); // collisions are rare
    }

    #[test]
    fn geometric_symmetry_by_distance(n in 20usize..150, seed in any::<u64>()) {
        let g = random_geometric(n, 0.2, seed);
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u));
            }
        }
    }
}

/// Non-proptest sanity: a CSR built from another CSR's raw parts is valid.
#[test]
fn from_parts_roundtrip() {
    let g = uniform_random(500, 2_500, 3);
    let h = CsrGraph::from_parts(g.offsets().to_vec(), g.targets().to_vec());
    assert_eq!(g, h);
}
