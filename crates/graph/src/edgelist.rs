//! Mutable edge-list representation.
//!
//! Generators and I/O produce an [`EdgeList`]; [`crate::GraphBuilder`]
//! converts it to CSR. The edge-list form is also consumed directly by the
//! Soman-style edge-list Shiloach–Vishkin baseline (the paper's GPU
//! comparator), which streams edges rather than walking adjacencies.

use crate::{Edge, Node};
use rayon::prelude::*;

/// A growable multiset of undirected edges over vertices `0..num_vertices`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EdgeList {
    num_vertices: usize,
    edges: Vec<Edge>,
}

impl EdgeList {
    /// Creates an empty edge list over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
        }
    }

    /// Creates an edge list with reserved capacity.
    pub fn with_capacity(num_vertices: usize, capacity: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::with_capacity(capacity),
        }
    }

    /// Wraps an existing vector of edges.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is `>= num_vertices`.
    pub fn from_vec(num_vertices: usize, edges: Vec<Edge>) -> Self {
        assert!(
            edges
                .iter()
                .all(|&(u, v)| (u as usize) < num_vertices && (v as usize) < num_vertices),
            "edge endpoint out of range"
        );
        Self {
            num_vertices,
            edges,
        }
    }

    /// Appends the undirected edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    #[inline]
    pub fn push(&mut self, u: Node, v: Node) {
        debug_assert!(
            (u as usize) < self.num_vertices && (v as usize) < self.num_vertices,
            "edge endpoint out of range"
        );
        self.edges.push((u, v));
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.num_vertices
    }

    /// Number of stored edges (duplicates and self-loops included).
    #[inline]
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Borrow the raw edges.
    #[inline]
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Consume into the raw edge vector.
    pub fn into_edges(self) -> Vec<Edge> {
        self.edges
    }

    /// Grows the vertex universe (never shrinks).
    pub fn ensure_vertices(&mut self, num_vertices: usize) {
        self.num_vertices = self.num_vertices.max(num_vertices);
    }

    /// Extends with edges from an iterator.
    pub fn extend<I: IntoIterator<Item = Edge>>(&mut self, iter: I) {
        for (u, v) in iter {
            self.push(u, v);
        }
    }

    /// Canonicalizes every edge to `(min, max)`, drops self-loops, sorts,
    /// and removes duplicates — producing the unique undirected edge set.
    pub fn dedup(&mut self) {
        self.edges.par_iter_mut().for_each(|e| {
            if e.0 > e.1 {
                *e = (e.1, e.0);
            }
        });
        self.edges.retain(|&(u, v)| u != v);
        self.edges.par_sort_unstable();
        self.edges.dedup();
    }
}

impl FromIterator<Edge> for EdgeList {
    /// Builds an edge list sized to the maximum endpoint seen.
    fn from_iter<T: IntoIterator<Item = Edge>>(iter: T) -> Self {
        let edges: Vec<Edge> = iter.into_iter().collect();
        let num_vertices = edges
            .iter()
            .map(|&(u, v)| u.max(v) as usize + 1)
            .max()
            .unwrap_or(0);
        Self {
            num_vertices,
            edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut el = EdgeList::new(4);
        el.push(0, 1);
        el.push(2, 3);
        assert_eq!(el.len(), 2);
        assert_eq!(el.num_vertices(), 4);
    }

    #[test]
    fn dedup_canonicalizes_and_drops_loops() {
        let mut el = EdgeList::from_vec(4, vec![(1, 0), (0, 1), (2, 2), (3, 2), (2, 3)]);
        el.dedup();
        assert_eq!(el.edges(), &[(0, 1), (2, 3)]);
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let el: EdgeList = vec![(0, 5), (2, 1)].into_iter().collect();
        assert_eq!(el.num_vertices(), 6);
        assert_eq!(el.len(), 2);
    }

    #[test]
    fn from_iterator_empty() {
        let el: EdgeList = std::iter::empty().collect();
        assert_eq!(el.num_vertices(), 0);
        assert!(el.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_vec_validates() {
        let _ = EdgeList::from_vec(2, vec![(0, 2)]);
    }

    #[test]
    fn ensure_vertices_grows_only() {
        let mut el = EdgeList::new(4);
        el.ensure_vertices(2);
        assert_eq!(el.num_vertices(), 4);
        el.ensure_vertices(10);
        assert_eq!(el.num_vertices(), 10);
    }
}
