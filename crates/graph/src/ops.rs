//! Graph operations: induced subgraphs, disjoint unions, and edge-subset
//! extraction.
//!
//! Used by the harness to compose workloads (e.g. giant-plus-dust
//! mixtures), by the Fig. 6 experiments to materialize sampled subgraphs
//! as standalone graphs, and by downstream users who want to analyze a
//! component in isolation after a CC run.

use crate::{CsrGraph, Edge, GraphBuilder, Node};
use rayon::prelude::*;

/// The subgraph induced by `keep` (vertices with `keep[v] == true`),
/// with vertices renumbered densely in index order.
///
/// Returns the new graph and the mapping `old -> new` (`Node::MAX` for
/// dropped vertices).
///
/// # Panics
///
/// Panics if `keep.len() != g.num_vertices()`.
pub fn induced_subgraph(g: &CsrGraph, keep: &[bool]) -> (CsrGraph, Vec<Node>) {
    assert_eq!(keep.len(), g.num_vertices(), "mask size mismatch");
    let mut remap = vec![Node::MAX; g.num_vertices()];
    let mut next = 0 as Node;
    for v in 0..g.num_vertices() {
        if keep[v] {
            remap[v] = next;
            next += 1;
        }
    }
    let edges: Vec<Edge> = g
        .par_vertices()
        .flat_map_iter(|u| {
            let remap = &remap;
            g.neighbors(u)
                .iter()
                .filter(move |&&v| u <= v && keep[u as usize] && keep[v as usize])
                .map(move |&v| (remap[u as usize], remap[v as usize]))
        })
        .collect();
    (
        GraphBuilder::from_edges(next as usize, &edges).build(),
        remap,
    )
}

/// Extracts one component (all vertices labeled `rep` in `labels`) as a
/// standalone graph.
///
/// # Panics
///
/// Panics if `labels.len() != g.num_vertices()`.
pub fn extract_component(g: &CsrGraph, labels: &[Node], rep: Node) -> (CsrGraph, Vec<Node>) {
    assert_eq!(labels.len(), g.num_vertices(), "label size mismatch");
    let keep: Vec<bool> = labels.par_iter().map(|&l| l == rep).collect();
    induced_subgraph(g, &keep)
}

/// Places `b` next to `a` with all of `b`'s vertex ids shifted past `a`'s:
/// the disjoint union. Component counts add.
///
/// ```
/// use afforest_graph::generators::classic::{cycle, path};
/// use afforest_graph::ops::disjoint_union;
///
/// let u = disjoint_union(&cycle(4), &path(3));
/// assert_eq!(u.num_vertices(), 7);
/// assert_eq!(u.num_edges(), 4 + 2);
/// ```
pub fn disjoint_union(a: &CsrGraph, b: &CsrGraph) -> CsrGraph {
    let offset = a.num_vertices() as Node;
    let mut edges = a.collect_edges();
    edges.extend(
        b.collect_edges()
            .into_iter()
            .map(|(u, v)| (u + offset, v + offset)),
    );
    GraphBuilder::from_edges(a.num_vertices() + b.num_vertices(), &edges).build()
}

/// Builds a standalone graph from an edge subset of `g` (same vertex
/// universe) — e.g. a sampled subgraph or a spanning forest.
pub fn subgraph_from_edges(g: &CsrGraph, edges: &[Edge]) -> CsrGraph {
    GraphBuilder::from_edges(g.num_vertices(), edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{cycle, path};
    use crate::generators::uniform_random;

    #[test]
    fn induced_subgraph_basic() {
        let g = path(5); // 0-1-2-3-4
        let keep = [true, true, false, true, true];
        let (h, remap) = induced_subgraph(&g, &keep);
        assert_eq!(h.num_vertices(), 4);
        // Edge 0-1 survives (remapped 0-1); edges through vertex 2 die;
        // edge 3-4 survives as 2-3.
        assert_eq!(h.num_edges(), 2);
        assert!(h.has_edge(0, 1));
        assert!(h.has_edge(2, 3));
        assert_eq!(remap[2], Node::MAX);
        assert_eq!(remap[3], 2);
    }

    #[test]
    fn induced_subgraph_keep_all_is_identity() {
        let g = cycle(10);
        let keep = vec![true; 10];
        let (h, _) = induced_subgraph(&g, &keep);
        assert_eq!(h, g);
    }

    #[test]
    fn induced_subgraph_keep_none() {
        let g = cycle(10);
        let keep = vec![false; 10];
        let (h, remap) = induced_subgraph(&g, &keep);
        assert_eq!(h.num_vertices(), 0);
        assert!(remap.iter().all(|&r| r == Node::MAX));
    }

    #[test]
    fn extract_component_pulls_one_piece() {
        // Two triangles: {0,1,2} and {3,4,5}.
        let g =
            GraphBuilder::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]).build();
        let labels = vec![0, 0, 0, 3, 3, 3];
        let (h, remap) = extract_component(&g, &labels, 3);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 3);
        assert_eq!(remap[3], 0);
        assert_eq!(remap[0], Node::MAX);
    }

    #[test]
    fn disjoint_union_adds_components() {
        let a = cycle(5);
        let b = path(4);
        let u = disjoint_union(&a, &b);
        assert_eq!(u.num_vertices(), 9);
        assert_eq!(u.num_edges(), 5 + 3);
        // b's edge 0-1 landed at 5-6.
        assert!(u.has_edge(5, 6));
        assert!(!u.has_edge(4, 5));
    }

    #[test]
    fn disjoint_union_with_empty() {
        let a = cycle(5);
        let empty = GraphBuilder::from_edges(0, &[]).build();
        assert_eq!(disjoint_union(&a, &empty), a);
        assert_eq!(disjoint_union(&empty, &a), a);
    }

    #[test]
    fn subgraph_from_edges_keeps_universe() {
        let g = uniform_random(100, 500, 1);
        let some: Vec<Edge> = g.collect_edges().into_iter().take(10).collect();
        let h = subgraph_from_edges(&g, &some);
        assert_eq!(h.num_vertices(), 100);
        assert_eq!(h.num_edges(), 10);
    }

    #[test]
    #[should_panic(expected = "mask size mismatch")]
    fn induced_subgraph_checks_size() {
        let g = path(3);
        let _ = induced_subgraph(&g, &[true]);
    }
}
