//! Additional interchange formats: DIMACS and METIS.
//!
//! Public graph repositories distribute the paper's dataset class in two
//! more formats beyond plain edge lists:
//!
//! - **DIMACS** (`.col`-style): `c` comment lines, one `p edge N M`
//!   problem line, then `e u v` edge lines, 1-indexed — used by the
//!   DIMACS implementation challenges (the road networks the paper
//!   evaluates originate from the 9th DIMACS challenge).
//! - **METIS** (`.graph`): header `N M`, then line `i` lists the
//!   (1-indexed) neighbors of vertex `i` — the format of the METIS
//!   partitioner ecosystem.

use crate::error::{Error, Result};
#[cfg(test)]
use crate::GraphBuilder;
use crate::{CsrGraph, EdgeList, Node};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Write};
use std::path::Path;

/// Reads a DIMACS `p edge` file.
pub fn read_dimacs<P: AsRef<Path>>(path: P) -> Result<EdgeList> {
    let invalid = |msg: String| Error::malformed("DIMACS", msg);
    let reader = BufReader::new(File::open(path)?);
    let mut declared: Option<(usize, usize)> = None;
    let mut edges: Vec<(Node, Node)> = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let mut it = line.split_whitespace();
        match it.next() {
            None | Some("c") => continue,
            Some("p") => {
                if declared.is_some() {
                    return Err(invalid(format!("duplicate problem line at {}", lineno + 1)));
                }
                let kind = it
                    .next()
                    .ok_or_else(|| invalid("missing problem kind".to_string()))?;
                if kind != "edge" && kind != "sp" {
                    return Err(invalid(format!("unsupported DIMACS kind '{kind}'")));
                }
                let n: usize = parse_tok("DIMACS", it.next(), lineno)?;
                let m: usize = parse_tok("DIMACS", it.next(), lineno)?;
                declared = Some((n, m));
                edges.reserve(m);
            }
            Some("e") | Some("a") => {
                let (n, _) = declared.ok_or_else(|| {
                    invalid(format!("edge before problem line at {}", lineno + 1))
                })?;
                let u: usize = parse_tok("DIMACS", it.next(), lineno)?;
                let v: usize = parse_tok("DIMACS", it.next(), lineno)?;
                if u == 0 || v == 0 || u > n || v > n {
                    return Err(invalid(format!(
                        "endpoint out of 1..={n} on line {}",
                        lineno + 1
                    )));
                }
                edges.push(((u - 1) as Node, (v - 1) as Node));
            }
            Some(other) => {
                return Err(invalid(format!(
                    "unknown DIMACS record '{other}' on line {}",
                    lineno + 1
                )))
            }
        }
    }
    let (n, _) = declared.ok_or_else(|| invalid("no problem line found".to_string()))?;
    Ok(EdgeList::from_vec(n, edges))
}

/// Writes a graph as a DIMACS `p edge` file (1-indexed).
pub fn write_dimacs<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "c afforest-rs export")?;
    writeln!(w, "p edge {} {}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "e {} {}", u + 1, v + 1)?;
    }
    w.flush()
}

/// Reads a METIS `.graph` file (unweighted; the optional `fmt` field must
/// be absent or `0`).
pub fn read_metis<P: AsRef<Path>>(path: P) -> Result<EdgeList> {
    let invalid = |msg: String| Error::malformed("METIS", msg);
    let reader = BufReader::new(File::open(path)?);
    let mut lines = reader.lines().enumerate().filter(|(_, l)| match l {
        Ok(s) => !s.trim_start().starts_with('%'),
        Err(_) => true,
    });
    let (hline, header) = lines
        .next()
        .ok_or_else(|| invalid("empty METIS file".to_string()))
        .and_then(|(i, l)| Ok((i, l?)))?;
    let mut it = header.split_whitespace();
    let n: usize = parse_tok("METIS", it.next(), hline)?;
    let m: usize = parse_tok("METIS", it.next(), hline)?;
    if let Some(fmt) = it.next() {
        if fmt != "0" && fmt != "000" {
            return Err(invalid(format!("unsupported METIS fmt '{fmt}'")));
        }
    }
    let mut edges: Vec<(Node, Node)> = Vec::with_capacity(m);
    let mut vertex = 0usize;
    for (lineno, line) in lines {
        let line = line?;
        if vertex >= n {
            if line.trim().is_empty() {
                continue;
            }
            return Err(invalid(format!(
                "more adjacency lines than vertices at line {}",
                lineno + 1
            )));
        }
        for tok in line.split_whitespace() {
            let w: usize = parse_tok("METIS", Some(tok), lineno)?;
            if w == 0 || w > n {
                return Err(invalid(format!(
                    "neighbor out of 1..={n} on line {}",
                    lineno + 1
                )));
            }
            // Each undirected edge appears in both adjacency lines; keep
            // one direction.
            if vertex < w {
                edges.push((vertex as Node, (w - 1) as Node));
            }
        }
        vertex += 1;
    }
    if vertex != n {
        return Err(invalid(format!(
            "expected {n} adjacency lines, found {vertex}"
        )));
    }
    Ok(EdgeList::from_vec(n, edges))
}

/// Writes a graph as a METIS `.graph` file.
pub fn write_metis<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "{} {}", g.num_vertices(), g.num_edges())?;
    for v in g.vertices() {
        let line: Vec<String> = g
            .neighbors(v)
            .iter()
            .map(|&x| (x + 1).to_string())
            .collect();
        writeln!(w, "{}", line.join(" "))?;
    }
    w.flush()
}

fn parse_tok<T: std::str::FromStr>(
    format: &'static str,
    tok: Option<&str>,
    lineno: usize,
) -> Result<T> {
    tok.ok_or_else(|| Error::malformed(format, format!("missing field on line {}", lineno + 1)))?
        .parse::<T>()
        .map_err(|_| Error::malformed(format, format!("bad number on line {}", lineno + 1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform_random;

    fn tempfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("afforest-fmt-test-{}-{}", std::process::id(), name));
        p
    }

    fn edges_sorted(g: &CsrGraph) -> Vec<(Node, Node)> {
        let mut e = g.collect_edges();
        e.sort_unstable();
        e
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = uniform_random(300, 1_500, 1);
        let p = tempfile("rt.dimacs");
        write_dimacs(&g, &p).unwrap();
        let g2 = GraphBuilder::from_edge_list(read_dimacs(&p).unwrap()).build();
        std::fs::remove_file(&p).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(edges_sorted(&g2), edges_sorted(&g));
    }

    #[test]
    fn metis_roundtrip() {
        let g = uniform_random(200, 900, 2);
        let p = tempfile("rt.metis");
        write_metis(&g, &p).unwrap();
        let g2 = GraphBuilder::from_edge_list(read_metis(&p).unwrap()).build();
        std::fs::remove_file(&p).unwrap();
        assert_eq!(g2, g);
    }

    #[test]
    fn dimacs_parses_comments_and_sp() {
        let p = tempfile("sp.dimacs");
        std::fs::write(&p, "c road graph\np sp 3 2\na 1 2\na 2 3\n").unwrap();
        let el = read_dimacs(&p).unwrap();
        std::fs::remove_file(&p).unwrap();
        assert_eq!(el.num_vertices(), 3);
        assert_eq!(el.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn dimacs_rejects_bad_input() {
        for (name, content, needle) in [
            ("noproblem", "e 1 2\n", "before problem line"),
            ("badkind", "p matrix 3 1\ne 1 2\n", "unsupported"),
            ("oob", "p edge 2 1\ne 1 5\n", "out of"),
            ("dup", "p edge 2 1\np edge 2 1\n", "duplicate"),
            ("garbage", "x 1 2\n", "unknown"),
            ("empty", "c nothing\n", "no problem line"),
        ] {
            let p = tempfile(name);
            std::fs::write(&p, content).unwrap();
            let err = read_dimacs(&p).unwrap_err();
            std::fs::remove_file(&p).unwrap();
            assert!(
                err.to_string().contains(needle),
                "{name}: '{err}' missing '{needle}'"
            );
        }
    }

    #[test]
    fn metis_parses_comments_and_isolated() {
        let p = tempfile("iso.metis");
        // 4 vertices, 2 edges; vertex 3 isolated.
        std::fs::write(&p, "% comment\n4 2\n2\n1 4\n\n2\n").unwrap();
        let el = read_metis(&p).unwrap();
        std::fs::remove_file(&p).unwrap();
        assert_eq!(el.num_vertices(), 4);
        let g = GraphBuilder::from_edge_list(el).build();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 3));
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn metis_rejects_bad_input() {
        for (name, content, needle) in [
            ("oob", "2 1\n5\n1\n", "out of"),
            ("toofew", "3 1\n2\n1\n", "expected 3"),
            ("badfmt", "2 1 011\n2\n1\n", "unsupported METIS fmt"),
        ] {
            let p = tempfile(name);
            std::fs::write(&p, content).unwrap();
            let err = read_metis(&p).unwrap_err();
            std::fs::remove_file(&p).unwrap();
            assert!(
                err.to_string().contains(needle),
                "{name}: '{err}' missing '{needle}'"
            );
        }
    }
}
