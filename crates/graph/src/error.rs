//! Unified error type for graph loading and raw-parts construction.
//!
//! Readers used to surface every problem as `std::io::Error` and the CSR
//! constructor panicked on inconsistent parts; both now funnel into
//! [`Error`], so a caller (notably the CLI loader) can print one readable
//! message regardless of whether the file was unreadable, syntactically
//! malformed, or structurally inconsistent.

use std::fmt;
use std::io;

/// What went wrong while loading or assembling a graph.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure (missing file, short read, …).
    Io(io::Error),
    /// The file was readable but is not a valid instance of the format.
    /// `format` names the format ("edge list", "DIMACS", …); `detail`
    /// explains why, with a 1-based line number where applicable.
    Malformed {
        /// Human-readable format name.
        format: &'static str,
        /// Reason the content was rejected.
        detail: String,
    },
    /// CSR parts are structurally inconsistent (offsets/targets).
    InvalidGraph(String),
}

/// Result alias for graph loading.
pub type Result<T> = std::result::Result<T, Error>;

impl Error {
    /// Shorthand for a [`Error::Malformed`] value.
    pub(crate) fn malformed(format: &'static str, detail: impl Into<String>) -> Error {
        Error::Malformed {
            format,
            detail: detail.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Io(e) => write!(f, "{e}"),
            Error::Malformed { format, detail } => write!(f, "malformed {format}: {detail}"),
            Error::InvalidGraph(detail) => write!(f, "invalid graph structure: {detail}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Error {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_is_readable() {
        let e = Error::from(io::Error::new(io::ErrorKind::NotFound, "no such file"));
        assert_eq!(e.to_string(), "no such file");
        let e = Error::malformed("DIMACS", "duplicate problem line at 3");
        assert_eq!(
            e.to_string(),
            "malformed DIMACS: duplicate problem line at 3"
        );
        let e = Error::InvalidGraph("offsets must start at 0".into());
        assert_eq!(
            e.to_string(),
            "invalid graph structure: offsets must start at 0"
        );
    }

    #[test]
    fn io_source_is_preserved() {
        let e = Error::from(io::Error::new(io::ErrorKind::UnexpectedEof, "short read"));
        assert!(e.source().is_some());
        assert!(Error::InvalidGraph("x".into()).source().is_none());
    }
}
