//! Parallel CSR construction.
//!
//! The builder mirrors GAPBS's `BuilderBase`: accumulate edges, symmetrize
//! (insert the reverse of every arc), count degrees, prefix-sum into
//! offsets, scatter targets, then sort each adjacency list and optionally
//! deduplicate. Everything after accumulation is parallel.

use crate::disjoint::DisjointWriter;
use crate::{CsrGraph, Edge, EdgeList, Node};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Configurable builder from edges to [`CsrGraph`].
///
/// ```
/// use afforest_graph::GraphBuilder;
/// let g = GraphBuilder::from_edges(3, &[(0, 1), (1, 2), (1, 2)]).build();
/// assert_eq!(g.num_edges(), 2); // duplicates removed by default
/// ```
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    num_vertices: usize,
    edges: Vec<Edge>,
    dedup: bool,
    drop_self_loops: bool,
}

impl GraphBuilder {
    /// Starts an empty builder over `num_vertices` vertices.
    pub fn new(num_vertices: usize) -> Self {
        Self {
            num_vertices,
            edges: Vec::new(),
            dedup: true,
            drop_self_loops: true,
        }
    }

    /// Builder seeded from a slice of undirected edges.
    pub fn from_edges(num_vertices: usize, edges: &[Edge]) -> Self {
        let mut b = Self::new(num_vertices);
        b.edges.extend_from_slice(edges);
        b
    }

    /// Builder consuming an [`EdgeList`].
    pub fn from_edge_list(el: EdgeList) -> Self {
        let num_vertices = el.num_vertices();
        let mut b = Self::new(num_vertices);
        b.edges = el.into_edges();
        b
    }

    /// Adds one undirected edge.
    pub fn add_edge(&mut self, u: Node, v: Node) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Whether to remove parallel (duplicate) edges. Default `true`.
    pub fn dedup(mut self, yes: bool) -> Self {
        self.dedup = yes;
        self
    }

    /// Whether to remove self-loops. Default `true`.
    ///
    /// Self-loops never affect connectivity; dropping them matches the GAP
    /// benchmark preprocessing.
    pub fn drop_self_loops(mut self, yes: bool) -> Self {
        self.drop_self_loops = yes;
        self
    }

    /// Builds the symmetrized CSR graph.
    ///
    /// # Panics
    ///
    /// Panics if any edge endpoint is `>= num_vertices`.
    pub fn build(self) -> CsrGraph {
        let n = self.num_vertices;
        assert!(
            self.edges
                .par_iter()
                .all(|&(u, v)| (u as usize) < n && (v as usize) < n),
            "edge endpoint out of range for {} vertices",
            n
        );

        // Filter self-loops up front (cheap, avoids two scatter slots each).
        let edges: Vec<Edge> = if self.drop_self_loops {
            self.edges
                .into_par_iter()
                .filter(|&(u, v)| u != v)
                .collect()
        } else {
            self.edges
        };

        // Degree counting over both arc directions, atomically.
        let degrees: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        edges.par_iter().for_each(|&(u, v)| {
            degrees[u as usize].fetch_add(1, Ordering::Relaxed);
            if u != v {
                degrees[v as usize].fetch_add(1, Ordering::Relaxed);
            }
        });

        // Exclusive prefix sum into offsets.
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degrees {
            acc += d.load(Ordering::Relaxed);
            offsets.push(acc);
        }

        // Scatter arcs. `cursor[v]` is the next free slot in v's adjacency:
        // fetch_add hands each slot index in [offsets[v], offsets[v+1]) to
        // exactly one arc (the prefix sum sized the ranges from the same
        // degree counts), which is the disjointness contract DisjointWriter
        // requires.
        let cursor: Vec<AtomicUsize> = offsets[..n].iter().map(|&o| AtomicUsize::new(o)).collect();
        let total = acc;
        let mut targets = vec![0 as Node; total];
        {
            let writer = DisjointWriter::new(&mut targets);
            edges.par_iter().for_each(|&(u, v)| {
                let iu = cursor[u as usize].fetch_add(1, Ordering::Relaxed);
                // SAFETY: `iu` was claimed exclusively by this arc via
                // fetch_add; no other write can receive the same index.
                unsafe { writer.write(iu, v) };
                if u != v {
                    let iv = cursor[v as usize].fetch_add(1, Ordering::Relaxed);
                    // SAFETY: as above — `iv` is exclusively claimed.
                    unsafe { writer.write(iv, u) };
                }
            });
        }

        // Sort each adjacency list; optionally dedup (which requires
        // rebuilding offsets).
        if self.dedup {
            let mut lists: Vec<Vec<Node>> = offsets
                .par_windows(2)
                .map(|w| {
                    let mut list = targets[w[0]..w[1]].to_vec();
                    list.sort_unstable();
                    list.dedup();
                    list
                })
                .collect();
            let mut new_offsets = Vec::with_capacity(n + 1);
            let mut acc = 0usize;
            new_offsets.push(0);
            for l in &lists {
                acc += l.len();
                new_offsets.push(acc);
            }
            let mut new_targets = Vec::with_capacity(acc);
            for l in &mut lists {
                new_targets.append(l);
            }
            CsrGraph::from_parts(new_offsets, new_targets)
        } else {
            sort_ranges(&mut targets, &offsets);
            CsrGraph::from_parts(offsets, targets)
        }
    }
}

/// Sorts each `targets[offsets[v]..offsets[v+1]]` range in parallel.
fn sort_ranges(targets: &mut [Node], offsets: &[usize]) {
    // Split the slice into per-vertex chunks without aliasing by walking the
    // offsets and using split_at_mut iteratively, then sort chunks in
    // parallel via rayon scope over the collected &mut slices.
    let mut rest = targets;
    let mut prev = 0usize;
    let mut chunks: Vec<&mut [Node]> = Vec::with_capacity(offsets.len() - 1);
    for &off in &offsets[1..] {
        let (chunk, tail) = rest.split_at_mut(off - prev);
        chunks.push(chunk);
        rest = tail;
        prev = off;
    }
    chunks.par_iter_mut().for_each(|c| c.sort_unstable());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetrizes() {
        let g = GraphBuilder::from_edges(3, &[(0, 1)]).build();
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(1), &[0]);
    }

    #[test]
    fn dedups_parallel_edges() {
        let g = GraphBuilder::from_edges(2, &[(0, 1), (0, 1), (1, 0)]).build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn keeps_parallel_edges_when_asked() {
        let g = GraphBuilder::from_edges(2, &[(0, 1), (0, 1)])
            .dedup(false)
            .build();
        assert_eq!(g.num_arcs(), 4);
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn drops_self_loops_by_default() {
        let g = GraphBuilder::from_edges(2, &[(0, 0), (0, 1)]).build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn keeps_self_loops_when_asked() {
        let g = GraphBuilder::from_edges(2, &[(0, 0), (0, 1)])
            .drop_self_loops(false)
            .dedup(false)
            .build();
        // Self-loop contributes one arc slot.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[0, 1]);
    }

    #[test]
    fn adjacency_sorted() {
        let g = GraphBuilder::from_edges(5, &[(0, 4), (0, 2), (0, 3), (0, 1)]).build();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }

    #[test]
    fn from_edge_list_roundtrip() {
        let mut el = EdgeList::new(4);
        el.push(0, 1);
        el.push(2, 3);
        let g = GraphBuilder::from_edge_list(el).build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn add_edge_chains() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range() {
        let _ = GraphBuilder::from_edges(2, &[(0, 5)]).build();
    }

    #[test]
    fn large_random_build_is_consistent() {
        // Deterministic pseudo-random edges; verify arc count and symmetry.
        let n = 1000u32;
        let mut edges = Vec::new();
        let mut x = 12345u64;
        for _ in 0..5000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let u = ((x >> 33) % n as u64) as Node;
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let v = ((x >> 33) % n as u64) as Node;
            edges.push((u, v));
        }
        let g = GraphBuilder::from_edges(n as usize, &edges).build();
        for u in 0..n {
            for &v in g.neighbors(u) {
                assert!(g.has_edge(v, u), "asymmetric edge ({u},{v})");
            }
            assert!(g.neighbors(u).windows(2).all(|w| w[0] < w[1]));
        }
    }
}
