//! Vertex permutation utilities.
//!
//! Afforest's hooking direction is index-ordered (higher roots hook under
//! lower roots — Invariant 1), so vertex numbering can influence constant
//! factors. These helpers produce random relabelings both for generator
//! scrambling and for the harness's numbering-sensitivity ablation.

use crate::generators::stream_rng;
use crate::{CsrGraph, GraphBuilder, Node};
use rand::Rng;
use rayon::prelude::*;

/// A uniformly random permutation of `0..n` (Fisher–Yates), deterministic
/// in `seed`.
pub fn random_permutation(n: usize, seed: u64) -> Vec<Node> {
    let mut perm: Vec<Node> = (0..n as Node).collect();
    let mut rng = stream_rng(seed, 0);
    for i in (1..n).rev() {
        perm.swap(i, rng.random_range(0..=i));
    }
    perm
}

/// The inverse of a permutation: `inv[perm[i]] == i`.
///
/// # Panics
///
/// Panics (in debug builds, via index checks) if `perm` is not a
/// permutation of `0..perm.len()`.
pub fn invert_permutation(perm: &[Node]) -> Vec<Node> {
    let mut inv = vec![0 as Node; perm.len()];
    for (i, &p) in perm.iter().enumerate() {
        inv[p as usize] = i as Node;
    }
    inv
}

/// Relabels a graph's vertices: vertex `v` becomes `perm[v]`.
///
/// The result is structurally isomorphic; connectivity labelings computed
/// before and after correspond through `perm`.
///
/// # Panics
///
/// Panics if `perm.len() != g.num_vertices()`.
pub fn relabel(g: &CsrGraph, perm: &[Node]) -> CsrGraph {
    assert_eq!(perm.len(), g.num_vertices(), "permutation size mismatch");
    let edges: Vec<(Node, Node)> = g
        .par_vertices()
        .flat_map_iter(|u| {
            g.neighbors(u)
                .iter()
                .filter(move |&&v| u <= v)
                .map(move |&v| (perm[u as usize], perm[v as usize]))
        })
        .collect();
    GraphBuilder::from_edges(g.num_vertices(), &edges).build()
}

/// Checks whether `perm` is a valid permutation of `0..perm.len()`.
pub fn is_permutation(perm: &[Node]) -> bool {
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        let p = p as usize;
        if p >= perm.len() || seen[p] {
            return false;
        }
        seen[p] = true;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::path;

    #[test]
    fn random_permutation_is_valid() {
        let p = random_permutation(1000, 5);
        assert!(is_permutation(&p));
    }

    #[test]
    fn random_permutation_deterministic() {
        assert_eq!(random_permutation(100, 1), random_permutation(100, 1));
        assert_ne!(random_permutation(100, 1), random_permutation(100, 2));
    }

    #[test]
    fn inverse_roundtrip() {
        let p = random_permutation(200, 7);
        let inv = invert_permutation(&p);
        for i in 0..200 {
            assert_eq!(inv[p[i] as usize], i as Node);
        }
    }

    #[test]
    fn relabel_preserves_structure() {
        let g = path(50);
        let p = random_permutation(50, 3);
        let h = relabel(&g, &p);
        assert_eq!(h.num_vertices(), 50);
        assert_eq!(h.num_edges(), 49);
        // Degrees transfer through the permutation.
        for v in 0..50u32 {
            assert_eq!(g.degree(v), h.degree(p[v as usize]));
        }
    }

    #[test]
    fn relabel_identity_is_noop() {
        let g = path(20);
        let id: Vec<Node> = (0..20).collect();
        assert_eq!(relabel(&g, &id), g);
    }

    #[test]
    fn is_permutation_rejects() {
        assert!(!is_permutation(&[0, 0]));
        assert!(!is_permutation(&[1, 2]));
        assert!(is_permutation(&[1, 0]));
        assert!(is_permutation(&[]));
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn relabel_size_checked() {
        let g = path(5);
        let _ = relabel(&g, &[0, 1]);
    }
}
