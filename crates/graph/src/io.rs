//! Graph serialization.
//!
//! Two formats:
//!
//! - **Text edge list** (`.el`): one `u v` pair per line, `#` comments and
//!   blank lines ignored — the interchange format used by GAPBS and most
//!   public graph repositories (so real datasets can be dropped in when
//!   available).
//! - **Binary CSR** (`.acsr`): a little-endian dump of the offsets/targets
//!   arrays with a magic header, for fast reload of generated benchmarks.

use crate::error::{Error, Result};
use crate::{CsrGraph, EdgeList, GraphBuilder, Node};
use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying the binary CSR format, followed by a version.
const MAGIC: &[u8; 8] = b"AFCSR\x00\x00\x01";

/// Reads a text edge list. Lines are `u v` (whitespace separated);
/// `#`-prefixed lines and blank lines are skipped. The vertex universe is
/// `max endpoint + 1` unless `min_vertices` demands more.
pub fn read_edge_list<P: AsRef<Path>>(path: P, min_vertices: usize) -> Result<EdgeList> {
    let file = File::open(path)?;
    let reader = BufReader::new(file);
    let mut edges: Vec<(Node, Node)> = Vec::new();
    let mut max_v = 0usize;
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| -> Result<Node> {
            tok.ok_or_else(|| bad_line(lineno))?
                .parse::<Node>()
                .map_err(|_| bad_line(lineno))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        max_v = max_v.max(u.max(v) as usize + 1);
        edges.push((u, v));
    }
    let n = max_v.max(min_vertices);
    Ok(EdgeList::from_vec(n, edges))
}

fn bad_line(lineno: usize) -> Error {
    Error::malformed(
        "edge list",
        format!("expected two integer endpoints on line {}", lineno + 1),
    )
}

/// Writes a graph as a text edge list (each undirected edge once, `u <= v`).
pub fn write_edge_list<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(
        w,
        "# {} vertices, {} undirected edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{} {}", u, v)?;
    }
    w.flush()
}

/// Writes a graph in the binary CSR format.
pub fn write_binary<P: AsRef<Path>>(g: &CsrGraph, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(MAGIC)?;
    w.write_all(&(g.num_vertices() as u64).to_le_bytes())?;
    w.write_all(&(g.num_arcs() as u64).to_le_bytes())?;
    for &o in g.offsets() {
        w.write_all(&(o as u64).to_le_bytes())?;
    }
    for &t in g.targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a graph from the binary CSR format.
///
/// Corrupt files — bad magic, truncation, or offsets/targets that do not
/// describe a CSR structure — come back as [`Error::Malformed`] /
/// [`Error::InvalidGraph`] rather than panicking.
pub fn read_binary<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(Error::malformed("AFCSR", "not an AFCSR file (bad magic)"));
    }
    let n = read_u64(&mut r)? as usize;
    let arcs = read_u64(&mut r)? as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        offsets.push(read_u64(&mut r)? as usize);
    }
    let mut targets = Vec::with_capacity(arcs);
    let mut buf = [0u8; 4];
    for _ in 0..arcs {
        r.read_exact(&mut buf)?;
        targets.push(Node::from_le_bytes(buf));
    }
    if offsets.last().copied() != Some(arcs) {
        return Err(Error::malformed(
            "AFCSR",
            "offsets inconsistent with arc count",
        ));
    }
    CsrGraph::try_from_parts(offsets, targets)
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Magic bytes identifying a serialized node array (parent snapshots,
/// label dumps), followed by a version.
const ARRAY_MAGIC: &[u8; 8] = b"AFARR\x00\x00\x01";

/// FNV-1a 64-bit checksum, the integrity check shared by the node-array
/// format and `afforest-serve`'s write-ahead log. Not cryptographic —
/// it detects torn writes and bit rot, which is all a local log needs.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Writes a node array (e.g. a parent-pointer snapshot) with a magic
/// header, length, payload, and trailing FNV-1a checksum, so a torn or
/// bit-rotted file is detected on read rather than silently restored.
pub fn write_node_array<P: AsRef<Path>>(path: P, nodes: &[Node]) -> io::Result<()> {
    let mut payload = Vec::with_capacity(nodes.len() * 4);
    for &v in nodes {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(ARRAY_MAGIC)?;
    w.write_all(&(nodes.len() as u64).to_le_bytes())?;
    w.write_all(&payload)?;
    w.write_all(&checksum64(&payload).to_le_bytes())?;
    w.flush()
}

/// Reads a node array written by [`write_node_array`]. Bad magic,
/// truncation, and checksum mismatches all come back as
/// [`Error::Malformed`], never a panic.
pub fn read_node_array<P: AsRef<Path>>(path: P) -> Result<Vec<Node>> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != ARRAY_MAGIC {
        return Err(Error::malformed("AFARR", "not an AFARR file (bad magic)"));
    }
    let len = read_u64(&mut r)? as usize;
    let mut payload = vec![
        0u8;
        len.checked_mul(4).ok_or_else(|| {
            Error::malformed("AFARR", "declared length overflows")
        })?
    ];
    r.read_exact(&mut payload)?;
    let declared = read_u64(&mut r)?;
    if checksum64(&payload) != declared {
        return Err(Error::malformed("AFARR", "checksum mismatch"));
    }
    Ok(payload
        .chunks_exact(4)
        .map(|b| Node::from_le_bytes([b[0], b[1], b[2], b[3]]))
        .collect())
}

/// Loads a text edge list straight into a CSR graph.
///
/// ```no_run
/// let g = afforest_graph::io::load_edge_list_graph("graph.el").unwrap();
/// println!("{} vertices", g.num_vertices());
/// ```
pub fn load_edge_list_graph<P: AsRef<Path>>(path: P) -> Result<CsrGraph> {
    let el = read_edge_list(path, 0)?;
    Ok(GraphBuilder::from_edge_list(el).build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform_random;

    fn tempfile(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("afforest-io-test-{}-{}", std::process::id(), name));
        p
    }

    #[test]
    fn text_roundtrip() {
        let g = uniform_random(200, 600, 4);
        let p = tempfile("roundtrip.el");
        write_edge_list(&g, &p).unwrap();
        let g2 = load_edge_list_graph(&p).unwrap();
        std::fs::remove_file(&p).unwrap();
        // Vertex universe can shrink if trailing vertices are isolated;
        // compare edges instead.
        let mut e1 = g.collect_edges();
        let mut e2 = g2.collect_edges();
        e1.sort_unstable();
        e2.sort_unstable();
        assert_eq!(e1, e2);
    }

    #[test]
    fn binary_roundtrip_exact() {
        let g = uniform_random(300, 1500, 6);
        let p = tempfile("roundtrip.acsr");
        write_binary(&g, &p).unwrap();
        let g2 = read_binary(&p).unwrap();
        std::fs::remove_file(&p).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn node_array_roundtrip_and_corruption() {
        let nodes: Vec<Node> = (0..500).map(|v| v / 3).collect();
        let p = tempfile("parents.arr");
        write_node_array(&p, &nodes).unwrap();
        assert_eq!(read_node_array(&p).unwrap(), nodes);

        // Flip one payload byte: checksum mismatch, typed error.
        let mut bytes = std::fs::read(&p).unwrap();
        bytes[20] ^= 0xFF;
        std::fs::write(&p, &bytes).unwrap();
        let err = read_node_array(&p).unwrap_err();
        assert!(err.to_string().contains("checksum"), "{err}");

        // Truncate mid-payload: io error, not a panic.
        std::fs::write(&p, &bytes[..30]).unwrap();
        assert!(read_node_array(&p).is_err());

        // Wrong magic.
        std::fs::write(&p, b"NOTMAGIC????????????????").unwrap();
        let err = read_node_array(&p).unwrap_err();
        assert!(err.to_string().contains("magic"), "{err}");
        std::fs::remove_file(&p).unwrap();

        // Empty arrays roundtrip too.
        let p2 = tempfile("empty.arr");
        write_node_array(&p2, &[]).unwrap();
        assert_eq!(read_node_array(&p2).unwrap(), Vec::<Node>::new());
        std::fs::remove_file(&p2).unwrap();
    }

    #[test]
    fn text_parser_skips_comments_and_blanks() {
        let p = tempfile("comments.el");
        {
            let mut f = File::create(&p).unwrap();
            writeln!(f, "# header").unwrap();
            writeln!(f).unwrap();
            writeln!(f, "0 1").unwrap();
            writeln!(f, "  2   3  ").unwrap();
        }
        let el = read_edge_list(&p, 0).unwrap();
        std::fs::remove_file(&p).unwrap();
        assert_eq!(el.edges(), &[(0, 1), (2, 3)]);
        assert_eq!(el.num_vertices(), 4);
    }

    #[test]
    fn text_parser_reports_bad_lines() {
        let p = tempfile("bad.el");
        std::fs::write(&p, "0 1\nnot numbers\n").unwrap();
        let err = read_edge_list(&p, 0).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn min_vertices_grows_universe() {
        let p = tempfile("minv.el");
        std::fs::write(&p, "0 1\n").unwrap();
        let el = read_edge_list(&p, 10).unwrap();
        std::fs::remove_file(&p).unwrap();
        assert_eq!(el.num_vertices(), 10);
    }

    #[test]
    fn binary_rejects_garbage() {
        let p = tempfile("garbage.acsr");
        std::fs::write(&p, b"definitely not a graph").unwrap();
        let err = read_binary(&p).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(err.to_string().contains("magic"));
        assert!(matches!(err, Error::Malformed { .. }));
    }

    #[test]
    fn binary_rejects_truncation_without_panicking() {
        let g = uniform_random(100, 400, 3);
        let p = tempfile("truncated.acsr");
        write_binary(&g, &p).unwrap();
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() / 2]).unwrap();
        let err = read_binary(&p).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(matches!(err, Error::Io(_)), "got {err}");
    }

    #[test]
    fn binary_rejects_inconsistent_structure_without_panicking() {
        // Valid magic and counts (n = 2, arcs = 2) but non-monotone
        // offsets [0, 3, 2]: the last entry matches the arc count, so the
        // structural validation inside try_from_parts must catch it.
        let p = tempfile("badstructure.acsr");
        let mut bytes: Vec<u8> = Vec::new();
        bytes.extend_from_slice(MAGIC);
        bytes.extend_from_slice(&2u64.to_le_bytes()); // n
        bytes.extend_from_slice(&2u64.to_le_bytes()); // arcs
        for o in [0u64, 3, 2] {
            bytes.extend_from_slice(&o.to_le_bytes());
        }
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&1u32.to_le_bytes());
        std::fs::write(&p, &bytes).unwrap();
        let err = read_binary(&p).unwrap_err();
        std::fs::remove_file(&p).unwrap();
        assert!(matches!(err, Error::InvalidGraph(_)), "got {err}");
        assert!(err.to_string().contains("monotone"));
    }
}
