//! Graph statistics (Table III).
//!
//! Computes the columns the paper reports for every dataset: vertex and
//! edge counts, average/maximum degree, number of connected components `C`,
//! the size of the largest component `|c_max|`, and an approximate diameter
//! `D` (double-sweep BFS lower bound — the standard estimator; exact
//! diameter is infeasible on large instances and the paper itself reports
//! approximate values).

use crate::{CsrGraph, Node};
use std::collections::VecDeque;

/// Summary statistics for one graph, mirroring a Table III row.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Number of vertices `|V|`.
    pub num_vertices: usize,
    /// Number of undirected edges `|E|`.
    pub num_edges: usize,
    /// Average degree `2|E| / |V|`.
    pub avg_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Number of connected components `C`.
    pub num_components: usize,
    /// Vertices in the largest component `|c_max|`.
    pub largest_component: usize,
    /// Approximate diameter (double-sweep BFS lower bound over the largest
    /// component).
    pub approx_diameter: usize,
}

impl GraphStats {
    /// Computes all statistics for `g`.
    ///
    /// ```
    /// use afforest_graph::{GraphBuilder, GraphStats};
    ///
    /// let g = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (3, 4)]).build();
    /// let s = GraphStats::compute(&g);
    /// assert_eq!(s.num_components, 2);
    /// assert_eq!(s.largest_component, 3);
    /// assert_eq!(s.approx_diameter, 2);
    /// ```
    pub fn compute(g: &CsrGraph) -> Self {
        let (num_components, comp_of, largest_component, largest_rep) = component_structure(g);
        let approx_diameter = if largest_component <= 1 {
            0
        } else {
            double_sweep_diameter(g, largest_rep, &comp_of)
        };
        Self {
            num_vertices: g.num_vertices(),
            num_edges: g.num_edges(),
            avg_degree: g.avg_degree(),
            max_degree: g.max_degree(),
            num_components,
            largest_component,
            approx_diameter,
        }
    }

    /// Fraction of vertices inside the largest component.
    pub fn largest_component_fraction(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.largest_component as f64 / self.num_vertices as f64
        }
    }
}

/// Sequential union-find over all edges; returns
/// `(component count, component id per vertex, |c_max|, a vertex of c_max)`.
fn component_structure(g: &CsrGraph) -> (usize, Vec<Node>, usize, Node) {
    let n = g.num_vertices();
    let mut parent: Vec<Node> = (0..n as Node).collect();

    fn find(parent: &mut [Node], mut x: Node) -> Node {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }

    for u in g.vertices() {
        for &v in g.neighbors(u) {
            if u < v {
                let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
                if ru != rv {
                    let (lo, hi) = (ru.min(rv), ru.max(rv));
                    parent[hi as usize] = lo;
                }
            }
        }
    }

    let mut comp_of = vec![0 as Node; n];
    let mut sizes: Vec<usize> = Vec::new();
    let mut count = 0usize;
    // Roots get ids in index order; map every vertex through `find`.
    let mut root_id = vec![Node::MAX; n];
    for v in 0..n as Node {
        let r = find(&mut parent, v);
        let id = if root_id[r as usize] == Node::MAX {
            root_id[r as usize] = count as Node;
            sizes.push(0);
            count += 1;
            root_id[r as usize]
        } else {
            root_id[r as usize]
        };
        comp_of[v as usize] = id;
        sizes[id as usize] += 1;
    }

    if n == 0 {
        return (0, comp_of, 0, 0);
    }
    let (best_id, &best_size) = sizes
        .iter()
        .enumerate()
        .max_by_key(|&(_, s)| *s)
        .expect("non-empty");
    let rep = comp_of
        .iter()
        .position(|&c| c as usize == best_id)
        .expect("component has a member") as Node;
    (count, comp_of, best_size, rep)
}

/// Exact diameter by all-pairs BFS — `O(|V| · |E|)`, intended for
/// validating the double-sweep estimate on small graphs. Returns `None`
/// when the graph exceeds `max_vertices` (the cost guard) or is empty.
///
/// ```
/// use afforest_graph::generators::grid::full_grid;
/// use afforest_graph::stats::exact_diameter;
///
/// let g = full_grid(5, 4);
/// assert_eq!(exact_diameter(&g, 1_000), Some(7)); // (5−1) + (4−1)
/// ```
pub fn exact_diameter(g: &CsrGraph, max_vertices: usize) -> Option<usize> {
    let n = g.num_vertices();
    if n == 0 || n > max_vertices {
        return None;
    }
    use rayon::prelude::*;
    let diameter = (0..n as Node)
        .into_par_iter()
        .map(|start| {
            let mut dist = vec![u32::MAX; n];
            let mut q = VecDeque::new();
            dist[start as usize] = 0;
            q.push_back(start);
            let mut ecc = 0usize;
            while let Some(u) = q.pop_front() {
                let du = dist[u as usize];
                ecc = ecc.max(du as usize);
                for &v in g.neighbors(u) {
                    if dist[v as usize] == u32::MAX {
                        dist[v as usize] = du + 1;
                        q.push_back(v);
                    }
                }
            }
            ecc
        })
        .max()
        .unwrap_or(0);
    Some(diameter)
}

/// Double-sweep BFS: run BFS from `start`, then from the farthest vertex
/// found; the second eccentricity lower-bounds the component diameter and
/// is exact on trees.
fn double_sweep_diameter(g: &CsrGraph, start: Node, comp_of: &[Node]) -> usize {
    let (far, _) = bfs_farthest(g, start, comp_of);
    let (_, dist) = bfs_farthest(g, far, comp_of);
    dist
}

/// BFS within `start`'s component; returns the farthest vertex and its
/// distance.
fn bfs_farthest(g: &CsrGraph, start: Node, comp_of: &[Node]) -> (Node, usize) {
    let comp = comp_of[start as usize];
    let mut dist: Vec<u32> = vec![u32::MAX; g.num_vertices()];
    let mut q = VecDeque::new();
    dist[start as usize] = 0;
    q.push_back(start);
    let mut far = (start, 0usize);
    while let Some(u) = q.pop_front() {
        let du = dist[u as usize];
        if (du as usize) > far.1 {
            far = (u, du as usize);
        }
        for &v in g.neighbors(u) {
            if comp_of[v as usize] == comp && dist[v as usize] == u32::MAX {
                dist[v as usize] = du + 1;
                q.push_back(v);
            }
        }
    }
    far
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{complete, cycle, path, star};
    use crate::generators::{road_network, uniform_random};
    use crate::GraphBuilder;

    #[test]
    fn path_stats() {
        let s = GraphStats::compute(&path(10));
        assert_eq!(s.num_vertices, 10);
        assert_eq!(s.num_edges, 9);
        assert_eq!(s.num_components, 1);
        assert_eq!(s.largest_component, 10);
        assert_eq!(s.approx_diameter, 9);
        assert_eq!(s.max_degree, 2);
    }

    #[test]
    fn cycle_diameter_lower_bound() {
        let s = GraphStats::compute(&cycle(10));
        // Double sweep on a cycle gives the exact diameter 5.
        assert_eq!(s.approx_diameter, 5);
    }

    #[test]
    fn star_stats() {
        let s = GraphStats::compute(&star(8, 0));
        assert_eq!(s.approx_diameter, 2);
        assert_eq!(s.max_degree, 7);
        assert_eq!(s.num_components, 1);
    }

    #[test]
    fn complete_diameter_one() {
        let s = GraphStats::compute(&complete(6));
        assert_eq!(s.approx_diameter, 1);
    }

    #[test]
    fn multi_component() {
        let g = GraphBuilder::from_edges(7, &[(0, 1), (1, 2), (3, 4)]).build();
        let s = GraphStats::compute(&g);
        // Components: {0,1,2}, {3,4}, {5}, {6}.
        assert_eq!(s.num_components, 4);
        assert_eq!(s.largest_component, 3);
        assert!((s.largest_component_fraction() - 3.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::from_edges(0, &[]).build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_components, 0);
        assert_eq!(s.approx_diameter, 0);
        assert_eq!(s.largest_component_fraction(), 0.0);
    }

    #[test]
    fn singleton_vertices() {
        let g = GraphBuilder::from_edges(3, &[]).build();
        let s = GraphStats::compute(&g);
        assert_eq!(s.num_components, 3);
        assert_eq!(s.largest_component, 1);
        assert_eq!(s.approx_diameter, 0);
    }

    #[test]
    fn grid_diameter_scales_like_sqrt_n() {
        let s = GraphStats::compute(&crate::generators::grid::full_grid(30, 30));
        // True diameter of a 30×30 grid is 58; double sweep finds it.
        assert_eq!(s.approx_diameter, 58);
    }

    #[test]
    fn urand_has_giant_component() {
        let s = GraphStats::compute(&uniform_random(5000, 40_000, 1));
        assert!(s.largest_component_fraction() > 0.99);
    }

    #[test]
    fn road_network_is_fragmented() {
        let s = GraphStats::compute(&road_network(80, 80, 0.55, 0.0, 2));
        assert!(s.num_components > 10, "components: {}", s.num_components);
    }

    #[test]
    fn exact_diameter_validates_double_sweep() {
        use crate::generators::uniform_random;
        // Double sweep is a lower bound on the exact diameter, and exact
        // on the structured cases above.
        for g in [
            crate::generators::grid::full_grid(12, 9),
            uniform_random(300, 1_200, 3),
            crate::generators::classic::binary_tree(127),
        ] {
            let exact = exact_diameter(&g, 10_000).unwrap();
            let approx = GraphStats::compute(&g).approx_diameter;
            assert!(approx <= exact, "approx {approx} > exact {exact}");
            // Double sweep is known-tight on these families.
            assert!(
                exact <= approx + 2,
                "double sweep too loose: {approx} vs {exact}"
            );
        }
    }

    #[test]
    fn exact_diameter_guard() {
        let g = path(10);
        assert_eq!(exact_diameter(&g, 5), None); // over the size guard
        assert_eq!(exact_diameter(&g, 100), Some(9));
        let empty = GraphBuilder::from_edges(0, &[]).build();
        assert_eq!(exact_diameter(&empty, 100), None);
    }
}
