//! Immutable Compressed-Sparse-Row (CSR) graph.
//!
//! The CSR layout stores, for every vertex `v`, the half-open slice
//! `targets[offsets[v] .. offsets[v + 1]]` of its neighbors, sorted
//! ascending. For an undirected graph every edge `{u, v}` appears twice —
//! once in each endpoint's adjacency — exactly like the representation the
//! paper's algorithms traverse ("each unordered edge is accessed twice,
//! once from each direction", Section IV-D). Theorem 3's large-component
//! skip depends on that redundancy.

use crate::{Edge, Error, Node};
use rayon::prelude::*;

/// An immutable undirected graph in CSR form.
///
/// Construction goes through [`crate::GraphBuilder`], which symmetrizes,
/// sorts, and deduplicates the input edges. All query methods are `O(1)` or
/// `O(log degree)` and the structure is freely shareable across threads.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`.
    /// Length `num_vertices + 1`; `offsets[0] == 0`.
    offsets: Box<[usize]>,
    /// Concatenated sorted adjacency lists. Length = 2 × undirected edges.
    targets: Box<[Node]>,
}

impl CsrGraph {
    /// Assembles a CSR graph from raw parts.
    ///
    /// # Panics
    ///
    /// Panics if the offsets are not monotone, do not start at 0, do not end
    /// at `targets.len()`, or if any target is out of range — use
    /// [`CsrGraph::try_from_parts`] to get an error instead. Adjacency lists
    /// need not be sorted here (the builder sorts them), but all public
    /// constructors produce sorted lists.
    pub fn from_parts(offsets: Vec<usize>, targets: Vec<Node>) -> Self {
        Self::try_from_parts(offsets, targets).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible variant of [`CsrGraph::from_parts`]: returns
    /// [`Error::InvalidGraph`] instead of panicking, so deserializers can
    /// reject corrupt files gracefully.
    pub fn try_from_parts(offsets: Vec<usize>, targets: Vec<Node>) -> Result<Self, Error> {
        let invalid = |msg: &str| Err(Error::InvalidGraph(msg.to_string()));
        if offsets.is_empty() {
            return invalid("offsets must have at least one entry");
        }
        if offsets[0] != 0 {
            return invalid("offsets must start at 0");
        }
        if *offsets.last().unwrap() != targets.len() {
            return invalid("offsets must end at targets.len()");
        }
        if !offsets.windows(2).all(|w| w[0] <= w[1]) {
            return invalid("offsets must be monotone non-decreasing");
        }
        let n = offsets.len() - 1;
        if !targets.iter().all(|&t| (t as usize) < n) {
            return invalid("edge target out of range");
        }
        Ok(Self {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
        })
    }

    /// Number of vertices `|V|`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of *undirected* edges `|E|` (each stored twice internally).
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.targets.len() / 2
    }

    /// Number of directed arcs stored (`2 |E|`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.targets.len()
    }

    /// Degree of vertex `v`.
    #[inline]
    pub fn degree(&self, v: Node) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbor slice of vertex `v`.
    #[inline]
    pub fn neighbors(&self, v: Node) -> &[Node] {
        let v = v as usize;
        &self.targets[self.offsets[v]..self.offsets[v + 1]]
    }

    /// The `i`-th neighbor of `v` (`i < degree(v)`), used by the paper's
    /// neighbor-round sampling which links "the same neighbor index during
    /// each link round" (Section VI-A).
    #[inline]
    pub fn neighbor(&self, v: Node, i: usize) -> Node {
        self.targets[self.offsets[v as usize] + i]
    }

    /// Whether the undirected edge `{u, v}` is present (binary search).
    pub fn has_edge(&self, u: Node, v: Node) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all vertices `0..|V|`.
    pub fn vertices(&self) -> impl Iterator<Item = Node> + '_ {
        0..self.num_vertices() as Node
    }

    /// Parallel iterator over all vertices.
    pub fn par_vertices(&self) -> impl IndexedParallelIterator<Item = Node> + '_ {
        (0..self.num_vertices() as Node).into_par_iter()
    }

    /// Iterator over every undirected edge exactly once (`u < v` only for
    /// distinct endpoints; self-loops, if any survive construction, appear
    /// once).
    pub fn edges(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |&&v| u <= v)
                .map(move |&v| (u, v))
        })
    }

    /// Iterator over every directed arc `(u, v)` (each undirected edge twice).
    pub fn arcs(&self) -> impl Iterator<Item = Edge> + '_ {
        self.vertices()
            .flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Collects every undirected edge exactly once into a vector (parallel).
    pub fn collect_edges(&self) -> Vec<Edge> {
        self.par_vertices()
            .flat_map_iter(|u| {
                self.neighbors(u)
                    .iter()
                    .filter(move |&&v| u <= v)
                    .map(move |&v| (u, v))
            })
            .collect()
    }

    /// Maximum degree across all vertices (parallel reduction).
    pub fn max_degree(&self) -> usize {
        self.par_vertices()
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Average degree `2|E| / |V|`.
    pub fn avg_degree(&self) -> f64 {
        if self.num_vertices() == 0 {
            0.0
        } else {
            self.num_arcs() as f64 / self.num_vertices() as f64
        }
    }

    /// Raw offsets slice (exposed for zero-copy serialization and harness
    /// code that partitions the arc range).
    #[inline]
    pub fn offsets(&self) -> &[usize] {
        &self.offsets
    }

    /// Raw targets slice.
    #[inline]
    pub fn targets(&self) -> &[Node] {
        &self.targets
    }

    /// Estimated resident size in bytes (offsets + targets arrays).
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * size_of::<usize>() + self.targets.len() * size_of::<Node>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_edge() -> CsrGraph {
        GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]).build()
    }

    #[test]
    fn counts() {
        let g = triangle_plus_edge();
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.num_arcs(), 8);
    }

    #[test]
    fn degrees_and_neighbors() {
        let g = triangle_plus_edge();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(4), &[3]);
        assert_eq!(g.neighbor(0, 1), 2);
    }

    #[test]
    fn has_edge_both_directions() {
        let g = triangle_plus_edge();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 3));
    }

    #[test]
    fn edges_are_unique_and_canonical() {
        let g = triangle_plus_edge();
        let mut es: Vec<_> = g.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 2), (3, 4)]);
    }

    #[test]
    fn collect_edges_matches_sequential() {
        let g = triangle_plus_edge();
        let mut par = g.collect_edges();
        par.sort_unstable();
        let mut seq: Vec<_> = g.edges().collect();
        seq.sort_unstable();
        assert_eq!(par, seq);
    }

    #[test]
    fn arcs_double_edges() {
        let g = triangle_plus_edge();
        assert_eq!(g.arcs().count(), 2 * g.num_edges());
    }

    #[test]
    fn degree_stats() {
        let g = triangle_plus_edge();
        assert_eq!(g.max_degree(), 2);
        assert!((g.avg_degree() - 1.6).abs() < 1e-12);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::from_edges(0, &[]).build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
        assert_eq!(g.avg_degree(), 0.0);
    }

    #[test]
    fn isolated_vertices() {
        let g = GraphBuilder::from_edges(10, &[(0, 1)]).build();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(5), 0);
        assert!(g.neighbors(9).is_empty());
    }

    #[test]
    #[should_panic(expected = "offsets must start at 0")]
    fn bad_offsets_start() {
        let _ = CsrGraph::from_parts(vec![1, 2], vec![0, 0]);
    }

    #[test]
    #[should_panic(expected = "edge target out of range")]
    fn bad_target() {
        let _ = CsrGraph::from_parts(vec![0, 1], vec![7]);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_offsets() {
        let _ = CsrGraph::from_parts(vec![0, 2, 1, 3], vec![0, 1, 2]);
    }

    #[test]
    fn size_bytes_positive() {
        let g = triangle_plus_edge();
        assert!(g.size_bytes() >= 8 * std::mem::size_of::<Node>());
    }
}
