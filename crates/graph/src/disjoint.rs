//! Disjoint parallel writes into a single slice.
//!
//! The CSR scatter phase ([`crate::builder`]) claims one slot per arc with
//! an atomic `fetch_add` cursor and then writes each slot from whichever
//! rayon worker claimed it. The claim protocol guarantees every index is
//! handed out exactly once, so the writes are race-free — but the borrow
//! checker cannot see a protocol, only a `&mut [T]` crossing thread
//! boundaries. [`DisjointWriter`] packages the one unsafe capability the
//! scatter needs ("write this index I exclusively own") behind an explicit
//! contract, instead of scattering raw-pointer arithmetic through
//! algorithm code.
//!
//! Bounds are always checked: an out-of-range index panics rather than
//! touching memory. The `unsafe` contract is therefore exactly one
//! clause — index disjointness across concurrent writers — which is the
//! part only the surrounding claim protocol can guarantee.

use std::cell::UnsafeCell;

/// A shared handle for writing disjoint elements of a borrowed slice from
/// many threads at once.
///
/// ```
/// use afforest_graph::disjoint::DisjointWriter;
/// let mut data = vec![0u32; 4];
/// let w = DisjointWriter::new(&mut data);
/// // Each index written at most once — the contract `write` requires.
/// // SAFETY: indices 0..4 are all distinct.
/// unsafe {
///     w.write(0, 10);
///     w.write(3, 40);
/// }
/// drop(w);
/// assert_eq!(data, [10, 0, 0, 40]);
/// ```
pub struct DisjointWriter<'a, T> {
    /// The borrowed storage. `UnsafeCell` makes interior writes through a
    /// shared reference defined behaviour at the language level; the
    /// disjointness contract of [`DisjointWriter::write`] rules out the
    /// data races that shared mutation could otherwise cause.
    slots: &'a [UnsafeCell<T>],
}

// SAFETY: sharing a `DisjointWriter` across threads exposes exactly one
// operation, `write`, whose contract requires that no two threads ever
// touch the same index. Under that contract, concurrent `write` calls
// access disjoint memory locations, so there are no data races; `T: Send`
// is required because values of `T` are moved into the slice from foreign
// threads. No `&T` to the contents is ever handed out while writers run,
// so `T: Sync` is not needed.
unsafe impl<T: Send> Sync for DisjointWriter<'_, T> {}

// SAFETY: the writer is just a borrow of the slice plus no thread-affine
// state; moving it to another thread moves nothing but the reference.
// `T: Send` for the same reason as in the `Sync` impl.
unsafe impl<T: Send> Send for DisjointWriter<'_, T> {}

impl<'a, T> DisjointWriter<'a, T> {
    /// Wraps a mutable slice for disjoint parallel writing. The exclusive
    /// borrow is held for the writer's whole lifetime, so no other safe
    /// access to `slice` can coexist with it.
    pub fn new(slice: &'a mut [T]) -> Self {
        // SAFETY: `UnsafeCell<T>` has the same layout as `T` (it is
        // `repr(transparent)`), so reinterpreting `&mut [T]` as
        // `&[UnsafeCell<T>]` is sound; the exclusive borrow we consume
        // guarantees nobody else can observe the slice while the writer
        // (and the shared references derived from it) lives.
        let slots = unsafe { &*(slice as *mut [T] as *const [UnsafeCell<T>]) };
        Self { slots }
    }

    /// Number of writable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the underlying slice is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Writes `value` into slot `index`.
    ///
    /// Bounds are checked: `index >= self.len()` panics.
    ///
    /// # Safety
    ///
    /// No other call — on this or any other thread — may write the same
    /// `index` concurrently or at any other time during this writer's
    /// lifetime, and the previous value at `index` must not be read until
    /// the writer is dropped. In the CSR scatter this holds because each
    /// index is claimed exactly once via `fetch_add` on a per-vertex
    /// cursor.
    pub unsafe fn write(&self, index: usize, value: T) {
        let cell = &self.slots[index];
        // SAFETY: caller guarantees exclusive access to this index, so the
        // raw write through the cell cannot race with any other access.
        unsafe { *cell.get() = value };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn sequential_disjoint_writes() {
        let mut data = vec![0usize; 16];
        {
            let w = DisjointWriter::new(&mut data);
            assert_eq!(w.len(), 16);
            assert!(!w.is_empty());
            for i in 0..16 {
                // SAFETY: each index written exactly once.
                unsafe { w.write(i, i * i) };
            }
        }
        assert_eq!(data[5], 25);
        assert_eq!(data[15], 225);
    }

    #[test]
    fn parallel_scatter_with_cursor_claims() {
        // The exact claim protocol the CSR builder uses: an atomic cursor
        // hands out each slot once; writers fill slots from many threads.
        let n = 10_000usize;
        let mut data = vec![usize::MAX; n];
        let cursor = AtomicUsize::new(0);
        {
            let w = DisjointWriter::new(&mut data);
            (0..n).into_par_iter().for_each(|_| {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                // SAFETY: fetch_add yields each index exactly once.
                unsafe { w.write(i, i + 1) };
            });
        }
        assert!(data.iter().enumerate().all(|(i, &x)| x == i + 1));
    }

    #[test]
    #[should_panic]
    fn out_of_bounds_panics() {
        let mut data = vec![0u8; 4];
        let w = DisjointWriter::new(&mut data);
        // SAFETY: index 4 is never written by anyone else; the call panics
        // on the bounds check before touching memory.
        unsafe { w.write(4, 1) };
    }
}
