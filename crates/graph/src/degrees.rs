//! Degree-distribution analysis.
//!
//! The paper's datasets are chosen by degree structure (Table III lists
//! average and maximum degree; Section IV-B's uniform-sampling argument
//! hinges on regularity; Fig. 6c sweeps average degree). This module
//! provides the distribution tooling the harness and tests use to verify
//! that the synthetic stand-ins land in the intended structural class.

use crate::CsrGraph;
use rayon::prelude::*;

/// Summary of a graph's degree distribution.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeDistribution {
    /// `histogram[d]` = number of vertices with degree `d`.
    pub histogram: Vec<usize>,
    /// Minimum degree.
    pub min: usize,
    /// Maximum degree.
    pub max: usize,
    /// Mean degree.
    pub mean: f64,
    /// Median degree.
    pub median: usize,
    /// Coefficient of variation (stddev / mean); ≈0 for regular graphs,
    /// large for power-law graphs.
    pub cv: f64,
}

impl DegreeDistribution {
    /// Computes the distribution of `g`.
    ///
    /// ```
    /// use afforest_graph::DegreeDistribution;
    /// use afforest_graph::generators::classic::star;
    ///
    /// let d = DegreeDistribution::compute(&star(9, 0));
    /// assert_eq!(d.max, 8);
    /// assert_eq!(d.count(1), 8); // leaves
    /// ```
    pub fn compute(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        if n == 0 {
            return Self {
                histogram: Vec::new(),
                min: 0,
                max: 0,
                mean: 0.0,
                median: 0,
                cv: 0.0,
            };
        }
        let degrees: Vec<usize> = g.par_vertices().map(|v| g.degree(v)).collect();
        let max = degrees.par_iter().copied().max().unwrap_or(0);
        let min = degrees.par_iter().copied().min().unwrap_or(0);
        let mut histogram = vec![0usize; max + 1];
        for &d in &degrees {
            histogram[d] += 1;
        }
        let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
        let var = degrees
            .iter()
            .map(|&d| (d as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        let cv = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        // Median from the histogram.
        let mut seen = 0usize;
        let mut median = 0usize;
        for (d, &count) in histogram.iter().enumerate() {
            seen += count;
            if seen > n / 2 {
                median = d;
                break;
            }
        }
        Self {
            histogram,
            min,
            max,
            mean,
            median,
            cv,
        }
    }

    /// Number of vertices with degree exactly `d`.
    pub fn count(&self, d: usize) -> usize {
        self.histogram.get(d).copied().unwrap_or(0)
    }

    /// Number of isolated (degree-0) vertices.
    pub fn isolated(&self) -> usize {
        self.count(0)
    }

    /// Fraction of vertices with degree ≥ `d`.
    pub fn tail_fraction(&self, d: usize) -> f64 {
        let n: usize = self.histogram.iter().sum();
        if n == 0 {
            return 0.0;
        }
        let tail: usize = self.histogram.iter().skip(d).sum();
        tail as f64 / n as f64
    }

    /// Crude power-law check: log-log linear regression slope over the
    /// non-empty histogram buckets with degree ≥ 1. Returns `None` when
    /// fewer than three buckets are populated.
    pub fn log_log_slope(&self) -> Option<f64> {
        let points: Vec<(f64, f64)> = self
            .histogram
            .iter()
            .enumerate()
            .skip(1)
            .filter(|&(_, &c)| c > 0)
            .map(|(d, &c)| ((d as f64).ln(), (c as f64).ln()))
            .collect();
        if points.len() < 3 {
            return None;
        }
        let n = points.len() as f64;
        let sx: f64 = points.iter().map(|p| p.0).sum();
        let sy: f64 = points.iter().map(|p| p.1).sum();
        let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
        let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
        let denom = n * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return None;
        }
        Some((n * sxy - sx * sy) / denom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::classic::{complete, cycle, star};
    use crate::generators::{barabasi_albert, rmat_scale, uniform_random};
    use crate::GraphBuilder;

    #[test]
    fn cycle_is_regular() {
        let d = DegreeDistribution::compute(&cycle(50));
        assert_eq!(d.min, 2);
        assert_eq!(d.max, 2);
        assert_eq!(d.median, 2);
        assert!((d.mean - 2.0).abs() < 1e-12);
        assert!(d.cv < 1e-12);
        assert_eq!(d.count(2), 50);
    }

    #[test]
    fn star_is_bimodal() {
        let d = DegreeDistribution::compute(&star(10, 0));
        assert_eq!(d.count(1), 9);
        assert_eq!(d.count(9), 1);
        assert_eq!(d.max, 9);
        assert!(d.cv > 1.0);
    }

    #[test]
    fn complete_histogram() {
        let d = DegreeDistribution::compute(&complete(8));
        assert_eq!(d.count(7), 8);
        assert_eq!(d.histogram.iter().sum::<usize>(), 8);
    }

    #[test]
    fn isolated_counting() {
        let g = GraphBuilder::from_edges(10, &[(0, 1)]).build();
        let d = DegreeDistribution::compute(&g);
        assert_eq!(d.isolated(), 8);
        assert_eq!(d.min, 0);
    }

    #[test]
    fn tail_fraction_monotone() {
        let d = DegreeDistribution::compute(&uniform_random(2_000, 16_000, 3));
        assert!((d.tail_fraction(0) - 1.0).abs() < 1e-12);
        assert!(d.tail_fraction(8) >= d.tail_fraction(16));
        assert_eq!(d.tail_fraction(d.max + 1), 0.0);
    }

    #[test]
    fn urand_concentrates_rmat_spreads() {
        let urand = DegreeDistribution::compute(&uniform_random(1 << 13, 16 << 13, 1));
        let kron = DegreeDistribution::compute(&rmat_scale(13, 16, 1));
        assert!(urand.cv < 0.5, "urand cv {}", urand.cv);
        assert!(kron.cv > 1.5, "kron cv {}", kron.cv);
    }

    #[test]
    fn power_law_slope_is_negative_for_ba() {
        let d = DegreeDistribution::compute(&barabasi_albert(10_000, 3, 7));
        let slope = d.log_log_slope().expect("enough buckets");
        assert!(
            slope < -1.0,
            "expected steep negative log-log slope, got {slope}"
        );
    }

    #[test]
    fn empty_graph() {
        let d = DegreeDistribution::compute(&GraphBuilder::from_edges(0, &[]).build());
        assert_eq!(d.max, 0);
        assert!(d.histogram.is_empty());
        assert!(d.log_log_slope().is_none());
        assert_eq!(d.tail_fraction(1), 0.0);
    }
}
