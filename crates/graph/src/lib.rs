//! Graph substrate for the Afforest reproduction.
//!
//! This crate provides everything the connectivity algorithms need from a
//! graph library, built from scratch:
//!
//! - [`CsrGraph`]: an immutable Compressed-Sparse-Row graph, the
//!   representation used by the paper's CPU implementation (and by the GAP
//!   benchmark suite it extends).
//! - [`EdgeList`] / [`GraphBuilder`]: mutable edge accumulation and parallel
//!   CSR construction (sort + dedup + symmetrize).
//! - [`generators`]: synthetic workloads reproducing the structural classes
//!   of the paper's datasets — uniform random (`urand`), Kronecker/RMAT
//!   (`kron`, `twitter` stand-in), 2-D grid road networks (`road`,
//!   `osm-eur` stand-ins), a locality-biased web-graph model (`web`
//!   stand-in), and the component-fraction model of Fig. 8c.
//! - [`io`]: plain-text and binary edge-list serialization.
//! - [`stats`]: the graph statistics reported in Table III (degrees,
//!   approximate diameter, component structure).
//!
//! # Example
//!
//! ```
//! use afforest_graph::{GraphBuilder, CsrGraph};
//!
//! // A triangle plus an isolated edge.
//! let g: CsrGraph = GraphBuilder::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]).build();
//! assert_eq!(g.num_vertices(), 5);
//! assert_eq!(g.num_edges(), 4);          // undirected edge count
//! assert_eq!(g.degree(1), 2);
//! assert_eq!(g.neighbors(3), &[4]);
//! ```

// The only unsafe code in the workspace (outside vendored shims) lives in
// `disjoint`; force every unsafe operation inside unsafe fns to carry its
// own explicit unsafe block + SAFETY comment.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod builder;
pub mod csr;
pub mod degrees;
pub mod disjoint;
pub mod edgelist;
pub mod error;
pub mod generators;
pub mod io;
pub mod io_formats;
pub mod ops;
pub mod perm;
pub mod stats;

pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use degrees::DegreeDistribution;
pub use edgelist::EdgeList;
pub use error::Error;
pub use stats::GraphStats;

/// Vertex identifier.
///
/// The paper (and GAPBS) use 32-bit vertex ids; all evaluated graphs fit
/// comfortably. Keeping ids at 32 bits halves the memory traffic on the
/// parent array, which matters for the locality arguments of Section V-C.
pub type Node = u32;

/// An undirected edge as a pair of endpoints.
pub type Edge = (Node, Node);
