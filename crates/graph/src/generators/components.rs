//! Component-fraction random graphs (Fig. 8c).
//!
//! Section VI-C generates uniformly random graphs "with an additional
//! parameter — average component fraction f ∈ (0, 1] — such that the
//! resulting graph has (in expectation) ⌊1/f⌋ components of size
//! ⌊|V| · f⌋ and a component with the remaining vertices."
//!
//! We realize this by splitting the vertex set into ⌊1/f⌋ blocks of size
//! ⌊|V| · f⌋ (plus a remainder block), generating an independent uniform
//! random graph inside each block with the requested edge factor, then
//! augmenting each block with an internal Hamiltonian-path backbone over a
//! random block permutation so every block forms exactly one component.
//! Vertex ids are finally scrambled by a global permutation so the
//! component structure is not index-contiguous (which would interact
//! artificially with Afforest's index-ordered hooking).

use super::stream_rng;
use crate::perm::random_permutation;
use crate::{CsrGraph, Edge, GraphBuilder};
use rand::Rng;
use rayon::prelude::*;

/// Generates a `urand`-style graph whose component-size distribution is
/// controlled by `f`.
///
/// - `n`: total vertices.
/// - `edge_factor`: edges per vertex drawn inside each block.
/// - `f`: average component fraction in `(0, 1]`; `f = 1` yields one
///   connected component spanning everything.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `f` is outside `(0, 1]` or `n == 0`.
pub fn urand_with_components(n: usize, edge_factor: usize, f: f64, seed: u64) -> CsrGraph {
    assert!(f > 0.0 && f <= 1.0, "component fraction must be in (0,1]");
    assert!(n > 0, "need at least one vertex");

    let block_size = ((n as f64 * f).floor() as usize).max(1);
    let num_full_blocks = (n / block_size).max(1);
    let perm = random_permutation(n, seed ^ 0xC0FFEE);

    let edges: Vec<Edge> = (0..num_full_blocks)
        .into_par_iter()
        .flat_map_iter(|b| {
            let lo = b * block_size;
            let hi = if b + 1 == num_full_blocks {
                n // remainder joins the last block
            } else {
                lo + block_size
            };
            let size = hi - lo;
            let mut rng = stream_rng(seed, b as u64 + 1);
            let mut block_edges = Vec::with_capacity(size * (edge_factor + 1));
            // Backbone: random spanning path guarantees the block is one
            // component regardless of the random draws below.
            let mut order: Vec<usize> = (lo..hi).collect();
            for i in (1..order.len()).rev() {
                order.swap(i, rng.random_range(0..=i));
            }
            for w in order.windows(2) {
                block_edges.push((perm[w[0]], perm[w[1]]));
            }
            // Uniform random intra-block edges.
            for _ in 0..size * edge_factor {
                let u = lo + rng.random_range(0..size);
                let v = lo + rng.random_range(0..size);
                block_edges.push((perm[u], perm[v]));
            }
            block_edges
        })
        .collect();

    GraphBuilder::from_edges(n, &edges).build()
}

/// Expected number of components for a given `n` and `f` (for tests and the
/// Fig. 8c harness's sanity output): full blocks, with the remainder merged
/// into the last.
pub fn expected_components(n: usize, f: f64) -> usize {
    let block_size = ((n as f64 * f).floor() as usize).max(1);
    (n / block_size).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serial union-find for test verification (the real oracle lives in
    /// afforest-baselines; a tiny local copy avoids a dev-dependency cycle).
    fn count_components(g: &CsrGraph) -> usize {
        let mut parent: Vec<u32> = (0..g.num_vertices() as u32).collect();
        fn find(p: &mut [u32], mut x: u32) -> u32 {
            while p[x as usize] != x {
                p[x as usize] = p[p[x as usize] as usize];
                x = p[x as usize];
            }
            x
        }
        for (u, v) in g.edges() {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
        (0..g.num_vertices() as u32)
            .filter(|&v| find(&mut parent, v) == v)
            .count()
    }

    #[test]
    fn f_one_is_connected() {
        let g = urand_with_components(2000, 4, 1.0, 5);
        assert_eq!(count_components(&g), 1);
    }

    #[test]
    fn component_count_matches_expectation() {
        let n = 10_000;
        for &f in &[0.5, 0.1, 0.01] {
            let g = urand_with_components(n, 4, f, 9);
            assert_eq!(count_components(&g), expected_components(n, f), "f = {f}");
        }
    }

    #[test]
    fn deterministic() {
        let a = urand_with_components(3000, 4, 0.1, 17);
        let b = urand_with_components(3000, 4, 0.1, 17);
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_f_many_components() {
        let g = urand_with_components(5000, 2, 0.001, 3);
        // block_size = 5 → 1000 components.
        assert_eq!(count_components(&g), 1000);
    }

    #[test]
    fn expected_components_formula() {
        assert_eq!(expected_components(1000, 1.0), 1);
        assert_eq!(expected_components(1000, 0.25), 4);
        assert_eq!(expected_components(1000, 0.0001), 1000); // block size 1... floor(0.1)=0→max(1)
    }

    #[test]
    #[should_panic(expected = "component fraction")]
    fn rejects_bad_f() {
        let _ = urand_with_components(10, 2, 0.0, 0);
    }

    #[test]
    fn ids_are_scrambled() {
        // With a global permutation the first block should not simply be
        // vertices 0..block_size; check that at least one edge crosses the
        // midpoint of the id space even with small f.
        let g = urand_with_components(1000, 4, 0.01, 23);
        let crosses = g.edges().any(|(u, v)| (u < 500) != (v < 500));
        assert!(crosses, "expected permuted component placement");
    }
}
