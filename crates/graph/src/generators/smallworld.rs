//! Watts–Strogatz small-world graphs.
//!
//! A ring lattice (every vertex connected to its `k` nearest neighbors)
//! with each edge rewired to a random endpoint with probability `beta`.
//! Interpolates between the high-diameter regular regime (`beta = 0`,
//! road-like) and the random regime (`beta = 1`, urand-like) — useful for
//! sweeping Afforest's behaviour across the diameter spectrum with a
//! single knob.

use super::stream_rng;
use crate::{CsrGraph, Edge, GraphBuilder, Node};
use rand::Rng;

/// Generates a Watts–Strogatz graph with `n` vertices, `k` nearest
/// neighbors per side is `k / 2` (so `k` must be even), rewiring
/// probability `beta`.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `k` is odd, `k >= n`, or `beta` is outside `[0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(k.is_multiple_of(2), "k must be even");
    assert!(k < n, "k must be below n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0,1]");
    let mut rng = stream_rng(seed, 0);
    let mut edges: Vec<Edge> = Vec::with_capacity(n * k / 2);
    for u in 0..n as Node {
        for j in 1..=(k / 2) as Node {
            let v = (u + j) % n as Node;
            if rng.random::<f64>() < beta {
                // Rewire the far endpoint uniformly (avoiding the trivial
                // self loop; duplicate edges are removed by the builder).
                let mut w = rng.random_range(0..n as u64) as Node;
                if w == u {
                    w = (w + 1) % n as Node;
                }
                edges.push((u, w));
            } else {
                edges.push((u, v));
            }
        }
    }
    GraphBuilder::from_edges(n, &edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn beta_zero_is_ring_lattice() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        assert_eq!(g.num_edges(), 40);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(0, 2));
        assert!(g.has_edge(0, 19));
    }

    #[test]
    fn deterministic() {
        assert_eq!(
            watts_strogatz(500, 6, 0.2, 9),
            watts_strogatz(500, 6, 0.2, 9)
        );
    }

    #[test]
    fn rewiring_changes_structure() {
        let lattice = watts_strogatz(500, 6, 0.0, 9);
        let rewired = watts_strogatz(500, 6, 0.5, 9);
        assert_ne!(lattice, rewired);
    }

    #[test]
    fn rewiring_shrinks_diameter() {
        use crate::stats::GraphStats;
        let d0 = GraphStats::compute(&watts_strogatz(1_000, 4, 0.0, 5)).approx_diameter;
        let d1 = GraphStats::compute(&watts_strogatz(1_000, 4, 0.3, 5)).approx_diameter;
        assert!(
            d1 < d0,
            "rewired diameter {d1} should be below lattice {d0}"
        );
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn rejects_odd_k() {
        let _ = watts_strogatz(10, 3, 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "k must be below n")]
    fn rejects_large_k() {
        let _ = watts_strogatz(4, 4, 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "beta must be in")]
    fn rejects_bad_beta() {
        let _ = watts_strogatz(10, 2, 1.5, 0);
    }
}
