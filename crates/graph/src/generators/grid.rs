//! Road-network stand-ins (`road`, `osm-eur` in Table III).
//!
//! Real road networks are near-planar with degree ≈ 2–4 and diameter
//! Θ(√|V|) — the regime where traversal-based CC serializes on depth and
//! tree-hooking shines. We model them as a 2-D grid where each lattice edge
//! survives with probability `keep`, plus a sprinkle of short "diagonal"
//! shortcuts. `keep < 1` breaks the grid into many components of varying
//! size, matching the multi-component structure of `road`/`osm-eur`
//! (Table III lists 4.5M components for osm-eur).

use super::stream_rng;
use crate::{CsrGraph, Edge, GraphBuilder, Node};
use rand::Rng;
use rayon::prelude::*;

/// Generates a road-like graph on a `width × height` lattice.
///
/// - `keep`: probability each lattice edge survives (1.0 = full grid).
/// - `shortcut_prob`: probability a vertex gains one diagonal shortcut.
///
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `keep` or `shortcut_prob` is outside `[0, 1]`.
pub fn road_network(
    width: usize,
    height: usize,
    keep: f64,
    shortcut_prob: f64,
    seed: u64,
) -> CsrGraph {
    assert!((0.0..=1.0).contains(&keep), "keep must be in [0,1]");
    assert!(
        (0.0..=1.0).contains(&shortcut_prob),
        "shortcut_prob must be in [0,1]"
    );
    let n = width * height;
    let idx = |x: usize, y: usize| (y * width + x) as Node;

    // One parallel stream per row keeps determinism under rayon.
    let edges: Vec<Edge> = (0..height)
        .into_par_iter()
        .flat_map_iter(|y| {
            let mut rng = stream_rng(seed, y as u64);
            let mut row_edges = Vec::with_capacity(width * 2 + 2);
            for x in 0..width {
                if x + 1 < width && rng.random::<f64>() < keep {
                    row_edges.push((idx(x, y), idx(x + 1, y)));
                }
                if y + 1 < height && rng.random::<f64>() < keep {
                    row_edges.push((idx(x, y), idx(x, y + 1)));
                }
                if x + 1 < width && y + 1 < height && rng.random::<f64>() < shortcut_prob {
                    row_edges.push((idx(x, y), idx(x + 1, y + 1)));
                }
            }
            row_edges
        })
        .collect();
    GraphBuilder::from_edges(n, &edges).build()
}

/// A full (every lattice edge present) `width × height` grid.
pub fn full_grid(width: usize, height: usize) -> CsrGraph {
    road_network(width, height, 1.0, 0.0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_grid_shape() {
        let g = full_grid(4, 3);
        assert_eq!(g.num_vertices(), 12);
        // Horizontal: 3 per row × 3 rows; vertical: 4 per column pair × 2.
        assert_eq!(g.num_edges(), 3 * 3 + 4 * 2);
        // Corner degree 2, interior degree 4.
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(5), 4);
    }

    #[test]
    fn deterministic() {
        let a = road_network(50, 50, 0.9, 0.05, 11);
        let b = road_network(50, 50, 0.9, 0.05, 11);
        assert_eq!(a, b);
    }

    #[test]
    fn keep_zero_gives_no_lattice_edges() {
        let g = road_network(10, 10, 0.0, 0.0, 1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn low_degree() {
        let g = road_network(100, 100, 0.95, 0.05, 3);
        // Up to 4 lattice edges plus one incoming and one outgoing diagonal.
        assert!(g.max_degree() <= 6);
        assert!(g.avg_degree() < 5.0);
    }

    #[test]
    fn partial_keep_reduces_edges() {
        let full = full_grid(64, 64);
        let partial = road_network(64, 64, 0.5, 0.0, 3);
        assert!(partial.num_edges() < full.num_edges());
        assert!(partial.num_edges() > 0);
    }

    #[test]
    #[should_panic(expected = "keep must be in")]
    fn rejects_bad_keep() {
        let _ = road_network(4, 4, 1.5, 0.0, 0);
    }

    #[test]
    fn shortcuts_add_diagonals() {
        let g = road_network(20, 20, 0.0, 1.0, 2);
        // Only diagonals present: vertex (0,0) connects to (1,1) = index 21.
        assert!(g.has_edge(0, 21));
    }
}
