//! Random geometric graphs (unit-disk model).
//!
//! `n` points placed uniformly in the unit square; two points are
//! adjacent iff their Euclidean distance is below `radius`. Produces the
//! planar-ish, high-diameter, locally-clustered structure of physical
//! infrastructure networks (an alternative road/sensor-network stand-in
//! with organic rather than lattice geometry).
//!
//! Neighbor search uses a uniform grid of cell size `radius`, so
//! generation is `O(n + edges)` in expectation rather than `O(n²)`.

use super::stream_rng;
use crate::{CsrGraph, Edge, GraphBuilder, Node};
use rand::Rng;

/// Generates a random geometric graph.
///
/// Deterministic in `seed`. The expected average degree is
/// `n · π · radius²` (away from the boundary).
///
/// # Panics
///
/// Panics if `radius` is not in `(0, 1]`.
pub fn random_geometric(n: usize, radius: f64, seed: u64) -> CsrGraph {
    assert!(radius > 0.0 && radius <= 1.0, "radius must be in (0,1]");
    let mut rng = stream_rng(seed, 0);
    let points: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
        .collect();

    // Bucket points into a grid with cell edge = radius.
    let cells_per_side = (1.0 / radius).floor().max(1.0) as usize;
    let cell_of = |x: f64, y: f64| -> (usize, usize) {
        let cx = ((x * cells_per_side as f64) as usize).min(cells_per_side - 1);
        let cy = ((y * cells_per_side as f64) as usize).min(cells_per_side - 1);
        (cx, cy)
    };
    let mut grid: Vec<Vec<Node>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        grid[cy * cells_per_side + cx].push(i as Node);
    }

    let r2 = radius * radius;
    let mut edges: Vec<Edge> = Vec::new();
    for (i, &(x, y)) in points.iter().enumerate() {
        let (cx, cy) = cell_of(x, y);
        for dy in -1i64..=1 {
            for dx in -1i64..=1 {
                let nx = cx as i64 + dx;
                let ny = cy as i64 + dy;
                if nx < 0 || ny < 0 || nx >= cells_per_side as i64 || ny >= cells_per_side as i64 {
                    continue;
                }
                for &j in &grid[ny as usize * cells_per_side + nx as usize] {
                    if (j as usize) <= i {
                        continue; // emit each pair once
                    }
                    let (px, py) = points[j as usize];
                    let (ddx, ddy) = (px - x, py - y);
                    if ddx * ddx + ddy * ddy <= r2 {
                        edges.push((i as Node, j));
                    }
                }
            }
        }
    }
    GraphBuilder::from_edges(n, &edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::GraphStats;

    #[test]
    fn deterministic() {
        assert_eq!(
            random_geometric(1_000, 0.05, 3),
            random_geometric(1_000, 0.05, 3)
        );
        assert_ne!(
            random_geometric(1_000, 0.05, 3),
            random_geometric(1_000, 0.05, 4)
        );
    }

    #[test]
    fn degree_matches_expectation() {
        let n = 20_000;
        let r = 0.02;
        let g = random_geometric(n, r, 1);
        let expected = n as f64 * std::f64::consts::PI * r * r;
        let actual = g.avg_degree();
        // Boundary effects lower the average slightly.
        assert!(
            actual > 0.7 * expected && actual < 1.05 * expected,
            "avg degree {actual}, expected ≈{expected}"
        );
    }

    #[test]
    fn grid_matches_brute_force() {
        // Exhaustive check on a small instance: bucketing must not lose
        // or invent edges.
        let n = 300;
        let r = 0.13;
        let g = random_geometric(n, r, 7);
        // Recompute points with the same RNG stream.
        let mut rng = crate::generators::stream_rng(7, 0);
        use rand::Rng;
        let points: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.random::<f64>(), rng.random::<f64>()))
            .collect();
        for i in 0..n {
            for j in (i + 1)..n {
                let (dx, dy) = (points[i].0 - points[j].0, points[i].1 - points[j].1);
                let within = dx * dx + dy * dy <= r * r;
                assert_eq!(
                    g.has_edge(i as Node, j as Node),
                    within,
                    "pair ({i},{j}) mismatch"
                );
            }
        }
    }

    #[test]
    fn supercritical_radius_connects() {
        // r well above the connectivity threshold ~sqrt(ln n / (π n)).
        let n = 5_000;
        let r = 0.06;
        let s = GraphStats::compute(&random_geometric(n, r, 2));
        assert!(s.largest_component_fraction() > 0.95);
    }

    #[test]
    fn subcritical_radius_shatters() {
        let n = 5_000;
        let r = 0.004;
        let s = GraphStats::compute(&random_geometric(n, r, 2));
        assert!(s.num_components > 1_000);
    }

    #[test]
    fn high_diameter_structure() {
        let s = GraphStats::compute(&random_geometric(4_000, 0.04, 5));
        // Spatial graphs have diameter Θ(1/r).
        assert!(s.approx_diameter > 15, "diameter {}", s.approx_diameter);
    }

    #[test]
    #[should_panic(expected = "radius must be in")]
    fn rejects_bad_radius() {
        let _ = random_geometric(10, 0.0, 0);
    }

    #[test]
    fn radius_one_is_near_complete() {
        // Every pair is within distance √2 > 1, but radius 1 covers most.
        let g = random_geometric(50, 1.0, 9);
        assert!(g.avg_degree() > 30.0);
    }
}
