//! Barabási–Albert preferential attachment (social-network stand-in).
//!
//! Each arriving vertex attaches to `m` existing vertices chosen with
//! probability proportional to their current degree, yielding the power-law
//! degree distribution and single giant component typical of social graphs
//! such as the paper's `twitter` dataset.

use super::stream_rng;
use crate::{CsrGraph, GraphBuilder, Node};
use rand::Rng;

/// Generates a Barabási–Albert graph with `n` vertices, each new vertex
/// attaching to `m` existing ones.
///
/// Uses the classic repeated-endpoint trick: sampling a uniform element of
/// the flat endpoint list is equivalent to degree-proportional sampling.
/// Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `m == 0` or `n <= m`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m > 0, "attachment count must be positive");
    assert!(n > m, "need more vertices than the attachment count");
    let mut rng = stream_rng(seed, 0);
    let mut edges: Vec<(Node, Node)> = Vec::with_capacity(n * m);
    // Flat list where each vertex appears once per incident edge endpoint.
    let mut endpoints: Vec<Node> = Vec::with_capacity(2 * n * m);

    // Seed clique over the first m+1 vertices so early sampling has mass.
    for u in 0..=(m as Node) {
        for v in (u + 1)..=(m as Node) {
            edges.push((u, v));
            endpoints.push(u);
            endpoints.push(v);
        }
    }

    for u in (m as Node + 1)..(n as Node) {
        let mut added = 0usize;
        let mut guard = 0usize;
        while added < m && guard < 50 * m {
            guard += 1;
            let v = endpoints[rng.random_range(0..endpoints.len())];
            if v != u && !edges[edges.len() - added..].iter().any(|&(_, t)| t == v) {
                edges.push((u, v));
                added += 1;
            }
        }
        // Register this vertex's endpoints once its edges are final, so
        // within-step duplicates stay rare and sampling remains unbiased.
        for &(s, t) in &edges[edges.len() - added..] {
            endpoints.push(s);
            endpoints.push(t);
        }
    }
    GraphBuilder::from_edges(n, &edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = barabasi_albert(1000, 3, 21);
        let b = barabasi_albert(1000, 3, 21);
        assert_eq!(a, b);
    }

    #[test]
    fn size_is_correct() {
        let g = barabasi_albert(500, 2, 1);
        assert_eq!(g.num_vertices(), 500);
        // Clique edges + ~2 per arrival.
        assert!(g.num_edges() >= 2 * (500 - 3));
    }

    #[test]
    fn power_law_hub() {
        let g = barabasi_albert(5000, 3, 2);
        assert!(g.max_degree() as f64 > 8.0 * g.avg_degree());
    }

    #[test]
    fn no_isolated_vertices() {
        let g = barabasi_albert(1000, 2, 3);
        assert!(g.vertices().all(|v| g.degree(v) >= 1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_m() {
        let _ = barabasi_albert(10, 0, 0);
    }

    #[test]
    #[should_panic(expected = "more vertices")]
    fn rejects_tiny_n() {
        let _ = barabasi_albert(3, 3, 0);
    }
}
