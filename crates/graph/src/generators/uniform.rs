//! Uniform random graphs (`urand` in Table III).
//!
//! `G(n, m)`-style Erdős–Rényi: `m` endpoint pairs drawn uniformly at
//! random. The GAP benchmark defines `urand` as 2^27 vertices with edge
//! factor 16; we keep the edge-factor convention and let the scale be a
//! parameter so laptop-scale runs remain faithful in shape.
//!
//! For edge factor `k ≥ 1` and `n` large, the graph is far above the
//! connectivity threshold, so it contains a single giant component plus a
//! few isolated vertices — the structure behind the paper's `urand` rows.

use super::stream_rng;
use crate::{CsrGraph, Edge, GraphBuilder, Node};
use rand::Rng;
use rayon::prelude::*;

/// Number of edges generated per parallel chunk.
const CHUNK: usize = 1 << 16;

/// Generates a uniform random graph with `n` vertices and `m` sampled edge
/// slots (self-loops and duplicates are removed during CSR construction, so
/// the final edge count is slightly below `m`).
///
/// Deterministic in `seed`, independent of thread count.
///
/// # Panics
///
/// Panics if `n == 0` but `m > 0`.
pub fn uniform_random(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(n > 0 || m == 0, "cannot place edges in an empty graph");
    let num_chunks = m.div_ceil(CHUNK.max(1)).max(1);
    let edges: Vec<Edge> = (0..num_chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let lo = chunk * CHUNK;
            let hi = ((chunk + 1) * CHUNK).min(m);
            let mut rng = stream_rng(seed, chunk as u64);
            (lo..hi).map(move |_| {
                let u = rng.random_range(0..n as u64) as Node;
                let v = rng.random_range(0..n as u64) as Node;
                (u, v)
            })
        })
        .collect();
    GraphBuilder::from_edges(n, &edges).build()
}

/// Convenience wrapper matching the GAP convention: `scale` gives
/// `n = 2^scale`, `edge_factor` gives `m = edge_factor · n`.
pub fn urand_scale(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    let n = 1usize << scale;
    uniform_random(n, edge_factor * n, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_in_seed() {
        let a = uniform_random(500, 2000, 7);
        let b = uniform_random(500, 2000, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = uniform_random(500, 2000, 7);
        let b = uniform_random(500, 2000, 8);
        assert_ne!(a, b);
    }

    #[test]
    fn edge_count_near_m() {
        let g = uniform_random(10_000, 50_000, 1);
        // Collisions and self-loops remove only a tiny fraction.
        assert!(g.num_edges() > 49_000 && g.num_edges() <= 50_000);
    }

    #[test]
    fn no_self_loops() {
        let g = uniform_random(100, 1000, 3);
        for v in g.vertices() {
            assert!(!g.has_edge(v, v));
        }
    }

    #[test]
    fn urand_scale_sizes() {
        let g = urand_scale(10, 4, 5);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() <= 4096 && g.num_edges() > 3900);
    }

    #[test]
    fn empty_is_ok() {
        let g = uniform_random(0, 0, 0);
        assert_eq!(g.num_vertices(), 0);
    }

    #[test]
    #[should_panic(expected = "empty graph")]
    fn rejects_edges_without_vertices() {
        let _ = uniform_random(0, 5, 0);
    }

    #[test]
    fn spans_multiple_chunks_deterministically() {
        // m > CHUNK forces the multi-chunk path.
        let m = super::CHUNK + 100;
        let a = uniform_random(1 << 12, m, 9);
        let b = uniform_random(1 << 12, m, 9);
        assert_eq!(a, b);
    }
}
