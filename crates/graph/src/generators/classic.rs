//! Deterministic classic graphs.
//!
//! Small structured graphs used throughout the test suite and as adversarial
//! inputs for the worst-case analyses of Section V-A (long paths stress
//! `compress`; high-index-hub stars stress `link`).

use crate::{CsrGraph, GraphBuilder, Node};

/// Path graph `0 — 1 — … — (n-1)`. Diameter `n - 1`.
pub fn path(n: usize) -> CsrGraph {
    let edges: Vec<_> = (1..n as Node).map(|v| (v - 1, v)).collect();
    GraphBuilder::from_edges(n, &edges).build()
}

/// Cycle graph on `n ≥ 3` vertices.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut edges: Vec<_> = (1..n as Node).map(|v| (v - 1, v)).collect();
    edges.push((n as Node - 1, 0));
    GraphBuilder::from_edges(n, &edges).build()
}

/// Star with the hub at the given index and `n - 1` leaves.
///
/// With `hub = n - 1` this is the `link` worst case sketched in Section V-A:
/// every leaf competes to hook the highest-index root.
///
/// # Panics
///
/// Panics if `hub >= n`.
pub fn star(n: usize, hub: Node) -> CsrGraph {
    assert!((hub as usize) < n, "hub out of range");
    let edges: Vec<_> = (0..n as Node)
        .filter(|&v| v != hub)
        .map(|v| (hub, v))
        .collect();
    GraphBuilder::from_edges(n, &edges).build()
}

/// Complete graph `K_n`.
pub fn complete(n: usize) -> CsrGraph {
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as Node {
        for v in (u + 1)..n as Node {
            edges.push((u, v));
        }
    }
    GraphBuilder::from_edges(n, &edges).build()
}

/// Complete binary tree: vertex `v > 0` is connected to parent `(v - 1) / 2`.
pub fn binary_tree(n: usize) -> CsrGraph {
    let edges: Vec<_> = (1..n as Node).map(|v| ((v - 1) / 2, v)).collect();
    GraphBuilder::from_edges(n, &edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_shape() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn path_trivial() {
        assert_eq!(path(0).num_edges(), 0);
        assert_eq!(path(1).num_edges(), 0);
        assert_eq!(path(2).num_edges(), 1);
    }

    #[test]
    fn cycle_shape() {
        let g = cycle(6);
        assert_eq!(g.num_edges(), 6);
        assert!(g.vertices().all(|v| g.degree(v) == 2));
    }

    #[test]
    #[should_panic(expected = "at least 3")]
    fn cycle_too_small() {
        let _ = cycle(2);
    }

    #[test]
    fn star_shape() {
        let g = star(10, 9);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(9), 9);
        assert!((0..9).all(|v| g.degree(v) == 1));
    }

    #[test]
    fn complete_shape() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.vertices().all(|v| g.degree(v) == 5));
    }

    #[test]
    fn binary_tree_shape() {
        let g = binary_tree(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 3); // parent 0, children 3 and 4
        assert_eq!(g.degree(6), 1);
    }
}
