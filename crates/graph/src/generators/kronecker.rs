//! Kronecker / R-MAT graphs (`kron` and the `twitter` stand-in).
//!
//! Recursive-matrix sampling (Chakrabarti et al.): each edge picks one of
//! the four quadrants of the adjacency matrix with probabilities
//! `(a, b, c, d)` at every one of `scale` recursion levels. With the
//! Graph500/GAP parameters `a = 0.57, b = 0.19, c = 0.19, d = 0.05`, the
//! result has a heavily skewed degree distribution, one giant component and
//! many isolated vertices — matching the `kron` rows of Table III. The
//! same generator with milder skew serves as the `twitter` stand-in.
//!
//! Fig. 6c sweeps the edge factor of Kronecker graphs to show Afforest's
//! insensitivity to average degree; [`rmat_scale`] exposes exactly that
//! parameter.

use super::stream_rng;
use crate::{CsrGraph, Edge, GraphBuilder, Node};
use rand::Rng;
use rayon::prelude::*;

/// Quadrant probabilities of the 2×2 seed matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RmatParams {
    /// Top-left quadrant probability (both endpoints in the low half).
    pub a: f64,
    /// Top-right quadrant probability.
    pub b: f64,
    /// Bottom-left quadrant probability.
    pub c: f64,
}

impl RmatParams {
    /// Graph500 / GAP parameters used by the paper's `kron` dataset.
    pub const GRAPH500: Self = Self {
        a: 0.57,
        b: 0.19,
        c: 0.19,
    };

    /// Milder skew, a reasonable social-network (`twitter`) stand-in.
    pub const SOCIAL: Self = Self {
        a: 0.45,
        b: 0.22,
        c: 0.22,
    };

    /// Bottom-right quadrant probability (residual).
    pub fn d(&self) -> f64 {
        1.0 - self.a - self.b - self.c
    }

    /// Validates that all quadrant probabilities are in `[0, 1]`.
    pub fn validate(&self) {
        assert!(
            self.a >= 0.0 && self.b >= 0.0 && self.c >= 0.0 && self.d() >= -1e-12,
            "RMAT quadrant probabilities must be non-negative and sum to at most 1"
        );
    }
}

impl Default for RmatParams {
    fn default() -> Self {
        Self::GRAPH500
    }
}

/// Number of edges generated per parallel chunk.
const CHUNK: usize = 1 << 16;

/// Generates an R-MAT graph with `2^scale` vertices and `m` edge samples.
///
/// Deterministic in `seed`, independent of thread count. Duplicates and
/// self-loops are removed in CSR construction, so — as with real R-MAT
/// data — the realized edge count is below `m`, increasingly so for higher
/// skew.
pub fn rmat(scale: u32, m: usize, params: RmatParams, seed: u64) -> CsrGraph {
    params.validate();
    let n = 1usize << scale;
    let num_chunks = m.div_ceil(CHUNK.max(1)).max(1);
    let edges: Vec<Edge> = (0..num_chunks)
        .into_par_iter()
        .flat_map_iter(|chunk| {
            let lo = chunk * CHUNK;
            let hi = ((chunk + 1) * CHUNK).min(m);
            let mut rng = stream_rng(seed, chunk as u64);
            (lo..hi).map(move |_| sample_edge(scale, params, &mut rng))
        })
        .collect();
    GraphBuilder::from_edges(n, &edges).build()
}

/// GAP-style convenience: `n = 2^scale`, `m = edge_factor · n`,
/// Graph500 parameters.
pub fn rmat_scale(scale: u32, edge_factor: usize, seed: u64) -> CsrGraph {
    rmat(scale, edge_factor << scale, RmatParams::GRAPH500, seed)
}

/// Samples one directed edge by recursive quadrant descent.
fn sample_edge<R: Rng>(scale: u32, p: RmatParams, rng: &mut R) -> Edge {
    let mut u = 0u64;
    let mut v = 0u64;
    let ab = p.a + p.b;
    let abc = ab + p.c;
    for _ in 0..scale {
        u <<= 1;
        v <<= 1;
        let r: f64 = rng.random();
        if r < p.a {
            // top-left: no bits set
        } else if r < ab {
            v |= 1;
        } else if r < abc {
            u |= 1;
        } else {
            u |= 1;
            v |= 1;
        }
    }
    (u as Node, v as Node)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = rmat(12, 10_000, RmatParams::GRAPH500, 3);
        let b = rmat(12, 10_000, RmatParams::GRAPH500, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn vertex_count_is_power_of_two() {
        let g = rmat(10, 1000, RmatParams::GRAPH500, 1);
        assert_eq!(g.num_vertices(), 1024);
    }

    #[test]
    fn skewed_degrees() {
        let g = rmat(13, 8 << 13, RmatParams::GRAPH500, 2);
        let max = g.max_degree() as f64;
        let avg = g.avg_degree();
        // Graph500 parameters give a max degree far above the mean.
        assert!(max > 10.0 * avg, "max {max} should dwarf avg {avg}");
    }

    #[test]
    fn isolated_vertices_exist() {
        // RMAT's hallmark: many vertices receive no edges.
        let g = rmat(13, 8 << 13, RmatParams::GRAPH500, 2);
        let isolated = g.vertices().filter(|&v| g.degree(v) == 0).count();
        assert!(isolated > 0);
    }

    #[test]
    fn params_validate_rejects_bad() {
        let bad = RmatParams {
            a: 0.9,
            b: 0.9,
            c: 0.9,
        };
        let result = std::panic::catch_unwind(|| bad.validate());
        assert!(result.is_err());
    }

    #[test]
    fn d_residual() {
        let p = RmatParams::GRAPH500;
        assert!((p.d() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn social_params_milder() {
        let skewed = rmat(12, 4 << 12, RmatParams::GRAPH500, 5);
        let social = rmat(12, 4 << 12, RmatParams::SOCIAL, 5);
        assert!(social.max_degree() < skewed.max_degree());
    }

    #[test]
    fn rmat_scale_convention() {
        let g = rmat_scale(10, 4, 7);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() <= 4 * 1024);
    }
}
