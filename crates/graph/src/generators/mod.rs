//! Synthetic graph generators.
//!
//! The paper evaluates on four structural classes (Table III): low-degree
//! high-diameter road maps, large-scale social networks, locally-connected
//! web graphs, and high-degree synthetic random/Kronecker graphs. The real
//! datasets (road/USA, osm-eur, twitter, web/sk-2005) are not redistributable
//! here, so each class gets a synthetic stand-in that reproduces the
//! structural properties the algorithms are sensitive to:
//!
//! | Paper dataset | Stand-in | Property preserved |
//! |---------------|----------|--------------------|
//! | `road`, `osm-eur` | [`grid::road_network`] | degree ≈ 2–4, diameter Θ(√|V|) |
//! | `twitter` | [`kronecker::rmat`] (skewed) / [`preferential::barabasi_albert`] | power-law degrees, giant component |
//! | `web` | [`weblike::web_graph`] | local links, giant dense component, skew |
//! | `urand` | [`uniform::uniform_random`] | concentrated degree, single giant component |
//! | `kron` | [`kronecker::rmat`] (GAP parameters) | heavy skew, many isolated vertices |
//! | Fig. 8c family | [`components::urand_with_components`] | controlled component-size distribution |
//!
//! All generators are deterministic functions of their `seed` parameter and
//! generate edges in parallel (per-chunk RNG streams derived from the seed),
//! so datasets are reproducible across runs and thread counts.

pub mod classic;
pub mod components;
pub mod geometric;
pub mod grid;
pub mod kronecker;
pub mod preferential;
pub mod smallworld;
pub mod uniform;
pub mod weblike;

pub use classic::{binary_tree, complete, cycle, path, star};
pub use components::urand_with_components;
pub use geometric::random_geometric;
pub use grid::road_network;
pub use kronecker::{rmat, rmat_scale, RmatParams};
pub use preferential::barabasi_albert;
pub use smallworld::watts_strogatz;
pub use uniform::{uniform_random, urand_scale};
pub use weblike::web_graph;

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Derives a per-stream RNG from a master seed and stream index.
///
/// SplitMix64 over `(seed, stream)` so distinct streams are decorrelated and
/// the result is stable across platforms and thread schedules.
pub(crate) fn stream_rng(seed: u64, stream: u64) -> SmallRng {
    let mut z = seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    SmallRng::seed_from_u64(z)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn stream_rngs_are_deterministic() {
        let a: u64 = stream_rng(42, 0).random();
        let b: u64 = stream_rng(42, 0).random();
        assert_eq!(a, b);
    }

    #[test]
    fn stream_rngs_differ_across_streams() {
        let a: u64 = stream_rng(42, 0).random();
        let b: u64 = stream_rng(42, 1).random();
        assert_ne!(a, b);
    }

    #[test]
    fn stream_rngs_differ_across_seeds() {
        let a: u64 = stream_rng(1, 7).random();
        let b: u64 = stream_rng(2, 7).random();
        assert_ne!(a, b);
    }
}
