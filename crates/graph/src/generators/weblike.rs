//! Web-graph stand-in (`web` / sk-2005 in Table III).
//!
//! Web crawls are *locally connected*: pages link mostly within their own
//! site (nearby crawl order), with occasional long-range links, a skewed
//! in-degree distribution, and one giant component covering most vertices.
//! We reproduce this with a copying/locality model: vertices arrive in
//! order; each new vertex draws `out_degree` links, each of which is
//!
//! - with probability `locality`, a short-range link to a vertex at a
//!   geometrically distributed distance behind it (same-"site" link), and
//! - otherwise, a copying-model link: pick a uniformly random earlier
//!   vertex and copy one of its link targets (this is what yields the
//!   power-law in-degree tail of web graphs).
//!
//! The crawl-order locality is exactly the property the paper exploits in
//! Fig. 6a/6b, where the `web` graph is the slowest-converging dataset for
//! naive row sampling but converges quickly under neighbor sampling.

use super::stream_rng;
use crate::{CsrGraph, GraphBuilder, Node};
use rand::Rng;

/// Generates a web-like graph.
///
/// - `n`: number of vertices (crawl order = index order).
/// - `out_degree`: links drawn per new vertex.
/// - `locality`: fraction of links that are short-range (`0..=1`).
/// - `mean_distance`: mean of the geometric short-range distance.
///
/// Sequential by construction (the copying model depends on earlier state),
/// but fast: O(n · out_degree). Deterministic in `seed`.
///
/// # Panics
///
/// Panics if `locality` is outside `[0, 1]` or `mean_distance < 1`.
pub fn web_graph(
    n: usize,
    out_degree: usize,
    locality: f64,
    mean_distance: f64,
    seed: u64,
) -> CsrGraph {
    assert!((0.0..=1.0).contains(&locality), "locality must be in [0,1]");
    assert!(mean_distance >= 1.0, "mean_distance must be >= 1");
    let mut rng = stream_rng(seed, 0);
    let mut edges: Vec<(Node, Node)> = Vec::with_capacity(n * out_degree);
    // Flat list of all previously created link targets, for copying.
    let mut targets_pool: Vec<Node> = Vec::with_capacity(n * out_degree);
    let p_stop = 1.0 / mean_distance;

    for u in 1..n as Node {
        for _ in 0..out_degree {
            let v = if rng.random::<f64>() < locality || targets_pool.is_empty() {
                // Geometric back-distance, clamped to valid range.
                let mut d = 1u64;
                while rng.random::<f64>() > p_stop && d < u as u64 {
                    d += 1;
                }
                u - (d.min(u as u64) as Node)
            } else {
                // Copying model: replicate a random existing link target.
                targets_pool[rng.random_range(0..targets_pool.len())]
            };
            if v != u {
                edges.push((u, v));
                targets_pool.push(v);
            }
        }
    }
    GraphBuilder::from_edges(n, &edges).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = web_graph(2000, 4, 0.7, 8.0, 13);
        let b = web_graph(2000, 4, 0.7, 8.0, 13);
        assert_eq!(a, b);
    }

    #[test]
    fn size_bounds() {
        let g = web_graph(1000, 5, 0.7, 8.0, 1);
        assert_eq!(g.num_vertices(), 1000);
        assert!(g.num_edges() <= 5 * 999);
        assert!(g.num_edges() > 2000); // dedup removes some but not most
    }

    #[test]
    fn skewed_in_degree() {
        let g = web_graph(5000, 5, 0.5, 8.0, 2);
        assert!(g.max_degree() as f64 > 4.0 * g.avg_degree());
    }

    #[test]
    fn mostly_local_links() {
        let g = web_graph(5000, 4, 0.9, 4.0, 3);
        let mut short = 0usize;
        let mut total = 0usize;
        for (u, v) in g.edges() {
            total += 1;
            if u.abs_diff(v) <= 16 {
                short += 1;
            }
        }
        assert!(
            short as f64 > 0.6 * total as f64,
            "expected locality: {short}/{total} short links"
        );
    }

    #[test]
    fn giant_component_by_construction() {
        // Every vertex links backwards, so vertex 0's component includes
        // nearly everything reachable through the chain of back-links.
        let g = web_graph(2000, 3, 0.8, 4.0, 4);
        // Vertex degrees are non-zero for all but possibly vertex 0.
        let isolated = g.vertices().filter(|&v| g.degree(v) == 0).count();
        assert!(isolated <= 1);
    }

    #[test]
    #[should_panic(expected = "locality must be in")]
    fn rejects_bad_locality() {
        let _ = web_graph(10, 2, 1.5, 4.0, 0);
    }

    #[test]
    #[should_panic(expected = "mean_distance")]
    fn rejects_bad_distance() {
        let _ = web_graph(10, 2, 0.5, 0.5, 0);
    }
}
