//! The router's view of its shard workers.
//!
//! The router composes global answers out of per-shard requests; it
//! does not care whether a shard is an in-process [`Engine`] or a
//! remote worker reached over the wire protocol. [`ShardBackend`]
//! abstracts that choice: [`LocalCluster`](crate::LocalCluster) hosts
//! every shard engine in the router process (one writer thread each),
//! [`RemoteShards`](crate::RemoteShards) dials N worker processes.
//!
//! [`Engine`]: afforest_serve::Engine

use std::fmt;
use std::time::Duration;

use afforest_serve::{Request, Response};

/// Why a shard could not answer a call at all.
///
/// This is the *transport*-level failure channel, distinct from an
/// in-band [`Response::Err`] (the shard answered, with an error) and
/// from [`Response::Overloaded`] (the shard answered, shedding load).
/// The distinction matters to the router's failure-domain layer: only
/// [`ShardUnavailable::Dead`] feeds the health state machine
/// (DESIGN.md §15); shedding is backpressure, not sickness.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardUnavailable {
    /// The shard is up but shed the request (bounded-queue admission);
    /// retries were exhausted without an answer. Not a health signal.
    Shedding {
        /// Index of the shedding shard.
        shard: usize,
        /// Queue depth from the shard's last `Overloaded` answer — its
        /// most recent honest backpressure signal, carried so a relayed
        /// `Overloaded` never fabricates a depth.
        queue_depth: u64,
    },
    /// The shard could not be reached: connect refused, peer vanished
    /// mid-call, read deadline exceeded, or the shard id is unknown.
    Dead {
        /// Index of the unreachable shard.
        shard: usize,
        /// Human-readable cause, for logs and relayed `Err` responses.
        reason: String,
    },
}

impl ShardUnavailable {
    /// The shard this outcome is about.
    pub fn shard(&self) -> usize {
        match *self {
            ShardUnavailable::Shedding { shard, .. } | ShardUnavailable::Dead { shard, .. } => {
                shard
            }
        }
    }
}

impl fmt::Display for ShardUnavailable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardUnavailable::Shedding { shard, queue_depth } => {
                write!(
                    f,
                    "shard {shard} shed the request (retries exhausted, last queue depth {queue_depth})"
                )
            }
            ShardUnavailable::Dead { shard, reason } => {
                write!(f, "shard {shard} unavailable: {reason}")
            }
        }
    }
}

/// A set of shard workers the router can query.
///
/// `call` must answer every *data* request ([`Request::Connected`],
/// [`Request::Component`], [`Request::ComponentSize`],
/// [`Request::NumComponents`], [`Request::InsertEdges`]) plus
/// [`Request::Stats`], all phrased in the shard's **local** vertex
/// ids. A shard that answers — even with [`Response::Err`] or
/// [`Response::Overloaded`] — yields `Ok`; `Err(ShardUnavailable)` is
/// reserved for calls that produced *no* answer, so the router can
/// tell a sick shard from a request it should relay unchanged.
pub trait ShardBackend: Sync {
    /// Number of shard workers.
    fn num_shards(&self) -> usize;

    /// Sends `req` to shard `shard` and returns its answer.
    fn call(&self, shard: usize, req: &Request) -> Result<Response, ShardUnavailable>;

    /// Waits until every shard has applied and published all queued
    /// edges, or `timeout` elapses. Returns whether all drained.
    fn flush(&self, timeout: Duration) -> bool;

    /// Asks every shard to stop (joins in-process writers, sends
    /// `Shutdown` to remote workers). Idempotent.
    fn shutdown(&self);
}
