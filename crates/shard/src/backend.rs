//! The router's view of its shard workers.
//!
//! The router composes global answers out of per-shard requests; it
//! does not care whether a shard is an in-process [`Engine`] or a
//! remote worker reached over the wire protocol. [`ShardBackend`]
//! abstracts that choice: [`LocalCluster`](crate::LocalCluster) hosts
//! every shard engine in the router process (one writer thread each),
//! [`RemoteShards`](crate::RemoteShards) dials N worker processes.
//!
//! [`Engine`]: afforest_serve::Engine

use std::time::Duration;

use afforest_serve::{Request, Response};

/// A set of shard workers the router can query.
///
/// `call` must answer every *data* request ([`Request::Connected`],
/// [`Request::Component`], [`Request::ComponentSize`],
/// [`Request::NumComponents`], [`Request::InsertEdges`]) plus
/// [`Request::Stats`], all phrased in the shard's **local** vertex
/// ids. Failures are reported in-band as [`Response::Err`] (or
/// [`Response::Overloaded`] for backpressure) so the router can relay
/// them to its client unchanged.
pub trait ShardBackend: Sync {
    /// Number of shard workers.
    fn num_shards(&self) -> usize;

    /// Sends `req` to shard `shard` and returns its answer.
    fn call(&self, shard: usize, req: &Request) -> Response;

    /// Waits until every shard has applied and published all queued
    /// edges, or `timeout` elapses. Returns whether all drained.
    fn flush(&self, timeout: Duration) -> bool;

    /// Asks every shard to stop (joins in-process writers, sends
    /// `Shutdown` to remote workers). Idempotent.
    fn shutdown(&self);
}
