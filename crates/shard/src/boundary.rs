//! Boundary edge store: the router-side record of cut edges.
//!
//! Edges whose endpoints live on two different shards cannot be given
//! to either shard's engine (each engine only knows its own local
//! vertex range). The router records them here instead. The store
//! keeps a *spanning forest* of the cut edges — an edge is stored only
//! if it merges two components of the union-find maintained over cut
//! edges alone. A dropped edge is safe to drop: its endpoints are
//! already connected by stored cut edges, so every composite
//! connectivity answer derived from the stored set equals the answer
//! derived from the full set.
//!
//! The store carries a monotonically increasing `version` (bumped once
//! per *stored* edge) which the router uses, together with per-shard
//! epochs, to key its composite-connectivity cache.
//!
//! With [`BoundaryStore::with_log`] every stored edge is also appended
//! to a log file as an 8-byte little-endian `(u32, u32)` record, and
//! reloading the store replays the log (truncating a torn tail), so a
//! router restart does not forget cross-shard connectivity.

use std::fs::{self, OpenOptions};
use std::io::{self, Write};
use std::path::Path;
use std::sync::Mutex;

use afforest_core::IncrementalCc;
use afforest_graph::Node;

/// File name of the boundary log inside a router's WAL namespace.
pub const BOUNDARY_LOG: &str = "boundary.log";

struct BoundaryInner {
    uf: IncrementalCc,
    stored: Vec<(Node, Node)>,
    version: u64,
    log: Option<fs::File>,
    log_errors: u64,
}

/// Thread-safe spanning-forest store for cut edges over the *global*
/// vertex space.
pub struct BoundaryStore {
    vertices: usize,
    inner: Mutex<BoundaryInner>,
}

impl BoundaryStore {
    /// An empty, memory-only store over `n` global vertices.
    pub fn new(n: usize) -> BoundaryStore {
        BoundaryStore {
            vertices: n,
            inner: Mutex::new(BoundaryInner {
                uf: IncrementalCc::new(n),
                stored: Vec::new(),
                version: 0,
                log: None,
                log_errors: 0,
            }),
        }
    }

    /// A store backed by an append-only log at `path`. An existing log
    /// is replayed (records past a torn 8-byte boundary are discarded
    /// and the file truncated to the clean prefix); new stored edges
    /// are appended.
    pub fn with_log(n: usize, path: &Path) -> io::Result<BoundaryStore> {
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let mut uf = IncrementalCc::new(n);
        let mut stored = Vec::new();
        let mut version = 0u64;
        if path.exists() {
            let bytes = fs::read(path)?;
            let torn = bytes.len() % 8;
            for rec in bytes.chunks_exact(8) {
                let (a, b) = rec.split_at(4);
                let (Ok(ua), Ok(va)) = (<[u8; 4]>::try_from(a), <[u8; 4]>::try_from(b)) else {
                    break;
                };
                let u = Node::from_le_bytes(ua);
                let v = Node::from_le_bytes(va);
                if (u as usize) < n && (v as usize) < n && uf.insert(u, v) {
                    stored.push((u, v));
                    version += 1;
                }
            }
            if torn != 0 {
                let (clean, _) = bytes.split_at(bytes.len() - torn);
                fs::write(path, clean)?;
            }
        }
        let log = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(BoundaryStore {
            vertices: n,
            inner: Mutex::new(BoundaryInner {
                uf,
                stored,
                version,
                log: Some(log),
                log_errors: 0,
            }),
        })
    }

    /// Global vertex count the store validates edges against.
    pub fn vertices(&self) -> usize {
        self.vertices
    }

    /// Offers a batch of cut edges. Edges that merge two components of
    /// the cut-edge forest are stored (and logged, if a log is
    /// attached); the rest are dropped as redundant. Out-of-range
    /// endpoints are ignored. Returns how many edges were stored.
    pub fn observe_batch(&self, edges: &[(Node, Node)]) -> usize {
        let n = self.vertices as u64;
        let valid: Vec<(Node, Node)> = edges
            .iter()
            .copied()
            .filter(|&(u, v)| (u as u64) < n && (v as u64) < n)
            .collect();
        if valid.is_empty() {
            return 0;
        }
        let mut stored_now = 0usize;
        let mut g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        for (u, v) in valid {
            if g.uf.insert(u, v) {
                g.stored.push((u, v));
                g.version += 1;
                stored_now += 1;
                let mut rec = Vec::with_capacity(8);
                rec.extend_from_slice(&u.to_le_bytes());
                rec.extend_from_slice(&v.to_le_bytes());
                if let Some(f) = g.log.as_mut() {
                    if f.write_all(&rec).is_err() {
                        g.log_errors += 1;
                    }
                }
            }
        }
        stored_now
    }

    /// The current version and a copy of the stored forest edges,
    /// read atomically.
    pub fn snapshot_edges(&self) -> (u64, Vec<(Node, Node)>) {
        let g = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        (g.version, g.stored.clone())
    }

    /// Number of edges currently stored.
    pub fn edge_count(&self) -> usize {
        self.snapshot_edges().1.len()
    }

    /// Number of failed log appends since the store was opened.
    pub fn log_write_errors(&self) -> u64 {
        self.inner
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .log_errors
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundant_cut_edges_are_dropped() {
        let store = BoundaryStore::new(10);
        assert_eq!(store.observe_batch(&[(0, 5), (5, 9)]), 2);
        // (0, 9) closes a cycle in the cut-edge forest: dropped.
        assert_eq!(store.observe_batch(&[(0, 9)]), 0);
        let (version, edges) = store.snapshot_edges();
        assert_eq!(version, 2);
        assert_eq!(edges, vec![(0, 5), (5, 9)]);
    }

    #[test]
    fn out_of_range_endpoints_are_ignored() {
        let store = BoundaryStore::new(4);
        assert_eq!(store.observe_batch(&[(0, 99), (1, 2)]), 1);
        assert_eq!(store.edge_count(), 1);
    }

    #[test]
    fn log_roundtrip_preserves_forest() {
        let dir = std::env::temp_dir().join(format!("afforest-boundary-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join(BOUNDARY_LOG);
        {
            let store = BoundaryStore::with_log(10, &path).unwrap();
            store.observe_batch(&[(0, 5), (5, 9), (0, 9)]);
        }
        let store = BoundaryStore::with_log(10, &path).unwrap();
        let (version, edges) = store.snapshot_edges();
        assert_eq!(version, 2);
        assert_eq!(edges, vec![(0, 5), (5, 9)]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir =
            std::env::temp_dir().join(format!("afforest-boundary-torn-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join(BOUNDARY_LOG);
        {
            let store = BoundaryStore::with_log(10, &path).unwrap();
            store.observe_batch(&[(0, 5)]);
        }
        // Simulate a crash mid-append: 3 garbage bytes past the record.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xde, 0xad, 0xbe]).unwrap();
        drop(f);
        let store = BoundaryStore::with_log(10, &path).unwrap();
        assert_eq!(store.snapshot_edges().1, vec![(0, 5)]);
        assert_eq!(fs::read(&path).unwrap().len(), 8);
        let _ = fs::remove_dir_all(&dir);
    }
}
