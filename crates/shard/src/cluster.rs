//! In-process shard workers: one [`Engine`] per shard.
//!
//! Each shard engine is an independent `serve::Engine` with its own
//! ingest queue, snapshot chain, epoch counter and (when a WAL root is
//! configured) its own WAL namespace `<root>/shard-<k>/`. The engine
//! for shard `k` sees a vertex space of exactly the plan's slice `k`,
//! addressed by shard-local ids `0..shard_len(k)`.
//!
//! This is the backend behind `afforest serve <graph> --shards N`: all
//! shards live in the serving process (one writer thread each), so a
//! single process gets per-shard epoch publication — smaller slices
//! mean proportionally cheaper snapshot publication per shard.

use std::sync::Arc;
use std::time::Duration;

use afforest_core::IncrementalCc;
use afforest_graph::Node;
use afforest_serve::{wal, Engine, Request, Response, ServeConfig, ServeError, TenantId, Wal};

use crate::backend::{ShardBackend, ShardUnavailable};
use crate::plan::ShardPlan;

/// All shard engines hosted in the current process.
pub struct LocalCluster {
    engines: Vec<Arc<Engine>>,
}

impl LocalCluster {
    /// Starts one engine per plan shard. `seeds[k]` (shard-local ids)
    /// pre-populates shard `k`; missing entries mean an empty shard.
    ///
    /// When `config.wal_root` is set, shard `k` logs to
    /// `<root>/shard-<k>/` and an existing namespace is recovered
    /// before the engine starts, so a restarted cluster resumes where
    /// it crashed.
    pub fn new(
        plan: &ShardPlan,
        seeds: &[Vec<(Node, Node)>],
        config: &ServeConfig,
    ) -> Result<LocalCluster, ServeError> {
        let mut engines = Vec::with_capacity(plan.num_shards());
        for k in 0..plan.num_shards() {
            let n_k = plan.shard_len(k);
            let seed: &[(Node, Node)] = seeds.get(k).map(Vec::as_slice).unwrap_or(&[]);
            let tenant = TenantId::new(&shard_tenant_name(k)).map_err(|_| ServeError::Spawn {
                what: "shard tenant id",
            })?;
            let (cc, shard_wal) = match &config.wal_root {
                Some(root) => {
                    let dir = root.join(shard_tenant_name(k));
                    let cc = if wal::exists(&dir) {
                        wal::recover(&dir, seed)?.cc
                    } else {
                        seeded_cc(n_k, seed)
                    };
                    let w = Wal::open(&dir, n_k, config.wal_snapshot_every)?;
                    (cc, Some(w))
                }
                None => (seeded_cc(n_k, seed), None),
            };
            engines.push(Arc::new(Engine::standalone(tenant, cc, config, shard_wal)?));
        }
        Ok(LocalCluster { engines })
    }

    /// The shard engines, indexed by shard id.
    pub fn engines(&self) -> &[Arc<Engine>] {
        &self.engines
    }
}

/// The tenant (and WAL directory) name for shard `k`: `shard-<k>`.
pub fn shard_tenant_name(k: usize) -> String {
    format!("shard-{k}")
}

fn seeded_cc(n: usize, seed: &[(Node, Node)]) -> IncrementalCc {
    let mut cc = IncrementalCc::new(n);
    cc.insert_batch(seed);
    cc
}

impl ShardBackend for LocalCluster {
    fn num_shards(&self) -> usize {
        self.engines.len()
    }

    fn call(&self, shard: usize, req: &Request) -> Result<Response, ShardUnavailable> {
        let Some(engine) = self.engines.get(shard) else {
            return Err(ShardUnavailable::Dead {
                shard,
                reason: "no such shard".into(),
            });
        };
        Ok(match req {
            Request::Stats => Response::Stats(engine.stats_report(1)),
            other => engine.handle(other),
        })
    }

    fn flush(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        self.engines.iter().all(|e| {
            let left = deadline.saturating_duration_since(std::time::Instant::now());
            e.flush(left)
        })
    }

    fn shutdown(&self) {
        for e in &self.engines {
            e.join_writer();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ServeConfig {
        ServeConfig::builder().build().unwrap()
    }

    #[test]
    fn shards_answer_in_local_ids() {
        let plan = ShardPlan::new(8, 2);
        let cluster = LocalCluster::new(&plan, &[], &config()).unwrap();
        assert_eq!(cluster.num_shards(), 2);
        match cluster.call(1, &Request::InsertEdges(vec![(0, 3)])) {
            Ok(Response::Accepted { edges }) => assert_eq!(edges, 1),
            other => panic!("unexpected {other:?}"),
        }
        assert!(cluster.flush(Duration::from_secs(5)));
        // Local vertices 0 and 3 of shard 1 are globals 4 and 7.
        match cluster.call(1, &Request::Connected(0, 3)) {
            Ok(Response::Connected(b)) => assert!(b),
            other => panic!("unexpected {other:?}"),
        }
        // Shard 0 is untouched.
        match cluster.call(0, &Request::NumComponents) {
            Ok(Response::NumComponents(c)) => assert_eq!(c, 4),
            other => panic!("unexpected {other:?}"),
        }
        cluster.shutdown();
    }

    #[test]
    fn stats_is_special_cased() {
        let plan = ShardPlan::new(8, 2);
        let cluster = LocalCluster::new(&plan, &[], &config()).unwrap();
        match cluster.call(0, &Request::Stats) {
            Ok(Response::Stats(s)) => assert_eq!(s.vertices, 4),
            other => panic!("unexpected {other:?}"),
        }
        cluster.shutdown();
    }

    #[test]
    fn unknown_shard_is_typed_dead() {
        let plan = ShardPlan::new(8, 2);
        let cluster = LocalCluster::new(&plan, &[], &config()).unwrap();
        match cluster.call(7, &Request::NumComponents) {
            Err(ShardUnavailable::Dead { shard: 7, .. }) => {}
            other => panic!("unexpected {other:?}"),
        }
        cluster.shutdown();
    }
}
