//! Composite connectivity: merging per-shard forests with the
//! boundary graph.
//!
//! Each shard engine maintains a spanning forest over its own slice,
//! so a shard answers `Component(local)` with the *component-minimum
//! local id*. Cross-shard connectivity is decided by a small auxiliary
//! structure built here:
//!
//! 1. Every endpoint of a stored cut edge is resolved to its
//!    **representative** `(shard, local component label)`.
//! 2. A union-find over the distinct representatives is seeded with
//!    one union per stored cut edge, producing equivalence **classes**
//!    of local components that are glued together across shards.
//! 3. A class's global label is the minimum `to_global(shard, label)`
//!    over its member representatives, and its size is the sum of the
//!    members' `ComponentSize` answers. Because the block partition is
//!    order-preserving, this equals the component-minimum global label
//!    a single unsharded engine would report.
//!
//! Vertices whose local component touches no cut edge never appear in
//! the class map; their shard's own answer is already global truth.
//! The global component count follows by inclusion–exclusion:
//! `sum(local components) - (representatives - classes)`.
//!
//! ## Degraded composition (DESIGN.md §15)
//!
//! A build may run while some shards are Down (`stats[k] == None`, or
//! a shard dies mid-build). Instead of failing, the build **degrades**:
//! a cut endpoint owned by a down shard becomes a *pseudo
//! representative* `(shard, local id of the endpoint itself)` with
//! size 1 — each pseudo rep is a distinct real vertex of the true
//! graph, so unions through it are real connectivity (the cut edges
//! incident to it exist) and sizes are lower bounds. Nothing is ever
//! invented: a degraded `connected == true` is always true in the full
//! graph; `false` may be conservative, which is exactly why the router
//! tags such answers [`Degraded`](afforest_serve::Response::Degraded).
//! The census covers live shards only, with down shards' epochs pinned
//! to `u64::MAX` so the cache stays valid while they are away.

use std::collections::HashMap;

use afforest_core::IncrementalCc;
use afforest_graph::Node;
use afforest_serve::{Request, Response, StatsReport};

use crate::backend::ShardBackend;
use crate::plan::ShardPlan;

/// One equivalence class of cross-shard-glued local components.
#[derive(Debug, Clone, Copy)]
pub struct CompositeClass {
    /// Global component label: the minimum global id over members.
    pub label: Node,
    /// Total vertices across member local components (a lower bound
    /// when the composite is degraded).
    pub size: u64,
}

/// The merged view of per-shard forests and the boundary graph,
/// cached by the router and keyed on (boundary version, shard epochs).
#[derive(Debug)]
pub struct Composite {
    /// Boundary store version this view was built from.
    pub boundary_version: u64,
    /// Published epoch of each shard at build time (`u64::MAX` for a
    /// shard that was down, so the cache key stays stable while it is).
    pub epochs: Vec<u64>,
    /// Component count over the **live** shards (global truth when not
    /// degraded).
    pub num_components: u64,
    /// Whether any shard was down during the build. Answers composed
    /// from a degraded view must be tagged `Response::Degraded`.
    pub degraded: bool,
    down: Vec<bool>,
    rep_class: HashMap<(usize, Node), usize>,
    classes: Vec<CompositeClass>,
}

impl Composite {
    /// The class containing local component `rep = (shard, label)`,
    /// or `None` when that component touches no cut edge. For a down
    /// shard the key is the pseudo representative
    /// `(shard, local id of the cut endpoint)`.
    pub fn class_of(&self, rep: (usize, Node)) -> Option<usize> {
        self.rep_class.get(&rep).copied()
    }

    /// Class by index.
    pub fn class(&self, idx: usize) -> Option<&CompositeClass> {
        self.classes.get(idx)
    }

    /// Whether `shard` was down when this view was built.
    pub fn shard_down(&self, shard: usize) -> bool {
        self.down.get(shard).copied().unwrap_or(false)
    }
}

/// Builds a [`Composite`] by querying the shards for the component
/// label and size of every cut-edge endpoint. `cut` is the boundary
/// store's forest snapshot at `boundary_version`; `stats` the
/// per-shard stats sweep whose epochs key the cache — `None` marks a
/// shard that did not answer the sweep (Down), which degrades the
/// build instead of failing it (see module docs). In-band anomalies
/// (a shard *answering* nonsense) remain hard errors.
pub fn build<B: ShardBackend + ?Sized>(
    plan: &ShardPlan,
    backend: &B,
    boundary_version: u64,
    cut: &[(Node, Node)],
    stats: &[Option<StatsReport>],
) -> Result<Composite, String> {
    let mut down: Vec<bool> = (0..plan.num_shards())
        .map(|k| stats.get(k).is_none_or(Option::is_none))
        .collect();

    // Resolve each distinct endpoint to its (shard, local label) rep —
    // or a (shard, local id) pseudo-rep when the owner is down. If a
    // shard dies mid-resolution the pass restarts with it marked down,
    // so every key for that shard is consistently a pseudo-rep; each
    // restart marks one more shard, bounding the loop.
    let mut rep_of: HashMap<Node, (usize, Node)>;
    let mut sizes: Vec<u64>;
    let mut reps: Vec<(usize, Node)>;
    let mut rep_idx: HashMap<(usize, Node), usize>;
    'resolve: loop {
        rep_of = HashMap::new();
        for &(u, v) in cut {
            for w in [u, v] {
                if rep_of.contains_key(&w) {
                    continue;
                }
                let s = plan.owner(w);
                let local = plan.to_local(w);
                if down[s] {
                    rep_of.insert(w, (s, local));
                    continue;
                }
                match backend.call(s, &Request::Component(local)) {
                    Ok(Response::Component(label)) => {
                        rep_of.insert(w, (s, label));
                    }
                    Ok(other) => {
                        return Err(format!("shard {s} component query answered {other:?}"));
                    }
                    Err(_) => {
                        down[s] = true;
                        continue 'resolve;
                    }
                }
            }
        }

        // Distinct reps, their sizes (1 for pseudo-reps: the endpoint
        // vertex itself — a lower bound that never overcounts).
        rep_idx = HashMap::new();
        reps = Vec::new();
        for rep in rep_of.values() {
            if !rep_idx.contains_key(rep) {
                rep_idx.insert(*rep, reps.len());
                reps.push(*rep);
            }
        }
        sizes = Vec::with_capacity(reps.len());
        for &(s, label) in &reps {
            if down[s] {
                sizes.push(1);
                continue;
            }
            match backend.call(s, &Request::ComponentSize(label)) {
                Ok(Response::ComponentSize(sz)) => sizes.push(sz),
                Ok(other) => {
                    return Err(format!("shard {s} size query answered {other:?}"));
                }
                Err(_) => {
                    down[s] = true;
                    continue 'resolve;
                }
            }
        }
        break;
    }
    let mut uf = IncrementalCc::new(reps.len());
    for &(u, v) in cut {
        uf.insert(rep_idx[&rep_of[&u]] as Node, rep_idx[&rep_of[&v]] as Node);
    }

    // Collapse union-find roots into classes with global labels.
    let labels = uf.labels();
    let mut class_of_label: HashMap<Node, usize> = HashMap::new();
    let mut classes: Vec<CompositeClass> = Vec::new();
    let mut live_in_class: Vec<u64> = Vec::new();
    let mut rep_class = HashMap::new();
    for (i, rep) in reps.iter().enumerate() {
        let idx = *class_of_label
            .entry(labels.label(i as Node))
            .or_insert_with(|| {
                classes.push(CompositeClass {
                    label: Node::MAX,
                    size: 0,
                });
                live_in_class.push(0);
                classes.len() - 1
            });
        let global = plan.to_global(rep.0, rep.1);
        classes[idx].label = classes[idx].label.min(global);
        classes[idx].size += sizes[i];
        if !down[rep.0] {
            live_in_class[idx] += 1;
        }
        rep_class.insert(*rep, idx);
    }

    // Census over live shards only: merges are counted per live rep
    // glued into a class that holds at least one live rep, so classes
    // made solely of down-shard pseudo-reps do not enter at all.
    let total_local: u64 = stats
        .iter()
        .enumerate()
        .filter(|(k, _)| !down[*k])
        .filter_map(|(_, s)| s.as_ref().map(|s| s.num_components))
        .sum();
    let live_reps: u64 = reps.iter().filter(|(s, _)| !down[*s]).count() as u64;
    let live_classes: u64 = live_in_class.iter().filter(|&&n| n > 0).count() as u64;
    let degraded = down.iter().any(|&d| d);
    Ok(Composite {
        boundary_version,
        epochs: stats
            .iter()
            .enumerate()
            .map(|(k, s)| match s {
                Some(s) if !down[k] => s.epoch,
                _ => u64::MAX,
            })
            .collect(),
        num_components: total_local - (live_reps - live_classes),
        degraded,
        down,
        rep_class,
        classes,
    })
}
