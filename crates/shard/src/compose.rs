//! Composite connectivity: merging per-shard forests with the
//! boundary graph.
//!
//! Each shard engine maintains a spanning forest over its own slice,
//! so a shard answers `Component(local)` with the *component-minimum
//! local id*. Cross-shard connectivity is decided by a small auxiliary
//! structure built here:
//!
//! 1. Every endpoint of a stored cut edge is resolved to its
//!    **representative** `(shard, local component label)`.
//! 2. A union-find over the distinct representatives is seeded with
//!    one union per stored cut edge, producing equivalence **classes**
//!    of local components that are glued together across shards.
//! 3. A class's global label is the minimum `to_global(shard, label)`
//!    over its member representatives, and its size is the sum of the
//!    members' `ComponentSize` answers. Because the block partition is
//!    order-preserving, this equals the component-minimum global label
//!    a single unsharded engine would report.
//!
//! Vertices whose local component touches no cut edge never appear in
//! the class map; their shard's own answer is already global truth.
//! The global component count follows by inclusion–exclusion:
//! `sum(local components) - (representatives - classes)`.

use std::collections::HashMap;

use afforest_core::IncrementalCc;
use afforest_graph::Node;
use afforest_serve::{Request, Response, StatsReport};

use crate::backend::ShardBackend;
use crate::plan::ShardPlan;

/// One equivalence class of cross-shard-glued local components.
#[derive(Debug, Clone, Copy)]
pub struct CompositeClass {
    /// Global component label: the minimum global id over members.
    pub label: Node,
    /// Total vertices across member local components.
    pub size: u64,
}

/// The merged view of per-shard forests and the boundary graph,
/// cached by the router and keyed on (boundary version, shard epochs).
#[derive(Debug)]
pub struct Composite {
    /// Boundary store version this view was built from.
    pub boundary_version: u64,
    /// Published epoch of each shard at build time.
    pub epochs: Vec<u64>,
    /// Global component count.
    pub num_components: u64,
    rep_class: HashMap<(usize, Node), usize>,
    classes: Vec<CompositeClass>,
}

impl Composite {
    /// The class containing local component `rep = (shard, label)`,
    /// or `None` when that component touches no cut edge.
    pub fn class_of(&self, rep: (usize, Node)) -> Option<usize> {
        self.rep_class.get(&rep).copied()
    }

    /// Class by index.
    pub fn class(&self, idx: usize) -> Option<&CompositeClass> {
        self.classes.get(idx)
    }
}

/// Builds a [`Composite`] by querying the shards for the component
/// label and size of every cut-edge endpoint. `cut` is the boundary
/// store's forest snapshot at `boundary_version`; `stats` the
/// per-shard stats sweep whose epochs key the cache.
pub fn build<B: ShardBackend + ?Sized>(
    plan: &ShardPlan,
    backend: &B,
    boundary_version: u64,
    cut: &[(Node, Node)],
    stats: &[StatsReport],
) -> Result<Composite, String> {
    // Resolve each distinct endpoint to its (shard, local label) rep.
    let mut rep_of: HashMap<Node, (usize, Node)> = HashMap::new();
    for &(u, v) in cut {
        for w in [u, v] {
            if rep_of.contains_key(&w) {
                continue;
            }
            let s = plan.owner(w);
            match backend.call(s, &Request::Component(plan.to_local(w))) {
                Response::Component(label) => {
                    rep_of.insert(w, (s, label));
                }
                other => {
                    return Err(format!("shard {s} component query answered {other:?}"));
                }
            }
        }
    }

    // Distinct reps, their sizes, and a union-find over them.
    let mut rep_idx: HashMap<(usize, Node), usize> = HashMap::new();
    let mut reps: Vec<(usize, Node)> = Vec::new();
    for rep in rep_of.values() {
        if !rep_idx.contains_key(rep) {
            rep_idx.insert(*rep, reps.len());
            reps.push(*rep);
        }
    }
    let mut sizes = Vec::with_capacity(reps.len());
    for &(s, label) in &reps {
        match backend.call(s, &Request::ComponentSize(label)) {
            Response::ComponentSize(sz) => sizes.push(sz),
            other => {
                return Err(format!("shard {s} size query answered {other:?}"));
            }
        }
    }
    let mut uf = IncrementalCc::new(reps.len());
    for &(u, v) in cut {
        uf.insert(rep_idx[&rep_of[&u]] as Node, rep_idx[&rep_of[&v]] as Node);
    }

    // Collapse union-find roots into classes with global labels.
    let labels = uf.labels();
    let mut class_of_label: HashMap<Node, usize> = HashMap::new();
    let mut classes: Vec<CompositeClass> = Vec::new();
    let mut rep_class = HashMap::new();
    for (i, rep) in reps.iter().enumerate() {
        let idx = *class_of_label
            .entry(labels.label(i as Node))
            .or_insert_with(|| {
                classes.push(CompositeClass {
                    label: Node::MAX,
                    size: 0,
                });
                classes.len() - 1
            });
        let global = plan.to_global(rep.0, rep.1);
        classes[idx].label = classes[idx].label.min(global);
        classes[idx].size += sizes[i];
        rep_class.insert(*rep, idx);
    }

    let total_local: u64 = stats.iter().map(|s| s.num_components).sum();
    let merged = reps.len() as u64 - classes.len() as u64;
    Ok(Composite {
        boundary_version,
        epochs: stats.iter().map(|s| s.epoch).collect(),
        num_components: total_local - merged,
        rep_class,
        classes,
    })
}
