//! Router metric handles.
//!
//! Per-shard series are labelled `{shard="<k>"}` on shared metric
//! names, so one `/metrics` scrape of the router process shows every
//! shard side by side. All handles are resolved once at router
//! construction — this both keeps the hot path to plain atomic
//! operations and guarantees every per-shard series exists in the
//! exposition before the first request arrives (the sharded smoke
//! scrapes for them immediately after startup).

use afforest_obs::registry::{self, Counter, Gauge, Hist};

/// Labelled handles for one shard's series.
pub struct ShardSeries {
    /// Requests the router sent to this shard.
    pub requests: &'static Counter,
    /// Internal edges routed into this shard's ingest queue.
    pub edges_routed: &'static Counter,
    /// The shard's last observed published epoch.
    pub epoch: &'static Gauge,
    /// The shard's last observed ingest queue depth.
    pub queue_depth: &'static Gauge,
    /// The shard's health state (0 healthy, 1 suspect, 2 down,
    /// 3 probing — [`HealthState::code`](crate::HealthState::code)).
    pub health: &'static Gauge,
    /// Insert batches currently parked for this shard.
    pub parked: &'static Gauge,
}

/// All router metric handles: global counters plus one labelled
/// [`ShardSeries`] per shard.
pub struct RouterMetrics {
    /// Requests the router accepted from clients.
    pub requests: &'static Counter,
    /// End-to-end router request latency (decode through response
    /// encode). Sampled requests attach their trace id as the bucket's
    /// OpenMetrics exemplar, so a scrape links the p99 to a retained
    /// trace renderable with `afforest trace`.
    pub latency: &'static Hist,
    /// Cut edges routed to the boundary store (before dedup).
    pub cut_edges: &'static Counter,
    /// Composite connectivity rebuilds (cache misses).
    pub composite_rebuilds: &'static Counter,
    /// Edges currently stored in the boundary forest.
    pub boundary_edges: &'static Gauge,
    /// Reads answered from a degraded composite (some shard Down).
    pub degraded_reads: &'static Counter,
    /// Per-shard labelled series, indexed by shard id.
    pub shards: Vec<ShardSeries>,
}

/// Registers (or re-resolves) every router series for `num_shards`
/// shards.
pub fn router_metrics(num_shards: usize) -> RouterMetrics {
    let shards = (0..num_shards)
        .map(|k| {
            let k = k.to_string();
            ShardSeries {
                requests: registry::labeled_counter("afforest_shard_requests_total", "shard", &k),
                edges_routed: registry::labeled_counter(
                    "afforest_shard_edges_routed_total",
                    "shard",
                    &k,
                ),
                epoch: registry::labeled_gauge("afforest_shard_epoch", "shard", &k),
                queue_depth: registry::labeled_gauge("afforest_shard_queue_depth", "shard", &k),
                health: registry::labeled_gauge("afforest_shard_health", "shard", &k),
                parked: registry::labeled_gauge("afforest_parked_batches", "shard", &k),
            }
        })
        .collect();
    RouterMetrics {
        requests: registry::counter("afforest_router_requests_total"),
        latency: registry::histogram("afforest_router_latency_ns"),
        cut_edges: registry::counter("afforest_router_cut_edges_total"),
        composite_rebuilds: registry::counter("afforest_router_composite_rebuilds_total"),
        boundary_edges: registry::gauge("afforest_boundary_edges"),
        degraded_reads: registry::counter("afforest_degraded_reads"),
        shards,
    }
}
