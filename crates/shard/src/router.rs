//! The router front-end: one protocol endpoint over N shards.
//!
//! The router speaks the same wire protocol (v1 and v2) as a
//! standalone server, so existing clients and the load generator work
//! against it unchanged. Reads are answered by composing per-shard
//! answers with the boundary graph (see [`crate::compose`]);
//! `InsertEdges` batches are split by the plan — internal edges go to
//! the owning shard's ingest queue in local ids, cut edges go to the
//! boundary store.
//!
//! Failure relay: a shard *answering* `Overloaded` or `Err` aborts the
//! batch and relays the answer to the client verbatim. A client that
//! retries the whole batch is safe — edge insertion is idempotent on a
//! union-find, and the boundary store dedups cut edges — so partial
//! delivery before the error cannot corrupt connectivity.
//!
//! A shard that does **not** answer ([`ShardUnavailable`]) enters the
//! failure domain (DESIGN.md §15): every backend call is gated by the
//! per-shard health machine ([`crate::health`]) so a Down shard fails
//! fast instead of burning the retry budget; reads touching it are
//! composed from the surviving shards plus the boundary forest and
//! tagged [`Response::Degraded`]; inserts destined for it are parked
//! ([`crate::park`]) and replayed in arrival order when the shard
//! recovers. Health transitions drive the `afforest_shard_health`
//! gauge and `shard_health_changed` flight events; parking drives
//! `afforest_parked_batches` and `park_replayed`.
//!
//! The composite view is cached and keyed on (boundary version, shard
//! epoch vector): any shard publishing a new epoch, or a new cut edge
//! being stored, invalidates it. A Down shard's epoch is pinned to
//! `u64::MAX`, so a degraded composite stays cached for as long as the
//! shard stays away. Answers are therefore eventually consistent with
//! the same lag a single engine's epoch snapshots already have.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use afforest_graph::Node;
use afforest_obs::reqtrace::{self, RootSpan, Stage, StageSpan};
use afforest_serve::events::{self, EventKind};
use afforest_serve::protocol::{
    decode_request_traced, encode_response, encode_response_v2, read_frame, write_frame,
};
use afforest_serve::{Request, Response, ServeError, StatsReport, WireError, WireVersion};

use crate::backend::{ShardBackend, ShardUnavailable};
use crate::boundary::BoundaryStore;
use crate::compose::{self, Composite};
use crate::health::{Gate, HealthConfig, HealthTracker, Transition};
use crate::metrics::{router_metrics, RouterMetrics};
use crate::park::ParkSet;
use crate::plan::ShardPlan;

/// How long a blocked worker sleeps between accept attempts / shutdown
/// checks.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection read timeout, so a parked reader re-checks the
/// shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// A protocol-compatible front-end routing requests across shards.
pub struct Router<B: ShardBackend> {
    plan: ShardPlan,
    boundary: BoundaryStore,
    backend: B,
    health: HealthTracker,
    park: ParkSet,
    /// Per-shard replay serialization: `ParkSet::clear` drops a
    /// count-based prefix of the live queue, which is only correct
    /// while a single replayer clears — two concurrent replays could
    /// each deliver the same snapshot and together clear past a batch
    /// parked in between, dropping an acknowledged write.
    replaying: Vec<Mutex<()>>,
    cache: Mutex<Option<Arc<Composite>>>,
    metrics: RouterMetrics,
    shutdown: AtomicBool,
    read_deadline: Option<Duration>,
}

impl<B: ShardBackend> Router<B> {
    /// Builds a router over `backend`'s shards. Registers every router
    /// and per-shard metric series immediately so a `/metrics` scrape
    /// sees them before the first request. `read_deadline` bounds how
    /// long an idle connection is kept (None keeps it forever). Health
    /// thresholds default ([`HealthConfig::default`]) and parking is
    /// in-memory; see [`Router::with_health_config`] and
    /// [`Router::with_park`].
    pub fn new(
        plan: ShardPlan,
        boundary: BoundaryStore,
        backend: B,
        read_deadline: Option<Duration>,
    ) -> Router<B> {
        let metrics = router_metrics(plan.num_shards());
        metrics.boundary_edges.set(boundary.edge_count() as u64);
        let health = HealthTracker::new(plan.num_shards(), HealthConfig::default());
        let park = ParkSet::in_memory(plan.num_shards());
        let replaying = (0..plan.num_shards()).map(|_| Mutex::new(())).collect();
        Router {
            plan,
            boundary,
            backend,
            health,
            park,
            replaying,
            cache: Mutex::new(None),
            metrics,
            shutdown: AtomicBool::new(false),
            read_deadline,
        }
    }

    /// Replaces the health thresholds (resets every shard to Healthy;
    /// call before serving).
    pub fn with_health_config(mut self, cfg: HealthConfig) -> Router<B> {
        self.health = HealthTracker::new(self.plan.num_shards(), cfg);
        self
    }

    /// Replaces the park set (e.g. a durable [`ParkSet::with_root`]
    /// whose recovered backlogs should survive a router restart). The
    /// parked-batches gauges are seeded from the recovered depths.
    pub fn with_park(self, park: ParkSet) -> Router<B> {
        let r = Router { park, ..self };
        for k in 0..r.plan.num_shards() {
            if let Some(ms) = r.metrics.shards.get(k) {
                ms.parked.set(r.park.depth(k) as u64);
            }
        }
        r
    }

    /// Marks `shard` Down before serving starts (its worker was
    /// unreachable at boot). The breaker probes it on the first call
    /// instead of every request timing out against a dead address.
    pub fn mark_shard_down(&self, shard: usize) {
        let t = self.health.mark_down(shard);
        self.publish_transition(shard, t);
    }

    /// The sharding plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The shard backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The boundary edge store.
    pub fn boundary(&self) -> &BoundaryStore {
        &self.boundary
    }

    /// The per-shard health tracker.
    pub fn health(&self) -> &HealthTracker {
        &self.health
    }

    /// The parked-write queues.
    pub fn park(&self) -> &ParkSet {
        &self.park
    }

    /// Whether a `Shutdown` request has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Requests shutdown (same effect as a `Shutdown` frame).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Waits until every shard drained its ingest queue.
    pub fn flush(&self, timeout: Duration) -> bool {
        self.backend.flush(timeout)
    }

    /// Winds the shard workers down (joins in-process writers, sends
    /// `Shutdown` to remote ones).
    pub fn shutdown_backend(&self) {
        self.backend.shutdown();
    }

    /// Evaluates one request. Never panics; unanswerable requests
    /// become [`Response::Err`]. Tenant administration is refused —
    /// the shard set is fixed at startup.
    pub fn handle(&self, req: &Request) -> Response {
        self.metrics.requests.inc();
        match req {
            Request::Connected(u, v) => self.connected(*u, *v),
            Request::Component(u) => self.component(*u),
            Request::ComponentSize(u) => self.component_size(*u),
            Request::NumComponents => self.num_components(),
            Request::InsertEdges(edges) => self.insert(edges),
            Request::Stats => self.stats(),
            Request::Metrics => Response::Metrics(afforest_obs::registry::expose()),
            Request::ListTenants => Response::Tenants(
                (0..self.backend.num_shards())
                    .map(crate::cluster::shard_tenant_name)
                    .collect(),
            ),
            Request::Shutdown => {
                self.request_shutdown();
                Response::Bye
            }
            Request::DumpTraces => Response::Traces {
                node: reqtrace::node().to_string(),
                spans: reqtrace::ring().snapshot(),
            },
            Request::CreateTenant { .. } | Request::DropTenant { .. } => Response::Err(
                "tenant administration is not available through the shard router".to_string(),
            ),
        }
    }

    /// Publishes one health transition: gauge + flight event.
    fn publish_transition(&self, shard: usize, t: Option<Transition>) {
        let Some(t) = t else { return };
        if let Some(ms) = self.metrics.shards.get(shard) {
            ms.health.set(t.to.code());
        }
        events::record(
            EventKind::ShardHealthChanged,
            [shard as u64, t.from.code(), t.to.code()],
        );
    }

    /// One breaker-gated backend call. Feeds the health machine with
    /// the outcome (shedding is backpressure, not sickness), publishes
    /// any transition, and drains the shard's park backlog after a
    /// success. While the circuit is open this fails fast with a
    /// synthetic `Dead` outcome instead of dialing.
    fn shard_call(&self, shard: usize, req: &Request) -> Result<Response, ShardUnavailable> {
        // The fan-out span fathers everything the shard records for this
        // call: its context is installed as the thread's current one, so
        // a remote backend's Client forwards it over the wire and the
        // worker's spans parent under it.
        let fanout = StageSpan::begin_with(Stage::ShardFanout, shard as u64);
        let _fanout_scope = reqtrace::scoped(fanout.ctx());
        let (gate, t) = {
            let _gate = StageSpan::begin_with(Stage::BreakerGate, shard as u64);
            self.health.gate(shard)
        };
        self.publish_transition(shard, t);
        if gate == Gate::FailFast {
            return Err(ShardUnavailable::Dead {
                shard,
                reason: "circuit open".into(),
            });
        }
        match self.backend.call(shard, req) {
            Ok(resp) => {
                let t = self.health.record_success(shard);
                let recovered = t.is_some_and(|t| t.recovered());
                self.publish_transition(shard, t);
                if recovered || self.park.depth(shard) > 0 {
                    self.replay_parked(shard);
                }
                Ok(resp)
            }
            Err(shed @ ShardUnavailable::Shedding { .. }) => Err(shed),
            Err(dead) => {
                let t = self.health.record_failure(shard);
                self.publish_transition(shard, t);
                Err(dead)
            }
        }
    }

    /// Replays `shard`'s parked batches in arrival order, clearing the
    /// prefix that was delivered. Runs without holding any park lock
    /// across backend calls; a failure mid-replay leaves the suffix
    /// parked for the next recovery (re-replay is idempotent).
    ///
    /// At most one replay per shard runs at a time: the count-prefix
    /// `clear` below assumes this replayer is the queue's only
    /// consumer (parks append behind the snapshot, so the delivered
    /// prefix stays stable). A caller that loses the race skips —
    /// any leftover backlog drains on the next successful call.
    fn replay_parked(&self, shard: usize) {
        let Some(lock) = self.replaying.get(shard) else {
            return;
        };
        let _guard = match lock.try_lock() {
            Ok(g) => g,
            Err(std::sync::TryLockError::Poisoned(e)) => e.into_inner(),
            Err(std::sync::TryLockError::WouldBlock) => return,
        };
        let batches = self.park.snapshot(shard);
        let mut delivered = 0usize;
        let mut edges = 0u64;
        for batch in &batches {
            let len = batch.len() as u64;
            match self
                .backend
                .call(shard, &Request::InsertEdges(batch.clone()))
            {
                Ok(Response::Accepted { .. }) => {
                    delivered += 1;
                    edges += len;
                }
                Ok(_) => break,
                Err(ShardUnavailable::Shedding { .. }) => break,
                Err(_) => {
                    let t = self.health.record_failure(shard);
                    self.publish_transition(shard, t);
                    break;
                }
            }
        }
        if delivered > 0 {
            self.park.clear(shard, delivered);
            events::record(
                EventKind::ParkReplayed,
                [shard as u64, delivered as u64, edges],
            );
            if let Some(ms) = self.metrics.shards.get(shard) {
                ms.requests.add(delivered as u64);
                ms.edges_routed.add(edges);
            }
        }
        if let Some(ms) = self.metrics.shards.get(shard) {
            ms.parked.set(self.park.depth(shard) as u64);
        }
    }

    /// Parks one batch (already in `shard`-local ids) and refreshes the
    /// gauge.
    fn park_batch(&self, shard: usize, batch: &[(Node, Node)]) {
        let depth = self.park.park(shard, batch);
        if let Some(ms) = self.metrics.shards.get(shard) {
            ms.parked.set(depth as u64);
        }
    }

    /// Tags `resp` as [`Response::Degraded`] (counting it) when the
    /// answer was composed while part of the cluster was unavailable.
    fn degrade(&self, resp: Response, degraded: bool) -> Response {
        if degraded {
            self.metrics.degraded_reads.inc();
            Response::Degraded(Box::new(resp))
        } else {
            resp
        }
    }

    fn check_range(&self, v: Node) -> Option<Response> {
        if (v as usize) < self.plan.vertices() {
            None
        } else {
            Some(Response::Err(format!(
                "vertex {v} out of range for {} vertices",
                self.plan.vertices()
            )))
        }
    }

    /// Resolves global vertex `v` to its representative and whether the
    /// resolution is degraded: the owning shard's local component
    /// label, or — when the shard is unavailable — the *pseudo*
    /// representative `(shard, local id of v)` that a degraded
    /// composite keys cut endpoints by.
    fn local_component(&self, v: Node) -> Result<((usize, Node), bool), Response> {
        let s = self.plan.owner(v);
        if let Some(ms) = self.metrics.shards.get(s) {
            ms.requests.inc();
        }
        let local = self.plan.to_local(v);
        match self.shard_call(s, &Request::Component(local)) {
            Ok(Response::Component(label)) => Ok(((s, label), false)),
            Ok(Response::Err(e)) => Err(Response::Err(e)),
            Ok(other) => Err(Response::Err(format!(
                "shard {s} answered {other:?} to a component query"
            ))),
            Err(_) => Ok(((s, local), true)),
        }
    }

    fn connected(&self, u: Node, v: Node) -> Response {
        if let Some(e) = self.check_range(u).or_else(|| self.check_range(v)) {
            return e;
        }
        let (ru, du) = match self.local_component(u) {
            Ok(r) => r,
            Err(e) => return e,
        };
        let (rv, dv) = match self.local_component(v) {
            Ok(r) => r,
            Err(e) => return e,
        };
        if ru == rv && !du && !dv {
            // Same live local component: global truth, no composite
            // needed — reads within surviving shards stay undegraded.
            return Response::Connected(true);
        }
        let comp = match self.composite() {
            Ok(c) => c,
            Err(e) => return e,
        };
        let answer = if ru == rv {
            // Same pseudo-rep: u and v are the same down-shard vertex.
            true
        } else {
            match (comp.class_of(ru), comp.class_of(rv)) {
                (Some(a), Some(b)) => a == b,
                // A component no cut edge touches is connected to
                // nothing outside its shard (conservative `false` for
                // an unseen down-shard vertex — hence the tag).
                _ => false,
            }
        };
        self.degrade(Response::Connected(answer), du || dv || comp.degraded)
    }

    fn component(&self, u: Node) -> Response {
        if let Some(e) = self.check_range(u) {
            return e;
        }
        let (rep, du) = match self.local_component(u) {
            Ok(r) => r,
            Err(e) => return e,
        };
        let comp = match self.composite() {
            Ok(c) => c,
            Err(e) => return e,
        };
        let label = match comp.class_of(rep).and_then(|i| comp.class(i)) {
            Some(class) => class.label,
            // No class: the (possibly pseudo) rep's own global id.
            None => self.plan.to_global(rep.0, rep.1),
        };
        self.degrade(Response::Component(label), du || comp.degraded)
    }

    fn component_size(&self, u: Node) -> Response {
        if let Some(e) = self.check_range(u) {
            return e;
        }
        let (rep, du) = match self.local_component(u) {
            Ok(r) => r,
            Err(e) => return e,
        };
        let comp = match self.composite() {
            Ok(c) => c,
            Err(e) => return e,
        };
        if let Some(class) = comp.class_of(rep).and_then(|i| comp.class(i)) {
            return self.degrade(Response::ComponentSize(class.size), du || comp.degraded);
        }
        if du {
            // Down shard, no cut edge through u: all we can certify is
            // the vertex itself (the degraded lower bound).
            return self.degrade(Response::ComponentSize(1), true);
        }
        match self.shard_call(rep.0, &Request::ComponentSize(rep.1)) {
            Ok(Response::ComponentSize(sz)) => {
                self.degrade(Response::ComponentSize(sz), comp.degraded)
            }
            Ok(Response::Err(e)) => Response::Err(e),
            Ok(other) => Response::Err(format!(
                "shard {} answered {other:?} to a size query",
                rep.0
            )),
            Err(_) => self.degrade(Response::ComponentSize(1), true),
        }
    }

    fn num_components(&self) -> Response {
        match self.composite() {
            Ok(c) => self.degrade(Response::NumComponents(c.num_components), c.degraded),
            Err(e) => e,
        }
    }

    fn insert(&self, edges: &[(Node, Node)]) -> Response {
        let n = self.plan.vertices();
        if let Some(&(u, v)) = edges
            .iter()
            .find(|&&(u, v)| u as usize >= n || v as usize >= n)
        {
            return Response::Err(format!("edge ({u}, {v}) out of range for {n} vertices"));
        }
        let routed = self.plan.split_batch(edges);
        let mut parked_any = false;
        for (k, batch) in routed.per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let len = batch.len() as u64;
            if self.park.depth(k) > 0 {
                // A backlog exists: park behind it to preserve order,
                // then try to drain — the attempt doubles as the
                // breaker's probe, and a success replays everything
                // just parked included.
                self.park_batch(k, &batch);
                let _ = self.shard_call(k, &Request::Stats);
                if self.park.depth(k) > 0 {
                    parked_any = true;
                }
                continue;
            }
            match self.shard_call(k, &Request::InsertEdges(batch.clone())) {
                Ok(Response::Accepted { .. }) => {
                    if let Some(ms) = self.metrics.shards.get(k) {
                        ms.requests.inc();
                        ms.edges_routed.add(len);
                    }
                }
                Ok(Response::Overloaded { queue_depth }) => {
                    return Response::Overloaded { queue_depth };
                }
                Ok(Response::Err(e)) => return Response::Err(e),
                Ok(other) => {
                    return Response::Err(format!("shard {k} answered {other:?} to an insert"));
                }
                // The shard is alive but kept shedding through the
                // retry budget: honest backpressure, relayed in-band
                // with the depth its last Overloaded answer reported.
                Err(ShardUnavailable::Shedding { queue_depth, .. }) => {
                    return Response::Overloaded { queue_depth };
                }
                // Dead (or circuit open): park and keep going — live
                // shards' ingest must not stall behind a dead one.
                Err(ShardUnavailable::Dead { .. }) => {
                    self.park_batch(k, &batch);
                    parked_any = true;
                }
            }
        }
        if !routed.cut.is_empty() {
            self.metrics.cut_edges.add(routed.cut.len() as u64);
            self.boundary.observe_batch(&routed.cut);
            self.metrics
                .boundary_edges
                .set(self.boundary.edge_count() as u64);
        }
        // A parked batch is accepted — it will be delivered on
        // recovery — but the caller deserves to know part of it is
        // deferred, hence the tag.
        self.degrade(
            Response::Accepted {
                edges: edges.len() as u32,
            },
            parked_any,
        )
    }

    fn stats(&self) -> Response {
        let stats = self.sweep_stats();
        let missing = stats.iter().any(Option::is_none);
        let comp = match self.composite() {
            Ok(c) => c,
            Err(e) => return e,
        };
        let mut agg = StatsReport {
            epoch: 0,
            vertices: self.plan.vertices() as u64,
            num_components: comp.num_components,
            edges_ingested: 0,
            epochs_published: 0,
            queue_depth: 0,
            requests_shed: 0,
            wal_records: 0,
            faults_injected: 0,
            tenants: self.backend.num_shards() as u64,
        };
        for s in stats.iter().flatten() {
            agg.epoch = agg.epoch.max(s.epoch);
            agg.edges_ingested += s.edges_ingested;
            agg.epochs_published += s.epochs_published;
            agg.queue_depth += s.queue_depth;
            agg.requests_shed += s.requests_shed;
            agg.wal_records += s.wal_records;
            agg.faults_injected += s.faults_injected;
        }
        self.degrade(Response::Stats(agg), missing || comp.degraded)
    }

    /// Queries every shard's stats, refreshing the per-shard epoch and
    /// queue-depth gauges along the way. A shard that does not answer
    /// (dead, circuit open, shedding, or answering nonsense) yields
    /// `None` — the sweep never hard-fails, it degrades.
    fn sweep_stats(&self) -> Vec<Option<StatsReport>> {
        (0..self.backend.num_shards())
            .map(|k| match self.shard_call(k, &Request::Stats) {
                Ok(Response::Stats(s)) => {
                    if let Some(ms) = self.metrics.shards.get(k) {
                        ms.epoch.set(s.epoch);
                        ms.queue_depth.set(s.queue_depth);
                    }
                    Some(s)
                }
                _ => None,
            })
            .collect()
    }

    /// The composite view for the current (boundary version, epoch
    /// vector), rebuilt on cache miss. Down shards key as `u64::MAX`,
    /// so a degraded view stays cached while they are away.
    fn composite(&self) -> Result<Arc<Composite>, Response> {
        let (version, cut) = self.boundary.snapshot_edges();
        let stats = self.sweep_stats();
        let epochs: Vec<u64> = stats
            .iter()
            .map(|s| s.as_ref().map_or(u64::MAX, |s| s.epoch))
            .collect();
        if let Some(c) = self.cached() {
            if c.boundary_version == version && c.epochs == epochs {
                return Ok(c);
            }
        }
        let built = {
            let _compose = StageSpan::begin_with(Stage::BoundaryCompose, cut.len() as u64);
            compose::build(&self.plan, &self.backend, version, &cut, &stats)
                .map_err(Response::Err)?
        };
        self.metrics.composite_rebuilds.inc();
        let built = Arc::new(built);
        self.store_cache(Arc::clone(&built));
        Ok(built)
    }

    fn cached(&self) -> Option<Arc<Composite>> {
        let g = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        g.clone()
    }

    fn store_cache(&self, c: Arc<Composite>) {
        let mut g = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        *g = Some(c);
    }

    /// Serves `listener` with a pool of `workers` accept threads until
    /// a `Shutdown` request arrives. Mirrors the standalone server's
    /// TCP front-end (same polling accept, same per-version answers).
    pub fn serve_tcp(&self, listener: TcpListener, workers: usize) -> Result<(), ServeError> {
        listener.set_nonblocking(true)?;
        let mut spawn_failed = false;
        thread::scope(|s| {
            for i in 0..workers.max(1) {
                let listener = &listener;
                let spawned = thread::Builder::new()
                    .name(format!("afforest-router-worker-{i}"))
                    .spawn_scoped(s, move || self.accept_loop(listener));
                if spawned.is_err() {
                    spawn_failed = true;
                    self.request_shutdown();
                    break;
                }
            }
        });
        if spawn_failed {
            return Err(ServeError::Spawn {
                what: "router worker",
            });
        }
        Ok(())
    }

    fn accept_loop(&self, listener: &TcpListener) {
        while !self.shutdown_requested() {
            match listener.accept() {
                Ok((stream, _peer)) => self.serve_connection(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        }
    }

    /// Runs one connection's request/response loop until the peer
    /// closes, the stream desynchronizes, or shutdown is requested.
    /// Each frame is answered in the wire version it arrived in.
    fn serve_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let _ = stream.set_nodelay(true);
        let mut last_activity = Instant::now();
        while !self.shutdown_requested() {
            let payload = match read_frame(&mut stream) {
                Ok(Some(payload)) => payload,
                Ok(None) => return,
                Err(WireError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if let Some(deadline) = self.read_deadline {
                        if last_activity.elapsed() >= deadline {
                            return;
                        }
                    }
                    continue;
                }
                Err(WireError::Io(_)) => return,
                // Unframeable bytes desynchronize the stream: report,
                // then drop the connection.
                Err(WireError::Frame(e)) => {
                    let err = Response::Err(e.to_string());
                    let _ = write_frame(&mut stream, &encode_response(&err));
                    return;
                }
            };
            last_activity = Instant::now();
            // The router has exactly one logical tenant namespace; the
            // v2 tenant field is accepted and ignored so multi-tenant
            // clients can point at a router unchanged.
            let decode_start = Instant::now();
            let decoded = decode_request_traced(&payload);
            let decode_ns = decode_start.elapsed().as_nanos() as u64;
            let (encoded, done) = match decoded {
                Ok((version, _tenant, ctx, req)) => {
                    // The root spans the whole request at the router;
                    // decode is recorded retroactively because the trace
                    // context is only known once decode succeeds.
                    let root = RootSpan::begin(ctx, Stage::RouterRequest);
                    let _trace_scope = reqtrace::scoped(root.ctx());
                    reqtrace::record(
                        root.ctx(),
                        Stage::RouterDecode,
                        payload.len() as u64,
                        reqtrace::now_us().saturating_sub(decode_ns / 1_000),
                        decode_ns,
                    );
                    let resp = self.handle(&req);
                    if matches!(
                        resp,
                        Response::Err(_) | Response::Overloaded { .. } | Response::Degraded(_)
                    ) {
                        root.force_retain();
                    }
                    let done = matches!(resp, Response::Bye);
                    let encoded = match version {
                        WireVersion::V1 => encode_response(&resp),
                        WireVersion::V2 => encode_response_v2(&resp),
                    };
                    self.metrics.latency.record_traced(
                        decode_start.elapsed().as_nanos() as u64,
                        if root.sampled() {
                            root.ctx().trace_id
                        } else {
                            0
                        },
                    );
                    (encoded, done)
                }
                Err(e) => (encode_response(&Response::Err(e.to_string())), false),
            };
            if write_frame(&mut stream, &encoded).is_err() {
                return;
            }
            if done {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::LocalCluster;
    use crate::health::HealthState;
    use afforest_serve::ServeConfig;
    use std::sync::atomic::AtomicU64;

    fn router(n: usize, shards: usize) -> Router<LocalCluster> {
        let plan = ShardPlan::new(n, shards);
        let config = ServeConfig::builder().build().unwrap();
        let cluster = LocalCluster::new(&plan, &[], &config).unwrap();
        Router::new(plan, BoundaryStore::new(n), cluster, None)
    }

    fn flushed<B: ShardBackend>(r: &Router<B>) {
        assert!(r.flush(Duration::from_secs(10)));
    }

    /// A LocalCluster whose shards can be "killed" (typed Dead
    /// outcome) and revived, for deterministic failure-domain tests.
    struct Flaky {
        inner: LocalCluster,
        dead: Vec<AtomicBool>,
        calls: Vec<AtomicU64>,
    }

    impl Flaky {
        fn new(inner: LocalCluster) -> Flaky {
            let n = inner.num_shards();
            Flaky {
                inner,
                dead: (0..n).map(|_| AtomicBool::new(false)).collect(),
                calls: (0..n).map(|_| AtomicU64::new(0)).collect(),
            }
        }

        fn kill(&self, k: usize) {
            self.dead[k].store(true, Ordering::Relaxed);
        }

        fn revive(&self, k: usize) {
            self.dead[k].store(false, Ordering::Relaxed);
        }

        fn calls(&self, k: usize) -> u64 {
            self.calls[k].load(Ordering::Relaxed)
        }
    }

    impl ShardBackend for Flaky {
        fn num_shards(&self) -> usize {
            self.inner.num_shards()
        }

        fn call(&self, shard: usize, req: &Request) -> Result<Response, ShardUnavailable> {
            if let Some(c) = self.calls.get(shard) {
                c.fetch_add(1, Ordering::Relaxed);
            }
            if self
                .dead
                .get(shard)
                .is_some_and(|d| d.load(Ordering::Relaxed))
            {
                return Err(ShardUnavailable::Dead {
                    shard,
                    reason: "killed by test".into(),
                });
            }
            self.inner.call(shard, req)
        }

        fn flush(&self, timeout: Duration) -> bool {
            self.inner.flush(timeout)
        }

        fn shutdown(&self) {
            self.inner.shutdown();
        }
    }

    fn flaky_router(n: usize, shards: usize, cfg: HealthConfig) -> Router<Flaky> {
        let plan = ShardPlan::new(n, shards);
        let config = ServeConfig::builder().build().unwrap();
        let cluster = LocalCluster::new(&plan, &[], &config).unwrap();
        Router::new(plan, BoundaryStore::new(n), Flaky::new(cluster), None).with_health_config(cfg)
    }

    #[test]
    fn internal_edges_reach_their_shard() {
        let r = router(8, 2);
        assert_eq!(
            r.handle(&Request::InsertEdges(vec![(0, 1), (4, 5)])),
            Response::Accepted { edges: 2 }
        );
        flushed(&r);
        assert_eq!(
            r.handle(&Request::Connected(0, 1)),
            Response::Connected(true)
        );
        assert_eq!(
            r.handle(&Request::Connected(4, 5)),
            Response::Connected(true)
        );
        assert_eq!(
            r.handle(&Request::Connected(0, 4)),
            Response::Connected(false)
        );
        assert_eq!(
            r.handle(&Request::NumComponents),
            Response::NumComponents(6)
        );
        r.shutdown_backend();
    }

    #[test]
    fn cut_edges_connect_across_shards() {
        let r = router(8, 2);
        r.handle(&Request::InsertEdges(vec![(0, 1), (4, 5), (1, 4)]));
        flushed(&r);
        assert_eq!(
            r.handle(&Request::Connected(0, 5)),
            Response::Connected(true)
        );
        assert_eq!(
            r.handle(&Request::NumComponents),
            Response::NumComponents(5)
        );
        // Global label of the glued component is the global minimum, 0.
        assert_eq!(r.handle(&Request::Component(5)), Response::Component(0));
        assert_eq!(
            r.handle(&Request::ComponentSize(5)),
            Response::ComponentSize(4)
        );
        assert_eq!(r.boundary().edge_count(), 1);
        r.shutdown_backend();
    }

    #[test]
    fn redundant_cut_edges_do_not_grow_the_boundary() {
        let r = router(8, 4);
        // 0|1 cut, then a parallel path making (1, 2) redundant… but
        // only after (0,2),(0,1) are stored.
        r.handle(&Request::InsertEdges(vec![(0, 2), (0, 1)]));
        r.handle(&Request::InsertEdges(vec![(1, 2)]));
        flushed(&r);
        assert_eq!(r.boundary().edge_count(), 2);
        assert_eq!(
            r.handle(&Request::Connected(0, 2)),
            Response::Connected(true)
        );
        r.shutdown_backend();
    }

    #[test]
    fn out_of_range_answers_err() {
        let r = router(4, 2);
        for req in [
            Request::Connected(0, 9),
            Request::Component(4),
            Request::ComponentSize(u32::MAX),
            Request::InsertEdges(vec![(0, 4)]),
        ] {
            match r.handle(&req) {
                Response::Err(msg) => assert!(msg.contains("out of range"), "{msg}"),
                other => panic!("{req:?} answered {other:?}"),
            }
        }
        r.shutdown_backend();
    }

    #[test]
    fn stats_aggregates_all_shards() {
        let r = router(12, 3);
        r.handle(&Request::InsertEdges(vec![(0, 1), (4, 5), (8, 9), (3, 4)]));
        flushed(&r);
        match r.handle(&Request::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.vertices, 12);
                assert_eq!(s.tenants, 3);
                // 3 internal edges; the cut edge lives in the boundary.
                assert_eq!(s.edges_ingested, 3);
                assert_eq!(s.num_components, 8);
                assert_eq!(s.queue_depth, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        r.shutdown_backend();
    }

    #[test]
    fn tenant_admin_is_refused_and_list_names_shards() {
        let r = router(4, 2);
        match r.handle(&Request::CreateTenant {
            name: afforest_serve::TenantId::new("x").unwrap(),
            vertices: 4,
        }) {
            Response::Err(msg) => assert!(msg.contains("not available"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            r.handle(&Request::ListTenants),
            Response::Tenants(vec!["shard-0".to_string(), "shard-1".to_string()])
        );
        r.shutdown_backend();
    }

    #[test]
    fn composite_cache_is_reused_until_invalidated() {
        let r = router(8, 2);
        r.handle(&Request::InsertEdges(vec![(1, 4)]));
        flushed(&r);
        let _ = r.handle(&Request::NumComponents);
        let rebuilds = r.metrics.composite_rebuilds.get();
        let _ = r.handle(&Request::NumComponents);
        let _ = r.handle(&Request::Connected(0, 7));
        assert_eq!(r.metrics.composite_rebuilds.get(), rebuilds);
        // A new cut edge bumps the boundary version: rebuild.
        r.handle(&Request::InsertEdges(vec![(0, 7)]));
        flushed(&r);
        let _ = r.handle(&Request::NumComponents);
        assert!(r.metrics.composite_rebuilds.get() > rebuilds);
        r.shutdown_backend();
    }

    #[test]
    fn breaker_opens_after_threshold_and_fails_fast() {
        let r = flaky_router(
            8,
            2,
            HealthConfig {
                suspect_after: 1,
                down_after: 2,
                probe_interval: Duration::from_secs(3600),
                ..HealthConfig::default()
            },
        );
        r.backend().kill(1);
        // Each straddling read degrades instead of erroring, and the
        // failures walk the machine Healthy → Suspect → Down.
        match r.handle(&Request::Connected(0, 5)) {
            Response::Degraded(inner) => assert_eq!(*inner, Response::Connected(false)),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.health().state(1), HealthState::Down);
        // Circuit open: further reads stop dialing the dead shard.
        let before = r.backend().calls(1);
        for _ in 0..5 {
            match r.handle(&Request::Connected(0, 5)) {
                Response::Degraded(_) => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(r.backend().calls(1), before, "breaker must fail fast");
        assert!(r.metrics.degraded_reads.get() >= 6);
        r.shutdown_backend();
    }

    #[test]
    fn writes_park_while_down_and_replay_on_recovery() {
        let r = flaky_router(
            8,
            2,
            HealthConfig {
                suspect_after: 1,
                down_after: 1,
                probe_interval: Duration::ZERO,
                ..HealthConfig::default()
            },
        );
        r.handle(&Request::InsertEdges(vec![(0, 1)]));
        flushed(&r);
        r.backend().kill(1);
        // A mixed batch: the live half lands, the dead half parks, and
        // the answer is tagged so the caller knows part is deferred.
        match r.handle(&Request::InsertEdges(vec![(2, 3), (4, 5)])) {
            Response::Degraded(inner) => assert_eq!(*inner, Response::Accepted { edges: 2 }),
            other => panic!("unexpected {other:?}"),
        }
        match r.handle(&Request::InsertEdges(vec![(5, 6)])) {
            Response::Degraded(inner) => assert_eq!(*inner, Response::Accepted { edges: 1 }),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.park().depth(1), 2);
        flushed(&r);
        // Live shard kept ingesting while shard 1 was down.
        assert_eq!(
            r.handle(&Request::Connected(2, 3)),
            Response::Connected(true)
        );
        // Recovery: the next insert probes, replays both parked
        // batches in order, then delivers the new batch live.
        r.backend().revive(1);
        assert_eq!(
            r.handle(&Request::InsertEdges(vec![(6, 7)])),
            Response::Accepted { edges: 1 }
        );
        assert_eq!(r.park().depth(1), 0);
        assert_eq!(r.health().state(1), HealthState::Healthy);
        flushed(&r);
        assert_eq!(
            r.handle(&Request::Connected(4, 7)),
            Response::Connected(true)
        );
        // Oracle census: {0,1} {2,3} {4,5,6,7} → 3 components.
        assert_eq!(
            r.handle(&Request::NumComponents),
            Response::NumComponents(3)
        );
        r.shutdown_backend();
    }

    /// Regression: two threads finishing calls on a recovering shard
    /// could both run the park replay; each cleared a count-based
    /// prefix of the live queue, so a batch parked between the two
    /// clears — already acknowledged Degraded(Accepted) — was dropped.
    /// Replay is serialized per shard now; under kill/revive flapping
    /// with concurrent writers every acknowledged edge must survive.
    #[test]
    fn concurrent_replays_never_drop_an_acknowledged_write() {
        let r = flaky_router(
            64,
            2,
            HealthConfig {
                suspect_after: 1,
                down_after: 1,
                probe_interval: Duration::ZERO,
                ..HealthConfig::default()
            },
        );
        let r = &r;
        let stop = &AtomicBool::new(false);
        thread::scope(|s| {
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    r.backend().kill(1);
                    thread::sleep(Duration::from_micros(50));
                    r.backend().revive(1);
                    thread::sleep(Duration::from_micros(50));
                }
            });
            // Four writers, each building one chain inside shard 1
            // (global ids 32..64), while the shard flaps.
            let workers: Vec<_> = (0..4u32)
                .map(|t| {
                    s.spawn(move || {
                        let base = 32 + 8 * t;
                        for i in 0..7u32 {
                            let edge = (base + i, base + i + 1);
                            loop {
                                match r.handle(&Request::InsertEdges(vec![edge])) {
                                    Response::Accepted { .. } => break,
                                    Response::Degraded(inner) => {
                                        assert!(matches!(*inner, Response::Accepted { .. }));
                                        break;
                                    }
                                    Response::Overloaded { .. } => {
                                        thread::sleep(Duration::from_millis(1));
                                    }
                                    other => panic!("insert answered {other:?}"),
                                }
                            }
                        }
                    })
                })
                .collect();
            for w in workers {
                w.join().unwrap();
            }
            stop.store(true, Ordering::Relaxed);
        });
        r.backend().revive(1);
        // Drain whatever backlog the final kill left parked.
        for _ in 0..1000 {
            if r.park().depth(1) == 0 {
                break;
            }
            let _ = r.handle(&Request::Stats);
        }
        assert_eq!(r.park().depth(1), 0, "backlog never drained");
        flushed(r);
        // Every acknowledged edge must have landed: each chain is
        // connected end to end.
        for t in 0..4u32 {
            let base = 32 + 8 * t;
            assert_eq!(
                r.handle(&Request::Connected(base, base + 7)),
                Response::Connected(true),
                "chain {t} lost an acknowledged edge"
            );
        }
        r.shutdown_backend();
    }

    #[test]
    fn degraded_reads_compose_surviving_shards_with_the_boundary() {
        let r = flaky_router(
            8,
            2,
            HealthConfig {
                suspect_after: 1,
                down_after: 1,
                probe_interval: Duration::from_secs(3600),
                ..HealthConfig::default()
            },
        );
        r.handle(&Request::InsertEdges(vec![(0, 1), (4, 5), (1, 4)]));
        flushed(&r);
        r.backend().kill(1);
        // Live-shard reads stay exact and untagged.
        assert_eq!(
            r.handle(&Request::Connected(0, 1)),
            Response::Connected(true)
        );
        // A straddling read through the stored cut edge (1,4) still
        // proves connectivity: 4 survives as a pseudo-rep.
        match r.handle(&Request::Connected(0, 4)) {
            Response::Degraded(inner) => assert_eq!(*inner, Response::Connected(true)),
            other => panic!("unexpected {other:?}"),
        }
        // 5's membership lived only in shard 1's forest: conservative
        // false, and the tag says so.
        match r.handle(&Request::Connected(0, 5)) {
            Response::Degraded(inner) => assert_eq!(*inner, Response::Connected(false)),
            other => panic!("unexpected {other:?}"),
        }
        // Live census: shard 0 has {0,1},{2},{3}; the cut edge merges
        // nothing live-to-live, so 3.
        match r.handle(&Request::NumComponents) {
            Response::Degraded(inner) => assert_eq!(*inner, Response::NumComponents(3)),
            other => panic!("unexpected {other:?}"),
        }
        r.shutdown_backend();
    }

    #[test]
    fn mark_shard_down_probes_on_first_call() {
        let r = flaky_router(
            8,
            2,
            HealthConfig {
                suspect_after: 1,
                down_after: 1,
                probe_interval: Duration::from_secs(3600),
                ..HealthConfig::default()
            },
        );
        // Boot-time seeding (the CLI does this for unreachable
        // addresses): Down immediately, probe timer pre-expired.
        r.mark_shard_down(1);
        assert_eq!(r.health().state(1), HealthState::Down);
        // The worker is actually fine: the first call probes and
        // recovers it without waiting out the interval.
        assert_eq!(
            r.handle(&Request::InsertEdges(vec![(4, 5)])),
            Response::Accepted { edges: 1 }
        );
        assert_eq!(r.health().state(1), HealthState::Healthy);
        r.shutdown_backend();
    }
}
