//! The router front-end: one protocol endpoint over N shards.
//!
//! The router speaks the same wire protocol (v1 and v2) as a
//! standalone server, so existing clients and the load generator work
//! against it unchanged. Reads are answered by composing per-shard
//! answers with the boundary graph (see [`crate::compose`]);
//! `InsertEdges` batches are split by the plan — internal edges go to
//! the owning shard's ingest queue in local ids, cut edges go to the
//! boundary store.
//!
//! Failure relay: a shard answering `Overloaded` or `Err` aborts the
//! batch and relays the answer to the client verbatim. A client that
//! retries the whole batch is safe — edge insertion is idempotent on a
//! union-find, and the boundary store dedups cut edges — so partial
//! delivery before the error cannot corrupt connectivity.
//!
//! The composite view is cached and keyed on (boundary version, shard
//! epoch vector): any shard publishing a new epoch, or a new cut edge
//! being stored, invalidates it. Answers are therefore eventually
//! consistent with the same lag a single engine's epoch snapshots
//! already have.

use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use afforest_graph::Node;
use afforest_serve::protocol::{
    decode_request_any, encode_response, encode_response_v2, read_frame, write_frame,
};
use afforest_serve::{Request, Response, ServeError, StatsReport, WireError, WireVersion};

use crate::backend::ShardBackend;
use crate::boundary::BoundaryStore;
use crate::compose::{self, Composite};
use crate::metrics::{router_metrics, RouterMetrics};
use crate::plan::ShardPlan;

/// How long a blocked worker sleeps between accept attempts / shutdown
/// checks.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Per-connection read timeout, so a parked reader re-checks the
/// shutdown flag.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

/// A protocol-compatible front-end routing requests across shards.
pub struct Router<B: ShardBackend> {
    plan: ShardPlan,
    boundary: BoundaryStore,
    backend: B,
    cache: Mutex<Option<Arc<Composite>>>,
    metrics: RouterMetrics,
    shutdown: AtomicBool,
    read_deadline: Option<Duration>,
}

impl<B: ShardBackend> Router<B> {
    /// Builds a router over `backend`'s shards. Registers every router
    /// and per-shard metric series immediately so a `/metrics` scrape
    /// sees them before the first request. `read_deadline` bounds how
    /// long an idle connection is kept (None keeps it forever).
    pub fn new(
        plan: ShardPlan,
        boundary: BoundaryStore,
        backend: B,
        read_deadline: Option<Duration>,
    ) -> Router<B> {
        let metrics = router_metrics(plan.num_shards());
        metrics.boundary_edges.set(boundary.edge_count() as u64);
        Router {
            plan,
            boundary,
            backend,
            cache: Mutex::new(None),
            metrics,
            shutdown: AtomicBool::new(false),
            read_deadline,
        }
    }

    /// The sharding plan.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The shard backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// The boundary edge store.
    pub fn boundary(&self) -> &BoundaryStore {
        &self.boundary
    }

    /// Whether a `Shutdown` request has been received.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Requests shutdown (same effect as a `Shutdown` frame).
    pub fn request_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Waits until every shard drained its ingest queue.
    pub fn flush(&self, timeout: Duration) -> bool {
        self.backend.flush(timeout)
    }

    /// Winds the shard workers down (joins in-process writers, sends
    /// `Shutdown` to remote ones).
    pub fn shutdown_backend(&self) {
        self.backend.shutdown();
    }

    /// Evaluates one request. Never panics; unanswerable requests
    /// become [`Response::Err`]. Tenant administration is refused —
    /// the shard set is fixed at startup.
    pub fn handle(&self, req: &Request) -> Response {
        self.metrics.requests.inc();
        match req {
            Request::Connected(u, v) => self.connected(*u, *v),
            Request::Component(u) => self.component(*u),
            Request::ComponentSize(u) => self.component_size(*u),
            Request::NumComponents => self.num_components(),
            Request::InsertEdges(edges) => self.insert(edges),
            Request::Stats => self.stats(),
            Request::Metrics => Response::Metrics(afforest_obs::registry::expose()),
            Request::ListTenants => Response::Tenants(
                (0..self.backend.num_shards())
                    .map(crate::cluster::shard_tenant_name)
                    .collect(),
            ),
            Request::Shutdown => {
                self.request_shutdown();
                Response::Bye
            }
            Request::CreateTenant { .. } | Request::DropTenant { .. } => Response::Err(
                "tenant administration is not available through the shard router".to_string(),
            ),
        }
    }

    fn check_range(&self, v: Node) -> Option<Response> {
        if (v as usize) < self.plan.vertices() {
            None
        } else {
            Some(Response::Err(format!(
                "vertex {v} out of range for {} vertices",
                self.plan.vertices()
            )))
        }
    }

    /// Resolves global vertex `v` to its representative: the owning
    /// shard and the local component label there.
    fn local_component(&self, v: Node) -> Result<(usize, Node), Response> {
        let s = self.plan.owner(v);
        if let Some(ms) = self.metrics.shards.get(s) {
            ms.requests.inc();
        }
        match self
            .backend
            .call(s, &Request::Component(self.plan.to_local(v)))
        {
            Response::Component(label) => Ok((s, label)),
            Response::Err(e) => Err(Response::Err(e)),
            other => Err(Response::Err(format!(
                "shard {s} answered {other:?} to a component query"
            ))),
        }
    }

    fn connected(&self, u: Node, v: Node) -> Response {
        if let Some(e) = self.check_range(u).or_else(|| self.check_range(v)) {
            return e;
        }
        let ru = match self.local_component(u) {
            Ok(r) => r,
            Err(e) => return e,
        };
        let rv = match self.local_component(v) {
            Ok(r) => r,
            Err(e) => return e,
        };
        if ru == rv {
            return Response::Connected(true);
        }
        let comp = match self.composite() {
            Ok(c) => c,
            Err(e) => return e,
        };
        match (comp.class_of(ru), comp.class_of(rv)) {
            (Some(a), Some(b)) => Response::Connected(a == b),
            // A component no cut edge touches is connected to nothing
            // outside its shard.
            _ => Response::Connected(false),
        }
    }

    fn component(&self, u: Node) -> Response {
        if let Some(e) = self.check_range(u) {
            return e;
        }
        let rep = match self.local_component(u) {
            Ok(r) => r,
            Err(e) => return e,
        };
        let comp = match self.composite() {
            Ok(c) => c,
            Err(e) => return e,
        };
        match comp.class_of(rep).and_then(|i| comp.class(i)) {
            Some(class) => Response::Component(class.label),
            None => Response::Component(self.plan.to_global(rep.0, rep.1)),
        }
    }

    fn component_size(&self, u: Node) -> Response {
        if let Some(e) = self.check_range(u) {
            return e;
        }
        let rep = match self.local_component(u) {
            Ok(r) => r,
            Err(e) => return e,
        };
        let comp = match self.composite() {
            Ok(c) => c,
            Err(e) => return e,
        };
        if let Some(class) = comp.class_of(rep).and_then(|i| comp.class(i)) {
            return Response::ComponentSize(class.size);
        }
        match self.backend.call(rep.0, &Request::ComponentSize(rep.1)) {
            Response::ComponentSize(sz) => Response::ComponentSize(sz),
            Response::Err(e) => Response::Err(e),
            other => Response::Err(format!(
                "shard {} answered {other:?} to a size query",
                rep.0
            )),
        }
    }

    fn num_components(&self) -> Response {
        match self.composite() {
            Ok(c) => Response::NumComponents(c.num_components),
            Err(e) => e,
        }
    }

    fn insert(&self, edges: &[(Node, Node)]) -> Response {
        let n = self.plan.vertices();
        if let Some(&(u, v)) = edges
            .iter()
            .find(|&&(u, v)| u as usize >= n || v as usize >= n)
        {
            return Response::Err(format!("edge ({u}, {v}) out of range for {n} vertices"));
        }
        let routed = self.plan.split_batch(edges);
        for (k, batch) in routed.per_shard.into_iter().enumerate() {
            if batch.is_empty() {
                continue;
            }
            let len = batch.len() as u64;
            match self.backend.call(k, &Request::InsertEdges(batch)) {
                Response::Accepted { .. } => {
                    if let Some(ms) = self.metrics.shards.get(k) {
                        ms.requests.inc();
                        ms.edges_routed.add(len);
                    }
                }
                Response::Overloaded { queue_depth } => {
                    return Response::Overloaded { queue_depth };
                }
                Response::Err(e) => return Response::Err(e),
                other => {
                    return Response::Err(format!("shard {k} answered {other:?} to an insert"));
                }
            }
        }
        if !routed.cut.is_empty() {
            self.metrics.cut_edges.add(routed.cut.len() as u64);
            self.boundary.observe_batch(&routed.cut);
            self.metrics
                .boundary_edges
                .set(self.boundary.edge_count() as u64);
        }
        Response::Accepted {
            edges: edges.len() as u32,
        }
    }

    fn stats(&self) -> Response {
        let stats = match self.sweep_stats() {
            Ok(s) => s,
            Err(e) => return e,
        };
        let num_components = match self.composite() {
            Ok(c) => c.num_components,
            Err(e) => return e,
        };
        let mut agg = StatsReport {
            epoch: 0,
            vertices: self.plan.vertices() as u64,
            num_components,
            edges_ingested: 0,
            epochs_published: 0,
            queue_depth: 0,
            requests_shed: 0,
            wal_records: 0,
            faults_injected: 0,
            tenants: self.backend.num_shards() as u64,
        };
        for s in &stats {
            agg.epoch = agg.epoch.max(s.epoch);
            agg.edges_ingested += s.edges_ingested;
            agg.epochs_published += s.epochs_published;
            agg.queue_depth += s.queue_depth;
            agg.requests_shed += s.requests_shed;
            agg.wal_records += s.wal_records;
            agg.faults_injected += s.faults_injected;
        }
        Response::Stats(agg)
    }

    /// Queries every shard's stats, refreshing the per-shard epoch and
    /// queue-depth gauges along the way.
    fn sweep_stats(&self) -> Result<Vec<StatsReport>, Response> {
        let mut out = Vec::with_capacity(self.backend.num_shards());
        for k in 0..self.backend.num_shards() {
            match self.backend.call(k, &Request::Stats) {
                Response::Stats(s) => {
                    if let Some(ms) = self.metrics.shards.get(k) {
                        ms.epoch.set(s.epoch);
                        ms.queue_depth.set(s.queue_depth);
                    }
                    out.push(s);
                }
                Response::Err(e) => return Err(Response::Err(e)),
                other => {
                    return Err(Response::Err(format!(
                        "shard {k} answered {other:?} to a stats query"
                    )));
                }
            }
        }
        Ok(out)
    }

    /// The composite view for the current (boundary version, epoch
    /// vector), rebuilt on cache miss.
    fn composite(&self) -> Result<Arc<Composite>, Response> {
        let (version, cut) = self.boundary.snapshot_edges();
        let stats = self.sweep_stats()?;
        let epochs: Vec<u64> = stats.iter().map(|s| s.epoch).collect();
        if let Some(c) = self.cached() {
            if c.boundary_version == version && c.epochs == epochs {
                return Ok(c);
            }
        }
        let built = compose::build(&self.plan, &self.backend, version, &cut, &stats)
            .map_err(Response::Err)?;
        self.metrics.composite_rebuilds.inc();
        let built = Arc::new(built);
        self.store_cache(Arc::clone(&built));
        Ok(built)
    }

    fn cached(&self) -> Option<Arc<Composite>> {
        let g = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        g.clone()
    }

    fn store_cache(&self, c: Arc<Composite>) {
        let mut g = self.cache.lock().unwrap_or_else(|e| e.into_inner());
        *g = Some(c);
    }

    /// Serves `listener` with a pool of `workers` accept threads until
    /// a `Shutdown` request arrives. Mirrors the standalone server's
    /// TCP front-end (same polling accept, same per-version answers).
    pub fn serve_tcp(&self, listener: TcpListener, workers: usize) -> Result<(), ServeError> {
        listener.set_nonblocking(true)?;
        let mut spawn_failed = false;
        thread::scope(|s| {
            for i in 0..workers.max(1) {
                let listener = &listener;
                let spawned = thread::Builder::new()
                    .name(format!("afforest-router-worker-{i}"))
                    .spawn_scoped(s, move || self.accept_loop(listener));
                if spawned.is_err() {
                    spawn_failed = true;
                    self.request_shutdown();
                    break;
                }
            }
        });
        if spawn_failed {
            return Err(ServeError::Spawn {
                what: "router worker",
            });
        }
        Ok(())
    }

    fn accept_loop(&self, listener: &TcpListener) {
        while !self.shutdown_requested() {
            match listener.accept() {
                Ok((stream, _peer)) => self.serve_connection(stream),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => thread::sleep(ACCEPT_POLL),
                Err(_) => thread::sleep(ACCEPT_POLL),
            }
        }
    }

    /// Runs one connection's request/response loop until the peer
    /// closes, the stream desynchronizes, or shutdown is requested.
    /// Each frame is answered in the wire version it arrived in.
    fn serve_connection(&self, mut stream: TcpStream) {
        let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
        let _ = stream.set_nodelay(true);
        let mut last_activity = Instant::now();
        while !self.shutdown_requested() {
            let payload = match read_frame(&mut stream) {
                Ok(Some(payload)) => payload,
                Ok(None) => return,
                Err(WireError::Io(e))
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    if let Some(deadline) = self.read_deadline {
                        if last_activity.elapsed() >= deadline {
                            return;
                        }
                    }
                    continue;
                }
                Err(WireError::Io(_)) => return,
                // Unframeable bytes desynchronize the stream: report,
                // then drop the connection.
                Err(WireError::Frame(e)) => {
                    let err = Response::Err(e.to_string());
                    let _ = write_frame(&mut stream, &encode_response(&err));
                    return;
                }
            };
            last_activity = Instant::now();
            // The router has exactly one logical tenant namespace; the
            // v2 tenant field is accepted and ignored so multi-tenant
            // clients can point at a router unchanged.
            let (encoded, done) = match decode_request_any(&payload) {
                Ok((version, _tenant, req)) => {
                    let resp = self.handle(&req);
                    let done = matches!(resp, Response::Bye);
                    let encoded = match version {
                        WireVersion::V1 => encode_response(&resp),
                        WireVersion::V2 => encode_response_v2(&resp),
                    };
                    (encoded, done)
                }
                Err(e) => (encode_response(&Response::Err(e.to_string())), false),
            };
            if write_frame(&mut stream, &encoded).is_err() {
                return;
            }
            if done {
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::LocalCluster;
    use afforest_serve::ServeConfig;

    fn router(n: usize, shards: usize) -> Router<LocalCluster> {
        let plan = ShardPlan::new(n, shards);
        let config = ServeConfig::builder().build().unwrap();
        let cluster = LocalCluster::new(&plan, &[], &config).unwrap();
        Router::new(plan, BoundaryStore::new(n), cluster, None)
    }

    fn flushed(r: &Router<LocalCluster>) {
        assert!(r.flush(Duration::from_secs(10)));
    }

    #[test]
    fn internal_edges_reach_their_shard() {
        let r = router(8, 2);
        assert_eq!(
            r.handle(&Request::InsertEdges(vec![(0, 1), (4, 5)])),
            Response::Accepted { edges: 2 }
        );
        flushed(&r);
        assert_eq!(
            r.handle(&Request::Connected(0, 1)),
            Response::Connected(true)
        );
        assert_eq!(
            r.handle(&Request::Connected(4, 5)),
            Response::Connected(true)
        );
        assert_eq!(
            r.handle(&Request::Connected(0, 4)),
            Response::Connected(false)
        );
        assert_eq!(
            r.handle(&Request::NumComponents),
            Response::NumComponents(6)
        );
        r.shutdown_backend();
    }

    #[test]
    fn cut_edges_connect_across_shards() {
        let r = router(8, 2);
        r.handle(&Request::InsertEdges(vec![(0, 1), (4, 5), (1, 4)]));
        flushed(&r);
        assert_eq!(
            r.handle(&Request::Connected(0, 5)),
            Response::Connected(true)
        );
        assert_eq!(
            r.handle(&Request::NumComponents),
            Response::NumComponents(5)
        );
        // Global label of the glued component is the global minimum, 0.
        assert_eq!(r.handle(&Request::Component(5)), Response::Component(0));
        assert_eq!(
            r.handle(&Request::ComponentSize(5)),
            Response::ComponentSize(4)
        );
        assert_eq!(r.boundary().edge_count(), 1);
        r.shutdown_backend();
    }

    #[test]
    fn redundant_cut_edges_do_not_grow_the_boundary() {
        let r = router(8, 4);
        // 0|1 cut, then a parallel path making (1, 2) redundant… but
        // only after (0,2),(0,1) are stored.
        r.handle(&Request::InsertEdges(vec![(0, 2), (0, 1)]));
        r.handle(&Request::InsertEdges(vec![(1, 2)]));
        flushed(&r);
        assert_eq!(r.boundary().edge_count(), 2);
        assert_eq!(
            r.handle(&Request::Connected(0, 2)),
            Response::Connected(true)
        );
        r.shutdown_backend();
    }

    #[test]
    fn out_of_range_answers_err() {
        let r = router(4, 2);
        for req in [
            Request::Connected(0, 9),
            Request::Component(4),
            Request::ComponentSize(u32::MAX),
            Request::InsertEdges(vec![(0, 4)]),
        ] {
            match r.handle(&req) {
                Response::Err(msg) => assert!(msg.contains("out of range"), "{msg}"),
                other => panic!("{req:?} answered {other:?}"),
            }
        }
        r.shutdown_backend();
    }

    #[test]
    fn stats_aggregates_all_shards() {
        let r = router(12, 3);
        r.handle(&Request::InsertEdges(vec![(0, 1), (4, 5), (8, 9), (3, 4)]));
        flushed(&r);
        match r.handle(&Request::Stats) {
            Response::Stats(s) => {
                assert_eq!(s.vertices, 12);
                assert_eq!(s.tenants, 3);
                // 3 internal edges; the cut edge lives in the boundary.
                assert_eq!(s.edges_ingested, 3);
                assert_eq!(s.num_components, 8);
                assert_eq!(s.queue_depth, 0);
            }
            other => panic!("expected stats, got {other:?}"),
        }
        r.shutdown_backend();
    }

    #[test]
    fn tenant_admin_is_refused_and_list_names_shards() {
        let r = router(4, 2);
        match r.handle(&Request::CreateTenant {
            name: afforest_serve::TenantId::new("x").unwrap(),
            vertices: 4,
        }) {
            Response::Err(msg) => assert!(msg.contains("not available"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            r.handle(&Request::ListTenants),
            Response::Tenants(vec!["shard-0".to_string(), "shard-1".to_string()])
        );
        r.shutdown_backend();
    }

    #[test]
    fn composite_cache_is_reused_until_invalidated() {
        let r = router(8, 2);
        r.handle(&Request::InsertEdges(vec![(1, 4)]));
        flushed(&r);
        let _ = r.handle(&Request::NumComponents);
        let rebuilds = r.metrics.composite_rebuilds.get();
        let _ = r.handle(&Request::NumComponents);
        let _ = r.handle(&Request::Connected(0, 7));
        assert_eq!(r.metrics.composite_rebuilds.get(), rebuilds);
        // A new cut edge bumps the boundary version: rebuild.
        r.handle(&Request::InsertEdges(vec![(0, 7)]));
        flushed(&r);
        let _ = r.handle(&Request::NumComponents);
        assert!(r.metrics.composite_rebuilds.get() > rebuilds);
        r.shutdown_backend();
    }
}
