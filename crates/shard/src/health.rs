//! Per-shard health tracking and circuit breaking (DESIGN.md §15).
//!
//! The router asks [`HealthTracker::gate`] before every backend call.
//! While a shard is **Down** the gate answers [`Gate::FailFast`] —
//! callers do not burn a retry budget on a shard known to be dead —
//! except once per probe interval, when a single caller is elected to
//! [`Gate::Probe`] (its ordinary request doubles as the probe). The
//! state machine:
//!
//! ```text
//! Healthy ──failure×suspect_after──▶ Suspect ──failure×down_after──▶ Down
//!    ▲                                  │                             │
//!    │ success                          │ success                     │ probe interval elapsed
//!    ├──────────────────────────────────┘                             ▼
//!    └──────────── probe succeeds ──────────────────────────────── Probing
//!                                        (probe fails: back to Down, timer reset)
//! ```
//!
//! A probe that neither succeeds nor fails within `probe_deadline` —
//! its backend call hung with no read timeout — is presumed lost:
//! `gate` re-elects the next caller as the probe instead of leaving the
//! shard wedged in Probing with every other caller failing fast.
//!
//! Only *transport* failures ([`ShardUnavailable::Dead`]) feed the
//! machine; an in-band `Err`/`Overloaded` answer proves the shard is
//! alive. The tracker is deliberately pure state: it publishes no
//! metrics and records no events itself — every method returns the
//! [`Transition`] it caused (if any), and the router maps transitions
//! to the `afforest_shard_health` gauge, `shard_health_changed` flight
//! events, and park-log replay. That keeps this file trivially
//! lock-ordered (no calls out while holding a shard's state lock).
//!
//! [`ShardUnavailable::Dead`]: crate::ShardUnavailable::Dead

use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Where a shard sits in the failure-domain state machine.
///
/// The discriminants are the values exported on the
/// `afforest_shard_health{shard}` gauge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum HealthState {
    /// Answering normally.
    Healthy = 0,
    /// Recent consecutive failures; still queried.
    Suspect = 1,
    /// Circuit open: calls fail fast instead of dialing.
    Down = 2,
    /// One elected probe call is in flight.
    Probing = 3,
}

impl HealthState {
    /// Gauge value for this state (the `repr` discriminant).
    pub fn code(self) -> u64 {
        self as u64
    }

    /// Stable lowercase name, for logs and flight-dump readers.
    pub fn name(self) -> &'static str {
        match self {
            HealthState::Healthy => "healthy",
            HealthState::Suspect => "suspect",
            HealthState::Down => "down",
            HealthState::Probing => "probing",
        }
    }
}

/// What the caller holding a request for a shard should do.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// Call the shard normally.
    Allow,
    /// Circuit open: do not call; answer degraded/parked instead.
    FailFast,
    /// Call the shard; this request is the elected health probe.
    Probe,
}

/// One state change, `from != to`. Returned instead of published so
/// the router owns all telemetry (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Transition {
    /// State before the change.
    pub from: HealthState,
    /// State after the change.
    pub to: HealthState,
}

impl Transition {
    /// Whether this transition re-opened a shard for writes — the
    /// moment the router must replay the shard's park log.
    pub fn recovered(&self) -> bool {
        self.to == HealthState::Healthy && self.from != HealthState::Suspect
    }
}

/// Thresholds and timing of the state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive transport failures before Healthy → Suspect.
    pub suspect_after: u32,
    /// Consecutive transport failures before → Down (circuit opens).
    pub down_after: u32,
    /// How long the circuit stays open between probes.
    pub probe_interval: Duration,
    /// How long an elected probe may stay unresolved before another
    /// caller reclaims the election. Without it, a probe whose backend
    /// call hangs (no read timeout) would wedge the shard in Probing
    /// forever, fail-fasting everyone else. Zero means "use the
    /// default" (see [`HealthConfig::normalized`]).
    pub probe_deadline: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            suspect_after: 1,
            down_after: 3,
            probe_interval: Duration::from_millis(500),
            probe_deadline: Duration::from_secs(5),
        }
    }
}

impl HealthConfig {
    /// Clamps the thresholds into a usable shape: at least one failure
    /// to leave Healthy, `down_after >= suspect_after`, and a nonzero
    /// probe deadline (zero would let every caller probe at once,
    /// which is exactly the retry stampede the breaker exists to stop).
    pub fn normalized(self) -> Self {
        let suspect_after = self.suspect_after.max(1);
        HealthConfig {
            suspect_after,
            down_after: self.down_after.max(suspect_after),
            probe_interval: self.probe_interval,
            probe_deadline: if self.probe_deadline.is_zero() {
                HealthConfig::default().probe_deadline
            } else {
                self.probe_deadline
            },
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct ShardHealth {
    state: HealthState,
    /// Consecutive transport failures since the last success.
    failures: u32,
    /// When the shard entered Down (probe timer origin).
    down_since: Instant,
    /// When the current probe was elected (reclaim timer origin).
    probe_started: Instant,
}

/// Health state for every shard of one router (see module docs).
#[derive(Debug)]
pub struct HealthTracker {
    cfg: HealthConfig,
    shards: Vec<Mutex<ShardHealth>>,
}

impl HealthTracker {
    /// A tracker with every shard Healthy.
    pub fn new(num_shards: usize, cfg: HealthConfig) -> Self {
        let cfg = cfg.normalized();
        let now = Instant::now();
        HealthTracker {
            cfg,
            shards: (0..num_shards)
                .map(|_| {
                    Mutex::new(ShardHealth {
                        state: HealthState::Healthy,
                        failures: 0,
                        down_since: now,
                        probe_started: now,
                    })
                })
                .collect(),
        }
    }

    /// The configuration in force (post-normalization).
    pub fn config(&self) -> &HealthConfig {
        &self.cfg
    }

    /// Number of tracked shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    fn slot(&self, shard: usize) -> Option<std::sync::MutexGuard<'_, ShardHealth>> {
        self.shards
            .get(shard)
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Current state of `shard` (Healthy for out-of-range ids).
    pub fn state(&self, shard: usize) -> HealthState {
        self.slot(shard).map_or(HealthState::Healthy, |s| s.state)
    }

    /// Snapshot of every shard's state, indexed by shard id.
    pub fn states(&self) -> Vec<HealthState> {
        (0..self.shards.len()).map(|k| self.state(k)).collect()
    }

    /// Admission decision for one call to `shard`. May transition
    /// Down → Probing (electing the caller as the probe); the
    /// transition, if any, is returned for the router to publish.
    pub fn gate(&self, shard: usize) -> (Gate, Option<Transition>) {
        let Some(mut s) = self.slot(shard) else {
            return (Gate::Allow, None);
        };
        match s.state {
            HealthState::Healthy | HealthState::Suspect => (Gate::Allow, None),
            HealthState::Probing => {
                if s.probe_started.elapsed() >= self.cfg.probe_deadline {
                    // The elected probe never resolved — its backend
                    // call is presumed hung (e.g. no read timeout).
                    // Re-elect this caller so the shard has a path back
                    // to Down/Healthy; the stale probe's eventual
                    // outcome still lands harmlessly (success heals,
                    // failure re-arms Down).
                    s.probe_started = Instant::now();
                    (Gate::Probe, None)
                } else {
                    (Gate::FailFast, None)
                }
            }
            HealthState::Down => {
                if s.down_since.elapsed() >= self.cfg.probe_interval {
                    s.state = HealthState::Probing;
                    s.probe_started = Instant::now();
                    (
                        Gate::Probe,
                        Some(Transition {
                            from: HealthState::Down,
                            to: HealthState::Probing,
                        }),
                    )
                } else {
                    (Gate::FailFast, None)
                }
            }
        }
    }

    /// Records a call that produced an answer (any answer — an in-band
    /// error still proves the shard alive).
    pub fn record_success(&self, shard: usize) -> Option<Transition> {
        let mut s = self.slot(shard)?;
        s.failures = 0;
        self.enter(&mut s, HealthState::Healthy)
    }

    /// Records a transport failure (a [`Dead`] outcome — *not*
    /// shedding, which is backpressure).
    ///
    /// [`Dead`]: crate::ShardUnavailable::Dead
    pub fn record_failure(&self, shard: usize) -> Option<Transition> {
        let mut s = self.slot(shard)?;
        match s.state {
            // A failed probe re-opens the circuit and restarts the timer.
            HealthState::Probing => {
                s.down_since = Instant::now();
                self.enter(&mut s, HealthState::Down)
            }
            HealthState::Down => None,
            HealthState::Healthy | HealthState::Suspect => {
                s.failures = s.failures.saturating_add(1);
                if s.failures >= self.cfg.down_after {
                    s.down_since = Instant::now();
                    self.enter(&mut s, HealthState::Down)
                } else if s.failures >= self.cfg.suspect_after {
                    self.enter(&mut s, HealthState::Suspect)
                } else {
                    None
                }
            }
        }
    }

    /// Forces `shard` Down immediately (boot-time seeding: the worker
    /// was unreachable when the router started). The probe timer starts
    /// expired, so the very next call probes.
    pub fn mark_down(&self, shard: usize) -> Option<Transition> {
        let mut s = self.slot(shard)?;
        s.failures = self.cfg.down_after;
        s.down_since = Instant::now()
            .checked_sub(self.cfg.probe_interval)
            .unwrap_or_else(Instant::now);
        self.enter(&mut s, HealthState::Down)
    }

    fn enter(&self, s: &mut ShardHealth, to: HealthState) -> Option<Transition> {
        if s.state == to {
            return None;
        }
        let from = s.state;
        s.state = to;
        Some(Transition { from, to })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker(probe: Duration) -> HealthTracker {
        HealthTracker::new(
            2,
            HealthConfig {
                suspect_after: 1,
                down_after: 3,
                probe_interval: probe,
                ..HealthConfig::default()
            },
        )
    }

    #[test]
    fn escalates_suspect_then_down_and_fails_fast() {
        let t = tracker(Duration::from_secs(3600));
        assert_eq!(t.gate(0), (Gate::Allow, None));
        assert_eq!(
            t.record_failure(0),
            Some(Transition {
                from: HealthState::Healthy,
                to: HealthState::Suspect
            })
        );
        assert_eq!(t.record_failure(0), None); // still Suspect
        assert_eq!(
            t.record_failure(0),
            Some(Transition {
                from: HealthState::Suspect,
                to: HealthState::Down
            })
        );
        // Circuit open, probe interval far away: every gate fails fast.
        for _ in 0..10 {
            assert_eq!(t.gate(0).0, Gate::FailFast);
        }
        // The other shard is untouched.
        assert_eq!(t.state(1), HealthState::Healthy);
        assert_eq!(t.states(), vec![HealthState::Down, HealthState::Healthy]);
    }

    #[test]
    fn probe_election_is_exclusive_and_failure_reopens() {
        let t = tracker(Duration::ZERO);
        for _ in 0..3 {
            t.record_failure(0);
        }
        // First gate after the interval is the probe; contenders fail fast.
        let (g, tr) = t.gate(0);
        assert_eq!(g, Gate::Probe);
        assert_eq!(tr.map(|t| t.to), Some(HealthState::Probing));
        assert_eq!(t.gate(0).0, Gate::FailFast);
        // Failed probe: back to Down, and (interval=0) probing again next.
        assert_eq!(t.record_failure(0).map(|t| t.to), Some(HealthState::Down));
        assert_eq!(t.gate(0).0, Gate::Probe);
        // Successful probe recovers, and the recovery triggers replay.
        let tr = t.record_success(0).unwrap();
        assert_eq!(tr.to, HealthState::Healthy);
        assert!(tr.recovered());
        assert_eq!(t.gate(0).0, Gate::Allow);
    }

    #[test]
    fn hung_probe_is_reclaimed_after_the_deadline() {
        let t = HealthTracker::new(
            1,
            HealthConfig {
                suspect_after: 1,
                down_after: 1,
                probe_interval: Duration::ZERO,
                probe_deadline: Duration::from_millis(5),
            },
        );
        t.record_failure(0);
        assert_eq!(t.gate(0).0, Gate::Probe);
        // Within the deadline the election is exclusive.
        assert_eq!(t.gate(0).0, Gate::FailFast);
        std::thread::sleep(Duration::from_millis(10));
        // The probe never resolved: the next caller reclaims it (no
        // transition — the shard never left Probing).
        let (g, tr) = t.gate(0);
        assert_eq!(g, Gate::Probe);
        assert_eq!(tr, None);
        // The new election is exclusive again…
        assert_eq!(t.gate(0).0, Gate::FailFast);
        // …and the stale probe's late success still heals the shard.
        assert!(t.record_success(0).unwrap().recovered());
    }

    #[test]
    fn success_from_suspect_is_not_a_recovery() {
        let t = tracker(Duration::from_secs(1));
        t.record_failure(0);
        let tr = t.record_success(0).unwrap();
        assert_eq!(tr.from, HealthState::Suspect);
        assert!(!tr.recovered());
        // Failure counting restarts after a success.
        t.record_failure(0);
        t.record_failure(0);
        assert_eq!(t.state(0), HealthState::Suspect);
    }

    #[test]
    fn mark_down_probes_immediately_and_config_normalizes() {
        let t = tracker(Duration::from_secs(3600));
        assert_eq!(t.mark_down(1).map(|t| t.to), Some(HealthState::Down));
        // Timer starts expired: first call is the probe despite the huge
        // interval.
        assert_eq!(t.gate(1).0, Gate::Probe);
        let c = HealthConfig {
            suspect_after: 0,
            down_after: 0,
            probe_interval: Duration::ZERO,
            probe_deadline: Duration::ZERO,
        }
        .normalized();
        assert_eq!((c.suspect_after, c.down_after), (1, 1));
        assert_eq!(c.probe_deadline, HealthConfig::default().probe_deadline);
        // Out-of-range shards are inert.
        assert_eq!(t.gate(9), (Gate::Allow, None));
        assert_eq!(t.record_failure(9), None);
        assert_eq!(t.record_success(9), None);
    }
}
