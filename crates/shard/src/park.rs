//! Write parking for Down shards (DESIGN.md §15).
//!
//! When the circuit breaker has a shard open, `InsertEdges` batches
//! destined for it are *parked* instead of dropped or blocked on: each
//! batch is kept in order in memory and appended to a per-shard park
//! log `<root>/park-<k>.log` using the WAL's record format —
//! `[u32 len][u64 fnv1a checksum][payload]` with an edge-batch payload
//! of `[0x01][u32 count][count × (u32,u32) LE]`, all ids **shard
//! local**. When the shard transitions back to Healthy the router
//! replays the parked batches in arrival order and then clears the
//! log.
//!
//! Durability mirrors the WAL's trade-off: writes go straight to the
//! OS (survives a process kill, not power loss), and recovery is a
//! total function — any byte string in a park log yields a valid
//! prefix of batches, with the first torn/corrupt record truncated
//! away. Replay is idempotent (union-find inserts are), so a crash
//! between "replayed" and "cleared" only costs re-replaying. Clearing
//! rewrites the log via a sibling tmp file renamed into place: a kill
//! mid-clear leaves the old log whole (never a half-rewrite that
//! durably drops undelivered batches).
//!
//! Like [`health`](crate::health), this module is pure bookkeeping: it
//! publishes no metrics and records no events. The router owns the
//! `afforest_parked_batches{shard}` gauge and the `park_replayed`
//! flight event, and never holds a park lock across a backend call.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use afforest_graph::io::checksum64;
use afforest_graph::Node;

/// Payload tag of an edge-batch record (the WAL's value).
const TAG_EDGE_BATCH: u8 = 0x01;

/// Largest record payload recovery will accept (the WAL's bound).
const MAX_RECORD_LEN: usize = 1 << 26;

/// The park-log file name for shard `k` under the router's state root.
pub fn park_path(root: &Path, shard: usize) -> PathBuf {
    root.join(format!("park-{shard}.log"))
}

/// What recovery found in one shard's park log.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ParkRecovery {
    /// Batches recovered (in append order).
    pub batches: u64,
    /// Total edges across the recovered batches.
    pub edges: u64,
    /// Whether a torn/corrupt tail was truncated away.
    pub truncated: bool,
}

/// A parked batch: shard-local edge pairs, in arrival order.
type Batch = Vec<(Node, Node)>;

struct ParkShard {
    /// Parked batches, oldest first, shard-local ids.
    queue: Vec<Batch>,
    /// Append handle when the set is durable.
    file: Option<File>,
    /// Log path when the set is durable (rewrite-by-rename target).
    path: Option<PathBuf>,
    /// Appends that failed with an I/O error (batch stays in memory).
    write_errors: u64,
}

/// Per-shard parked-write queues, optionally backed by park logs.
pub struct ParkSet {
    shards: Vec<Mutex<ParkShard>>,
    recoveries: Vec<ParkRecovery>,
}

impl ParkSet {
    /// A volatile park set (no logs) — for in-process clusters and tests.
    pub fn in_memory(num_shards: usize) -> ParkSet {
        ParkSet {
            shards: (0..num_shards)
                .map(|_| {
                    Mutex::new(ParkShard {
                        queue: Vec::new(),
                        file: None,
                        path: None,
                        write_errors: 0,
                    })
                })
                .collect(),
            recoveries: vec![ParkRecovery::default(); num_shards],
        }
    }

    /// A durable park set rooted at `root` (created if missing). An
    /// existing `park-<k>.log` is recovered first — shard `k`'s queue
    /// starts with the surviving prefix of batches, torn tail truncated
    /// — so parked writes outlive a router restart. `shard_lens[k]`
    /// bounds shard `k`'s local id space; records naming ids outside it
    /// are treated as corruption.
    pub fn with_root(root: &Path, shard_lens: &[usize]) -> std::io::Result<ParkSet> {
        std::fs::create_dir_all(root)?;
        let mut shards = Vec::with_capacity(shard_lens.len());
        let mut recoveries = Vec::with_capacity(shard_lens.len());
        for (k, &n) in shard_lens.iter().enumerate() {
            let path = park_path(root, k);
            // A tmp file can only be a rewrite that died before its
            // rename landed; the log it was replacing is still whole.
            let _ = std::fs::remove_file(tmp_path(&path));
            let mut file = OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(&path)?;
            let (queue, recovery) = recover_log(&mut file, n)?;
            recoveries.push(recovery);
            shards.push(Mutex::new(ParkShard {
                queue,
                file: Some(file),
                path: Some(path),
                write_errors: 0,
            }));
        }
        Ok(ParkSet { shards, recoveries })
    }

    /// Number of shards this set tracks.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// What recovery found for `shard` when the set was opened.
    pub fn recovery(&self, shard: usize) -> ParkRecovery {
        self.recoveries.get(shard).cloned().unwrap_or_default()
    }

    fn slot(&self, shard: usize) -> Option<std::sync::MutexGuard<'_, ParkShard>> {
        self.shards
            .get(shard)
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Parks one batch (shard-local ids) for `shard`. The batch always
    /// lands in memory; a failed log append is counted, not fatal.
    /// Returns the shard's new queue depth (0 if `shard` is unknown).
    pub fn park(&self, shard: usize, edges: &[(Node, Node)]) -> usize {
        let Some(mut s) = self.slot(shard) else {
            return 0;
        };
        s.queue.push(edges.to_vec());
        if let Some(file) = &mut s.file {
            let record = encode_record(edges);
            if file.write_all(&record).and_then(|()| file.flush()).is_err() {
                s.write_errors += 1;
            }
        }
        s.queue.len()
    }

    /// Parked batches for `shard` right now.
    pub fn depth(&self, shard: usize) -> usize {
        self.slot(shard).map_or(0, |s| s.queue.len())
    }

    /// Total parked edges for `shard` right now.
    pub fn parked_edges(&self, shard: usize) -> usize {
        self.slot(shard)
            .map_or(0, |s| s.queue.iter().map(Vec::len).sum())
    }

    /// Log appends that failed with an I/O error, across all shards.
    pub fn write_errors(&self) -> u64 {
        (0..self.shards.len())
            .filter_map(|k| self.slot(k))
            .map(|s| s.write_errors)
            .sum()
    }

    /// A copy of `shard`'s queue, oldest first, for replay. The caller
    /// must *not* hold this snapshot's shard locked while replaying —
    /// take the copy, drop straight into backend calls, then
    /// [`ParkSet::clear`] on full success.
    pub fn snapshot(&self, shard: usize) -> Vec<Vec<(Node, Node)>> {
        self.slot(shard).map_or_else(Vec::new, |s| s.queue.clone())
    }

    /// Drops the first `batches` parked batches of `shard` (the prefix
    /// a replay delivered) and rewrites the log to the survivors. With
    /// a partial replay the remaining suffix stays parked, in order.
    ///
    /// The rewrite goes through a sibling tmp file renamed over
    /// `park-<k>.log`, so a process kill mid-rewrite leaves either the
    /// old log (the delivered prefix re-parks on restart — replay is
    /// idempotent) or the new one — never a truncated window with the
    /// undelivered suffix durably gone.
    pub fn clear(&self, shard: usize, batches: usize) {
        let Some(mut s) = self.slot(shard) else {
            return;
        };
        let cut = batches.min(s.queue.len());
        let keep = s.queue.split_off(cut);
        s.queue = keep;
        let Some(path) = s.path.clone() else {
            return;
        };
        let mut bytes = Vec::new();
        for batch in &s.queue {
            bytes.extend_from_slice(&encode_record(batch));
        }
        match write_replace(&path, &bytes) {
            Ok(file) => s.file = Some(file),
            // The rename did not land: the old log (and its handle,
            // still positioned at the end) stays authoritative —
            // over-complete, which idempotent replay absorbs.
            Err(_) => s.write_errors += 1,
        }
    }
}

/// Sibling tmp path for an atomic rewrite of `path`.
fn tmp_path(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

/// Atomically replaces `path`'s contents with `bytes`: write a sibling
/// tmp file, flush, rename over, reopen positioned at the end for
/// appends.
fn write_replace(path: &Path, bytes: &[u8]) -> std::io::Result<File> {
    let tmp = tmp_path(path);
    let mut f = File::create(&tmp)?;
    f.write_all(bytes)?;
    f.flush()?;
    drop(f);
    std::fs::rename(&tmp, path)?;
    let mut file = OpenOptions::new().read(true).write(true).open(path)?;
    file.seek(SeekFrom::End(0))?;
    Ok(file)
}

/// Encodes one batch in the WAL record format (see module docs).
fn encode_record(edges: &[(Node, Node)]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(5 + edges.len() * 8);
    payload.push(TAG_EDGE_BATCH);
    payload.extend_from_slice(&(edges.len() as u32).to_le_bytes());
    for &(u, v) in edges {
        payload.extend_from_slice(&u.to_le_bytes());
        payload.extend_from_slice(&v.to_le_bytes());
    }
    let mut record = Vec::with_capacity(12 + payload.len());
    record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    record.extend_from_slice(&checksum64(&payload).to_le_bytes());
    record.extend_from_slice(&payload);
    record
}

/// Reads `n`-bounded batches until EOF or the first bad record, then
/// truncates the file there. Total over arbitrary file contents.
fn recover_log(file: &mut File, n: usize) -> std::io::Result<(Vec<Batch>, ParkRecovery)> {
    let mut bytes = Vec::new();
    file.seek(SeekFrom::Start(0))?;
    file.read_to_end(&mut bytes)?;
    let mut queue = Vec::new();
    let mut recovery = ParkRecovery::default();
    let mut at = 0usize;
    loop {
        let Some(prefix) = bytes.get(at..at + 12) else {
            recovery.truncated = at < bytes.len();
            break;
        };
        let len = read_u32(prefix, 0) as usize;
        let declared = read_u64(prefix, 4);
        if !(5..=MAX_RECORD_LEN).contains(&len) {
            recovery.truncated = true;
            break;
        }
        let Some(payload) = bytes.get(at + 12..at + 12 + len) else {
            recovery.truncated = true;
            break;
        };
        if checksum64(payload) != declared {
            recovery.truncated = true;
            break;
        }
        let Some(batch) = decode_batch(payload, n) else {
            recovery.truncated = true;
            break;
        };
        recovery.batches += 1;
        recovery.edges += batch.len() as u64;
        queue.push(batch);
        at += 12 + len;
    }
    if recovery.truncated {
        file.set_len(at as u64)?;
    }
    file.seek(SeekFrom::End(0))?;
    Ok((queue, recovery))
}

/// Little-endian u32 at `at`; 0 if out of range (callers pre-slice).
fn read_u32(bytes: &[u8], at: usize) -> u32 {
    match bytes.get(at..at + 4).map(TryInto::try_into) {
        Some(Ok(arr)) => u32::from_le_bytes(arr),
        _ => 0,
    }
}

/// Little-endian u64 at `at`; 0 if out of range (callers pre-slice).
fn read_u64(bytes: &[u8], at: usize) -> u64 {
    match bytes.get(at..at + 8).map(TryInto::try_into) {
        Some(Ok(arr)) => u64::from_le_bytes(arr),
        _ => 0,
    }
}

/// Decodes an edge-batch payload whose ids must fall in `0..n`.
fn decode_batch(payload: &[u8], n: usize) -> Option<Vec<(Node, Node)>> {
    if payload.first() != Some(&TAG_EDGE_BATCH) {
        return None;
    }
    let count = read_u32(payload.get(1..5)?, 0) as usize;
    let body = payload.get(5..)?;
    if body.len() != count * 8 {
        return None;
    }
    let mut edges = Vec::with_capacity(count);
    for pair in body.chunks_exact(8) {
        let u = read_u32(pair, 0);
        let v = read_u32(pair, 4);
        if u as usize >= n || v as usize >= n {
            return None;
        }
        edges.push((u, v));
    }
    Some(edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("afforest-park-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn parks_in_order_and_survives_reopen() {
        let dir = tempdir("reopen");
        let set = ParkSet::with_root(dir.as_path(), &[8, 8]).unwrap();
        assert_eq!(set.park(0, &[(0, 1)]), 1);
        assert_eq!(set.park(0, &[(2, 3), (3, 4)]), 2);
        assert_eq!(set.park(1, &[(5, 6)]), 1);
        assert_eq!(set.depth(0), 2);
        assert_eq!(set.parked_edges(0), 3);
        drop(set);

        let set = ParkSet::with_root(dir.as_path(), &[8, 8]).unwrap();
        assert_eq!(set.recovery(0).batches, 2);
        assert!(!set.recovery(0).truncated);
        assert_eq!(
            set.snapshot(0),
            vec![vec![(0, 1)], vec![(2, 3), (3, 4)]],
            "replay order is arrival order"
        );
        assert_eq!(set.snapshot(1), vec![vec![(5, 6)]]);
    }

    #[test]
    fn clear_drops_a_replayed_prefix_and_rewrites_the_log() {
        let dir = tempdir("clear");
        let set = ParkSet::with_root(dir.as_path(), &[16]).unwrap();
        for i in 0..4u32 {
            set.park(0, &[(i, i + 1)]);
        }
        set.clear(0, 2);
        assert_eq!(set.snapshot(0), vec![vec![(2, 3)], vec![(3, 4)]]);
        drop(set);
        // The rewritten log holds exactly the surviving suffix.
        let set = ParkSet::with_root(dir.as_path(), &[16]).unwrap();
        assert_eq!(set.snapshot(0), vec![vec![(2, 3)], vec![(3, 4)]]);
        set.clear(0, usize::MAX);
        assert_eq!(set.depth(0), 0);
        assert_eq!(
            std::fs::metadata(park_path(dir.as_path(), 0))
                .unwrap()
                .len(),
            0
        );
    }

    #[test]
    fn clear_renames_atomically_and_appends_keep_working() {
        let dir = tempdir("rename");
        let set = ParkSet::with_root(dir.as_path(), &[16]).unwrap();
        for i in 0..3u32 {
            set.park(0, &[(i, i + 1)]);
        }
        set.clear(0, 1);
        // No tmp residue, and post-clear appends land in the renamed log.
        assert!(!tmp_path(&park_path(dir.as_path(), 0)).exists());
        set.park(0, &[(9, 10)]);
        assert_eq!(set.write_errors(), 0);
        drop(set);
        let set = ParkSet::with_root(dir.as_path(), &[16]).unwrap();
        assert_eq!(
            set.snapshot(0),
            vec![vec![(1, 2)], vec![(2, 3)], vec![(9, 10)]]
        );
        drop(set);

        // A tmp file left by a rewrite killed before its rename is
        // swept on open; the log it was replacing is untouched.
        std::fs::write(tmp_path(&park_path(dir.as_path(), 0)), b"half a rewrite").unwrap();
        let set = ParkSet::with_root(dir.as_path(), &[16]).unwrap();
        assert_eq!(set.depth(0), 3);
        assert!(!tmp_path(&park_path(dir.as_path(), 0)).exists());
    }

    #[test]
    fn recovery_truncates_torn_and_corrupt_tails() {
        let dir = tempdir("corrupt");
        let set = ParkSet::with_root(dir.as_path(), &[8]).unwrap();
        set.park(0, &[(1, 2)]);
        set.park(0, &[(3, 4)]);
        drop(set);
        let path = park_path(dir.as_path(), 0);
        let clean = std::fs::read(&path).unwrap();

        // Torn tail: a few bytes of a half-written record header.
        let mut torn = clean.clone();
        torn.extend_from_slice(&clean[..5]);
        std::fs::write(&path, &torn).unwrap();
        let set = ParkSet::with_root(dir.as_path(), &[8]).unwrap();
        assert_eq!(set.recovery(0).batches, 2);
        assert!(set.recovery(0).truncated);
        drop(set);
        assert_eq!(
            std::fs::read(&path).unwrap(),
            clean,
            "tail cut at a record boundary"
        );

        // Corrupt byte inside the second record: first survives.
        let mut flipped = clean.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xFF;
        std::fs::write(&path, &flipped).unwrap();
        let set = ParkSet::with_root(dir.as_path(), &[8]).unwrap();
        assert_eq!(set.recovery(0).batches, 1);
        assert_eq!(set.snapshot(0), vec![vec![(1, 2)]]);
        drop(set);

        // An id outside the shard's space is corruption too.
        std::fs::write(&path, encode_record(&[(7, 9)])).unwrap();
        let set = ParkSet::with_root(dir.as_path(), &[8]).unwrap();
        assert_eq!(set.recovery(0).batches, 0);
        assert!(set.recovery(0).truncated);
    }

    #[test]
    fn in_memory_set_parks_without_any_files() {
        let set = ParkSet::in_memory(1);
        set.park(0, &[(0, 1)]);
        assert_eq!(set.depth(0), 1);
        set.clear(0, 1);
        assert_eq!(set.depth(0), 0);
        assert_eq!(set.write_errors(), 0);
        // Unknown shards are inert.
        assert_eq!(set.park(9, &[(0, 1)]), 0);
        assert_eq!(set.depth(9), 0);
    }
}
