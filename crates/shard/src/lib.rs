//! Sharded scale-out serving for the Afforest connectivity service.
//!
//! The [serve](afforest_serve) crate runs one engine per tenant: one
//! snapshot chain, one ingest queue, one writer thread, over the whole
//! vertex space. This crate splits a single logical graph across **N
//! shard workers** instead — each an independent engine owning a
//! contiguous slice of the vertex space — and puts a **router** in
//! front that speaks the existing wire protocol, so clients cannot
//! tell a sharded deployment from a standalone server.
//!
//! Module map:
//!
//! - [`plan`] — the [`ShardPlan`]: block partition, global/local id
//!   translation, batch splitting.
//! - [`boundary`] — the [`BoundaryStore`]: a persistent spanning
//!   forest of the *cut* edges (endpoints on two shards), the only
//!   state the router owns itself.
//! - [`compose`] — merging per-shard forest labels with the boundary
//!   graph into global `Connected` / `Component` / `NumComponents`
//!   answers.
//! - [`backend`] — the [`ShardBackend`] trait with its typed
//!   [`ShardUnavailable`] outcome; [`cluster`] hosts every shard
//!   engine in-process ([`LocalCluster`]), [`remote`] dials worker
//!   processes over the wire ([`RemoteShards`], lazily — a worker
//!   down at boot does not fail the router).
//! - [`health`] — the per-shard health machine
//!   (Healthy → Suspect → Down → Probing) whose circuit breaker makes
//!   a dead shard fail fast instead of burning retry budgets.
//! - [`park`] — durable per-shard parking of insert batches destined
//!   for a Down shard, replayed in order on recovery (WAL record
//!   format, torn-tail tolerant).
//! - [`router`] — the [`Router`]: request dispatch, the composite
//!   cache, degraded reads and write parking, and the TCP front-end.
//! - [`metrics`] — `{shard="k"}`-labelled series merged into the
//!   process-wide `/metrics` exposition.
//!
//! Consistency model: shards publish epoch snapshots independently, so
//! a read may observe shard A's newest epoch next to an older epoch of
//! shard B. Answers are eventually consistent exactly like a single
//! engine's — flush all shards and the composite equals what one
//! unsharded engine would say (property-tested against an
//! [`IncrementalCc`](afforest_core::IncrementalCc) oracle).

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod backend;
pub mod boundary;
pub mod cluster;
pub mod compose;
pub mod health;
pub mod metrics;
pub mod park;
pub mod plan;
pub mod remote;
pub mod router;

pub use backend::{ShardBackend, ShardUnavailable};
pub use boundary::{BoundaryStore, BOUNDARY_LOG};
pub use cluster::{shard_tenant_name, LocalCluster};
pub use compose::{Composite, CompositeClass};
pub use health::{Gate, HealthConfig, HealthState, HealthTracker, Transition};
pub use metrics::{router_metrics, RouterMetrics, ShardSeries};
pub use park::{park_path, ParkRecovery, ParkSet};
pub use plan::{RoutedEdges, ShardPlan};
pub use remote::RemoteShards;
pub use router::Router;
