//! Vertex-space sharding plan.
//!
//! A [`ShardPlan`] wraps a [`VertexPartition`] with `Block` layout so
//! every shard owns one contiguous slice of the vertex space. The plan
//! answers three questions the router asks on every request:
//!
//! - which shard owns a vertex (and therefore a read about it),
//! - whether an edge is *internal* (both endpoints on one shard) or a
//!   *cut* edge (endpoints on two shards), and
//! - how to translate between global vertex ids and the shard-local
//!   ids the per-shard engines speak.
//!
//! The owner rule for edges is inherited from
//! [`VertexPartition::edge_owner`]: the shard owning `min(u, v)` owns
//! the edge, which makes routing symmetric in the endpoint order.

use std::ops::Range;

use afforest_distrib::{PartitionKind, VertexPartition};
use afforest_graph::Node;

/// A batch of edges split by destination: per-shard internal edges in
/// shard-local ids, plus the cut edges (still in global ids) destined
/// for the boundary store.
#[derive(Debug)]
pub struct RoutedEdges {
    /// Internal edges per shard, translated to shard-local ids.
    pub per_shard: Vec<Vec<(Node, Node)>>,
    /// Cut edges in global ids; exactly the edges whose endpoints live
    /// on two different shards.
    pub cut: Vec<(Node, Node)>,
}

/// Block partition of `n` vertices across `shards` contiguous slices,
/// with global/local id translation.
#[derive(Debug, Clone)]
pub struct ShardPlan {
    part: VertexPartition,
    ranges: Vec<Range<Node>>,
}

impl ShardPlan {
    /// Plans `shards` contiguous slices over `n` vertices. `shards` is
    /// clamped to at least 1; shards beyond `n` get empty slices.
    pub fn new(n: usize, shards: usize) -> ShardPlan {
        let shards = shards.max(1);
        let part = VertexPartition::new(n, shards, PartitionKind::Block);
        let ranges = (0..shards)
            .map(|k| part.rank_range(k).unwrap_or(n as Node..n as Node))
            .collect();
        ShardPlan { part, ranges }
    }

    /// Number of shards in the plan.
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Global vertex count.
    pub fn vertices(&self) -> usize {
        self.part.len()
    }

    /// The shard owning global vertex `v`.
    pub fn owner(&self, v: Node) -> usize {
        self.part.owner(v)
    }

    /// Whether `(u, v)` spans two shards.
    pub fn is_cut(&self, u: Node, v: Node) -> bool {
        self.part.is_cut(u, v)
    }

    /// The contiguous global-id slice owned by `shard`; empty for
    /// shards past the vertex count. Returns an empty range rather
    /// than panicking for out-of-range shard indices.
    pub fn range(&self, shard: usize) -> Range<Node> {
        self.ranges
            .get(shard)
            .cloned()
            .unwrap_or_else(|| self.part.len() as Node..self.part.len() as Node)
    }

    /// Number of vertices owned by `shard`.
    pub fn shard_len(&self, shard: usize) -> usize {
        let r = self.range(shard);
        (r.end - r.start) as usize
    }

    /// Translates a global vertex id to the owning shard's local id.
    pub fn to_local(&self, v: Node) -> Node {
        v - self.range(self.owner(v)).start
    }

    /// Translates a shard-local id back to the global id.
    pub fn to_global(&self, shard: usize, local: Node) -> Node {
        self.range(shard).start + local
    }

    /// Splits a batch of global-id edges into per-shard internal
    /// batches (local ids) and the global-id cut list. Every input
    /// edge lands in exactly one output bucket.
    pub fn split_batch(&self, edges: &[(Node, Node)]) -> RoutedEdges {
        let mut per_shard = vec![Vec::new(); self.num_shards()];
        let mut cut = Vec::new();
        for &(u, v) in edges {
            if self.is_cut(u, v) {
                cut.push((u, v));
            } else {
                let s = self.owner(u);
                let base = self.range(s).start;
                per_shard[s].push((u - base, v - base));
            }
        }
        RoutedEdges { per_shard, cut }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tile_the_vertex_space() {
        let plan = ShardPlan::new(10, 3);
        let mut covered = Vec::new();
        for k in 0..plan.num_shards() {
            covered.extend(plan.range(k));
        }
        assert_eq!(covered, (0..10).collect::<Vec<Node>>());
    }

    #[test]
    fn local_global_roundtrip() {
        let plan = ShardPlan::new(100, 4);
        for v in 0..100 {
            let s = plan.owner(v);
            assert_eq!(plan.to_global(s, plan.to_local(v)), v);
        }
    }

    #[test]
    fn split_batch_buckets_every_edge_once() {
        let plan = ShardPlan::new(20, 4);
        let edges: Vec<(Node, Node)> = (0..19).map(|i| (i, i + 1)).collect();
        let routed = plan.split_batch(&edges);
        let internal: usize = routed.per_shard.iter().map(Vec::len).sum();
        assert_eq!(internal + routed.cut.len(), edges.len());
        for (k, batch) in routed.per_shard.iter().enumerate() {
            let len = plan.shard_len(k) as Node;
            for &(u, v) in batch {
                assert!(
                    u < len && v < len,
                    "shard {k} got non-local edge ({u}, {v})"
                );
            }
        }
        for &(u, v) in &routed.cut {
            assert!(plan.is_cut(u, v));
        }
    }

    #[test]
    fn more_shards_than_vertices_yields_empty_tails() {
        let plan = ShardPlan::new(3, 8);
        assert_eq!(plan.num_shards(), 8);
        let total: usize = (0..8).map(|k| plan.shard_len(k)).sum();
        assert_eq!(total, 3);
        assert_eq!(plan.shard_len(7), 0);
    }
}
