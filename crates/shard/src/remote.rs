//! Remote shard workers reached over the wire protocol.
//!
//! Each shard is a separate `afforest serve` process (typically
//! started with `--vertices N_k` for an empty slice plus a WAL
//! directory). The router holds one [`Client`] per shard and relays
//! shard-local requests verbatim — the workers speak the same protocol
//! as a standalone server, so nothing shard-specific runs on them.
//!
//! Calls go through [`Client::call_retrying`], which reconnects and
//! retries on disconnects, timeouts and `Overloaded` answers. That is
//! what makes the cluster survive a SIGKILLed worker: once the worker
//! is restarted (recovering its state from its WAL namespace), the
//! router's next retry lands on the fresh process.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use afforest_serve::{Client, Request, Response, RetryPolicy, WireError};

use crate::backend::ShardBackend;

/// One wire client per shard worker, each behind its own mutex so
/// router connection threads can fan out to distinct shards in
/// parallel.
pub struct RemoteShards {
    clients: Vec<Mutex<Client>>,
}

impl RemoteShards {
    /// Dials one worker per address. `retry` governs reconnect/retry
    /// behaviour for every subsequent call; `read_timeout` bounds how
    /// long a single answer may take (None blocks forever, which a
    /// killed worker would inherit — prefer a bound).
    pub fn connect(
        addrs: &[String],
        retry: RetryPolicy,
        read_timeout: Option<Duration>,
    ) -> Result<RemoteShards, WireError> {
        let mut clients = Vec::with_capacity(addrs.len());
        for addr in addrs {
            let client = Client::connect(addr.as_str())?
                .with_read_timeout(read_timeout)?
                .with_retry(retry);
            clients.push(Mutex::new(client));
        }
        Ok(RemoteShards { clients })
    }
}

impl ShardBackend for RemoteShards {
    fn num_shards(&self) -> usize {
        self.clients.len()
    }

    fn call(&self, shard: usize, req: &Request) -> Response {
        if shard >= self.clients.len() {
            return Response::Err(format!("no such shard {shard}"));
        }
        let outcome = self.clients[shard]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .call_retrying(req);
        match outcome {
            Ok(Some(resp)) => resp,
            // Retries exhausted while the shard kept shedding.
            Ok(None) => Response::Overloaded { queue_depth: 0 },
            Err(e) => Response::Err(format!("shard {shard} unavailable: {e}")),
        }
    }

    fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        for k in 0..self.clients.len() {
            let left = deadline.saturating_duration_since(Instant::now());
            let drained = self.clients[k]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .flush(left)
                .unwrap_or(false);
            if !drained {
                return false;
            }
        }
        true
    }

    fn shutdown(&self) {
        for c in &self.clients {
            let _ = c
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .call(&Request::Shutdown);
        }
    }
}
