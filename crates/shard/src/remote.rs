//! Remote shard workers reached over the wire protocol.
//!
//! Each shard is a separate `afforest serve` process (typically
//! started with `--vertices N_k` for an empty slice plus a WAL
//! directory). The router holds one client slot per shard and relays
//! shard-local requests verbatim — the workers speak the same protocol
//! as a standalone server, so nothing shard-specific runs on them.
//!
//! Connection is **lazy**: [`RemoteShards::connect`] tries every
//! address once but never fails the router boot — a worker that is
//! down at startup leaves an empty slot (reported by
//! [`RemoteShards::down_at_boot`], which the router seeds into its
//! health tracker as Down) and is dialed again on the first call that
//! reaches the shard, i.e. the breaker's probe. Calls that do connect
//! go through [`Client::call_retrying`], which reconnects and retries
//! on disconnects, timeouts and `Overloaded` answers; when retries are
//! exhausted the outcome is a typed [`ShardUnavailable`] — never a
//! fabricated in-band response — so the router can tell backpressure
//! ([`ShardUnavailable::Shedding`]) from death
//! ([`ShardUnavailable::Dead`], which also drops the cached client so
//! the next call redials).
//!
//! Trace propagation is implicit: the router's per-shard fan-out span
//! installs its context as the calling thread's current one
//! (`afforest_obs::reqtrace`), and [`Client::call`] attaches whatever
//! context is in scope to the outgoing envelope — so worker-side spans
//! parent under the router's fan-out span with no plumbing here.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use afforest_serve::{Client, Request, Response, RetryPolicy};

use crate::backend::{ShardBackend, ShardUnavailable};

/// One wire-client slot per shard worker, each behind its own mutex so
/// router connection threads can fan out to distinct shards in
/// parallel. `None` means "not currently connected".
pub struct RemoteShards {
    addrs: Vec<String>,
    retry: RetryPolicy,
    read_timeout: Option<Duration>,
    clients: Vec<Mutex<Option<Client>>>,
}

impl RemoteShards {
    /// Prepares one slot per address and tries an initial dial of
    /// each. Down workers do **not** fail the boot; their shard ids
    /// come back from [`RemoteShards::down_at_boot`]. `retry` governs
    /// reconnect/retry behaviour for every call; `read_timeout` bounds
    /// how long a single answer may take (None blocks forever, which a
    /// killed worker would inherit — prefer a bound).
    pub fn connect(
        addrs: &[String],
        retry: RetryPolicy,
        read_timeout: Option<Duration>,
    ) -> RemoteShards {
        let shards = RemoteShards {
            addrs: addrs.to_vec(),
            retry,
            read_timeout,
            clients: addrs.iter().map(|_| Mutex::new(None)).collect(),
        };
        for k in 0..shards.addrs.len() {
            if let Some(mut slot) = shards.slot(k) {
                *slot = shards.dial(k);
            }
        }
        shards
    }

    /// Shards whose worker was unreachable at boot (slot still empty).
    /// The router marks these Down so the breaker probes them instead
    /// of every request timing out against a dead address.
    pub fn down_at_boot(&self) -> Vec<usize> {
        (0..self.clients.len())
            .filter(|&k| self.slot(k).is_some_and(|s| s.is_none()))
            .collect()
    }

    fn slot(&self, shard: usize) -> Option<std::sync::MutexGuard<'_, Option<Client>>> {
        self.clients
            .get(shard)
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// One dial attempt for shard `shard`.
    fn dial(&self, shard: usize) -> Option<Client> {
        let addr = self.addrs.get(shard)?;
        Client::connect(addr.as_str())
            .and_then(|c| c.with_read_timeout(self.read_timeout))
            .map(|c| c.with_retry(self.retry))
            .ok()
    }
}

impl ShardBackend for RemoteShards {
    fn num_shards(&self) -> usize {
        self.clients.len()
    }

    fn call(&self, shard: usize, req: &Request) -> Result<Response, ShardUnavailable> {
        let Some(mut slot) = self.slot(shard) else {
            return Err(ShardUnavailable::Dead {
                shard,
                reason: "no such shard".into(),
            });
        };
        if slot.is_none() {
            // Lazy (re)connect: this call doubles as the dial.
            *slot = self.dial(shard);
        }
        let Some(client) = slot.as_mut() else {
            return Err(ShardUnavailable::Dead {
                shard,
                reason: "connect refused".into(),
            });
        };
        match client.call_retrying(req) {
            Ok(Some(resp)) => Ok(resp),
            // Retries exhausted while the shard kept shedding: the
            // worker is alive, just saturated. Not a health signal; the
            // last Overloaded answer's depth rides along so relays stay
            // honest.
            Ok(None) => Err(ShardUnavailable::Shedding {
                shard,
                queue_depth: client.last_shed_queue_depth(),
            }),
            Err(e) => {
                // Drop the broken client so the next call redials.
                *slot = None;
                Err(ShardUnavailable::Dead {
                    shard,
                    reason: e.to_string(),
                })
            }
        }
    }

    fn flush(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        for k in 0..self.clients.len() {
            let left = deadline.saturating_duration_since(Instant::now());
            let drained = self
                .slot(k)
                .and_then(|mut s| s.as_mut().map(|c| c.flush(left).unwrap_or(false)));
            // Disconnected shards have nothing queued here to drain.
            if drained == Some(false) {
                return false;
            }
        }
        true
    }

    fn shutdown(&self) {
        for k in 0..self.clients.len() {
            if let Some(mut slot) = self.slot(k) {
                if let Some(client) = slot.as_mut() {
                    let _ = client.call(&Request::Shutdown);
                }
            }
        }
    }
}
