//! Tentpole: parked writes replay into oracle-exact connectivity.
//!
//! Drives a router whose backend kills and revives shards at scripted
//! points while random batches stream in. Batches destined for a dead
//! shard park (the insert answer is tagged Degraded); once every shard
//! is back and the backlogs have replayed, the composite answers must
//! equal a single-engine `IncrementalCc` oracle that saw every edge —
//! parking must lose nothing, reorder nothing visible, and tolerate
//! repeated partial replays across several kill/revive cycles.

use std::sync::Mutex;
use std::time::Duration;

use afforest_core::IncrementalCc;
use afforest_graph::Node;
use afforest_serve::{Request, Response, ServeConfig};
use afforest_shard::{
    BoundaryStore, HealthConfig, LocalCluster, Router, ShardBackend, ShardPlan, ShardUnavailable,
};
use proptest::prelude::*;

/// A backend whose shards can be scripted dead (typed `Dead` outcome)
/// and alive again, deterministically.
struct Scripted {
    inner: LocalCluster,
    dead: Mutex<Vec<bool>>,
}

impl Scripted {
    fn new(inner: LocalCluster) -> Scripted {
        let n = inner.num_shards();
        Scripted {
            inner,
            dead: Mutex::new(vec![false; n]),
        }
    }

    fn set_dead(&self, shard: usize, dead: bool) {
        self.dead.lock().unwrap()[shard] = dead;
    }
}

impl ShardBackend for Scripted {
    fn num_shards(&self) -> usize {
        self.inner.num_shards()
    }

    fn call(&self, shard: usize, req: &Request) -> Result<Response, ShardUnavailable> {
        if self
            .dead
            .lock()
            .unwrap()
            .get(shard)
            .copied()
            .unwrap_or(false)
        {
            return Err(ShardUnavailable::Dead {
                shard,
                reason: "scripted kill".into(),
            });
        }
        self.inner.call(shard, req)
    }

    fn flush(&self, timeout: Duration) -> bool {
        self.inner.flush(timeout)
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }
}

fn insert_ok(r: &Router<Scripted>, batch: &[(Node, Node)]) {
    for _ in 0..1000 {
        match r.handle(&Request::InsertEdges(batch.to_vec())) {
            // Parked halves come back tagged; both count as accepted.
            Response::Accepted { .. } => return,
            Response::Degraded(inner) => {
                assert!(matches!(*inner, Response::Accepted { .. }));
                return;
            }
            Response::Overloaded { .. } => std::thread::sleep(Duration::from_millis(1)),
            other => panic!("insert answered {other:?}"),
        }
    }
    panic!("insert kept shedding");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn replayed_parked_writes_converge_to_the_oracle(
        n in 8usize..48,
        shards in 2usize..5,
        steps in proptest::collection::vec(
            (
                proptest::collection::vec((0u32..48, 0u32..48), 1..10),
                // Scripted fault before the batch:
                // (fires?, target shard, kill-or-revive).
                (any::<bool>(), 0usize..5, any::<bool>()),
            ),
            1..10,
        ),
        probe_seed in proptest::collection::vec((0u32..48, 0u32..48), 8),
    ) {
        let plan = ShardPlan::new(n, shards);
        let config = ServeConfig::builder().build().unwrap();
        let cluster = LocalCluster::new(&plan, &[], &config).unwrap();
        let r = Router::new(
            plan,
            BoundaryStore::new(n),
            Scripted::new(cluster),
            None,
        )
        .with_health_config(HealthConfig {
            suspect_after: 1,
            down_after: 1,
            probe_interval: Duration::ZERO,
            ..HealthConfig::default()
        });
        let mut oracle = IncrementalCc::new(n);
        let clamp = |v: u32| v % n as u32;
        for (batch, (fires, k, dead)) in &steps {
            if *fires {
                r.backend().set_dead(k % shards, *dead);
            }
            let batch: Vec<(Node, Node)> =
                batch.iter().map(|&(u, v)| (clamp(u), clamp(v))).collect();
            insert_ok(&r, &batch);
            oracle.insert_batch(&batch);
        }

        // Everyone comes back; a stats sweep probes each breaker open
        // shard, which replays its backlog.
        for k in 0..shards {
            r.backend().set_dead(k, false);
        }
        let _ = r.handle(&Request::Stats);
        for k in 0..shards {
            prop_assert_eq!(r.park().depth(k), 0, "shard {} backlog not drained", k);
        }
        prop_assert!(r.flush(Duration::from_secs(10)), "shards did not drain");

        // Oracle-exact, and no longer degraded.
        match r.handle(&Request::NumComponents) {
            Response::NumComponents(c) => {
                prop_assert_eq!(c, oracle.num_components() as u64, "census diverged")
            }
            other => panic!("NumComponents answered {other:?}"),
        }
        for &(u, v) in &probe_seed {
            let (u, v) = (clamp(u), clamp(v));
            match r.handle(&Request::Connected(u, v)) {
                Response::Connected(b) => {
                    prop_assert_eq!(b, oracle.connected(u, v), "Connected({}, {}) diverged", u, v)
                }
                other => panic!("Connected answered {other:?}"),
            }
        }
        r.shutdown_backend();
    }
}
