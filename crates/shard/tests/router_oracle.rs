//! Satellite: the router's answers over random interleaved ingest
//! across shards must match a single-engine `IncrementalCc` oracle —
//! including queries that straddle a just-applied cross-shard edge.

use std::time::Duration;

use afforest_core::IncrementalCc;
use afforest_graph::Node;
use afforest_serve::{Request, Response, ServeConfig};
use afforest_shard::{BoundaryStore, LocalCluster, Router, ShardPlan};
use proptest::prelude::*;

fn router(n: usize, shards: usize) -> Router<LocalCluster> {
    let plan = ShardPlan::new(n, shards);
    let config = ServeConfig::builder().build().unwrap();
    let cluster = LocalCluster::new(&plan, &[], &config).unwrap();
    Router::new(plan, BoundaryStore::new(n), cluster, None)
}

fn insert_ok(r: &Router<LocalCluster>, batch: &[(Node, Node)]) {
    // The in-process cluster may shed under a full queue; retry until
    // the batch lands (idempotent, see router docs).
    for _ in 0..1000 {
        match r.handle(&Request::InsertEdges(batch.to_vec())) {
            Response::Accepted { .. } => return,
            Response::Overloaded { .. } => {
                std::thread::sleep(Duration::from_millis(1));
            }
            other => panic!("insert answered {other:?}"),
        }
    }
    panic!("insert kept shedding");
}

fn assert_matches_oracle(
    r: &Router<LocalCluster>,
    oracle: &mut IncrementalCc,
    n: usize,
    probes: &[(Node, Node)],
) {
    assert!(r.flush(Duration::from_secs(10)), "shards did not drain");
    match r.handle(&Request::NumComponents) {
        Response::NumComponents(c) => {
            assert_eq!(c, oracle.num_components() as u64, "NumComponents diverged")
        }
        other => panic!("NumComponents answered {other:?}"),
    }
    let labels = oracle.labels();
    let mut size_of_label = std::collections::HashMap::new();
    for &l in labels.as_slice() {
        *size_of_label.entry(l).or_insert(0u64) += 1;
    }
    for &(u, v) in probes {
        match r.handle(&Request::Connected(u, v)) {
            Response::Connected(b) => {
                assert_eq!(b, oracle.connected(u, v), "Connected({u}, {v}) diverged")
            }
            other => panic!("Connected answered {other:?}"),
        }
    }
    for u in 0..n as Node {
        match r.handle(&Request::Component(u)) {
            Response::Component(l) => {
                assert_eq!(l, labels.label(u), "Component({u}) diverged")
            }
            other => panic!("Component answered {other:?}"),
        }
        match r.handle(&Request::ComponentSize(u)) {
            Response::ComponentSize(s) => assert_eq!(
                s,
                *size_of_label.get(&labels.label(u)).unwrap_or(&0),
                "ComponentSize({u}) diverged"
            ),
            other => panic!("ComponentSize answered {other:?}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn router_matches_single_engine_oracle(
        n in 8usize..48,
        shards in 1usize..5,
        batches in proptest::collection::vec(
            proptest::collection::vec((0u32..48, 0u32..48), 1..12),
            1..8,
        ),
        probe_seed in proptest::collection::vec((0u32..48, 0u32..48), 8),
    ) {
        let r = router(n, shards);
        let plan = ShardPlan::new(n, shards);
        let mut oracle = IncrementalCc::new(n);
        let clamp = |v: u32| v % n as u32;
        for batch in &batches {
            let batch: Vec<(Node, Node)> = batch.iter().map(|&(u, v)| (clamp(u), clamp(v))).collect();
            insert_ok(&r, &batch);
            oracle.insert_batch(&batch);
            // Straddle check: immediately after applying, query the
            // endpoints of every cross-shard edge in this batch.
            let straddlers: Vec<(Node, Node)> = batch
                .iter()
                .copied()
                .filter(|&(u, v)| plan.is_cut(u, v))
                .collect();
            if !straddlers.is_empty() {
                prop_assert!(r.flush(Duration::from_secs(10)));
                for &(u, v) in &straddlers {
                    match r.handle(&Request::Connected(u, v)) {
                        Response::Connected(b) => prop_assert!(b, "just-applied cut edge ({u}, {v}) not connected"),
                        other => panic!("Connected answered {other:?}"),
                    }
                }
            }
        }
        let probes: Vec<(Node, Node)> = probe_seed.iter().map(|&(u, v)| (clamp(u), clamp(v))).collect();
        assert_matches_oracle(&r, &mut oracle, n, &probes);
        r.shutdown_backend();
    }
}
