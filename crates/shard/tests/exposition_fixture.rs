//! Regeneration authority for the exposition fixture
//! (`crates/serve/tests/fixtures/exposition.txt`).
//!
//! The fixture is the reviewed list of every service metric — standalone
//! *and* sharded — in real exposition text. The serve crate's own
//! `exposition_fixture` test checks its metric set against the fixture,
//! but cannot register the router series (serve does not depend on this
//! crate), so the combined scrape is produced here: this crate sits on
//! top of both `afforest-serve` and `afforest-obs`, registers the full
//! standalone set plus the `{shard="k"}`-labelled router series, and is
//! the only test allowed to rewrite the fixture.
//!
//! Regenerate after adding a metric anywhere in the serving stack:
//!
//! ```text
//! UPDATE_FIXTURE=1 cargo test -p afforest-shard --test exposition_fixture
//! ```
//!
//! Own test file on purpose: the registry is process-global.

use afforest_obs::registry;
use std::path::Path;

#[test]
fn every_registered_metric_is_named_in_the_fixture() {
    // The standalone serving metric set, exactly as the serve crate's
    // fixture test registers it: a sample in each histogram makes the
    // fixture show bucket/sum/count lines like a real scrape would.
    let m = afforest_serve::metrics::metrics();
    for h in m.latency {
        h.record(1_500);
    }
    m.epoch_publish_lag.record(2_000_000);
    afforest_serve::metrics::tenant_metrics("default");
    registry::counter("afforest_client_retries_total").inc();
    registry::counter("afforest_client_degraded_total").inc();
    // The sharded layer on top: router globals plus the per-shard
    // labelled families for a two-shard deployment.
    afforest_shard::metrics::router_metrics(2);
    let live = registry::expose();

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../serve/tests/fixtures/exposition.txt");
    if std::env::var_os("UPDATE_FIXTURE").is_some() {
        let header = "# A live scrape of the full serving metric set, standalone + sharded\n\
                      # (see crates/shard/tests/exposition_fixture.rs).\n# Regenerate: \
                      UPDATE_FIXTURE=1 cargo test -p afforest-shard --test exposition_fixture\n";
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, format!("{header}{live}")).unwrap();
    }

    let fixture = std::fs::read_to_string(&path)
        .expect("fixture missing: regenerate with UPDATE_FIXTURE=1 (see module docs)");
    let scrape = registry::parse_exposition(&fixture).expect("fixture parses as exposition");
    assert!(!scrape.values.is_empty() && !scrape.histograms.is_empty());

    let fixture_names: Vec<&str> = fixture
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
        .collect();
    for name in live
        .lines()
        .filter_map(|l| l.strip_prefix("# TYPE "))
        .filter_map(|l| l.split_whitespace().next())
    {
        assert!(
            fixture_names.contains(&name),
            "{name} is registered but missing from the fixture; regenerate \
             with UPDATE_FIXTURE=1 (see module docs)"
        );
    }
}
