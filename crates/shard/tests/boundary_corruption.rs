//! Satellite: boundary-log recovery under arbitrary corruption.
//!
//! The boundary log is the only router-owned persistent state, and
//! unlike the WAL its 8-byte records carry no checksum — recovery
//! relies on range validation and forest replay. This property test
//! flips and truncates bytes anywhere in the file and asserts the
//! reopened store never panics, only ever holds in-range edges forming
//! a valid spanning forest, leaves the file at a record boundary, and
//! recovers identically when reopened again.

use std::sync::Mutex;

use afforest_core::IncrementalCc;
use afforest_graph::Node;
use afforest_shard::{BoundaryStore, BOUNDARY_LOG};
use proptest::prelude::*;

static CASE: Mutex<u64> = Mutex::new(0);

fn tempdir() -> std::path::PathBuf {
    let case = {
        let mut c = CASE.lock().unwrap();
        *c += 1;
        *c
    };
    let dir = std::env::temp_dir().join(format!(
        "afforest-boundary-corruption-{}-{case}",
        std::process::id(),
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The store invariant: every stored edge is in range and strictly
/// grows the cut-edge forest (version counts stored edges).
fn assert_valid_forest(store: &BoundaryStore, n: usize) {
    let (version, edges) = store.snapshot_edges();
    assert_eq!(
        version,
        edges.len() as u64,
        "version must count stored edges"
    );
    let mut uf = IncrementalCc::new(n);
    for &(u, v) in &edges {
        assert!(
            (u as usize) < n && (v as usize) < n,
            "edge ({u}, {v}) out of range"
        );
        assert!(
            uf.insert(u, v),
            "stored edge ({u}, {v}) is redundant: not a forest"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn recovery_is_total_and_yields_a_valid_prefix_forest(
        n in 4usize..64,
        edges in proptest::collection::vec((0u32..64, 0u32..64), 0..24),
        flips in proptest::collection::vec((0usize..512, 1u8..=255), 0..6),
        cut in (any::<bool>(), 0usize..512),
    ) {
        let cut = cut.0.then_some(cut.1);
        let dir = tempdir();
        let path = dir.join(BOUNDARY_LOG);
        let edges: Vec<(Node, Node)> =
            edges.iter().map(|&(u, v)| (u % n as Node, v % n as Node)).collect();
        {
            let store = BoundaryStore::with_log(n, &path).unwrap();
            store.observe_batch(&edges);
            prop_assert_eq!(store.log_write_errors(), 0);
        }

        // Corrupt: flip bytes at arbitrary offsets, optionally chop the
        // tail at an arbitrary (not necessarily record-aligned) point.
        let mut bytes = std::fs::read(&path).unwrap();
        for &(at, xor) in &flips {
            if let Some(b) = bytes.get_mut(at % 512) {
                *b ^= xor;
            }
        }
        if let Some(cut) = cut {
            bytes.truncate(cut % (bytes.len() + 1));
        }
        std::fs::write(&path, &bytes).unwrap();

        // Recovery must be total and leave a valid store behind.
        let store = BoundaryStore::with_log(n, &path).unwrap();
        assert_valid_forest(&store, n);
        let first = store.snapshot_edges();
        drop(store);
        let len = std::fs::metadata(&path).unwrap().len();
        prop_assert_eq!(len % 8, 0, "recovered log must end on a record boundary");

        // Pure truncation (no flips) keeps a strict prefix: replaying
        // the surviving whole records must give exactly what a fresh
        // forest replay of those records gives.
        if flips.is_empty() {
            let mut uf = IncrementalCc::new(n);
            let expect: Vec<(Node, Node)> = bytes
                .chunks_exact(8)
                .map(|rec| {
                    let (a, b) = rec.split_at(4);
                    (
                        Node::from_le_bytes(a.try_into().unwrap()),
                        Node::from_le_bytes(b.try_into().unwrap()),
                    )
                })
                .filter(|&(u, v)| (u as usize) < n && (v as usize) < n && uf.insert(u, v))
                .collect();
            prop_assert_eq!(&first.1, &expect, "truncation must recover the record prefix");
        }

        // Idempotent: a second recovery sees exactly the same forest.
        let store = BoundaryStore::with_log(n, &path).unwrap();
        assert_valid_forest(&store, n);
        prop_assert_eq!(store.snapshot_edges(), first);

        // And the recovered store still accepts new cut edges.
        store.observe_batch(&[(0, (n - 1) as Node)]);
        assert_valid_forest(&store, n);
        drop(store);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
