//! Fig. 8a — cross-algorithm performance on the full dataset suite.

use super::Report;
use crate::algorithms::Algorithm;
use crate::datasets::{registry, Scale};
use crate::table::{self, Table};
use crate::timing::{measure, Timing};

/// Runs the full performance comparison.
pub fn run(scale: Scale, trials: usize, dataset: Option<&str>) -> Report {
    let mut header: Vec<String> = vec!["graph".into()];
    header.extend(Algorithm::ALL.iter().map(|a| format!("{}-ms", a.name())));
    header.push("aff-p25/p75".into());
    header.push("speedup-vs-sv".into());
    header.push("speedup-vs-best-other".into());
    let mut t = Table::new(header);

    for d in registry() {
        if dataset.is_some_and(|n| n != d.name) {
            continue;
        }
        let g = d.build(scale);

        // Correctness gate before timing anything.
        let reference = Algorithm::Afforest.run(&g);
        assert!(reference.verify_against(&g), "{}: bad labeling", d.name);

        let mut timings: Vec<(Algorithm, Timing)> = Vec::new();
        for alg in Algorithm::ALL {
            let labels = alg.run(&g);
            assert!(
                labels.equivalent(&reference),
                "{}: {} disagrees",
                d.name,
                alg.name()
            );
            timings.push((alg, measure(trials, || alg.run(&g))));
        }

        let get = |a: Algorithm| timings.iter().find(|(x, _)| *x == a).unwrap().1;
        let aff = get(Algorithm::Afforest);
        let sv = get(Algorithm::Sv);
        let best_other = timings
            .iter()
            .filter(|(a, _)| {
                !matches!(
                    a,
                    Algorithm::Afforest
                        | Algorithm::AfforestNoSkip
                        | Algorithm::Sv
                        | Algorithm::SvEdgeList
                )
            })
            .map(|&(_, t)| t)
            .min_by(|a, b| a.median.cmp(&b.median))
            .expect("non-empty competitor set");

        let mut row: Vec<String> = vec![d.name.to_string()];
        row.extend(
            Algorithm::ALL
                .iter()
                .map(|&a| table::f2(get(a).median_ms())),
        );
        row.push(format!(
            "{}/{}",
            table::f2(aff.p25.as_secs_f64() * 1e3),
            table::f2(aff.p75.as_secs_f64() * 1e3)
        ));
        row.push(format!("{}x", table::f2(aff.speedup_over(&sv))));
        row.push(format!("{}x", table::f2(aff.speedup_over(&best_other))));
        t.row(row);
    }

    let mut r = Report::new(format!(
        "Fig. 8a — algorithm performance, median of {trials} trials (scale {scale:?})"
    ));
    r.table("", t);
    r.note("paper: afforest > sv everywhere (2.5-67x); loses only to dobfs on urand");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_registry_and_verifies() {
        // run() itself asserts every algorithm agrees with the oracle.
        let r = run(Scale::Tiny, 1, None);
        assert_eq!(r.primary_table().unwrap().len(), registry().len());
    }

    #[test]
    fn single_dataset_filter() {
        let r = run(Scale::Tiny, 1, Some("kron"));
        assert_eq!(r.primary_table().unwrap().len(), 1);
    }
}
