//! Table II — SV vs Afforest iterations & maximal tree depth.

use super::Report;
use crate::datasets::{registry, Scale};
use crate::table::{self, Table};
use afforest_baselines::shiloach_vishkin_with_stats;
use afforest_core::instrument::afforest_link_stats;
use afforest_core::AfforestConfig;

/// Runs the experiment over the registry (optionally a single dataset).
pub fn run(scale: Scale, dataset: Option<&str>) -> Report {
    let mut t = Table::new([
        "graph",
        "sv-iterations",
        "sv-max-depth",
        "aff-avg-iters",
        "aff-max-iters",
        "aff-max-depth",
    ]);

    for d in registry() {
        if dataset.is_some_and(|n| n != d.name) {
            continue;
        }
        let g = d.build(scale);
        let (_, sv) = shiloach_vishkin_with_stats(&g);
        // The paper's Table II measures Afforest without component skipping.
        let no_skip = AfforestConfig::builder()
            .skip(false)
            .build()
            .expect("valid config");
        let aff = afforest_link_stats(&g, &no_skip);
        t.row([
            d.name.to_string(),
            sv.iterations.to_string(),
            sv.max_tree_depth.to_string(),
            table::f2(aff.avg_iterations()),
            aff.max_iterations.to_string(),
            aff.max_tree_depth.to_string(),
        ]);
    }

    let mut r = Report::new(format!(
        "Table II — SV vs Afforest iterations & tree depth (scale {scale:?})"
    ));
    r.table("", t);
    r.note(
        "paper: Afforest's average local iterations stay close to 1 and its \
         tree depth stays close to SV's, despite link's unbounded traversal",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_row_per_dataset() {
        let r = run(Scale::Tiny, None);
        assert_eq!(r.primary_table().unwrap().len(), registry().len());
    }

    #[test]
    fn dataset_filter() {
        let r = run(Scale::Tiny, Some("urand"));
        assert_eq!(r.primary_table().unwrap().len(), 1);
    }

    #[test]
    fn avg_iterations_near_one() {
        // The Table II headline claim, checked structurally on the CSV.
        let r = run(Scale::Tiny, None);
        let csv = r.primary_table().unwrap().to_csv();
        for line in csv.lines().skip(1) {
            let avg: f64 = line.split(',').nth(3).unwrap().parse().unwrap();
            assert!(avg < 3.0, "avg iterations {avg} in row {line}");
        }
    }
}
