//! Ablation report for the design decisions listed in DESIGN.md §5.
//!
//! Complements the Criterion time-only benches with *work counters*:
//! edges processed, vertices skipped, trees remaining after sampling —
//! the quantities the paper's efficiency argument is actually about.

use super::Report;
use crate::datasets::{registry, Scale};
use crate::table::{self, Table};
use crate::timing::measure;
use afforest_core::{afforest, afforest_with_stats, AfforestConfig};

/// Neighbor-round counts swept.
pub const ROUNDS: [usize; 5] = [0, 1, 2, 4, 8];

/// Runs the ablation suite on one dataset (default `web`).
pub fn run(scale: Scale, trials: usize, dataset: Option<&str>) -> Report {
    let name = dataset.unwrap_or("web");
    let d = registry()
        .into_iter()
        .find(|d| d.name == name)
        .unwrap_or_else(|| panic!("unknown dataset '{name}'"));
    let g = d.build(scale);

    let mut r = Report::new(format!(
        "Ablations on '{name}' (|V|={}, |E|={}, scale {scale:?}, {trials} trials)",
        table::count(g.num_vertices()),
        table::count(g.num_edges()),
    ));

    // 1. Neighbor rounds: work + time as rounds grow (paper fixes 2).
    let mut t = Table::new([
        "neighbor-rounds",
        "edges-processed",
        "edge-fraction-%",
        "vertices-skipped",
        "median-ms",
    ]);
    for rounds in ROUNDS {
        let cfg = AfforestConfig {
            neighbor_rounds: rounds,
            ..Default::default()
        };
        let (labels, stats) = afforest_with_stats(&g, &cfg);
        assert!(labels.verify_against(&g), "rounds {rounds}: bad labeling");
        let timing = measure(trials, || afforest(&g, &cfg));
        t.row([
            rounds.to_string(),
            table::count(stats.edges_processed),
            table::f2(100.0 * stats.edge_fraction(&g)),
            table::count(stats.vertices_skipped),
            table::f2(timing.median_ms()),
        ]);
    }
    r.table("1. Neighbor rounds (paper default: 2)", t);

    // 2. Skip on/off.
    let mut t = Table::new([
        "skip-largest",
        "edges-processed",
        "edge-fraction-%",
        "median-ms",
    ]);
    for (label, cfg) in [
        ("on", AfforestConfig::default()),
        (
            "off",
            AfforestConfig::builder()
                .skip(false)
                .build()
                .expect("valid config"),
        ),
    ] {
        let (_, stats) = afforest_with_stats(&g, &cfg);
        let timing = measure(trials, || afforest(&g, &cfg));
        t.row([
            label.to_string(),
            table::count(stats.edges_processed),
            table::f2(100.0 * stats.edge_fraction(&g)),
            table::f2(timing.median_ms()),
        ]);
    }
    r.table("2. Large-component skipping", t);

    // 3. Compress schedule.
    let mut t = Table::new(["compress", "median-ms"]);
    for (label, each) in [("per-round (paper)", true), ("once-after (GAPBS)", false)] {
        let cfg = AfforestConfig {
            compress_each_round: each,
            ..Default::default()
        };
        let timing = measure(trials, || afforest(&g, &cfg));
        t.row([label.to_string(), table::f2(timing.median_ms())]);
    }
    r.table("3. Compress schedule", t);

    // 4. Sample size: does the most-frequent-element search stay reliable?
    let mut t = Table::new(["sample-size", "edges-processed", "median-ms"]);
    for samples in [16usize, 64, 256, 1024, 4096] {
        let cfg = AfforestConfig {
            sample_size: samples,
            ..Default::default()
        };
        let (labels, stats) = afforest_with_stats(&g, &cfg);
        assert!(labels.verify_against(&g));
        let timing = measure(trials, || afforest(&g, &cfg));
        t.row([
            samples.to_string(),
            table::count(stats.edges_processed),
            table::f2(timing.median_ms()),
        ]);
    }
    r.table(
        "4. Most-frequent-element sample size (paper default: 1024)",
        t,
    );

    r.note(
        "every configuration produces the identical verified partition; only work and time vary",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_four_tables() {
        let r = run(Scale::Tiny, 1, None);
        assert_eq!(r.tables.len(), 4);
        assert_eq!(r.tables[0].1.len(), ROUNDS.len());
    }

    #[test]
    fn skip_reduces_edges_on_giant_component_graph() {
        let r = run(Scale::Tiny, 1, Some("urand"));
        let csv = r.tables[1].1.to_csv();
        let edges = |label: &str| -> usize {
            csv.lines()
                .find(|l| l.starts_with(label))
                .unwrap()
                .split(',')
                .nth(1)
                .unwrap()
                .replace('_', "")
                .parse()
                .unwrap()
        };
        assert!(edges("on") < edges("off"));
    }

    #[test]
    fn more_rounds_more_round_edges_processed() {
        // Without extra rounds the final pass dominates; the table must
        // at least be monotone in the rounds column itself.
        let r = run(Scale::Tiny, 1, Some("urand"));
        let csv = r.tables[0].1.to_csv();
        let rows: Vec<Vec<String>> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        assert_eq!(rows.len(), ROUNDS.len());
    }
}
