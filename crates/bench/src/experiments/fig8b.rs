//! Fig. 8b — strong scaling on the web graph.

use super::Report;
use crate::algorithms::Algorithm;
use crate::datasets::{self, Scale};
use crate::table::{self, Table};
use crate::timing::measure;

/// Algorithms plotted by the paper's Fig. 8b.
pub const ALGS: [Algorithm; 4] = [
    Algorithm::Sv,
    Algorithm::Dobfs,
    Algorithm::Afforest,
    Algorithm::AfforestNoSkip,
];

/// Thread counts: powers of two up to the machine, plus the machine size.
pub fn thread_counts() -> Vec<usize> {
    let max_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let mut counts = vec![1usize];
    while *counts.last().unwrap() * 2 <= max_threads {
        counts.push(counts.last().unwrap() * 2);
    }
    if *counts.last().unwrap() != max_threads {
        counts.push(max_threads);
    }
    counts
}

/// Runs the scaling experiment.
pub fn run(scale: Scale, trials: usize, dataset: Option<&str>) -> Report {
    let name = dataset.unwrap_or("web");
    let g = datasets::by_name(name)
        .unwrap_or_else(|| panic!("unknown dataset '{name}'"))
        .build(scale);

    let counts = thread_counts();
    let mut header: Vec<String> = vec!["threads".into()];
    for a in ALGS {
        header.push(format!("{}-ms", a.name()));
        header.push(format!("{}-speedup", a.name()));
    }
    let mut t = Table::new(header);
    let mut base_ms: Vec<f64> = Vec::new();

    for (row_idx, &threads) in counts.iter().enumerate() {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("thread pool");
        let mut row = vec![threads.to_string()];
        for (ai, alg) in ALGS.into_iter().enumerate() {
            let timing = pool.install(|| measure(trials, || alg.run(&g)));
            let ms = timing.median_ms();
            if row_idx == 0 {
                base_ms.push(ms);
            }
            row.push(table::f2(ms));
            row.push(format!("{}x", table::f2(base_ms[ai] / ms.max(1e-9))));
        }
        t.row(row);
    }

    let mut r = Report::new(format!(
        "Fig. 8b — strong scaling on '{name}' (|V|={}, |E|={}, {trials} trials)",
        table::count(g.num_vertices()),
        table::count(g.num_edges()),
    ));
    r.table("", t);
    r.note("paper: all algorithms scale comparably on the web graph");
    if counts.len() == 1 {
        r.note("host exposes a single hardware thread: scaling series is degenerate here");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_match_thread_counts() {
        let r = run(Scale::Tiny, 1, None);
        assert_eq!(r.primary_table().unwrap().len(), thread_counts().len());
    }

    #[test]
    fn thread_counts_start_at_one_and_grow() {
        let c = thread_counts();
        assert_eq!(c[0], 1);
        assert!(c.windows(2).all(|w| w[1] > w[0]));
    }
}
