//! E11 (extension) — GPU execution-model study (Section VI-B).
//!
//! Replays the three competing GPU kernels through the warp simulator on
//! every dataset: edge-list SV (Soman et al.), CSR vertex-centric SV, and
//! Afforest's neighbor rounds. Reports SIMD efficiency, memory
//! transactions, and bytes — the model-level quantities behind the
//! paper's GPU results.

use super::Report;
use crate::datasets::{registry, Scale};
use crate::table::{self, Table};
use afforest_gpu_model::{
    simulate_afforest_rounds, simulate_csr_sv_hook, simulate_edgelist_sv_full,
    simulate_edgelist_sv_hook, KernelStats,
};

/// Runs the GPU-model study over the registry.
pub fn run(scale: Scale, dataset: Option<&str>) -> Report {
    let mut t = Table::new([
        "graph",
        "kernel",
        "simd-eff",
        "transactions",
        "bytes-req",
        "lockstep-work",
    ]);

    for d in registry() {
        if dataset.is_some_and(|n| n != d.name) {
            continue;
        }
        let g = d.build(scale);
        let kernels: [KernelStats; 4] = [
            simulate_edgelist_sv_hook(&g),
            simulate_edgelist_sv_full(&g).1,
            simulate_csr_sv_hook(&g),
            simulate_afforest_rounds(&g, 2),
        ];
        for k in &kernels {
            t.row([
                d.name.to_string(),
                k.name.clone(),
                table::f3(k.simd_efficiency()),
                table::count(k.acc.transactions as usize),
                table::count(k.acc.bytes_requested as usize),
                table::count(k.acc.lockstep_work as usize),
            ]);
        }
    }

    let mut r = Report::new(format!(
        "E11 — GPU warp-model comparison (scale {scale:?}): hook passes vs two Afforest rounds"
    ));
    r.table("", t);
    r.note("paper Section VI-B: edge lists stream homogeneously (eff ≈ 1) but load more data;");
    r.note("CSR-SV diverges on skewed degrees (wins only on narrow road networks);");
    r.note("Afforest's per-round single-neighbor kernels stay balanced on every graph");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_kernels_per_dataset() {
        let r = run(Scale::Tiny, None);
        assert_eq!(r.primary_table().unwrap().len(), 4 * registry().len());
    }

    #[test]
    fn qualitative_shape_on_kron() {
        let r = run(Scale::Tiny, Some("kron"));
        let csv = r.primary_table().unwrap().to_csv();
        let eff = |kernel: &str| -> f64 {
            csv.lines()
                .find(|l| l.contains(kernel))
                .unwrap()
                .split(',')
                .nth(2)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(eff("edgelist-sv-hook") > 0.9);
        assert!(eff("afforest-2-rounds") > eff("csr-sv-hook"));
    }
}
