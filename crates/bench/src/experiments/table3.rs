//! Table III — dataset statistics.

use super::Report;
use crate::datasets::{registry, Scale};
use crate::table::{self, Table};
use afforest_graph::GraphStats;

/// Runs the experiment over the registry (optionally a single dataset).
pub fn run(scale: Scale, dataset: Option<&str>) -> Report {
    let mut t = Table::new([
        "graph",
        "|V|",
        "|E|",
        "avg-deg",
        "max-deg",
        "diam(approx)",
        "components",
        "|c_max|/|V|",
    ]);

    for d in registry() {
        if dataset.is_some_and(|n| n != d.name) {
            continue;
        }
        let g = d.build(scale);
        let s = GraphStats::compute(&g);
        t.row([
            d.name.to_string(),
            table::count(s.num_vertices),
            table::count(s.num_edges),
            table::f2(s.avg_degree),
            table::count(s.max_degree),
            table::count(s.approx_diameter),
            table::count(s.num_components),
            table::f3(s.largest_component_fraction()),
        ]);
    }

    let mut r = Report::new(format!("Table III — dataset statistics (scale {scale:?})"));
    r.table("", t);
    for d in registry() {
        if dataset.is_none() || dataset == Some(d.name) {
            r.note(format!("{:<8} {}", d.name, d.description));
        }
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_registry() {
        let r = run(Scale::Tiny, None);
        assert_eq!(r.primary_table().unwrap().len(), registry().len());
        assert_eq!(r.notes.len(), registry().len());
    }

    #[test]
    fn structural_classes_visible_in_table() {
        let r = run(Scale::Tiny, None);
        let csv = r.primary_table().unwrap().to_csv();
        let row = |name: &str| -> Vec<String> {
            csv.lines()
                .find(|l| l.starts_with(name))
                .unwrap()
                .split(',')
                .map(str::to_string)
                .collect()
        };
        // Road: low max degree; kron: skewed.
        let road_maxdeg: usize = row("road")[4].replace('_', "").parse().unwrap();
        let kron_maxdeg: usize = row("kron")[4].replace('_', "").parse().unwrap();
        assert!(road_maxdeg <= 6);
        assert!(kron_maxdeg > 50);
    }
}
