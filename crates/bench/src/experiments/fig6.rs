//! Fig. 6a/6b — Linkage & Coverage vs fraction of processed edges.

use super::Report;
use crate::datasets::{self, Scale};
use crate::plot::{render, Series};
use crate::table::{self, Table};
use afforest_core::metrics::{convergence_curve, ConvergenceCurve};
use afforest_core::strategies::{partition, Strategy};
use afforest_core::{afforest, AfforestConfig};

/// Runs the convergence experiment on one dataset (default: `web`, the
/// paper's slowest-converging graph).
pub fn run(scale: Scale, dataset: Option<&str>, batches_per_phase: usize) -> Report {
    let name = dataset.unwrap_or("web");
    let g = datasets::by_name(name)
        .unwrap_or_else(|| panic!("unknown dataset '{name}'"))
        .build(scale);
    let truth = afforest(&g, &AfforestConfig::default());
    assert!(truth.verify_against(&g), "ground truth labeling invalid");

    let mut t = Table::new(["strategy", "pct-edges", "linkage", "coverage", "trees"]);
    let mut summary = Table::new([
        "strategy",
        "linkage@2-batches",
        "coverage@2-batches",
        "pct-edges->80%-linkage",
    ]);
    let mut curves: Vec<(Strategy, ConvergenceCurve)> = Vec::new();

    for strategy in Strategy::ALL {
        let batches = partition(&g, strategy, batches_per_phase, 0xF16);
        let curve = convergence_curve(&g, &batches, &truth);
        for p in &curve.points {
            t.row([
                strategy.name().to_string(),
                table::f2(100.0 * p.edge_fraction),
                table::f3(p.linkage),
                table::f3(p.coverage),
                p.trees.to_string(),
            ]);
        }
        let after2 = curve.points.get(2).or(curve.points.last()).copied();
        summary.row([
            strategy.name().to_string(),
            after2.map_or("-".into(), |p| table::f3(p.linkage)),
            after2.map_or("-".into(), |p| table::f3(p.coverage)),
            curve
                .linkage_reaches(0.8)
                .map_or("-".into(), |f| table::f2(100.0 * f)),
        ]);
        curves.push((strategy, curve));
    }

    let mut r = Report::new(format!(
        "Fig. 6a/6b — convergence on '{name}' (|V|={}, |E|={}, scale {scale:?})",
        table::count(g.num_vertices()),
        table::count(g.num_edges()),
    ));

    for (chart_name, pick) in [
        ("Fig. 6a — Linkage vs % edges processed", 0usize),
        ("Fig. 6b — Coverage vs % edges processed", 1),
    ] {
        let series: Vec<Series> = curves
            .iter()
            .map(|(s, c)| {
                Series::new(
                    s.name(),
                    c.points
                        .iter()
                        .map(|p| {
                            let y = if pick == 0 { p.linkage } else { p.coverage };
                            (100.0 * p.edge_fraction, y)
                        })
                        .collect(),
                )
            })
            .collect();
        r.chart(chart_name, render(&series, 64, 16, false));
    }

    r.table("Per-batch measurements", t);
    r.table(
        "Summary (paper: neighbor sampling ≈0.83 linkage / ≈0.80 coverage after 2 rounds)",
        summary,
    );
    r.note("paper: neighbor sampling near-optimal, row sampling slowest");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_two_charts_and_two_tables() {
        let r = run(Scale::Tiny, None, 5);
        assert_eq!(r.charts.len(), 2);
        assert_eq!(r.tables.len(), 2);
    }

    #[test]
    fn neighbor_sampling_beats_row_sampling_to_80pct() {
        // The deterministic qualitative claim of Fig. 6a.
        let r = run(Scale::Tiny, None, 10);
        let summary = &r.tables[1].1;
        let csv = summary.to_csv();
        let threshold = |name: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(name))
                .unwrap()
                .split(',')
                .nth(3)
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(threshold("neighbor-sampling") < threshold("row-sampling"));
    }

    #[test]
    fn works_on_other_datasets() {
        let r = run(Scale::Tiny, Some("urand"), 4);
        assert!(r.title.contains("urand"));
    }
}
