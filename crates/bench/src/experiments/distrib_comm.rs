//! E10 (extension) — distributed-memory communication study.

use super::Report;
use crate::datasets::{self, Scale};
use crate::table::{self, Table};
use afforest_distrib::{
    distributed_cc_forest, distributed_cc_labels, PartitionKind, VertexPartition,
};

/// Rank counts swept.
pub const RANKS: [usize; 5] = [2, 4, 8, 16, 32];

/// Runs the communication study on one dataset (default `web`).
pub fn run(scale: Scale, dataset: Option<&str>) -> Report {
    let name = dataset.unwrap_or("web");
    let g = datasets::by_name(name)
        .unwrap_or_else(|| panic!("unknown dataset '{name}'"))
        .build(scale);

    let mut t = Table::new([
        "ranks",
        "partition",
        "cut-%",
        "fm-msgs",
        "fm-rounds",
        "lx-msgs",
        "lx-rounds",
        "msg-ratio(lx/fm)",
    ]);

    for ranks in RANKS {
        for kind in [PartitionKind::Block, PartitionKind::Hash] {
            let part = VertexPartition::new(g.num_vertices(), ranks, kind);
            let (l1, fm) = distributed_cc_forest(&g, &part);
            let (l2, lx) = distributed_cc_labels(&g, &part);
            assert!(l1.equivalent(&l2), "distributed algorithms disagree");
            t.row([
                ranks.to_string(),
                format!("{kind:?}").to_lowercase(),
                table::f2(100.0 * part.cut_fraction(&g)),
                table::count(fm.messages as usize),
                fm.supersteps.to_string(),
                table::count(lx.messages as usize),
                lx.supersteps.to_string(),
                table::f2(lx.messages as f64 / fm.messages.max(1) as f64),
            ]);
        }
    }

    let mut r = Report::new(format!(
        "E10 — distributed CC communication on '{name}' (|V|={}, |E|={}, scale {scale:?})",
        table::count(g.num_vertices()),
        table::count(g.num_edges()),
    ));
    r.table("", t);
    r.note(
        "forest-merge ships O(|V|) words per sender in log2(P)+1 rounds, \
         independent of |E| and of the partition's cut",
    );
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_ranks_and_partitions() {
        let r = run(Scale::Tiny, None);
        assert_eq!(r.primary_table().unwrap().len(), RANKS.len() * 2);
    }

    #[test]
    fn forest_merge_always_cheaper_in_messages() {
        let r = run(Scale::Tiny, None);
        let csv = r.primary_table().unwrap().to_csv();
        for line in csv.lines().skip(1) {
            let ratio: f64 = line.split(',').next_back().unwrap().parse().unwrap();
            assert!(ratio >= 1.0, "lx/fm ratio below 1 in: {line}");
        }
    }
}
