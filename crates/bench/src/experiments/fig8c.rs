//! Fig. 8c — runtime vs average component fraction `f`.

use super::Report;
use crate::algorithms::Algorithm;
use crate::datasets::Scale;
use crate::plot::{render, Series};
use crate::table::{self, Table};
use crate::timing::measure;
use afforest_graph::generators::{components::expected_components, urand_with_components};

/// Algorithms plotted by the paper's Fig. 8c.
pub const ALGS: [Algorithm; 4] = [
    Algorithm::Afforest,
    Algorithm::AfforestNoSkip,
    Algorithm::Sv,
    Algorithm::Dobfs,
];

/// Component fractions swept (the paper's x-axis).
pub const FRACTIONS: [f64; 7] = [1e-4, 1e-3, 1e-2, 1e-1, 0.25, 0.5, 1.0];

/// Runs the component-fraction sweep.
pub fn run(scale: Scale, trials: usize) -> Report {
    let n = 1usize << scale.log_n();
    let mut header: Vec<String> = vec!["f".into(), "components".into()];
    header.extend(ALGS.iter().map(|a| format!("{}-ms", a.name())));
    let mut t = Table::new(header);
    let mut series: Vec<Series> = ALGS
        .iter()
        .map(|a| Series::new(a.name(), Vec::new()))
        .collect();

    for f in FRACTIONS {
        let g = urand_with_components(n, 4, f, 0xF8C);
        let mut row = vec![format!("{f:.0e}"), table::count(expected_components(n, f))];
        for (i, alg) in ALGS.into_iter().enumerate() {
            let timing = measure(trials, || alg.run(&g));
            row.push(table::f2(timing.median_ms()));
            series[i].points.push((f.log10(), timing.median_ms()));
        }
        t.row(row);
    }

    let mut r = Report::new(format!(
        "Fig. 8c — runtime vs component fraction, urand |V|={} edge-factor 4 ({trials} trials)",
        table::count(n),
    ));
    r.chart(
        "runtime (ms, log) vs log10(f)",
        render(&series, 64, 14, true),
    );
    r.table("", t);
    r.note("paper: tree-hooking flat in f; dobfs degrades as components multiply, wins at f≈1");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_all_fractions() {
        let r = run(Scale::Tiny, 1);
        assert_eq!(r.primary_table().unwrap().len(), FRACTIONS.len());
        assert_eq!(r.charts.len(), 1);
    }

    #[test]
    fn component_counts_decrease_with_f() {
        let r = run(Scale::Tiny, 1);
        let csv = r.primary_table().unwrap().to_csv();
        let counts: Vec<usize> = csv
            .lines()
            .skip(1)
            .map(|l| {
                l.split(',')
                    .nth(1)
                    .unwrap()
                    .replace('_', "")
                    .parse()
                    .unwrap()
            })
            .collect();
        assert!(counts.windows(2).all(|w| w[1] <= w[0]));
        assert_eq!(*counts.last().unwrap(), 1);
    }
}
