//! Experiment implementations behind the per-figure binaries.
//!
//! Each submodule exposes a `run(...) -> Report` function containing the
//! full experiment logic, so the experiments themselves are unit-testable
//! at tiny scale; the `src/bin/*` entry points are thin wrappers that
//! parse flags, call `run`, and print.

pub mod ablation;
pub mod distrib_comm;
pub mod fig6;
pub mod fig6c;
pub mod fig7;
pub mod fig8a;
pub mod fig8b;
pub mod fig8c;
pub mod gpu;
pub mod phases;
pub mod table2;
pub mod table3;

use crate::table::Table;

/// A rendered experiment: titled tables, optional ASCII charts, and
/// interpretation notes (the paper-claim each artifact checks).
#[derive(Debug, Default)]
pub struct Report {
    /// Headline, e.g. `"Table II — …"`.
    pub title: String,
    /// Named tables in presentation order.
    pub tables: Vec<(String, Table)>,
    /// Named ASCII charts.
    pub charts: Vec<(String, String)>,
    /// Free-form notes (paper expectations, caveats).
    pub notes: Vec<String>,
}

impl Report {
    /// Starts an empty report.
    pub fn new(title: impl Into<String>) -> Self {
        Self {
            title: title.into(),
            ..Default::default()
        }
    }

    /// Adds a table.
    pub fn table(&mut self, name: impl Into<String>, t: Table) -> &mut Self {
        self.tables.push((name.into(), t));
        self
    }

    /// Adds a chart.
    pub fn chart(&mut self, name: impl Into<String>, c: String) -> &mut Self {
        self.charts.push((name.into(), c));
        self
    }

    /// Adds a note.
    pub fn note(&mut self, n: impl Into<String>) -> &mut Self {
        self.notes.push(n.into());
        self
    }

    /// Renders for the terminal.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        for (name, t) in &self.tables {
            if !name.is_empty() {
                out.push('\n');
                out.push_str(name);
                out.push('\n');
            }
            out.push_str(&t.render());
        }
        for (name, c) in &self.charts {
            out.push('\n');
            out.push_str(name);
            out.push('\n');
            out.push_str(c);
        }
        for n in &self.notes {
            out.push_str(&format!("({n})\n"));
        }
        out
    }

    /// Renders as a markdown section (used by `run_all` to assemble
    /// `EXPERIMENTS.md`-style reports).
    pub fn to_markdown(&self) -> String {
        let mut out = format!("## {}\n\n", self.title);
        for (name, t) in &self.tables {
            if !name.is_empty() {
                out.push_str(&format!("**{name}**\n\n"));
            }
            out.push_str("```text\n");
            out.push_str(&t.render());
            out.push_str("```\n\n");
        }
        for (name, c) in &self.charts {
            out.push_str(&format!("**{name}**\n\n```text\n{c}```\n\n"));
        }
        for n in &self.notes {
            out.push_str(&format!("> {n}\n"));
        }
        out.push('\n');
        out
    }

    /// The first table (most experiments have exactly one), for CSV
    /// emission from the binaries.
    pub fn primary_table(&self) -> Option<&Table> {
        self.tables.first().map(|(_, t)| t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Report {
        let mut r = Report::new("Title");
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        r.table("main", t);
        r.chart("curve", "***\n".to_string());
        r.note("expectation holds");
        r
    }

    #[test]
    fn render_contains_everything() {
        let s = sample().render();
        assert!(s.contains("Title"));
        assert!(s.contains("main"));
        assert!(s.contains("curve"));
        assert!(s.contains("(expectation holds)"));
    }

    #[test]
    fn markdown_is_structured() {
        let md = sample().to_markdown();
        assert!(md.starts_with("## Title"));
        assert!(md.contains("```text"));
        assert!(md.contains("> expectation holds"));
    }

    #[test]
    fn primary_table() {
        assert!(sample().primary_table().is_some());
        assert!(Report::new("empty").primary_table().is_none());
    }
}
