//! Per-phase runtime breakdown — the observability runtime's headline
//! consumer.
//!
//! Times every algorithm under a tracing session ([`measure_traced`])
//! and tabulates where the median trial's wall-clock goes: one row per
//! (algorithm, phase) with invocation count, total milliseconds, and
//! share of the trial. For Afforest this splits the run into the
//! paper's phases (neighbor-round links, compress sweeps, giant-component
//! sampling, the skip-filtered final link); for the baselines it groups
//! the per-iteration spans (`sv-iter[i]`, `lp-round[i]`, …) by base name.
//!
//! Without the `obs` feature only the `(total)` rows appear — the
//! harness still times everything, it just has no spans to break down.

use super::Report;
use crate::algorithms::Algorithm;
use crate::datasets::{by_name, Scale};
use crate::table::{self, Table};
use crate::timing::measure_traced;

/// Runs the breakdown for one dataset (default `urand`, the paper's
/// stress case for sampling) across all eight algorithms.
pub fn run(scale: Scale, trials: usize, dataset: Option<&str>) -> Report {
    let name = dataset.unwrap_or("urand");
    let d = by_name(name).unwrap_or_else(|| panic!("unknown dataset '{name}'"));
    let g = d.build(scale);

    let mut t = Table::new(["algorithm", "phase", "count", "total-ms", "share-%"]);
    let mut counter_lines: Vec<String> = Vec::new();
    for alg in Algorithm::ALL {
        let (timing, trace) = measure_traced(trials, || alg.run(&g));
        t.row([
            alg.name().to_string(),
            "(total)".into(),
            trials.to_string(),
            table::f2(timing.median_ms()),
            "100.00".into(),
        ]);
        let total = trace.total_ns.max(1) as f64;
        for p in trace.phase_totals() {
            // Nested spans are indented under their parents so their
            // shares visibly overlap the depth-0 rows above them.
            let label = format!("{}{}", "  ".repeat(p.depth as usize), p.name);
            t.row([
                alg.name().to_string(),
                label,
                p.count.to_string(),
                table::f2(p.total_ms()),
                table::f2(100.0 * p.total_ns as f64 / total),
            ]);
        }
        if !trace.counters.is_empty() {
            let cs: Vec<String> = trace
                .counters
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            counter_lines.push(format!("{}: {}", alg.name(), cs.join(" ")));
        }
    }

    let mut r = Report::new(format!(
        "Phase breakdown — {name}, median of {trials} trials (scale {scale:?})"
    ));
    r.table("", t);
    for line in counter_lines {
        r.note(line);
    }
    if !afforest_obs::COMPILED {
        r.note("spans disabled: rebuild with `--features obs` for the per-phase rows");
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_for_every_algorithm() {
        let r = run(Scale::Tiny, 1, None);
        let t = r.primary_table().unwrap();
        // At minimum one `(total)` row per algorithm; with obs compiled
        // in, phase rows follow.
        assert!(t.len() >= Algorithm::ALL.len());
        let rendered = t.render();
        for alg in Algorithm::ALL {
            assert!(rendered.contains(alg.name()), "missing {}", alg.name());
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn breakdown_covers_afforest_phases() {
        let r = run(Scale::Tiny, 2, Some("urand"));
        let rendered = r.primary_table().unwrap().render();
        for phase in ["link", "compress", "find-largest", "final-link"] {
            assert!(rendered.contains(phase), "missing phase {phase}");
        }
        // Baselines report per-iteration spans grouped by base name.
        assert!(rendered.contains("sv-iter"));
        assert!(rendered.contains("uf-union-pass"));
    }
}
