//! Fig. 6c — runtime vs average degree on Kronecker graphs.

use super::Report;
use crate::algorithms::Algorithm;
use crate::datasets::Scale;
use crate::plot::{render, Series};
use crate::table::{self, Table};
use crate::timing::measure;
use afforest_graph::generators::{rmat, RmatParams};

/// Edge factors swept (average degree ≈ 2× the factor before dedup).
pub const EDGE_FACTORS: [usize; 6] = [2, 4, 8, 16, 32, 64];

/// Runs the degree sweep.
pub fn run(scale: Scale, trials: usize) -> Report {
    let s = scale.log_n();
    let mut header: Vec<String> = vec!["edge-factor".into(), "avg-deg".into()];
    header.extend(Algorithm::FIG6C.iter().map(|a| format!("{}-ms", a.name())));
    let mut t = Table::new(header);
    let mut series: Vec<Series> = Algorithm::FIG6C
        .iter()
        .map(|a| Series::new(a.name(), Vec::new()))
        .collect();

    for ef in EDGE_FACTORS {
        let g = rmat(s, ef << s, RmatParams::GRAPH500, 0x6C);
        let mut row = vec![ef.to_string(), table::f2(g.avg_degree())];
        for (i, alg) in Algorithm::FIG6C.into_iter().enumerate() {
            let timing = measure(trials, || alg.run(&g));
            row.push(table::f2(timing.median_ms()));
            series[i].points.push((g.avg_degree(), timing.median_ms()));
        }
        t.row(row);
    }

    let mut r = Report::new(format!(
        "Fig. 6c — runtime vs average degree, Kronecker 2^{s} vertices ({trials} trials)"
    ));
    r.chart(
        "runtime (ms, log) vs average degree",
        render(&series, 64, 14, true),
    );
    r.table("", t);
    r.note("paper: SV/LP grow with degree, DOBFS shrinks, Afforest stays flat");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweeps_all_edge_factors() {
        let r = run(Scale::Tiny, 1);
        assert_eq!(r.primary_table().unwrap().len(), EDGE_FACTORS.len());
        assert_eq!(r.charts.len(), 1);
    }

    #[test]
    fn avg_degree_grows_with_edge_factor() {
        let r = run(Scale::Tiny, 1);
        let csv = r.primary_table().unwrap().to_csv();
        let degrees: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(degrees.windows(2).all(|w| w[1] > w[0]));
    }
}
