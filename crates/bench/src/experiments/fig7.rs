//! Fig. 7 — π memory-access traces (SV vs Afforest ± skip).

use super::Report;
use crate::table::{self, Table};
use afforest_core::cachesim::{simulate_trace, CacheConfig};
use afforest_core::instrument::{trace_afforest, trace_sv, AccessTrace, TracePhase};
use afforest_core::AfforestConfig;
use afforest_graph::generators::uniform_random;

const TIME_BINS: usize = 48;
const ADDR_BINS: usize = 24;
const SHADES: &[char] = &[' ', '.', ':', '+', '*', '#', '@'];

/// Renders the (time × address) density heat-map plus the phase band.
pub fn render_heatmap(trace: &AccessTrace) -> String {
    let grid = trace.heatmap(TIME_BINS, ADDR_BINS);
    let max = grid.iter().flatten().copied().max().unwrap_or(1).max(1);
    let mut out = String::new();
    for a in (0..ADDR_BINS).rev() {
        out.push_str("  |");
        for row in grid.iter().take(TIME_BINS) {
            let c = row[a];
            let shade = if c == 0 {
                0
            } else {
                1 + ((c as f64).ln() / (max as f64).ln() * (SHADES.len() - 2) as f64) as usize
            };
            out.push(SHADES[shade.min(SHADES.len() - 1)]);
        }
        out.push_str("|\n");
    }
    let max_seq = trace.events.last().map(|e| e.seq + 1).unwrap_or(1);
    out.push_str("  |");
    for tb in 0..TIME_BINS {
        let seq = (tb as u64 * max_seq) / TIME_BINS as u64;
        let phase = trace
            .phase_marks
            .iter()
            .rev()
            .find(|&&(s, _)| s <= seq)
            .map(|&(_, p)| p)
            .unwrap_or(TracePhase::Init);
        out.push(phase.marker());
    }
    out.push_str("|  (phase per time bin)\n");
    out
}

/// Fraction of accesses landing in the lowest 1/8 of π — the root
/// territory under Invariant 1, a scalar locality indicator.
pub fn low_region_share(trace: &AccessTrace) -> f64 {
    let low_cut = (trace.num_slots / 8).max(1);
    let low = trace
        .events
        .iter()
        .filter(|e| (e.index as usize) < low_cut)
        .count();
    low as f64 / trace.len().max(1) as f64
}

fn phase_table(trace: &AccessTrace) -> Table {
    let mut t = Table::new(["phase", "accesses", "share-%"]);
    let mut counts: Vec<(TracePhase, usize)> = Vec::new();
    for e in &trace.events {
        match counts.iter_mut().find(|(p, _)| *p == e.phase) {
            Some((_, c)) => *c += 1,
            None => counts.push((e.phase, 1)),
        }
    }
    for (phase, c) in &counts {
        t.row([
            format!("{phase:?}"),
            table::count(*c),
            table::f2(100.0 * *c as f64 / trace.len().max(1) as f64),
        ]);
    }
    t
}

/// Runs the trace experiment (defaults to the paper's size,
/// `|V| = 2^12`, `|E| = 2^19`).
pub fn run(vlog: u32, elog: u32) -> Report {
    let g = uniform_random(1 << vlog, 1 << elog, 0xF17);
    let mut r = Report::new(format!(
        "Fig. 7 — π access traces on urand |V|=2^{vlog}, |E|=2^{elog} ({} edges realized)",
        table::count(g.num_edges())
    ));

    let variants: [(&str, AccessTrace); 3] = [
        ("(a) Shiloach-Vishkin", trace_sv(&g)),
        (
            "(b) Afforest without component skipping",
            trace_afforest(
                &g,
                &AfforestConfig::builder()
                    .skip(false)
                    .build()
                    .expect("valid config"),
            ),
        ),
        (
            "(c) Afforest",
            trace_afforest(&g, &AfforestConfig::default()),
        ),
    ];

    for (name, trace) in &variants {
        r.table(
            format!(
                "{name}: {} π accesses across {} threads (lowest-1/8 share {:.1}%)",
                table::count(trace.len()),
                trace.num_threads(),
                100.0 * low_region_share(trace)
            ),
            phase_table(trace),
        );
        r.chart(
            format!("{name} — access density over (time →, π address ↑)"),
            render_heatmap(trace),
        );
    }

    // Section V-C quantified: replay each trace through an L1-like cache.
    let mut cache_t = Table::new(["variant", "accesses", "l1-hit-%", "l2-hit-%"]);
    for (name, trace) in &variants {
        let l1 = simulate_trace(trace, CacheConfig::L1);
        let l2 = simulate_trace(trace, CacheConfig::L2);
        cache_t.row([
            name.to_string(),
            table::count(trace.len()),
            table::f2(100.0 * l1.hit_rate()),
            table::f2(100.0 * l2.hit_rate()),
        ]);
    }
    r.table(
        "Simulated cache hit rates (32 KiB L1 / 1 MiB L2, LRU)",
        cache_t,
    );

    let sv_len = variants[0].1.len() as f64;
    let noskip_len = variants[1].1.len() as f64;
    let full_len = variants[2].1.len().max(1) as f64;
    r.note(format!(
        "SV made {:.1}x the π accesses of Afforest; skipping saves a further {:.2}x (noskip/full)",
        sv_len / full_len,
        noskip_len / full_len
    ));
    r.note("paper: Afforest's rounds are sequential and root-local; SV scatters across π every iteration");
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_shape() {
        let r = run(8, 11);
        assert_eq!(r.tables.len(), 4); // 3 phase tables + cache table
        assert_eq!(r.charts.len(), 3);
        assert_eq!(r.notes.len(), 2);
    }

    #[test]
    fn sv_accesses_exceed_afforest() {
        let r = run(8, 11);
        // Parse the ratio out of the first note.
        let note = &r.notes[0];
        let ratio: f64 = note
            .split("SV made ")
            .nth(1)
            .unwrap()
            .split('x')
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!(
            ratio > 1.0,
            "SV/Afforest access ratio {ratio} should exceed 1"
        );
    }

    #[test]
    fn heatmap_renders_with_phase_band() {
        let g = uniform_random(256, 1024, 1);
        let trace = trace_sv(&g);
        let s = render_heatmap(&trace);
        assert!(s.contains("(phase per time bin)"));
        assert!(s.lines().count() == ADDR_BINS + 1);
    }
}
