//! Dataset registry: the Table III suite at laptop scale.
//!
//! Every dataset is a deterministic synthetic stand-in for one of the
//! paper's graphs (see DESIGN.md §2 for the substitution rationale):
//!
//! | Name | Stands in for | Structure |
//! |------|---------------|-----------|
//! | `road` | road (USA) | sparse fragmented lattice, diameter Θ(√V) |
//! | `osm-eur` | osm-eur | larger, sparser lattice, more components |
//! | `twitter` | twitter | mild-skew Kronecker social network |
//! | `web` | web (sk-2005) | locality/copying model, giant component |
//! | `urand` | urand | Erdős–Rényi, edge factor 16 |
//! | `kron` | kron | Graph500 R-MAT, edge factor 16, heavy skew |
//!
//! The `Scale` knob trades fidelity for wall-clock: `Small` runs the whole
//! suite in seconds (default for CI and examples), `Large` approaches the
//! biggest sizes a laptop handles comfortably.

use afforest_graph::generators::{rmat, road_network, uniform_random, web_graph, RmatParams};
use afforest_graph::CsrGraph;

/// Dataset size preset. Controls `|V|` per dataset; edge factors stay
/// faithful to the originals.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// ~2^10 vertices — unit-test sized.
    Tiny,
    /// ~2^14 vertices — seconds per experiment (default).
    Small,
    /// ~2^17 vertices — tens of seconds.
    Medium,
    /// ~2^20 vertices — minutes; closest to the paper's shapes.
    Large,
}

impl Scale {
    /// log2 of the nominal vertex count.
    pub fn log_n(&self) -> u32 {
        match self {
            Scale::Tiny => 10,
            Scale::Small => 14,
            Scale::Medium => 17,
            Scale::Large => 20,
        }
    }

    /// Parses the `--scale` CLI value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "large" => Some(Scale::Large),
            _ => None,
        }
    }
}

/// A named dataset: a deterministic graph constructor.
pub struct Dataset {
    /// Registry name (paper's dataset it stands in for).
    pub name: &'static str,
    /// One-line description for table footers.
    pub description: &'static str,
    build: fn(Scale) -> CsrGraph,
}

impl Dataset {
    /// Builds the graph at the requested scale.
    pub fn build(&self, scale: Scale) -> CsrGraph {
        (self.build)(scale)
    }
}

fn road(scale: Scale) -> CsrGraph {
    let side = 1usize << (scale.log_n() / 2 + scale.log_n() % 2);
    road_network(side, side, 0.93, 0.02, 0xA001)
}

fn osm_eur(scale: Scale) -> CsrGraph {
    // Sparser keep probability fragments the lattice into many components,
    // mirroring osm-eur's multi-million component count.
    let side = 1usize << (scale.log_n() / 2 + scale.log_n() % 2);
    let side = side + side / 2;
    road_network(side, side, 0.75, 0.0, 0x05)
}

fn twitter(scale: Scale) -> CsrGraph {
    let s = scale.log_n();
    rmat(s, 12usize << s, RmatParams::SOCIAL, 0xA003)
}

fn web(scale: Scale) -> CsrGraph {
    let n = 1usize << scale.log_n();
    web_graph(n, 8, 0.75, 16.0, 0x3B)
}

fn urand(scale: Scale) -> CsrGraph {
    let n = 1usize << scale.log_n();
    uniform_random(n, 16 * n, 0x0A)
}

fn kron(scale: Scale) -> CsrGraph {
    let s = scale.log_n();
    rmat(s, 16usize << s, RmatParams::GRAPH500, 0x6B)
}

/// The full Table III suite, in the paper's row order.
pub fn registry() -> Vec<Dataset> {
    vec![
        Dataset {
            name: "road",
            description: "fragmented lattice road network (road/USA stand-in)",
            build: road,
        },
        Dataset {
            name: "osm-eur",
            description: "large sparse lattice, many components (osm-eur stand-in)",
            build: osm_eur,
        },
        Dataset {
            name: "twitter",
            description: "mild-skew Kronecker social network (twitter stand-in)",
            build: twitter,
        },
        Dataset {
            name: "web",
            description: "locality/copying web crawl model (sk-2005 stand-in)",
            build: web,
        },
        Dataset {
            name: "urand",
            description: "Erdős–Rényi uniform random, edge factor 16 (GAP urand)",
            build: urand,
        },
        Dataset {
            name: "kron",
            description: "Graph500 R-MAT, edge factor 16 (GAP kron)",
            build: kron,
        },
    ]
}

/// Looks a dataset up by name.
pub fn by_name(name: &str) -> Option<Dataset> {
    registry().into_iter().find(|d| d.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_six_datasets() {
        assert_eq!(registry().len(), 6);
    }

    #[test]
    fn all_build_at_tiny_scale() {
        for d in registry() {
            let g = d.build(Scale::Tiny);
            assert!(g.num_vertices() > 0, "{} is empty", d.name);
            assert!(g.num_edges() > 0, "{} has no edges", d.name);
        }
    }

    #[test]
    fn builds_are_deterministic() {
        for d in registry() {
            assert_eq!(d.build(Scale::Tiny), d.build(Scale::Tiny), "{}", d.name);
        }
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("web").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn scale_parse() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn scales_grow() {
        let small = by_name("urand").unwrap().build(Scale::Tiny);
        let bigger = by_name("urand").unwrap().build(Scale::Small);
        assert!(bigger.num_vertices() > small.num_vertices());
    }

    #[test]
    fn structural_properties_hold_at_small_scale() {
        use afforest_graph::GraphStats;
        let road = GraphStats::compute(&by_name("road").unwrap().build(Scale::Small));
        let urand = GraphStats::compute(&by_name("urand").unwrap().build(Scale::Small));
        let kron = GraphStats::compute(&by_name("kron").unwrap().build(Scale::Small));
        // Road: low degree, high diameter, fragmented.
        assert!(road.max_degree <= 6);
        assert!(road.approx_diameter > 50);
        // urand: single giant component, concentrated degree.
        assert!(urand.largest_component_fraction() > 0.99);
        // kron: heavy skew.
        assert!(kron.max_degree as f64 > 20.0 * kron.avg_degree);
    }
}
