//! Ablation-report entry point — see `afforest_bench::experiments::ablation`.

use afforest_bench::experiments::ablation;
use afforest_bench::Options;

fn main() {
    let opts = Options::from_env("ablation_report [--scale S] [--trials N] [--dataset NAME]");
    print!(
        "{}",
        ablation::run(opts.scale, opts.trials, opts.dataset.as_deref()).render()
    );
}
