//! Fig. 7 entry point — see `afforest_bench::experiments::fig7`.

use afforest_bench::experiments::fig7;
use afforest_bench::Options;

fn main() {
    let opts = Options::from_env("fig7_trace [--vertices-log2 N] [--edges-log2 M]");
    // Paper trace size: |V| = 2^12, |E| = 2^19.
    let vlog: u32 = opts
        .extra("vertices-log2")
        .map(|v| v.parse().expect("--vertices-log2 must be a number"))
        .unwrap_or(12);
    let elog: u32 = opts
        .extra("edges-log2")
        .map(|v| v.parse().expect("--edges-log2 must be a number"))
        .unwrap_or(19);
    print!("{}", fig7::run(vlog, elog).render());
}
