//! Fig. 6a/6b entry point — see `afforest_bench::experiments::fig6`.

use afforest_bench::experiments::fig6;
use afforest_bench::Options;

fn main() {
    let opts = Options::from_env(
        "fig6_convergence [--scale S] [--dataset NAME] [--batches N] [--csv PATH]",
    );
    let batches: usize = opts
        .extra("batches")
        .map(|v| v.parse().expect("--batches must be a number"))
        .unwrap_or(10);
    let report = fig6::run(opts.scale, opts.dataset.as_deref(), batches);
    print!("{}", report.render());
    if let Some(path) = &opts.csv {
        report
            .primary_table()
            .unwrap()
            .write_csv(path)
            .expect("write csv");
        println!("csv written to {path}");
    }
}
