//! Fig. 8b entry point — see `afforest_bench::experiments::fig8b`.

use afforest_bench::experiments::fig8b;
use afforest_bench::Options;

fn main() {
    let opts =
        Options::from_env("fig8b_scaling [--scale S] [--trials N] [--dataset NAME] [--csv PATH]");
    let report = fig8b::run(opts.scale, opts.trials, opts.dataset.as_deref());
    print!("{}", report.render());
    if let Some(path) = &opts.csv {
        report
            .primary_table()
            .unwrap()
            .write_csv(path)
            .expect("write csv");
        println!("csv written to {path}");
    }
}
