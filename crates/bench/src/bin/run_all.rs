//! Runs every experiment and assembles a combined markdown report —
//! the generator behind `EXPERIMENTS.md`.

use afforest_bench::experiments::{
    ablation, distrib_comm, fig6, fig6c, fig7, fig8a, fig8b, fig8c, gpu, phases, table2, table3,
    Report,
};
use afforest_bench::Options;
use std::time::Instant;

fn main() {
    let opts = Options::from_env("run_all [--scale S] [--trials N] [--out PATH.md]");
    let out_path = opts
        .extra("out")
        .map(str::to_string)
        .unwrap_or_else(|| "experiments-report.md".to_string());

    let (vlog, elog) = match opts.scale {
        afforest_bench::Scale::Tiny => (9, 13),
        _ => (12, 19), // the paper's Fig. 7 trace size
    };

    type Runner<'a> = Box<dyn FnOnce() -> Report + 'a>;
    let runs: Vec<(&str, Runner)> = vec![
        ("table2", Box::new(move || table2::run(opts.scale, None))),
        ("table3", Box::new(move || table3::run(opts.scale, None))),
        ("fig6", Box::new(move || fig6::run(opts.scale, None, 10))),
        (
            "fig6c",
            Box::new(move || fig6c::run(opts.scale, opts.trials)),
        ),
        ("fig7", Box::new(move || fig7::run(vlog, elog))),
        (
            "fig8a",
            Box::new(move || fig8a::run(opts.scale, opts.trials, None)),
        ),
        (
            "fig8b",
            Box::new(move || fig8b::run(opts.scale, opts.trials, None)),
        ),
        (
            "fig8c",
            Box::new(move || fig8c::run(opts.scale, opts.trials)),
        ),
        (
            "distrib",
            Box::new(move || distrib_comm::run(opts.scale, None)),
        ),
        (
            "ablation",
            Box::new(move || ablation::run(opts.scale, opts.trials, None)),
        ),
        ("gpu", Box::new(move || gpu::run(opts.scale, None))),
        (
            "phases",
            Box::new(move || phases::run(opts.scale, opts.trials, None)),
        ),
    ];

    let mut md = format!(
        "# Afforest reproduction — experiment report (scale {:?}, {} trials)\n\n",
        opts.scale, opts.trials
    );
    for (name, run) in runs {
        eprintln!("running {name} …");
        let t = Instant::now();
        let report = run();
        eprintln!("  {name} done in {:?}", t.elapsed());
        print!("{}", report.render());
        println!();
        md.push_str(&report.to_markdown());
    }

    std::fs::write(&out_path, md).expect("write markdown report");
    println!("markdown report written to {out_path}");
}
