//! Fig. 6c entry point — see `afforest_bench::experiments::fig6c`.

use afforest_bench::experiments::fig6c;
use afforest_bench::Options;

fn main() {
    let opts = Options::from_env("fig6c_degree_sweep [--scale S] [--trials N] [--csv PATH]");
    let report = fig6c::run(opts.scale, opts.trials);
    print!("{}", report.render());
    if let Some(path) = &opts.csv {
        report
            .primary_table()
            .unwrap()
            .write_csv(path)
            .expect("write csv");
        println!("csv written to {path}");
    }
}
