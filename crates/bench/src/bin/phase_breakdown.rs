//! Per-phase runtime breakdown — see `afforest_bench::experiments::phases`.
//!
//! Build with `--features obs` to get the per-phase rows; without it the
//! binary prints totals only and says so.

use afforest_bench::experiments::phases;
use afforest_bench::Options;

fn main() {
    let opts =
        Options::from_env("phase_breakdown [--scale S] [--trials N] [--dataset NAME] [--csv PATH]");
    let report = phases::run(opts.scale, opts.trials, opts.dataset.as_deref());
    print!("{}", report.render());
    if let Some(path) = &opts.csv {
        report
            .primary_table()
            .unwrap()
            .write_csv(path)
            .expect("write csv");
        println!("csv written to {path}");
    }
}
