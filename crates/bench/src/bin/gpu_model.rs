//! E11 (GPU warp model) entry point — see
//! `afforest_bench::experiments::gpu`.

use afforest_bench::experiments::gpu;
use afforest_bench::Options;

fn main() {
    let opts = Options::from_env("gpu_model [--scale S] [--dataset NAME] [--csv PATH]");
    let report = gpu::run(opts.scale, opts.dataset.as_deref());
    print!("{}", report.render());
    if let Some(path) = &opts.csv {
        report
            .primary_table()
            .unwrap()
            .write_csv(path)
            .expect("write csv");
        println!("csv written to {path}");
    }
}
