//! Table III entry point — see `afforest_bench::experiments::table3`.

use afforest_bench::experiments::table3;
use afforest_bench::Options;

fn main() {
    let opts = Options::from_env("table3 [--scale S] [--dataset NAME] [--csv PATH]");
    let report = table3::run(opts.scale, opts.dataset.as_deref());
    print!("{}", report.render());
    if let Some(path) = &opts.csv {
        report
            .primary_table()
            .unwrap()
            .write_csv(path)
            .expect("write csv");
        println!("csv written to {path}");
    }
}
