//! E10 (distributed communication) entry point — see
//! `afforest_bench::experiments::distrib_comm`.

use afforest_bench::experiments::distrib_comm;
use afforest_bench::Options;

fn main() {
    let opts = Options::from_env("distrib_comm [--scale S] [--dataset NAME] [--csv PATH]");
    let report = distrib_comm::run(opts.scale, opts.dataset.as_deref());
    print!("{}", report.render());
    if let Some(path) = &opts.csv {
        report
            .primary_table()
            .unwrap()
            .write_csv(path)
            .expect("write csv");
        println!("csv written to {path}");
    }
}
