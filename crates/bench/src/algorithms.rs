//! Unified algorithm dispatch for the cross-algorithm experiments
//! (Figs. 6c, 8a, 8b, 8c).

use afforest_baselines::{
    bfs_cc, dobfs_cc, label_prop, parallel_uf, shiloach_vishkin, sv_edgelist,
};
use afforest_core::{afforest, AfforestConfig, ComponentLabels};
use afforest_graph::CsrGraph;

/// Every algorithm the harness can time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Afforest with subgraph sampling + component skip (the paper's
    /// contribution, default configuration).
    Afforest,
    /// Afforest without large-component skipping.
    AfforestNoSkip,
    /// Shiloach–Vishkin on CSR (paper Fig. 1 / GAP).
    Sv,
    /// Edge-list SV (Soman et al. GPU comparator analogue).
    SvEdgeList,
    /// Data-driven min-label propagation.
    LabelProp,
    /// Plain BFS-CC.
    Bfs,
    /// Single-pass lock-free parallel union-find.
    ParallelUf,
    /// Direction-optimizing BFS-CC.
    Dobfs,
}

impl Algorithm {
    /// All algorithms in Fig. 8a's legend order.
    pub const ALL: [Algorithm; 8] = [
        Algorithm::Afforest,
        Algorithm::AfforestNoSkip,
        Algorithm::Sv,
        Algorithm::SvEdgeList,
        Algorithm::LabelProp,
        Algorithm::Bfs,
        Algorithm::ParallelUf,
        Algorithm::Dobfs,
    ];

    /// The subset the paper plots in Fig. 6c.
    pub const FIG6C: [Algorithm; 4] = [
        Algorithm::Sv,
        Algorithm::LabelProp,
        Algorithm::Dobfs,
        Algorithm::Afforest,
    ];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Afforest => "afforest",
            Algorithm::AfforestNoSkip => "afforest-noskip",
            Algorithm::Sv => "sv",
            Algorithm::SvEdgeList => "sv-edgelist",
            Algorithm::LabelProp => "label-prop",
            Algorithm::Bfs => "bfs",
            Algorithm::ParallelUf => "parallel-uf",
            Algorithm::Dobfs => "dobfs",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Algorithm> {
        Self::ALL.into_iter().find(|a| a.name() == s)
    }

    /// Runs the algorithm, returning the validated component labeling.
    ///
    /// Afforest's own output passes through untouched; the baselines
    /// return raw label vectors and are wrapped (and thereby validated)
    /// here, so every caller gets the same type and no call site has to
    /// copy slices back into vectors.
    pub fn run(&self, g: &CsrGraph) -> ComponentLabels {
        match self {
            Algorithm::Afforest => afforest(g, &AfforestConfig::default()),
            Algorithm::AfforestNoSkip => afforest(
                g,
                &AfforestConfig::builder()
                    .skip(false)
                    .build()
                    .expect("valid config"),
            ),
            Algorithm::Sv => ComponentLabels::from_vec(shiloach_vishkin(g)),
            Algorithm::SvEdgeList => ComponentLabels::from_vec(sv_edgelist(g)),
            Algorithm::LabelProp => ComponentLabels::from_vec(label_prop(g)),
            Algorithm::Bfs => ComponentLabels::from_vec(bfs_cc(g)),
            Algorithm::ParallelUf => ComponentLabels::from_vec(parallel_uf(g)),
            Algorithm::Dobfs => ComponentLabels::from_vec(dobfs_cc(g)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use afforest_graph::generators::uniform_random;

    #[test]
    fn all_algorithms_agree() {
        let g = uniform_random(2_000, 12_000, 5);
        let reference = Algorithm::Afforest.run(&g);
        assert!(reference.verify_against(&g));
        for alg in Algorithm::ALL {
            let labels = alg.run(&g);
            assert!(
                labels.equivalent(&reference),
                "{} disagrees with afforest",
                alg.name()
            );
        }
    }

    /// Satellite check for the observability runtime: every algorithm the
    /// harness can time emits at least one span when tracing is compiled
    /// in and a session is active.
    #[cfg(feature = "obs")]
    #[test]
    fn every_algorithm_emits_spans() {
        let g = uniform_random(2_000, 12_000, 5);
        for alg in Algorithm::ALL {
            let session = afforest_obs::Session::begin();
            let labels = alg.run(&g);
            let trace = session.end();
            assert!(labels.verify_against(&g));
            assert!(
                !trace.spans.is_empty(),
                "{} emitted no spans under obs",
                alg.name()
            );
            assert!(trace.total_ns > 0);
        }
    }

    #[test]
    fn name_roundtrip() {
        for alg in Algorithm::ALL {
            assert_eq!(Algorithm::parse(alg.name()), Some(alg));
        }
        assert_eq!(Algorithm::parse("quantum"), None);
    }

    #[test]
    fn fig6c_subset_is_from_all() {
        for alg in Algorithm::FIG6C {
            assert!(Algorithm::ALL.contains(&alg));
        }
    }
}
