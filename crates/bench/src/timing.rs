//! Timing protocol (Section VI): median over N trials with quartiles.
//!
//! "All results report the median running time … over 16 measurements";
//! Fig. 8a's error bars are the 25th/75th percentiles. We reproduce both.

use afforest_obs::Session;
use afforest_obs::Trace;
use std::time::{Duration, Instant};

/// Median + quartiles of a set of trials.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Timing {
    /// Median wall-clock time.
    pub median: Duration,
    /// 25th percentile.
    pub p25: Duration,
    /// 75th percentile.
    pub p75: Duration,
    /// Number of trials aggregated.
    pub trials: usize,
}

impl Timing {
    /// Milliseconds, for table rendering.
    pub fn median_ms(&self) -> f64 {
        self.median.as_secs_f64() * 1e3
    }

    /// Speedup of `self` over `other` (`other.median / self.median`).
    pub fn speedup_over(&self, other: &Timing) -> f64 {
        other.median.as_secs_f64() / self.median.as_secs_f64().max(1e-12)
    }
}

/// Aggregates raw durations into a [`Timing`].
///
/// Percentiles use the nearest-rank method on the sorted samples.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn aggregate(mut samples: Vec<Duration>) -> Timing {
    assert!(!samples.is_empty(), "need at least one sample");
    samples.sort_unstable();
    let rank = |q: f64| -> Duration {
        let idx = ((samples.len() as f64) * q).ceil() as usize;
        samples[idx.clamp(1, samples.len()) - 1]
    };
    Timing {
        median: rank(0.5),
        p25: rank(0.25),
        p75: rank(0.75),
        trials: samples.len(),
    }
}

/// Runs `f` `trials` times and aggregates the wall-clock samples. The
/// return value of `f` is passed to a black-box sink so the optimizer
/// cannot elide the work.
pub fn measure<T>(trials: usize, mut f: impl FnMut() -> T) -> Timing {
    assert!(trials > 0, "need at least one trial");
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let t = Instant::now();
        let out = f();
        samples.push(t.elapsed());
        std::hint::black_box(&out);
    }
    aggregate(samples)
}

/// Like [`measure`], but records each trial inside an observability
/// session. Trial durations are taken from the trace itself (the span
/// recorder's clock) rather than an outer stopwatch, and the trace of
/// the median trial is returned alongside the timing so callers can
/// break the median down per phase.
///
/// When the harness is built without the `obs` feature, traces are
/// empty and the durations fall back to the stopwatch — the timing is
/// still valid, the trace merely reports no spans.
pub fn measure_traced<T>(trials: usize, mut f: impl FnMut() -> T) -> (Timing, Trace) {
    assert!(trials > 0, "need at least one trial");
    let mut runs: Vec<(Duration, Trace)> = Vec::with_capacity(trials);
    for _ in 0..trials {
        let session = Session::begin();
        let t = Instant::now();
        let out = f();
        let stopwatch = t.elapsed();
        let trace = session.end();
        std::hint::black_box(&out);
        let dur = if trace.total_ns > 0 {
            Duration::from_nanos(trace.total_ns)
        } else {
            stopwatch
        };
        runs.push((dur, trace));
    }
    let timing = aggregate(runs.iter().map(|(d, _)| *d).collect());
    // Hand back the trace whose duration is the median sample.
    let (_, median_trace) = runs
        .into_iter()
        .min_by_key(|&(d, _)| d.abs_diff(timing.median))
        .expect("at least one trial");
    (timing, median_trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn aggregate_odd() {
        let t = aggregate(vec![ms(5), ms(1), ms(3)]);
        assert_eq!(t.median, ms(3));
        assert_eq!(t.p25, ms(1));
        assert_eq!(t.p75, ms(5));
        assert_eq!(t.trials, 3);
    }

    #[test]
    fn aggregate_single() {
        let t = aggregate(vec![ms(7)]);
        assert_eq!(t.median, ms(7));
        assert_eq!(t.p25, ms(7));
        assert_eq!(t.p75, ms(7));
    }

    #[test]
    fn aggregate_sixteen_matches_paper_protocol() {
        let samples: Vec<Duration> = (1..=16).map(ms).collect();
        let t = aggregate(samples);
        assert_eq!(t.median, ms(8));
        assert_eq!(t.p25, ms(4));
        assert_eq!(t.p75, ms(12));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn aggregate_empty_panics() {
        let _ = aggregate(vec![]);
    }

    #[test]
    fn measure_runs_f() {
        let mut count = 0;
        let t = measure(5, || {
            count += 1;
            count
        });
        assert_eq!(count, 5);
        assert_eq!(t.trials, 5);
    }

    #[test]
    fn measure_traced_times_all_trials() {
        let mut count = 0;
        let (t, trace) = measure_traced(5, || {
            count += 1;
            std::thread::sleep(Duration::from_millis(1));
            count
        });
        assert_eq!(count, 5);
        assert_eq!(t.trials, 5);
        assert!(t.median >= Duration::from_millis(1));
        // With obs compiled out the trace is empty; with it compiled in
        // the session clock must cover the sleep.
        if afforest_obs::COMPILED {
            assert!(trace.total_ns >= 1_000_000);
        } else {
            assert!(trace.is_empty());
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn measure_traced_returns_spans() {
        let (t, trace) = measure_traced(3, || {
            let _span = afforest_obs::span!("work");
            std::hint::black_box(42)
        });
        assert_eq!(t.trials, 3);
        assert_eq!(trace.spans.len(), 1);
        assert_eq!(trace.spans[0].name, "work");
        // Trial duration comes from the trace clock, which covers the span.
        assert!(t.median.as_nanos() as u64 >= trace.spans[0].dur_ns);
    }

    #[test]
    fn speedup() {
        let fast = aggregate(vec![ms(10)]);
        let slow = aggregate(vec![ms(40)]);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn median_ms_conversion() {
        let t = aggregate(vec![Duration::from_micros(1500)]);
        assert!((t.median_ms() - 1.5).abs() < 1e-9);
    }
}
