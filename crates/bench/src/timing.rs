//! Timing protocol (Section VI): median over N trials with quartiles.
//!
//! "All results report the median running time … over 16 measurements";
//! Fig. 8a's error bars are the 25th/75th percentiles. We reproduce both.

use std::time::{Duration, Instant};

/// Median + quartiles of a set of trials.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Timing {
    /// Median wall-clock time.
    pub median: Duration,
    /// 25th percentile.
    pub p25: Duration,
    /// 75th percentile.
    pub p75: Duration,
    /// Number of trials aggregated.
    pub trials: usize,
}

impl Timing {
    /// Milliseconds, for table rendering.
    pub fn median_ms(&self) -> f64 {
        self.median.as_secs_f64() * 1e3
    }

    /// Speedup of `self` over `other` (`other.median / self.median`).
    pub fn speedup_over(&self, other: &Timing) -> f64 {
        other.median.as_secs_f64() / self.median.as_secs_f64().max(1e-12)
    }
}

/// Aggregates raw durations into a [`Timing`].
///
/// Percentiles use the nearest-rank method on the sorted samples.
///
/// # Panics
///
/// Panics if `samples` is empty.
pub fn aggregate(mut samples: Vec<Duration>) -> Timing {
    assert!(!samples.is_empty(), "need at least one sample");
    samples.sort_unstable();
    let rank = |q: f64| -> Duration {
        let idx = ((samples.len() as f64) * q).ceil() as usize;
        samples[idx.clamp(1, samples.len()) - 1]
    };
    Timing {
        median: rank(0.5),
        p25: rank(0.25),
        p75: rank(0.75),
        trials: samples.len(),
    }
}

/// Runs `f` `trials` times and aggregates the wall-clock samples. The
/// return value of `f` is passed to a black-box sink so the optimizer
/// cannot elide the work.
pub fn measure<T>(trials: usize, mut f: impl FnMut() -> T) -> Timing {
    assert!(trials > 0, "need at least one trial");
    let mut samples = Vec::with_capacity(trials);
    for _ in 0..trials {
        let t = Instant::now();
        let out = f();
        samples.push(t.elapsed());
        std::hint::black_box(&out);
    }
    aggregate(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: u64) -> Duration {
        Duration::from_millis(x)
    }

    #[test]
    fn aggregate_odd() {
        let t = aggregate(vec![ms(5), ms(1), ms(3)]);
        assert_eq!(t.median, ms(3));
        assert_eq!(t.p25, ms(1));
        assert_eq!(t.p75, ms(5));
        assert_eq!(t.trials, 3);
    }

    #[test]
    fn aggregate_single() {
        let t = aggregate(vec![ms(7)]);
        assert_eq!(t.median, ms(7));
        assert_eq!(t.p25, ms(7));
        assert_eq!(t.p75, ms(7));
    }

    #[test]
    fn aggregate_sixteen_matches_paper_protocol() {
        let samples: Vec<Duration> = (1..=16).map(ms).collect();
        let t = aggregate(samples);
        assert_eq!(t.median, ms(8));
        assert_eq!(t.p25, ms(4));
        assert_eq!(t.p75, ms(12));
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn aggregate_empty_panics() {
        let _ = aggregate(vec![]);
    }

    #[test]
    fn measure_runs_f() {
        let mut count = 0;
        let t = measure(5, || {
            count += 1;
            count
        });
        assert_eq!(count, 5);
        assert_eq!(t.trials, 5);
    }

    #[test]
    fn speedup() {
        let fast = aggregate(vec![ms(10)]);
        let slow = aggregate(vec![ms(40)]);
        assert!((fast.speedup_over(&slow) - 4.0).abs() < 1e-9);
        assert!((slow.speedup_over(&fast) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn median_ms_conversion() {
        let t = aggregate(vec![Duration::from_micros(1500)]);
        assert!((t.median_ms() - 1.5).abs() < 1e-9);
    }
}
