//! Tiny flag parser shared by the experiment binaries (keeps the
//! dependency closure free of a CLI crate).

use crate::datasets::Scale;

/// Parsed common options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Dataset scale preset (`--scale`, default `small`).
    pub scale: Scale,
    /// Timing trials per measurement (`--trials`, default 16 — the
    /// paper's protocol).
    pub trials: usize,
    /// Optional CSV output path (`--csv`).
    pub csv: Option<String>,
    /// Restrict to one dataset (`--dataset`).
    pub dataset: Option<String>,
    /// Free-form extra key/value flags (`--key value`), for
    /// binary-specific options.
    pub extra: Vec<(String, String)>,
}

impl Default for Options {
    fn default() -> Self {
        Self {
            scale: Scale::Small,
            trials: 16,
            csv: None,
            dataset: None,
            extra: Vec::new(),
        }
    }
}

impl Options {
    /// Parses `std::env::args`-style arguments (the first element is the
    /// program name). Unknown `--key value` pairs land in `extra`.
    ///
    /// Returns `Err` with a usage message on malformed input.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut opts = Options::default();
        let mut it = args.into_iter().skip(1).peekable();
        while let Some(arg) = it.next() {
            let key = arg
                .strip_prefix("--")
                .ok_or_else(|| format!("unexpected positional argument '{arg}'"))?;
            let value = it
                .next()
                .ok_or_else(|| format!("flag --{key} requires a value"))?;
            match key {
                "scale" => {
                    opts.scale = Scale::parse(&value).ok_or_else(|| {
                        format!("unknown scale '{value}' (tiny|small|medium|large)")
                    })?;
                }
                "trials" => {
                    opts.trials = value
                        .parse::<usize>()
                        .ok()
                        .filter(|&t| t > 0)
                        .ok_or_else(|| format!("invalid trial count '{value}'"))?;
                }
                "csv" => opts.csv = Some(value),
                "dataset" => opts.dataset = Some(value),
                _ => opts.extra.push((key.to_string(), value)),
            }
        }
        Ok(opts)
    }

    /// Parses from the process environment, exiting with the usage message
    /// on error.
    pub fn from_env(usage: &str) -> Options {
        match Self::parse(std::env::args()) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("error: {e}\n\nusage: {usage}");
                std::process::exit(2);
            }
        }
    }

    /// Looks up a binary-specific extra flag.
    pub fn extra(&self, key: &str) -> Option<&str> {
        self.extra
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        let mut full = vec!["prog".to_string()];
        full.extend(args.iter().map(|s| s.to_string()));
        Options::parse(full)
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert_eq!(o.scale, Scale::Small);
        assert_eq!(o.trials, 16);
        assert!(o.csv.is_none());
    }

    #[test]
    fn all_flags() {
        let o = parse(&[
            "--scale",
            "large",
            "--trials",
            "3",
            "--csv",
            "/tmp/x.csv",
            "--dataset",
            "web",
        ])
        .unwrap();
        assert_eq!(o.scale, Scale::Large);
        assert_eq!(o.trials, 3);
        assert_eq!(o.csv.as_deref(), Some("/tmp/x.csv"));
        assert_eq!(o.dataset.as_deref(), Some("web"));
    }

    #[test]
    fn extra_flags_pass_through() {
        let o = parse(&["--measure", "coverage", "--measure", "linkage"]).unwrap();
        // Last value wins in lookup.
        assert_eq!(o.extra("measure"), Some("linkage"));
        assert_eq!(o.extra("absent"), None);
    }

    #[test]
    fn errors() {
        assert!(parse(&["positional"]).is_err());
        assert!(parse(&["--scale"]).is_err());
        assert!(parse(&["--scale", "galactic"]).is_err());
        assert!(parse(&["--trials", "0"]).is_err());
        assert!(parse(&["--trials", "x"]).is_err());
    }
}
