//! Minimal aligned-text table rendering plus CSV emission — the output
//! layer shared by every experiment binary.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut Self {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row width mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                // Left-align first column (names), right-align the rest
                // (numbers).
                if i == 0 {
                    let _ = write!(out, "{:<width$}", cell, width = widths[i]);
                } else {
                    let _ = write!(out, "{:>width$}", cell, width = widths[i]);
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Serializes as CSV (quoting cells containing commas or quotes).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let mut write_row = |cells: &[String]| {
            let line: Vec<String> = cells.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        write_row(&self.header);
        for row in &self.rows {
            write_row(row);
        }
        out
    }

    /// Writes the CSV form to a file.
    pub fn write_csv<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        std::fs::write(path, self.to_csv())
    }
}

/// Formats a float with 2 decimal places (table cells).
pub fn f2(x: f64) -> String {
    format!("{:.2}", x)
}

/// Formats a float with 3 decimal places.
pub fn f3(x: f64) -> String {
    format!("{:.3}", x)
}

/// Formats a count with thousands separators (e.g. `1_048_576`).
pub fn count(n: usize) -> String {
    let raw = n.to_string();
    let mut out = String::with_capacity(raw.len() + raw.len() / 3);
    for (i, ch) in raw.chars().enumerate() {
        if i > 0 && (raw.len() - i).is_multiple_of(3) {
            out.push('_');
        }
        out.push(ch);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(["name", "value"]);
        t.row(["alpha", "1"]).row(["b", "12345"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[2].starts_with("alpha"));
        // Right-aligned numeric column.
        assert!(lines[2].ends_with("    1"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["k", "v"]);
        t.row(["has,comma", "has\"quote"]);
        let csv = t.to_csv();
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn csv_roundtrip_simple() {
        let mut t = Table::new(["x"]);
        t.row(["1"]).row(["2"]);
        assert_eq!(t.to_csv(), "x\n1\n2\n");
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn count_separators() {
        assert_eq!(count(1), "1");
        assert_eq!(count(1234), "1_234");
        assert_eq!(count(1048576), "1_048_576");
    }

    #[test]
    fn float_formats() {
        assert_eq!(f2(1.005), "1.00"); // banker-ish rounding artifacts OK
        assert_eq!(f3(0.12345), "0.123");
    }
}
