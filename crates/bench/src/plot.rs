//! Terminal line charts for the figure experiments.
//!
//! The paper's figures are line plots; the harness renders the same
//! series as ASCII charts so the shape (who wins, where the crossover
//! falls) is visible directly in the terminal and in `EXPERIMENTS.md`.

/// One named series of `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label.
    pub label: String,
    /// Points in ascending-x order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// Marker characters assigned to series in order.
const MARKS: &[char] = &['*', 'o', '+', 'x', '#', '@', '%', '&'];

/// Renders series into a `width × height` ASCII chart with axis ranges
/// derived from the data. Later series draw over earlier ones where they
/// collide; a legend line maps markers to labels.
///
/// `log_y` plots `log10(y)` (clamping non-positive values to the axis
/// minimum), matching the paper's log-scale runtime figures.
pub fn render(series: &[Series], width: usize, height: usize, log_y: bool) -> String {
    let width = width.max(16);
    let height = height.max(4);
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .map(|(x, y)| (x, transform(y, log_y)))
        .filter(|(x, y)| x.is_finite() && y.is_finite())
        .collect();
    if all.is_empty() {
        return String::from("(no data)\n");
    }
    let (mut x0, mut x1) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y0, mut y1) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if (x1 - x0).abs() < 1e-12 {
        x1 = x0 + 1.0;
    }
    if (y1 - y0).abs() < 1e-12 {
        y1 = y0 + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let mark = MARKS[si % MARKS.len()];
        for &(x, y) in &s.points {
            let ty = transform(y, log_y);
            if !x.is_finite() || !ty.is_finite() {
                continue;
            }
            let cx = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let cy = (((ty - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            grid[height - 1 - cy.min(height - 1)][cx.min(width - 1)] = mark;
        }
    }

    let y_top = if log_y {
        format!("1e{y1:.1}")
    } else {
        format!("{y1:.3}")
    };
    let y_bot = if log_y {
        format!("1e{y0:.1}")
    } else {
        format!("{y0:.3}")
    };
    let label_w = y_top.len().max(y_bot.len());
    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{y_top:>label_w$}")
        } else if i == height - 1 {
            format!("{y_bot:>label_w$}")
        } else {
            " ".repeat(label_w)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(label_w));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    out.push_str(&" ".repeat(label_w + 1));
    out.push_str(&format!(
        "{x0:<.3}{:>pad$.3}\n",
        x1,
        pad = width.saturating_sub(6)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", MARKS[si % MARKS.len()], s.label));
    }
    out
}

fn transform(y: f64, log_y: bool) -> f64 {
    if log_y {
        if y > 0.0 {
            y.log10()
        } else {
            f64::NEG_INFINITY
        }
    } else {
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_single_series() {
        let s = Series::new("line", vec![(0.0, 0.0), (1.0, 1.0), (2.0, 2.0)]);
        let chart = render(&[s], 20, 8, false);
        assert!(chart.contains('*'));
        assert!(chart.contains("line"));
        // Axis frame present.
        assert!(chart.contains('+'));
        assert!(chart.contains('|'));
    }

    #[test]
    fn ascending_line_slopes_up() {
        let s = Series::new("up", vec![(0.0, 0.0), (1.0, 1.0)]);
        let chart = render(&[s], 20, 6, false);
        let rows: Vec<&str> = chart.lines().collect();
        // First data row (top) contains the max point at the right edge;
        // the bottom data row has the min point at the left.
        let top = rows[0];
        let bottom = rows[5];
        assert!(top.rfind('*') > bottom.rfind('*'));
    }

    #[test]
    fn multiple_series_get_distinct_marks() {
        let a = Series::new("a", vec![(0.0, 0.0), (1.0, 0.0)]);
        let b = Series::new("b", vec![(0.0, 1.0), (1.0, 1.0)]);
        let chart = render(&[a, b], 20, 6, false);
        assert!(chart.contains('*'));
        assert!(chart.contains('o'));
        assert!(chart.contains("  * a"));
        assert!(chart.contains("  o b"));
    }

    #[test]
    fn log_scale_labels() {
        let s = Series::new("runtime", vec![(1.0, 10.0), (2.0, 1000.0)]);
        let chart = render(&[s], 20, 6, true);
        assert!(chart.contains("1e3.0"));
        assert!(chart.contains("1e1.0"));
    }

    #[test]
    fn empty_series_safe() {
        assert_eq!(render(&[], 20, 6, false), "(no data)\n");
        let s = Series::new("empty", vec![]);
        assert_eq!(render(&[s], 20, 6, false), "(no data)\n");
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let s = Series::new("flat", vec![(0.0, 5.0), (1.0, 5.0)]);
        let chart = render(&[s], 20, 6, false);
        assert!(chart.contains('*'));
    }

    #[test]
    fn nonpositive_values_on_log_scale_are_dropped() {
        let s = Series::new("mixed", vec![(0.0, 0.0), (1.0, 100.0)]);
        let chart = render(&[s], 20, 6, true);
        assert!(chart.contains('*')); // the positive point still renders
    }
}
