//! Experiment harness for the Afforest reproduction.
//!
//! Reproduces every table and figure of the paper's evaluation on
//! laptop-scale synthetic stand-ins of the original datasets:
//!
//! | Binary | Paper artifact |
//! |--------|----------------|
//! | `table2` | Table II — SV vs Afforest iterations & tree depth |
//! | `table3` | Table III — dataset statistics |
//! | `fig6_convergence` | Fig. 6a/6b — Linkage & Coverage per strategy |
//! | `fig6c_degree_sweep` | Fig. 6c — runtime vs average degree |
//! | `fig7_trace` | Fig. 7 — π memory-access patterns |
//! | `fig8a_perf` | Fig. 8a — cross-algorithm performance |
//! | `fig8b_scaling` | Fig. 8b — strong scaling |
//! | `fig8c_components` | Fig. 8c — runtime vs component fraction |
//!
//! Each binary accepts `--scale tiny|small|medium|large` (default `small`)
//! and `--trials N`, prints a human-readable table mirroring the paper's
//! rows/series, and optionally emits CSV via `--csv <path>`.

#![forbid(unsafe_code)]

pub mod algorithms;
pub mod cli;
pub mod datasets;
pub mod experiments;
pub mod plot;
pub mod table;
pub mod timing;

pub use algorithms::Algorithm;
pub use cli::Options;
pub use datasets::{registry, Dataset, Scale};
pub use plot::{render as render_chart, Series};
pub use table::Table;
pub use timing::{measure, measure_traced, Timing};
